// Integration tests for the FlexIO core runtime: program collectives, wire
// messages, redistribution planning, and full writer/reader pipelines over
// every transport mode, caching level, and I/O pattern.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <thread>

#include "core/program.h"
#include "core/redistribution.h"
#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace flexio {
namespace {

using namespace std::chrono_literals;
using adios::Box;
using adios::Dims;
using serial::DataType;

/// Run fn(rank) on `size` threads, one per rank; propagate gtest failures.
void run_ranks(int size, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&fn, r] { fn(r); });
  }
  for (auto& t : threads) t.join();
}

TEST(ProgramTest, GatherCollectsAllRanks) {
  Program prog("p", 4);
  std::vector<std::vector<std::byte>> result;
  run_ranks(4, [&](int rank) {
    std::byte payload{static_cast<unsigned char>(rank * 3)};
    std::vector<std::vector<std::byte>> all;
    ASSERT_TRUE(prog.gather(rank, ByteView(&payload, 1), &all, 5s).is_ok());
    if (rank == 0) result = std::move(all);
  });
  ASSERT_EQ(result.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(result[static_cast<std::size_t>(r)].size(), 1u);
    EXPECT_EQ(result[static_cast<std::size_t>(r)][0],
              std::byte{static_cast<unsigned char>(r * 3)});
  }
}

TEST(ProgramTest, BroadcastDistributesCoordinatorData) {
  Program prog("p", 3);
  run_ranks(3, [&](int rank) {
    std::vector<std::byte> data;
    if (rank == 0) data = {std::byte{7}, std::byte{8}};
    ASSERT_TRUE(prog.broadcast(rank, &data, 5s).is_ok());
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], std::byte{7});
  });
}

TEST(ProgramTest, RepeatedRoundsDoNotBleed) {
  Program prog("p", 3);
  run_ranks(3, [&](int rank) {
    for (int round = 0; round < 50; ++round) {
      std::vector<std::byte> data;
      if (rank == 0) data = {std::byte{static_cast<unsigned char>(round)}};
      ASSERT_TRUE(prog.broadcast(rank, &data, 5s).is_ok());
      ASSERT_EQ(data.size(), 1u);
      ASSERT_EQ(data[0], std::byte{static_cast<unsigned char>(round)});
      ASSERT_TRUE(prog.barrier(rank, 5s).is_ok());
    }
  });
}

TEST(ProgramTest, SingleRankProgramTrivial) {
  Program prog("solo", 1);
  std::vector<std::vector<std::byte>> all;
  EXPECT_TRUE(prog.gather(0, {}, &all, 1s).is_ok());
  EXPECT_TRUE(prog.barrier(0, 1s).is_ok());
}

TEST(WireTest, AllMessagesRoundTrip) {
  wire::OpenRequest openreq{"viz", 4};
  auto decoded_req =
      wire::decode_open_request(ByteView(wire::encode(openreq)));
  ASSERT_TRUE(decoded_req.is_ok());
  EXPECT_EQ(decoded_req.value().reader_program, "viz");
  EXPECT_EQ(decoded_req.value().reader_size, 4);

  wire::OpenReply reply{"sim", 16, 2, true, true};
  auto decoded_reply = wire::decode_open_reply(ByteView(wire::encode(reply)));
  ASSERT_TRUE(decoded_reply.is_ok());
  EXPECT_EQ(decoded_reply.value().writer_size, 16);
  EXPECT_EQ(decoded_reply.value().caching, 2);
  EXPECT_TRUE(decoded_reply.value().batching);

  wire::StepAnnounce ann;
  ann.step = 9;
  wire::BlockInfo b;
  b.writer_rank = 3;
  b.meta = adios::global_array_var("T", DataType::kDouble, {100}, Box{{0}, {50}});
  ann.blocks.push_back(b);
  auto decoded_ann =
      wire::decode_step_announce(ByteView(wire::encode(ann)));
  ASSERT_TRUE(decoded_ann.is_ok());
  EXPECT_EQ(decoded_ann.value().step, 9);
  ASSERT_EQ(decoded_ann.value().blocks.size(), 1u);
  EXPECT_EQ(decoded_ann.value().blocks[0].meta.name, "T");

  wire::ReadRequest req;
  req.step = 9;
  req.selections.push_back(wire::SelectionInfo{1, "T", Box{{10}, {20}}});
  req.pg_requests.push_back(wire::PgRequestInfo{0, 5});
  req.plugins.push_back(wire::PluginInstall{"T", "x * 2", true});
  auto decoded = wire::decode_read_request(ByteView(wire::encode(req)));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().selections[0].var, "T");
  EXPECT_EQ(decoded.value().pg_requests[0].writer_rank, 5);
  ASSERT_EQ(decoded.value().plugins.size(), 1u);
  EXPECT_EQ(decoded.value().plugins[0].source, "x * 2");

  wire::DataMsg data;
  data.step = 9;
  data.writer_rank = 2;
  wire::DataPiece piece;
  piece.meta = b.meta;
  piece.region = Box{{10}, {5}};
  piece.payload.resize(40);
  data.pieces.push_back(piece);
  auto decoded_data = wire::decode_data(ByteView(wire::encode(data)));
  ASSERT_TRUE(decoded_data.is_ok());
  EXPECT_EQ(decoded_data.value().pieces[0].payload.size(), 40u);

  EXPECT_EQ(wire::peek_type(ByteView(wire::encode_close(7))).value(),
            wire::MsgType::kClose);

  wire::MonitorReport report{5, 1000, 0.5, 0.25, 0.125, 4, 1};
  auto decoded_rep =
      wire::decode_monitor_report(ByteView(wire::encode(report)));
  ASSERT_TRUE(decoded_rep.is_ok());
  EXPECT_EQ(decoded_rep.value().steps, 5u);
  EXPECT_DOUBLE_EQ(decoded_rep.value().handshake_seconds, 0.25);
}

TEST(WireTest, TraceContextTrailerRoundTrips) {
  const wire::TraceContext ctx{wire::stream_id_hash("temps"), 9, 77, 123456};

  wire::StepAnnounce ann;
  ann.step = 9;
  ann.trace = ctx;
  auto dec_ann = wire::decode_step_announce(ByteView(wire::encode(ann)));
  ASSERT_TRUE(dec_ann.is_ok());
  ASSERT_TRUE(dec_ann.value().trace.has_value());
  EXPECT_EQ(dec_ann.value().trace->stream_id, ctx.stream_id);
  EXPECT_EQ(dec_ann.value().trace->step, 9);
  EXPECT_EQ(dec_ann.value().trace->span_id, 77u);
  EXPECT_EQ(dec_ann.value().trace->send_ns, 123456u);

  wire::ReadRequest req;
  req.step = 9;
  req.selections.push_back(wire::SelectionInfo{0, "T", Box{{0}, {4}}});
  req.trace = ctx;
  auto dec_req = wire::decode_read_request(ByteView(wire::encode(req)));
  ASSERT_TRUE(dec_req.is_ok());
  ASSERT_TRUE(dec_req.value().trace.has_value());
  EXPECT_EQ(dec_req.value().trace->span_id, 77u);

  wire::DataMsg data;
  data.step = 9;
  data.writer_rank = 1;
  wire::DataPiece piece;
  piece.meta = adios::global_array_var("T", DataType::kDouble, {8}, Box{{0}, {4}});
  piece.region = Box{{0}, {4}};
  piece.payload.resize(32);
  data.pieces.push_back(std::move(piece));
  data.trace = ctx;
  auto dec_data = wire::decode_data(ByteView(wire::encode(data)));
  ASSERT_TRUE(dec_data.is_ok());
  ASSERT_TRUE(dec_data.value().trace.has_value());
  EXPECT_EQ(dec_data.value().trace->send_ns, 123456u);

  // The scatter-gather path frames the exact same bytes: the trailer is
  // written after the last borrowed payload and must land in the final
  // wire fragment.
  const serial::IovMessage iov = wire::encode_data_iov(data);
  std::vector<std::byte> flat;
  for (const ByteView frag : iov.frags) {
    flat.insert(flat.end(), frag.begin(), frag.end());
  }
  EXPECT_EQ(flat, wire::encode(data));
  auto dec_iov = wire::decode_data(ByteView(flat));
  ASSERT_TRUE(dec_iov.is_ok());
  ASSERT_TRUE(dec_iov.value().trace.has_value());
  EXPECT_EQ(dec_iov.value().trace->stream_id, ctx.stream_id);

  // Absent context encodes no trailer and decodes as absent.
  data.trace.reset();
  auto dec_plain = wire::decode_data(ByteView(wire::encode(data)));
  ASSERT_TRUE(dec_plain.is_ok());
  EXPECT_FALSE(dec_plain.value().trace.has_value());
}

TEST(WireTest, StreamIdHashStable) {
  const std::uint64_t h = wire::stream_id_hash("temps");
  EXPECT_EQ(h, wire::stream_id_hash("temps"));
  EXPECT_NE(h, wire::stream_id_hash("pressure"));
  EXPECT_NE(h, 0u);
  EXPECT_LE(h, 0xffffffffull);        // fits a JSON double exactly
  EXPECT_NE(wire::stream_id_hash(""), 0u);  // empty name still maps to != 0
}

TEST(WireTest, MonitorReportPhaseFieldsRoundTrip) {
  wire::MonitorReport report{5, 1000, 0.5, 0.25, 0.125, 4, 1};
  report.pack_ns = 111;
  report.enqueue_ns = 222;
  report.transfer_ns = 333;
  report.unpack_ns = 444;
  report.total_ns = 555;
  report.phase_steps = 5;
  auto decoded = wire::decode_monitor_report(ByteView(wire::encode(report)));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().steps, 5u);
  EXPECT_EQ(decoded.value().pack_ns, 111u);
  EXPECT_EQ(decoded.value().enqueue_ns, 222u);
  EXPECT_EQ(decoded.value().transfer_ns, 333u);
  EXPECT_EQ(decoded.value().unpack_ns, 444u);
  EXPECT_EQ(decoded.value().total_ns, 555u);
  EXPECT_EQ(decoded.value().phase_steps, 5u);
}

TEST(WireTest, MonitorReportOldFormatDecodesWithZeroPhases) {
  // A frame hand-encoded the way the pre-phase format wrote it: seven
  // fields and nothing after them. Decode must succeed with all phase
  // fields zero (the versioned-trailer compatibility contract).
  serial::BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(wire::MsgType::kMonitorReport));
  w.put_u64(5);
  w.put_u64(1000);
  w.put_f64(0.5);
  w.put_f64(0.25);
  w.put_f64(0.125);
  w.put_u64(4);
  w.put_u64(1);
  auto decoded = wire::decode_monitor_report(ByteView(w.take()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().steps, 5u);
  EXPECT_EQ(decoded.value().bytes_sent, 1000u);
  EXPECT_DOUBLE_EQ(decoded.value().handshake_seconds, 0.25);
  EXPECT_EQ(decoded.value().handshakes_performed, 4u);
  EXPECT_EQ(decoded.value().pack_ns, 0u);
  EXPECT_EQ(decoded.value().enqueue_ns, 0u);
  EXPECT_EQ(decoded.value().transfer_ns, 0u);
  EXPECT_EQ(decoded.value().unpack_ns, 0u);
  EXPECT_EQ(decoded.value().total_ns, 0u);
  EXPECT_EQ(decoded.value().phase_steps, 0u);
}

TEST(WireTest, OldFormatStepAnnounceDecodesWithoutTrace) {
  // Hand-encode a StepAnnounce exactly as the pre-trailer format did (step
  // + empty block list, nothing after) and check it parses with no trace.
  serial::BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(wire::MsgType::kStepAnnounce));
  w.put_i64(3);
  w.put_varint(0);  // zero blocks
  auto decoded = wire::decode_step_announce(ByteView(w.take()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().step, 3);
  EXPECT_FALSE(decoded.value().trace.has_value());
}

TEST(WireTest, UnknownTraceTrailerVersionSkipped) {
  // A future trailer version must be skipped, not rejected.
  serial::BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(wire::MsgType::kStepAnnounce));
  w.put_i64(3);
  w.put_varint(0);
  w.put_u8(200);  // unknown trailer version
  w.put_u64(0xdeadbeef);  // opaque future payload
  auto decoded = wire::decode_step_announce(ByteView(w.take()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().step, 3);
  EXPECT_FALSE(decoded.value().trace.has_value());
}

TEST(WireTest, MembershipEpochTrailerRoundTrips) {
  // Trailer v2 rides after the v1 trace trailer on the handshake frames.
  wire::StepAnnounce ann;
  ann.step = 4;
  ann.trace = wire::TraceContext{wire::stream_id_hash("m"), 4, 9, 100};
  ann.membership_epoch = 17;
  auto dec_ann = wire::decode_step_announce(ByteView(wire::encode(ann)));
  ASSERT_TRUE(dec_ann.is_ok());
  ASSERT_TRUE(dec_ann.value().membership_epoch.has_value());
  EXPECT_EQ(*dec_ann.value().membership_epoch, 17u);
  ASSERT_TRUE(dec_ann.value().trace.has_value());
  EXPECT_EQ(dec_ann.value().trace->span_id, 9u);

  // The epoch also encodes without a trace context (trailers are
  // independent), and the reader's echo frame carries it the same way.
  ann.trace.reset();
  auto dec_bare = wire::decode_step_announce(ByteView(wire::encode(ann)));
  ASSERT_TRUE(dec_bare.is_ok());
  EXPECT_FALSE(dec_bare.value().trace.has_value());
  ASSERT_TRUE(dec_bare.value().membership_epoch.has_value());
  EXPECT_EQ(*dec_bare.value().membership_epoch, 17u);

  wire::ReadRequest req;
  req.step = 4;
  req.membership_epoch = 17;
  auto dec_req = wire::decode_read_request(ByteView(wire::encode(req)));
  ASSERT_TRUE(dec_req.is_ok());
  ASSERT_TRUE(dec_req.value().membership_epoch.has_value());
  EXPECT_EQ(*dec_req.value().membership_epoch, 17u);

  // Absent epoch (membership off) encodes no v2 trailer and decodes absent.
  wire::StepAnnounce frozen;
  frozen.step = 4;
  auto dec_frozen = wire::decode_step_announce(ByteView(wire::encode(frozen)));
  ASSERT_TRUE(dec_frozen.is_ok());
  EXPECT_FALSE(dec_frozen.value().membership_epoch.has_value());
}

TEST(WireTest, OldFormatFramesDecodeWithoutMembershipEpoch) {
  // A seed-format announce (step + empty block list, no trailer bytes at
  // all) must parse with both the trace and the membership epoch absent.
  serial::BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(wire::MsgType::kStepAnnounce));
  w.put_i64(3);
  w.put_varint(0);
  auto decoded = wire::decode_step_announce(ByteView(w.take()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().trace.has_value());
  EXPECT_FALSE(decoded.value().membership_epoch.has_value());
}

TEST(WireTest, MembershipTrailerBeforeUnknownVersionsStillDecodes) {
  // A v2 epoch trailer followed by a future unknown trailer: the epoch is
  // read, the unknown tail is skipped, the frame parses.
  serial::BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(wire::MsgType::kStepAnnounce));
  w.put_i64(3);
  w.put_varint(0);
  w.put_u8(2);        // kMembershipTrailerV2
  w.put_varint(23);   // epoch
  w.put_u8(200);      // unknown future trailer version
  w.put_u64(0xfeed);  // opaque future payload
  auto decoded = wire::decode_step_announce(ByteView(w.take()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().step, 3);
  ASSERT_TRUE(decoded.value().membership_epoch.has_value());
  EXPECT_EQ(*decoded.value().membership_epoch, 23u);
}

TEST(WireTest, MembershipUpdateAndHeartbeatRoundTrip) {
  wire::MembershipUpdate update;
  update.stream = "temps";
  update.epoch = 7;
  update.members.push_back(wire::MemberInfo{0, "viz.ep0", 1, 0, 0});
  update.members.push_back(wire::MemberInfo{2, "viz.ep2b", 2, 0, 6});
  update.members.push_back(wire::MemberInfo{1, "", 1, 2, 0});  // dead
  auto dec = wire::decode_membership_update(ByteView(wire::encode(update)));
  ASSERT_TRUE(dec.is_ok()) << dec.status().to_string();
  EXPECT_EQ(dec.value().stream, "temps");
  EXPECT_EQ(dec.value().epoch, 7u);
  ASSERT_EQ(dec.value().members.size(), 3u);
  EXPECT_EQ(dec.value().members[1].rank, 2);
  EXPECT_EQ(dec.value().members[1].contact, "viz.ep2b");
  EXPECT_EQ(dec.value().members[1].incarnation, 2u);
  EXPECT_EQ(dec.value().members[1].join_epoch, 6u);
  EXPECT_EQ(dec.value().members[2].state, 2);  // dead tombstone preserved
  EXPECT_EQ(wire::peek_type(ByteView(wire::encode(update))).value(),
            wire::MsgType::kMembershipUpdate);

  wire::Heartbeat hb;
  hb.stream = "temps";
  hb.rank = 2;
  hb.incarnation = 3;
  hb.send_ns = 123456789;
  auto dec_hb = wire::decode_heartbeat(ByteView(wire::encode(hb)));
  ASSERT_TRUE(dec_hb.is_ok()) << dec_hb.status().to_string();
  EXPECT_EQ(dec_hb.value().stream, "temps");
  EXPECT_EQ(dec_hb.value().rank, 2);
  EXPECT_EQ(dec_hb.value().incarnation, 3u);
  EXPECT_EQ(dec_hb.value().send_ns, 123456789u);
  EXPECT_EQ(wire::peek_type(ByteView(wire::encode(hb))).value(),
            wire::MsgType::kHeartbeat);

  // Truncated membership frames are rejected, not misparsed.
  std::vector<std::byte> truncated = wire::encode(update);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(wire::decode_membership_update(ByteView(truncated)).is_ok());
}

TEST(WireTest, CorruptFramesRejected) {
  EXPECT_FALSE(wire::peek_type({}).is_ok());
  std::vector<std::byte> junk{std::byte{0xee}};
  EXPECT_FALSE(wire::peek_type(ByteView(junk)).is_ok());
  std::vector<std::byte> truncated = wire::encode(wire::OpenRequest{"x", 1});
  truncated.resize(1);
  EXPECT_FALSE(wire::decode_open_request(ByteView(truncated)).is_ok());
}

// ------------------------------------------------------- planning tests --

std::vector<wire::BlockInfo> make_blocks(const Dims& global, int writers) {
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < writers; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::global_array_var(
        "A", DataType::kDouble, global,
        adios::block_decompose(global, writers, w, 0));
    blocks.push_back(b);
  }
  return blocks;
}

TEST(PlanTest, Figure3MappingNineToTwo) {
  // Paper Figure 3: a 2-D array distributed among 9 simulation processes is
  // passed to 2 analytics processes with a different decomposition.
  const Dims global{9, 6};
  auto blocks = make_blocks(global, 9);  // row-wise strips
  wire::ReadRequest req;
  req.step = 0;
  for (int r = 0; r < 2; ++r) {
    req.selections.push_back(wire::SelectionInfo{
        r, "A", adios::block_decompose(global, 2, r, 1)});  // column halves
  }
  const auto plan = plan_transfers(blocks, req);
  // Every writer overlaps both readers: 18 pieces.
  EXPECT_EQ(plan.size(), 18u);
  // Total bytes moved == one full copy of the array.
  std::uint64_t bytes = 0;
  for (const auto& p : plan) bytes += p.bytes();
  EXPECT_EQ(bytes, adios::volume(global) * sizeof(double));
  // Each reader receives exactly its half.
  const auto mine = pieces_to_reader(plan, 0);
  std::uint64_t reader0 = 0;
  for (const auto& p : mine) reader0 += p.bytes();
  EXPECT_EQ(reader0, 9u * 3u * sizeof(double));
}

TEST(PlanTest, DisjointSelectionsNoPieces) {
  auto blocks = make_blocks({10}, 1);
  wire::ReadRequest req;
  req.selections.push_back(wire::SelectionInfo{0, "B", Box{{0}, {10}}});
  EXPECT_TRUE(plan_transfers(blocks, req).empty());  // wrong name
}

TEST(PlanTest, PgRequestsTransferWholeBlocks) {
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < 3; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::local_array_var("particles", DataType::kDouble,
                                    {10 + static_cast<std::uint64_t>(w), 7});
    blocks.push_back(b);
  }
  wire::ReadRequest req;
  req.pg_requests.push_back(wire::PgRequestInfo{0, 1});
  req.pg_requests.push_back(wire::PgRequestInfo{1, 2});
  const auto plan = plan_transfers(blocks, req);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_TRUE(plan[0].whole_block);
  EXPECT_EQ(plan[0].writer_rank, 1);
  EXPECT_EQ(plan[0].reader_rank, 0);
  EXPECT_EQ(plan[0].bytes(), 11u * 7u * sizeof(double));
}

TEST(PlanTest, CommMatrixAggregatesBytes) {
  auto blocks = make_blocks({8}, 2);
  wire::ReadRequest req;
  req.selections.push_back(wire::SelectionInfo{0, "A", Box{{0}, {8}}});
  const auto plan = plan_transfers(blocks, req);
  const auto m = comm_matrix(plan, 2, 1);
  EXPECT_EQ(m[0][0], 4u * sizeof(double));
  EXPECT_EQ(m[1][0], 4u * sizeof(double));
}

TEST(PlanTest, DeterministicOrder) {
  auto blocks = make_blocks({100, 4}, 7);
  wire::ReadRequest req;
  for (int r = 0; r < 3; ++r) {
    req.selections.push_back(wire::SelectionInfo{
        r, "A", adios::block_decompose({100, 4}, 3, r, 0)});
  }
  const auto a = plan_transfers(blocks, req);
  const auto b = plan_transfers(blocks, req);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].writer_rank, b[i].writer_rank);
    EXPECT_EQ(a[i].reader_rank, b[i].reader_rank);
    EXPECT_EQ(a[i].region, b[i].region);
  }
}

// ------------------------------------------------- end-to-end pipelines --

struct PipelineConfig {
  int writers = 3;
  int readers = 2;
  int steps = 3;
  std::string method_params;
  bool writers_remote = false;  // place readers on another node (RDMA)
  const char* name = "";
};

xml::MethodConfig stream_method(const std::string& params) {
  xml::MethodConfig m;
  m.method = "FLEXIO";
  m.timeout_ms = 20000;
  FLEXIO_CHECK(xml::apply_method_params(params, &m).is_ok());
  return m;
}

/// Full coupled pipeline: `writers` ranks produce a 2-D global array and a
/// per-rank particle array each step; `readers` ranks pull a column-block
/// decomposition of the global array plus assigned process groups. Verifies
/// every element end to end.
void run_pipeline(const PipelineConfig& cfg) {
  Runtime rt;
  Program sim("sim", cfg.writers);
  Program viz("viz", cfg.readers);
  const Dims global{24, 10};

  auto writer_fn = [&](int rank) {
    StreamSpec spec;
    spec.stream = std::string("pipe_") + cfg.name;
    spec.endpoint = EndpointSpec{&sim, rank, evpath::Location{0, rank}};
    spec.method = stream_method(cfg.method_params);
    auto writer = rt.open_writer(spec);
    ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
    StreamWriter& w = *writer.value();

    const Box box = adios::block_decompose(global, cfg.writers, rank, 0);
    std::vector<double> field(box.elements());
    const std::uint64_t nparticles = 5 + static_cast<std::uint64_t>(rank);
    std::vector<double> particles(nparticles * 7);

    for (int step = 0; step < cfg.steps; ++step) {
      // Field value encodes (step, global row, global col).
      std::size_t i = 0;
      for (std::uint64_t r = 0; r < box.count[0]; ++r) {
        for (std::uint64_t c = 0; c < box.count[1]; ++c) {
          field[i++] = step * 1e6 + (box.offset[0] + r) * 1e3 +
                       (box.offset[1] + c);
        }
      }
      for (std::size_t p = 0; p < particles.size(); ++p) {
        particles[p] = rank * 1e4 + step * 1e2 + static_cast<double>(p);
      }
      ASSERT_TRUE(w.begin_step(step).is_ok());
      ASSERT_TRUE(w.write(adios::global_array_var("field", DataType::kDouble,
                                                  global, box),
                          as_bytes_view(std::span<const double>(field)))
                      .is_ok());
      ASSERT_TRUE(
          w.write(adios::local_array_var("particles", DataType::kDouble,
                                         {nparticles, 7}),
                  as_bytes_view(std::span<const double>(particles)))
              .is_ok());
      ASSERT_TRUE(w.write_scalar("time", step * 0.5).is_ok());
      const Status st = w.end_step();
      ASSERT_TRUE(st.is_ok()) << st.to_string();
    }
    ASSERT_TRUE(w.close().is_ok());
  };

  auto reader_fn = [&](int rank) {
    StreamSpec spec;
    spec.stream = std::string("pipe_") + cfg.name;
    spec.endpoint = EndpointSpec{
        &viz, rank,
        evpath::Location{cfg.writers_remote ? 7 : 0, 100 + rank}};
    spec.method = stream_method(cfg.method_params);
    auto reader = rt.open_reader(spec);
    ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
    StreamReader& r = *reader.value();
    EXPECT_EQ(r.num_writers(), cfg.writers);

    const Box sel = adios::block_decompose(global, cfg.readers, rank, 1);
    std::vector<double> out(sel.elements());
    int steps_seen = 0;
    for (;;) {
      auto step = r.begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      ASSERT_EQ(step.value(), steps_seen);
      std::fill(out.begin(), out.end(), -1.0);
      ASSERT_TRUE(r.schedule_read("field", sel,
                                  MutableByteView(std::as_writable_bytes(
                                      std::span<double>(out))))
                      .is_ok());
      // Round-robin process groups across readers.
      for (int w = rank; w < cfg.writers; w += cfg.readers) {
        ASSERT_TRUE(r.schedule_read_pg(w).is_ok());
      }
      const Status st = r.perform_reads();
      ASSERT_TRUE(st.is_ok()) << st.to_string();

      // Verify the field selection.
      std::size_t i = 0;
      for (std::uint64_t row = 0; row < sel.count[0]; ++row) {
        for (std::uint64_t col = 0; col < sel.count[1]; ++col) {
          ASSERT_DOUBLE_EQ(out[i++],
                           step.value() * 1e6 + (sel.offset[0] + row) * 1e3 +
                               (sel.offset[1] + col));
        }
      }
      // Verify the process groups.
      int expected_pgs = 0;
      for (int w = rank; w < cfg.writers; w += cfg.readers) ++expected_pgs;
      ASSERT_EQ(r.pg_blocks().size(), static_cast<std::size_t>(expected_pgs));
      for (const PgBlock& block : r.pg_blocks()) {
        const auto n = 5 + static_cast<std::uint64_t>(block.writer_rank);
        ASSERT_EQ(block.meta.block.count[0], n);
        const auto* vals =
            reinterpret_cast<const double*>(block.payload.data());
        for (std::uint64_t p = 0; p < n * 7; ++p) {
          ASSERT_DOUBLE_EQ(vals[p], block.writer_rank * 1e4 +
                                        step.value() * 1e2 +
                                        static_cast<double>(p));
        }
      }
      // Scalars ride the announce; with caching they refresh on step 0 only.
      auto time = r.scalar_double("time");
      ASSERT_TRUE(time.is_ok());
      ASSERT_TRUE(r.end_step().is_ok());
      ++steps_seen;
    }
    EXPECT_EQ(steps_seen, cfg.steps);
    ASSERT_TRUE(r.writer_report().has_value());
    EXPECT_EQ(r.writer_report()->steps, static_cast<std::uint64_t>(cfg.steps));
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < cfg.writers; ++w) {
    threads.emplace_back([&, w] { writer_fn(w); });
  }
  for (int r = 0; r < cfg.readers; ++r) {
    threads.emplace_back([&, r] { reader_fn(r); });
  }
  for (auto& t : threads) t.join();
}

class PipelineTest : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(PipelineTest, EndToEnd) { run_pipeline(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Modes, PipelineTest,
    ::testing::Values(
        PipelineConfig{3, 2, 3, "caching=none", false, "none_shm"},
        PipelineConfig{3, 2, 3, "caching=local", false, "local_shm"},
        PipelineConfig{3, 2, 4, "caching=all", false, "all_shm"},
        PipelineConfig{3, 2, 3, "caching=all; batching=yes; async=yes", false,
                       "tuned_shm"},
        PipelineConfig{3, 2, 3, "caching=none; batching=yes", true,
                       "batched_rdma"},
        PipelineConfig{2, 2, 3, "caching=all; async=yes", true, "all_rdma"},
        PipelineConfig{1, 1, 2, "caching=none", false, "minimal"},
        PipelineConfig{4, 1, 2, "caching=local; batching=yes", false,
                       "fan_in"},
        PipelineConfig{1, 3, 2, "caching=none", true, "fan_out"}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

TEST(PipelineModesTest, CachingSkipsHandshakes) {
  // Run a caching=all pipeline and confirm the writer-side report shows
  // exactly one performed handshake and the rest skipped.
  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  const int kSteps = 5;
  std::optional<wire::MonitorReport> report;

  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "cachetest";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = stream_method("caching=all");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data(8, 1.0);
    for (int s = 0; s < kSteps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("v", DataType::kDouble,
                                                      {8}, Box{{0}, {8}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "cachetest";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = stream_method("caching=all");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> out(8);
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()
                      ->schedule_read("v", Box{{0}, {8}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(out))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_TRUE(r.value()->end_step().is_ok());
    }
    report = r.value()->writer_report();
  });
  writer.join();
  reader.join();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->handshakes_performed, 1u);
  EXPECT_EQ(report->handshakes_skipped, static_cast<std::uint64_t>(kSteps - 1));
}

TEST(PipelineModesTest, PlanCacheFollowsHandshakeRefresh) {
  // The cached send/receive plan must be rebuilt whenever the handshake
  // re-exchanges and reused when it is skipped: caching=none refreshes the
  // handshake every step (all misses), caching=all exchanges once and then
  // runs every later step off the cached plan (hits on both sides).
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  auto run_steps = [&](const char* params, const char* stream, int steps) {
    Runtime rt;
    Program sim("sim", 1);
    Program viz("viz", 1);
    std::thread writer([&] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
      spec.method = stream_method(params);
      auto w = rt.open_writer(spec);
      ASSERT_TRUE(w.is_ok());
      std::vector<double> data(16, 2.0);
      for (int s = 0; s < steps; ++s) {
        ASSERT_TRUE(w.value()->begin_step(s).is_ok());
        ASSERT_TRUE(w.value()
                        ->write(adios::global_array_var(
                                    "v", DataType::kDouble, {16}, Box{{0}, {16}}),
                                as_bytes_view(std::span<const double>(data)))
                        .is_ok());
        ASSERT_TRUE(w.value()->end_step().is_ok());
      }
      ASSERT_TRUE(w.value()->close().is_ok());
    });
    std::thread reader([&] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
      spec.method = stream_method(params);
      auto r = rt.open_reader(spec);
      ASSERT_TRUE(r.is_ok());
      std::vector<double> out(16);
      for (;;) {
        auto step = r.value()->begin_step();
        if (step.status().code() == ErrorCode::kEndOfStream) break;
        ASSERT_TRUE(step.is_ok());
        ASSERT_TRUE(r.value()
                        ->schedule_read("v", Box{{0}, {16}},
                                        MutableByteView(std::as_writable_bytes(
                                            std::span<double>(out))))
                        .is_ok());
        ASSERT_TRUE(r.value()->perform_reads().is_ok());
        ASSERT_TRUE(r.value()->end_step().is_ok());
      }
    });
    writer.join();
    reader.join();
  };
  metrics::Counter& hits = metrics::counter("flexio.plan.cache_hits");
  metrics::Counter& misses = metrics::counter("flexio.plan.cache_misses");
  const int kSteps = 4;

  std::uint64_t hits0 = hits.value(), misses0 = misses.value();
  run_steps("caching=none", "plancache_none", kSteps);
  // Every step re-exchanged the handshake: no reuse on either side.
  EXPECT_EQ(hits.value() - hits0, 0u);
  EXPECT_EQ(misses.value() - misses0, static_cast<std::uint64_t>(2 * kSteps));

  hits0 = hits.value();
  misses0 = misses.value();
  run_steps("caching=all", "plancache_all", kSteps);
  // One exchange at step 0 (a miss on each side); the rest reuse the plan.
  EXPECT_EQ(misses.value() - misses0, 2u);
  EXPECT_EQ(hits.value() - hits0,
            static_cast<std::uint64_t>(2 * (kSteps - 1)));
  metrics::set_enabled(was);
}

TEST(PipelineModesTest, WholeBlockPiecesMoveZeroCopy) {
  // Acceptance gate for the scatter-gather send path: with batching and
  // caching=all, a process-group (whole-block) piece must reach the
  // transport without any payload memcpy after end_step -- the pack kernel
  // never runs (flexio.pack.memcpy_runs flat), the wire layer borrows the
  // buffered payload instead of flattening (flexio.wire.copies_avoided
  // advances), and the send plan comes from cache after step 0.
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  metrics::Counter& pack_runs = metrics::counter("flexio.pack.memcpy_runs");
  metrics::Counter& avoided = metrics::counter("flexio.wire.copies_avoided");
  metrics::Counter& hits = metrics::counter("flexio.plan.cache_hits");
  const std::uint64_t pack0 = pack_runs.value();
  const std::uint64_t avoided0 = avoided.value();
  const std::uint64_t hits0 = hits.value();

  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  const int kSteps = 3;
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "zerocopy_pg";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = stream_method("caching=all; batching=yes");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> particles(9 * 4, 1.5);
    for (int s = 0; s < kSteps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::local_array_var("particles",
                                                     DataType::kDouble, {9, 4}),
                              as_bytes_view(std::span<const double>(particles)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "zerocopy_pg";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = stream_method("caching=all; batching=yes");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    int steps_seen = 0;
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()->schedule_read_pg(0).is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_EQ(r.value()->pg_blocks().size(), 1u);
      const PgBlock& block = r.value()->pg_blocks()[0];
      ASSERT_EQ(block.payload.size(), 9 * 4 * sizeof(double));
      EXPECT_DOUBLE_EQ(
          reinterpret_cast<const double*>(block.payload.data())[0], 1.5);
      ASSERT_TRUE(r.value()->end_step().is_ok());
      ++steps_seen;
    }
    EXPECT_EQ(steps_seen, kSteps);
  });
  writer.join();
  reader.join();

  // No strided pack ran anywhere in the step loop...
  EXPECT_EQ(pack_runs.value() - pack0, 0u);
  // ...every batched data message was gathered natively by the transport...
  EXPECT_GE(avoided.value() - avoided0, static_cast<std::uint64_t>(kSteps));
  // ...and steps after the first ran off the cached plan.
  EXPECT_GT(hits.value() - hits0, 0u);
  metrics::set_enabled(was);
}

TEST(PipelineModesTest, WriterSidePluginFiltersParticles) {
  // A hand-rolled plug-in compiler standing in for CoD: the "source" is a
  // threshold; the plug-in keeps particle rows whose first attribute is
  // above it (the paper's range-query example, run inside the simulation's
  // address space).
  Runtime rt;
  rt.set_plugin_compiler([](const std::string& source) -> StatusOr<PluginFn> {
    double threshold = 0;
    if (!flexio::parse_double(source, &threshold)) {
      return make_error(ErrorCode::kInvalidArgument, "bad plugin source");
    }
    return PluginFn([threshold](const wire::DataPiece& in)
                        -> StatusOr<wire::DataPiece> {
      const auto cols = in.meta.block.count[1];
      const auto* vals = reinterpret_cast<const double*>(in.payload.data());
      std::vector<double> kept;
      for (std::uint64_t row = 0; row < in.meta.block.count[0]; ++row) {
        if (vals[row * cols] > threshold) {
          kept.insert(kept.end(), vals + row * cols, vals + (row + 1) * cols);
        }
      }
      wire::DataPiece out = in;
      out.meta.block.count[0] = kept.size() / cols;
      out.region = out.meta.block;
      out.payload.resize(kept.size() * sizeof(double));
      std::memcpy(out.payload.data(), kept.data(), out.payload.size());
      return out;
    });
  });

  Program sim("sim", 1);
  Program viz("viz", 1);
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "plugtest";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = stream_method("caching=none");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    // 6 particles, first attribute 0..5.
    std::vector<double> particles(6 * 2);
    for (int p = 0; p < 6; ++p) {
      particles[static_cast<std::size_t>(p) * 2] = p;
      particles[static_cast<std::size_t>(p) * 2 + 1] = 100.0 + p;
    }
    ASSERT_TRUE(w.value()->begin_step(0).is_ok());
    ASSERT_TRUE(
        w.value()
            ->write(adios::local_array_var("zion", DataType::kDouble, {6, 2}),
                    as_bytes_view(std::span<const double>(particles)))
            .is_ok());
    ASSERT_TRUE(w.value()->end_step().is_ok());
    ASSERT_TRUE(w.value()->close().is_ok());
    // The plug-in ran inside the writer's address space.
    EXPECT_EQ(w.value()->monitor().count("plugin.pieces"), 1u);
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "plugtest";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = stream_method("caching=none");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    ASSERT_TRUE(
        r.value()->install_plugin("zion", "2.5", /*run_at_writer=*/true)
            .is_ok());
    auto step = r.value()->begin_step();
    ASSERT_TRUE(step.is_ok());
    ASSERT_TRUE(r.value()->schedule_read_pg(0).is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    ASSERT_EQ(r.value()->pg_blocks().size(), 1u);
    const PgBlock& block = r.value()->pg_blocks()[0];
    // Particles 3,4,5 survive the >2.5 filter.
    ASSERT_EQ(block.meta.block.count[0], 3u);
    const auto* vals = reinterpret_cast<const double*>(block.payload.data());
    EXPECT_DOUBLE_EQ(vals[0], 3.0);
    EXPECT_DOUBLE_EQ(vals[1], 103.0);
    ASSERT_TRUE(r.value()->end_step().is_ok());
    while (r.value()->begin_step().status().code() !=
           ErrorCode::kEndOfStream) {
    }
  });
  writer.join();
  reader.join();
}

TEST(FileModeTest, SameApiThroughBpFiles) {
  // The one-line switch: identical application logic, method "BP" instead
  // of "FLEXIO". Writer finishes first (offline semantics), reader follows.
  const std::string dir = ::testing::TempDir() + "/flexio_filemode";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Runtime rt;
  Program sim("sim", 2);
  Program viz("viz", 1);
  const Dims global{8, 4};

  run_ranks(2, [&](int rank) {
    StreamSpec spec;
    spec.stream = "offline";
    spec.endpoint = EndpointSpec{&sim, rank, evpath::Location{0, rank}};
    spec.method.method = "BP";
    spec.file_dir = dir;
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok()) << w.status().to_string();
    const Box box = adios::block_decompose(global, 2, rank, 0);
    std::vector<double> data(box.elements());
    for (int s = 0; s < 2; ++s) {
      std::iota(data.begin(), data.end(), s * 100.0 + rank * 10.0);
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("g", DataType::kDouble,
                                                      global, box),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->write_scalar("step_time", s * 1.5).is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });

  StreamSpec spec;
  spec.stream = "offline";
  spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{1, 0}};
  spec.method.method = "BP";
  spec.file_dir = dir;
  auto r = rt.open_reader(spec);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(r.value()->file_mode());
  EXPECT_EQ(r.value()->num_writers(), 2);
  int steps = 0;
  std::vector<double> out(adios::volume(global));
  for (;;) {
    auto step = r.value()->begin_step();
    if (step.status().code() == ErrorCode::kEndOfStream) break;
    ASSERT_TRUE(step.is_ok());
    ASSERT_TRUE(r.value()
                    ->schedule_read("g", Box{{0, 0}, global},
                                    MutableByteView(std::as_writable_bytes(
                                        std::span<double>(out))))
                    .is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    EXPECT_DOUBLE_EQ(out[0], step.value() * 100.0);
    auto t = r.value()->scalar_double("step_time");
    ASSERT_TRUE(t.is_ok());
    EXPECT_DOUBLE_EQ(t.value(), step.value() * 1.5);
    ASSERT_TRUE(r.value()->end_step().is_ok());
    ++steps;
  }
  EXPECT_EQ(steps, 2);
  std::filesystem::remove_all(dir);
}

TEST(StreamApiTest, SequencingErrorsSurfaced) {
  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "seq";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = stream_method("caching=none");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> d(4, 0.0);
    const auto meta =
        adios::global_array_var("x", DataType::kDouble, {4}, Box{{0}, {4}});
    // Write before begin_step.
    EXPECT_FALSE(
        w.value()
            ->write(meta, as_bytes_view(std::span<const double>(d)))
            .is_ok());
    EXPECT_FALSE(w.value()->end_step().is_ok());
    ASSERT_TRUE(w.value()->begin_step(0).is_ok());
    EXPECT_FALSE(w.value()->begin_step(1).is_ok());  // nested
    EXPECT_FALSE(w.value()->close().is_ok());        // open step
    ASSERT_TRUE(w.value()
                    ->write(meta, as_bytes_view(std::span<const double>(d)))
                    .is_ok());
    ASSERT_TRUE(w.value()->end_step().is_ok());
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "seq";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = stream_method("caching=none");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> out(4);
    auto dst = MutableByteView(std::as_writable_bytes(std::span<double>(out)));
    // Reads outside a step.
    EXPECT_FALSE(r.value()->schedule_read("x", Box{{0}, {4}}, dst).is_ok());
    EXPECT_FALSE(r.value()->perform_reads().is_ok());
    auto step = r.value()->begin_step();
    ASSERT_TRUE(step.is_ok());
    // Unknown variable.
    EXPECT_EQ(
        r.value()->schedule_read("ghost", Box{{0}, {4}}, dst).code(),
        ErrorCode::kNotFound);
    // Wrong buffer size.
    EXPECT_EQ(r.value()
                  ->schedule_read("x", Box{{0}, {4}}, dst.subspan(0, 8))
                  .code(),
              ErrorCode::kInvalidArgument);
    // Bad pg rank.
    EXPECT_EQ(r.value()->schedule_read_pg(99).code(), ErrorCode::kOutOfRange);
    ASSERT_TRUE(r.value()->schedule_read("x", Box{{0}, {4}}, dst).is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    ASSERT_TRUE(r.value()->end_step().is_ok());
    EXPECT_EQ(r.value()->begin_step().status().code(),
              ErrorCode::kEndOfStream);
    // Sticky EOS.
    EXPECT_EQ(r.value()->begin_step().status().code(),
              ErrorCode::kEndOfStream);
  });
  writer.join();
  reader.join();
}

TEST(MonitorTest, MetricsAccumulate) {
  PerfMonitor m;
  m.record_time("phase.a", 0.5);
  m.record_time("phase.a", 1.5);
  m.add_count("bytes", 100);
  m.add_count("bytes", 50);
  EXPECT_EQ(m.time_stats("phase.a").count(), 2u);
  EXPECT_DOUBLE_EQ(m.total_time("phase.a"), 2.0);
  EXPECT_EQ(m.count("bytes"), 150u);
  EXPECT_EQ(m.count("missing"), 0u);
  EXPECT_NE(m.report().find("phase.a"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/monitor.csv";
  ASSERT_TRUE(m.dump_csv(path).is_ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "metric,kind,count,total,mean,min,max");
}

}  // namespace
}  // namespace flexio
