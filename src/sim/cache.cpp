#include "sim/cache.h"

#include <algorithm>
#include <cmath>

namespace flexio::sim {

double effective_l3(double l3_bytes, double own_ws_bytes,
                    double corunner_ws_bytes) {
  FLEXIO_CHECK(l3_bytes > 0);
  if (own_ws_bytes <= 0) return l3_bytes;
  const double total_demand = own_ws_bytes + corunner_ws_bytes;
  if (total_demand <= l3_bytes) {
    // Everything fits: each workload keeps its full working set resident.
    return l3_bytes - corunner_ws_bytes;
  }
  // Demand exceeds capacity: LRU approximately partitions by demand share.
  return l3_bytes * own_ws_bytes / total_demand;
}

double inflated_mpki(const CacheWorkload& w, double effective_l3_bytes) {
  FLEXIO_CHECK(effective_l3_bytes > 0);
  if (w.working_set_bytes <= effective_l3_bytes) return w.base_mpki;
  constexpr double kAlpha = 0.5;  // sqrt miss-curve law
  return w.base_mpki *
         std::pow(w.working_set_bytes / effective_l3_bytes, kAlpha);
}

double slowdown_factor(const CacheWorkload& w, double new_mpki) {
  if (w.base_mpki <= 0) return 1.0;
  const double miss_ratio = new_mpki / w.base_mpki;
  return 1.0 + w.mem_sensitivity * (miss_ratio - 1.0);
}

double corun_slowdown(const CacheWorkload& w, double l3_bytes,
                      double corunner_ws_bytes) {
  const double eff = effective_l3(l3_bytes, w.working_set_bytes,
                                  corunner_ws_bytes);
  return slowdown_factor(w, inflated_mpki(w, std::max(eff, 1.0)));
}

}  // namespace flexio::sim
