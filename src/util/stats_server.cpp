#include "util/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/flight_recorder.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/watchdog.h"

namespace flexio::telemetry {

namespace {

metrics::Counter& scrapes_counter() {
  static metrics::Counter& c = metrics::counter("flexio.telemetry.scrapes");
  return c;
}

std::atomic<bool> g_publish{false};

/// Split "host:port"; empty host means loopback.
Status parse_addr(const std::string& addr, std::string* host,
                  std::uint16_t* port) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return make_error(ErrorCode::kInvalidArgument,
                      "stats addr must be host:port, got: " + addr);
  }
  *host = addr.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  const std::string port_str = addr.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || p < 0 || p > 65535) {
    return make_error(ErrorCode::kInvalidArgument,
                      "bad stats port: " + port_str);
  }
  *port = static_cast<std::uint16_t>(p);
  return Status::ok();
}

/// Read until `stop` or EOF, with a small poll timeout per round.
bool read_all(int fd, std::string* out, int timeout_ms) {
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;  // EOF
    out->append(buf, static_cast<std::size_t>(n));
    if (out->size() > (1u << 24)) return false;  // runaway peer
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int code, const std::string& body) {
  const char* reason = code == 200 ? "OK" : "Not Found";
  return str_format("HTTP/1.0 %d %s\r\nContent-Type: text/plain\r\n"
                    "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                    code, reason, body.size()) +
         body;
}

}  // namespace

StatsServer::~StatsServer() { stop(); }

Status StatsServer::start(const std::string& addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_.load(std::memory_order_relaxed)) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "stats server already running on " + address_);
  }
  std::string host;
  std::uint16_t port = 0;
  if (Status s = parse_addr(addr, &host, &port); !s.is_ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    ::close(fd);
    return make_error(ErrorCode::kInvalidArgument,
                      "bad stats host (IPv4 literal expected): " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return make_error(ErrorCode::kInternal, "bind " + addr + ": " + err);
  }
  socklen_t len = sizeof(sin);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len);
  char host_buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &sin.sin_addr, host_buf, sizeof(host_buf));
  address_ = str_format("%s:%u", host_buf,
                        static_cast<unsigned>(ntohs(sin.sin_port)));
  listen_fd_ = fd;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve(); });
  FLEXIO_LOG(kInfo) << "stats server listening on " << address_;
  return Status::ok();
}

void StatsServer::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_relaxed)) return;
    running_.store(false, std::memory_order_relaxed);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

std::string StatsServer::address() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return address_;
}

void StatsServer::add_source(const std::string& path,
                             std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  sources_[path] = std::move(fn);
}

void StatsServer::set_watchdog(Watchdog* watchdog) {
  std::lock_guard<std::mutex> lock(mutex_);
  watchdog_ = watchdog;
}

void StatsServer::serve() {
  for (;;) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fd = listen_fd_;
    }
    if (fd < 0) return;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    // Read the request line; one GET per connection.
    std::string req;
    char buf[1024];
    while (req.find("\r\n") == std::string::npos && req.size() < 8192) {
      pollfd pfd{conn, POLLIN, 0};
      if (::poll(&pfd, 1, 2000) <= 0) break;
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    std::string path = "/";
    if (req.compare(0, 4, "GET ") == 0) {
      const auto sp = req.find(' ', 4);
      path = req.substr(4, sp == std::string::npos ? req.find("\r\n") - 4
                                                   : sp - 4);
    }
    const std::string response = respond(path);
    write_all(conn, response);
    ::close(conn);
    if (!running_.load(std::memory_order_relaxed)) return;
  }
}

std::string StatsServer::respond(const std::string& path) {
  scrapes_counter().inc();
  if (path == "/metrics" || path == "/") {
    return http_response(200, metrics::expose_text());
  }
  if (path == "/health") {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (watchdog_ != nullptr) body = watchdog_->events_json();
    }
    return http_response(200, body);
  }
  if (path == "/flight") {
    std::string body;
    for (const std::string& line : flight::tail(256)) {
      body += line;
      body += "\n";
    }
    return http_response(200, body);
  }
  std::function<std::string()> fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = sources_.find(path); it != sources_.end()) {
      fn = it->second;
    }
  }
  if (fn) return http_response(200, fn());
  return http_response(404, "no such route: " + path + "\n");
}

Status scrape(const std::string& addr, const std::string& path,
              std::string* body) {
  std::string host;
  std::uint16_t port = 0;
  if (Status s = parse_addr(addr, &host, &port); !s.is_ok()) return s;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    ::close(fd);
    return make_error(ErrorCode::kInvalidArgument, "bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return make_error(ErrorCode::kUnavailable,
                      "connect " + addr + ": " + err);
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!write_all(fd, request)) {
    ::close(fd);
    return make_error(ErrorCode::kUnavailable, "scrape send failed");
  }
  std::string response;
  const bool ok = read_all(fd, &response, 5000);
  ::close(fd);
  if (!ok) {
    return make_error(ErrorCode::kUnavailable, "scrape read failed");
  }
  const auto header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return make_error(ErrorCode::kInternal, "malformed scrape response");
  }
  if (response.compare(0, 12, "HTTP/1.0 200") != 0) {
    return make_error(ErrorCode::kNotFound,
                      "scrape status: " + response.substr(0, 12));
  }
  *body = response.substr(header_end + 4);
  return Status::ok();
}

bool publish_enabled() {
  return g_publish.load(std::memory_order_relaxed);
}

void set_publish_enabled(bool on) {
  g_publish.store(on, std::memory_order_relaxed);
}

StatsServer& global_server() {
  static StatsServer* server = new StatsServer;  // leaked: scraped at exit
  return *server;
}

StatsServer& configure(const std::string& stats_addr, bool publish) {
  StatsServer& server = global_server();
  if (publish) set_publish_enabled(true);
  const char* env = std::getenv("FLEXIO_STATS_ADDR");
  const std::string addr = env != nullptr && *env != '\0'
                               ? std::string(env)
                               : stats_addr;
  if (!addr.empty() && !server.running()) {
    if (Status s = server.start(addr); !s.is_ok()) {
      FLEXIO_LOG(kWarn) << "stats server disabled: " << s.message();
    } else {
      set_publish_enabled(true);  // serving implies publishing
    }
  }
  return server;
}

}  // namespace flexio::telemetry
