// Torture tests: the full writer/reader runtime under the stress driver's
// caching x sync/async x placement matrix, plus seed-driven random fault
// injection with byte-for-byte replay. A failing seeded run prints the seed
// and fault plan; re-running with FLEXIO_TORTURE_SEED=<seed> reproduces the
// identical decision log.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "harness/fault_plan.h"
#include "harness/stress_driver.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"

namespace flexio::torture {
namespace {

constexpr std::uint64_t kDefaultSeed = 0x20260806ULL;

/// Seed override for replaying a failure printed by a previous run.
std::uint64_t torture_seed() {
  const char* env = std::getenv("FLEXIO_TORTURE_SEED");
  if (env == nullptr || *env == '\0') return kDefaultSeed;
  // Reject garbage loudly: a mistyped replay seed silently parsing to 0
  // would "not reproduce" the failure the user is chasing.
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') {
    ADD_FAILURE() << "FLEXIO_TORTURE_SEED must be an integer, got \"" << env
                  << "\"";
    return kDefaultSeed;
  }
  return seed;
}

// ------------------------------------------------ fault-plan unit tests --

TEST(FaultPlanTest, ScriptRoundTrips) {
  const std::string script =
      "fail putmsg nth=3 times=2 to=*viz.0* code=timeout\n"
      "drop get nth=1 from=*sim*\n"
      "delay put nth=5 delay_us=250\n"
      "dup putmsg nth=2\n";
  auto plan = FaultPlan::parse(script);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan.value().script(), script);
  // Reparse of the canonical form is identical again.
  auto again = FaultPlan::parse(plan.value().script());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().script(), script);
}

TEST(FaultPlanTest, CommentsAndBlanksIgnored) {
  auto plan = FaultPlan::parse("# header\n\n  fail get nth=1  # trailing\n");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().script(), "fail get nth=1 code=unavailable\n");
}

TEST(FaultPlanTest, MalformedScriptsRejected) {
  EXPECT_EQ(FaultPlan::parse("fail").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("explode putmsg").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("fail warp nth=1").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("fail get nth=0").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("fail get nth=1 code=sideways").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::parse("fail get nth=1 bogus=1").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(FaultPlanTest, GlobMatch) {
  EXPECT_TRUE(glob_match("", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*viz.0*", "pipe|viz.0>pipe|sim.0:tx"));
  EXPECT_TRUE(glob_match("a*c", "abc"));
  EXPECT_TRUE(glob_match("a*c", "ac"));
  EXPECT_FALSE(glob_match("a*c", "ab"));
  EXPECT_TRUE(glob_match("*:rx", "x>y:rx"));
  EXPECT_FALSE(glob_match("*:rx", "x>y:tx"));
}

TEST(FaultPlanTest, NicNameNormalization) {
  EXPECT_EQ(normalize_nic_name("a>b#17:tx"), "a>b:tx");
  EXPECT_EQ(normalize_nic_name("a>b#9:rx"), "a>b:rx");
  EXPECT_EQ(normalize_nic_name("plain"), "plain");
  EXPECT_EQ(normalize_nic_name("odd#tag"), "odd#tag");  // no digits: kept
}

TEST(FaultPlanTest, NthRuleFiresOnExactOccurrencePerPair) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kFail;
  rule.op = nnti::Op::kPutMessage;
  rule.nth = 2;
  rule.code = ErrorCode::kUnavailable;
  plan.add(rule);
  auto hook = plan.hook();
  // Occurrences count per (local, peer) pair, so a second pair has its own
  // counter; the "#id" suffix is normalized away.
  EXPECT_TRUE(hook(nnti::Op::kPutMessage, "a#1:tx", "b").status.is_ok());
  EXPECT_FALSE(hook(nnti::Op::kPutMessage, "a#2:tx", "b").status.is_ok());
  EXPECT_TRUE(hook(nnti::Op::kPutMessage, "a#3:tx", "b").status.is_ok());
  EXPECT_TRUE(hook(nnti::Op::kPutMessage, "c", "d").status.is_ok());
  EXPECT_FALSE(hook(nnti::Op::kPutMessage, "c", "d").status.is_ok());
  // Different op: separate counter, rule does not apply.
  EXPECT_TRUE(hook(nnti::Op::kGet, "a:tx", "b").status.is_ok());
  EXPECT_EQ(plan.faults_fired(), 2u);
  EXPECT_EQ(plan.log().size(), 2u);
}

TEST(FaultPlanTest, RandomPlanIsStatelessAcrossInterleavings) {
  RandomProfile profile;
  profile.fail_prob = 0.2;
  profile.delay_prob = 0.1;
  profile.dup_prob = 0.1;
  FaultPlan a = FaultPlan::random(42, profile);
  FaultPlan b = FaultPlan::random(42, profile);
  auto ha = a.hook();
  auto hb = b.hook();
  // Feed the same per-pair op sequences in different global orders; the
  // decision logs must agree in canonical form.
  for (int i = 0; i < 200; ++i) {
    ha(nnti::Op::kPutMessage, "x:tx", "y:rx");
    ha(nnti::Op::kGet, "p:tx", "q:rx");
  }
  for (int i = 0; i < 200; ++i) hb(nnti::Op::kGet, "p:tx", "q:rx");
  for (int i = 0; i < 200; ++i) hb(nnti::Op::kPutMessage, "x:tx", "y:rx");
  EXPECT_EQ(a.log().canonical(), b.log().canonical());
  EXPECT_EQ(a.log().fingerprint(), b.log().fingerprint());
  EXPECT_GT(a.log().size(), 0u);  // p=0.2 over 400 draws: fires w.p. ~1
}

TEST(FaultPlanTest, ConsecutiveRandomFailuresCapped) {
  RandomProfile profile;
  profile.fail_prob = 1.0;  // every draw wants to fail...
  profile.max_consecutive_fails = 2;
  FaultPlan plan = FaultPlan::random(7, profile);
  auto hook = plan.hook();
  int longest = 0, run = 0;
  for (int i = 0; i < 50; ++i) {
    if (!hook(nnti::Op::kPut, "a:tx", "b:rx").status.is_ok()) {
      run++;
      longest = std::max(longest, run);
    } else {
      run = 0;
    }
  }
  // ...but the cap guarantees every 3rd occurrence succeeds, keeping the
  // transport's retry budget (max_retries=3) sufficient.
  EXPECT_EQ(longest, 2);
}

// ------------------------------------------------- clean stress matrix --

class StressMatrixTest : public ::testing::TestWithParam<StressConfig> {};

TEST_P(StressMatrixTest, DeliversAndVerifies) {
  StressConfig cfg = GetParam();
  cfg.stream = "matrix_" + cfg.label();
  if (cfg.placement == PlacementMode::kFile) {
    cfg.file_dir = ::testing::TempDir() + "/flexio_matrix_" + cfg.label();
    std::filesystem::remove_all(cfg.file_dir);
  }
  const StressResult result = run_stress(cfg);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GT(result.elements_verified, 0u);
  if (!cfg.file_dir.empty()) std::filesystem::remove_all(cfg.file_dir);
}

std::vector<StressConfig> full_matrix() {
  std::vector<StressConfig> cfgs;
  for (const char* caching : {"none", "local", "all"}) {
    for (const bool async : {false, true}) {
      for (const PlacementMode placement :
           {PlacementMode::kShm, PlacementMode::kRdma, PlacementMode::kFile}) {
        // Pack- and read-thread axes (stream placements only: the file
        // engine never calls send_pieces or perform_reads_stream). 1 is
        // the serial baseline; higher counts drive the writer pack pool
        // and the reader unpack pool, and under TSan the axes double as
        // the race gate for plan-cache rebuilds and per-link concurrent
        // sends with pool threads alive on both ends of the wire.
        const bool streaming = placement != PlacementMode::kFile;
        for (const int pack : streaming ? std::vector<int>{1, 2, 4}
                                        : std::vector<int>{1}) {
          for (const int read : streaming ? std::vector<int>{1, 4}
                                          : std::vector<int>{1}) {
            StressConfig cfg;
            cfg.writers = 3;
            cfg.readers = 2;
            cfg.steps = 3;
            cfg.caching = caching;
            cfg.async_writes = async;
            cfg.placement = placement;
            cfg.pack_threads = pack;
            cfg.read_threads = read;
            cfgs.push_back(cfg);
          }
        }
      }
    }
  }
  return cfgs;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, StressMatrixTest, ::testing::ValuesIn(full_matrix()),
    [](const auto& suite_info) { return suite_info.param.label(); });

// ------------------------------------------------- multiplexed streams --

/// Streams axis (DESIGN.md "Stream multiplexing"): several identical
/// pipelines run through one Runtime and multiplex over shared
/// per-(program, rank) endpoints. streams=2 exercises the demux pairing;
/// streams=8 forces the DRR drainers to rotate through many sub-queues per
/// lane with every frame contended. The solo shared_links config prices
/// the mux path with no sharing at all.
std::vector<StressConfig> mux_matrix() {
  std::vector<StressConfig> cfgs;
  for (const int streams : {2, 8}) {
    for (const PlacementMode placement :
         {PlacementMode::kShm, PlacementMode::kRdma}) {
      for (const char* caching : {"none", "all"}) {
        StressConfig cfg;
        cfg.writers = 2;
        cfg.readers = 2;
        cfg.steps = 3;
        cfg.caching = caching;
        cfg.async_writes = std::string(caching) == "all";
        cfg.placement = placement;
        cfg.streams = streams;
        cfgs.push_back(cfg);
      }
    }
  }
  StressConfig solo;
  solo.writers = 2;
  solo.readers = 2;
  solo.steps = 3;
  solo.caching = "local";
  solo.shared_links = true;
  cfgs.push_back(solo);
  return cfgs;
}

class MuxStressTest : public ::testing::TestWithParam<StressConfig> {};

TEST_P(MuxStressTest, SharedLinkStreamsDeliverIndependently) {
  StressConfig cfg = GetParam();
  cfg.stream = "mux_" + cfg.label();
  const StressResult result = run_stress(cfg);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GT(result.elements_verified, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SharedLinks, MuxStressTest, ::testing::ValuesIn(mux_matrix()),
    [](const auto& suite_info) { return suite_info.param.label(); });

// --------------------------------------------- seeded random fault runs --

RandomProfile torture_profile() {
  RandomProfile profile;
  profile.fail_prob = 0.08;   // transient failures, absorbed by retries
  profile.drop_prob = 0.05;   // get/put drops -> retryable timeouts
  profile.delay_prob = 0.10;  // scheduling jitter
  profile.dup_prob = 0.08;    // duplicated frames, absorbed by seq dedup
  profile.delay_us = 200;
  return profile;
}

StressConfig torture_config(const char* stream, const FaultPlan* plan) {
  StressConfig cfg;
  cfg.writers = 2;
  cfg.readers = 2;
  cfg.steps = 4;
  cfg.caching = "none";
  cfg.placement = PlacementMode::kRdma;  // faults only hit the fabric
  cfg.stream = stream;
  cfg.faults = plan;
  return cfg;
}

TEST(TortureTest, SeededFaultsStillDeliverEverything) {
  const std::uint64_t seed = torture_seed();
  const FaultPlan plan = FaultPlan::random(seed, torture_profile());
  const StressResult result = run_stress(torture_config("torture_rand", &plan));
  EXPECT_TRUE(result.status.is_ok())
      << result.status.to_string() << "\n"
      << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << seed
      << "\nevent log:\n"
      << plan.log().canonical();
  EXPECT_GT(result.elements_verified, 0u);
  if (seed == kDefaultSeed) {
    // The default seed is known to fire faults; an override seed may not.
    EXPECT_GT(plan.faults_fired(), 0u)
        << "default torture seed stopped exercising the fault paths";
  }
}

TEST(TortureTest, SeededRunReplaysByteForByte) {
  const std::uint64_t seed = torture_seed();
  std::string first_log;
  std::uint64_t first_fp = 0;
  for (int run = 0; run < 2; ++run) {
    const FaultPlan plan = FaultPlan::random(seed, torture_profile());
    const StressResult result =
        run_stress(torture_config("torture_replay", &plan));
    ASSERT_TRUE(result.status.is_ok())
        << "run " << run << ": " << result.status.to_string() << "\n"
        << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << seed;
    if (run == 0) {
      first_log = plan.log().canonical();
      first_fp = plan.log().fingerprint();
    } else {
      // Byte-for-byte: same seed => identical fault decisions, regardless
      // of how the rank threads happened to interleave.
      EXPECT_EQ(plan.log().canonical(), first_log)
          << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << seed;
      EXPECT_EQ(plan.log().fingerprint(), first_fp);
    }
  }
}

TEST(TortureTest, CachingAllSurvivesFaultsWithHandshakeInvariant) {
  const std::uint64_t seed = torture_seed() ^ 0xa11ULL;
  const FaultPlan plan = FaultPlan::random(seed, torture_profile());
  StressConfig cfg = torture_config("torture_caching_all", &plan);
  cfg.caching = "all";
  cfg.async_writes = true;
  const StressResult result = run_stress(cfg);
  // run_stress checks performed==1 / skipped==steps-1 internally; transport
  // retries must never leak into the handshake counters.
  EXPECT_TRUE(result.status.is_ok())
      << result.status.to_string() << "\n"
      << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << (seed)
      << "\nevent log:\n"
      << plan.log().canonical();
}

// ------------------------------------------ membership kill/respawn runs --

/// Number of seeds the kill/respawn sweep runs. CI's sanitizer jobs raise
/// this to 100; the local default keeps `ctest -L slow` under a minute.
int torture_runs() {
  const char* env = std::getenv("FLEXIO_TORTURE_RUNS");
  if (env == nullptr || *env == '\0') return 25;
  const int runs = std::atoi(env);
  return runs > 0 ? runs : 25;
}

/// Optional flight-recorder capture: when FLEXIO_FLIGHT_DIR is set the
/// membership runs leave a rotating stats log there, which CI uploads on
/// failure so a flaky kill/respawn run can be diagnosed post mortem.
class FlightCapture {
 public:
  explicit FlightCapture(const std::string& name) {
    const char* dir = std::getenv("FLEXIO_FLIGHT_DIR");
    if (dir == nullptr || *dir == '\0') return;
    std::filesystem::create_directories(dir);
    flight::Options options;
    options.path = std::string(dir) + "/" + name + ".jsonl";
    options.interval_ms = 20;
    active_ = flight::start(options).is_ok();
  }
  ~FlightCapture() {
    if (active_) flight::stop();
  }

 private:
  bool active_ = false;
};

StressConfig membership_torture_config(const StressConfig& base,
                                       const FaultPlan* plan) {
  StressConfig cfg = base;
  cfg.writers = 2;
  cfg.readers = 3;
  cfg.steps = 6;
  cfg.membership = true;
  cfg.membership_ttl_ms = 200;
  cfg.timeout_ms = 30000;
  cfg.faults = plan;
  return cfg;
}

/// Membership needs live heartbeats, so the kill matrix covers the online
/// placements of the caching x sync x placement grid (file replay has no
/// reader group to mutate).
std::vector<StressConfig> membership_matrix() {
  std::vector<StressConfig> cfgs;
  for (const char* caching : {"none", "local", "all"}) {
    for (const bool async : {false, true}) {
      for (const PlacementMode placement :
           {PlacementMode::kShm, PlacementMode::kRdma}) {
        // pool=4 runs the kill/respawn scenarios with pool tasks in
        // flight mid-step on *both* ends: a dying reader's send fails
        // inside a writer pack task while sibling tasks keep sending on
        // their own links, the epoch-driven plan rebuild happens with pool
        // threads alive between steps, and the surviving readers place
        // pieces from 4 unpack threads while membership churns. Pack and
        // read scale together (the hardest case) to keep the matrix flat.
        for (const int pool : {1, 4}) {
          StressConfig cfg;
          cfg.caching = caching;
          cfg.async_writes = async;
          cfg.placement = placement;
          cfg.pack_threads = pool;
          cfg.read_threads = pool;
          cfgs.push_back(membership_torture_config(cfg, nullptr));
        }
        // Streams axis: the same kill/respawn churn rides stream 0 while a
        // second stream shares its mux links. The sibling stream carries no
        // rank actions and must deliver every step regardless -- a crash in
        // shared mode detaches only the victim's demux inbox, so the link
        // (and everyone else on it) lives on.
        if (!async) {
          StressConfig cfg;
          cfg.caching = caching;
          cfg.placement = placement;
          cfg.streams = 2;
          cfgs.push_back(membership_torture_config(cfg, nullptr));
        }
      }
    }
  }
  return cfgs;
}

class MembershipTortureTest : public ::testing::TestWithParam<StressConfig> {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::reset_all();
  }
  void TearDown() override { metrics::set_enabled(false); }
};

TEST_P(MembershipTortureTest, KillRandomReaderMidStep) {
  const std::uint64_t seed = torture_seed();
  const FaultPlan plan = FaultPlan::random_membership(
      seed, /*readers=*/3, /*steps=*/6, /*respawn=*/true);
  StressConfig cfg = GetParam();
  cfg.stream = "member_kill_" + cfg.label();
  cfg.faults = &plan;
  FlightCapture flight("member_kill_" + cfg.label());

  const StressResult result = run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok())
      << result.status.to_string() << "\n"
      << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << seed
      << "\nevent log:\n"
      << plan.log().canonical();

  const RankAction& kill = plan.rank_actions()[0];
  const bool has_respawn = plan.rank_actions().size() > 1;
  const RankOutcome& victim = result.reader_outcomes[kill.rank];
  EXPECT_TRUE(victim.killed) << plan.banner();
  EXPECT_EQ(victim.respawned, has_respawn) << plan.banner();
  for (int r = 0; r < cfg.readers; ++r) {
    if (r == kill.rank) continue;
    EXPECT_EQ(result.reader_outcomes[r].steps_seen, cfg.steps)
        << "survivor rank " << r << "\n"
        << plan.banner();
  }
  EXPECT_EQ(metrics::counter("flexio.membership.deaths").value(), 1u);
  // Dead-reader excision never stalls the writer unboundedly: the slowest
  // step is detection (TTL) plus the confirm-loss window, well under this.
  EXPECT_LT(result.max_writer_step_seconds, 10.0) << plan.banner();
  EXPECT_GT(result.elements_verified, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    OnlineModes, MembershipTortureTest, ::testing::ValuesIn(membership_matrix()),
    [](const auto& suite_info) { return suite_info.param.label(); });

TEST(MembershipSweepTest, SeedSweepKillRespawnReplays) {
  // Many seeds, one combo: every derived kill point (any step, any of the
  // four step points, either victim rank) must excise cleanly and every
  // derived respawn must get back in. A failure prints the seed; replaying
  // it re-derives the identical plan.
  metrics::set_enabled(true);
  FlightCapture flight("member_sweep");
  const int runs = torture_runs();
  const std::uint64_t base = torture_seed();
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    const FaultPlan plan = FaultPlan::random_membership(
        seed, /*readers=*/3, /*steps=*/6, /*respawn=*/true);
    StressConfig cfg;
    cfg.caching = "local";
    cfg.placement = PlacementMode::kShm;
    cfg = membership_torture_config(cfg, &plan);
    cfg.membership_ttl_ms = 150;
    cfg.stream = "member_sweep_" + std::to_string(i);

    metrics::reset_all();
    const StressResult result = run_stress(cfg);
    ASSERT_TRUE(result.status.is_ok())
        << "sweep run " << i << ": " << result.status.to_string() << "\n"
        << plan.banner() << "\nreplay with: FLEXIO_TORTURE_SEED=" << seed
        << "\nevent log:\n"
        << plan.log().canonical();
    const RankAction& kill = plan.rank_actions()[0];
    EXPECT_TRUE(result.reader_outcomes[kill.rank].killed)
        << "seed " << seed << "\n"
        << plan.banner();
    if (plan.rank_actions().size() > 1) {
      EXPECT_TRUE(result.reader_outcomes[kill.rank].respawned)
          << "seed " << seed << "\n"
          << plan.banner();
    }
    for (int r = 0; r < cfg.readers; ++r) {
      if (r == kill.rank) continue;
      EXPECT_EQ(result.reader_outcomes[r].steps_seen, cfg.steps)
          << "seed " << seed << " survivor rank " << r;
    }
  }
  metrics::set_enabled(false);
}

}  // namespace
}  // namespace flexio::torture
