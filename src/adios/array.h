// Multi-dimensional array boxes (hyperslabs) and region copies.
//
// The workhorse of both the BP-like file reader and FlexIO's MxN global
// array re-distribution (paper Figure 3): a Box describes where a block of
// a global array sits; intersect() finds the overlap between what a writer
// wrote and what a reader asked for; copy_region() moves exactly that
// overlap between the two blocks' memory layouts (row-major, C order).
// The copier is an iterative strided kernel: per-dim strides and the two
// origin offsets are computed once, trailing dimensions that are dense in
// both layouts coalesce into a single memcpy run, and an odometer advances
// the run origins without per-run index math. Instrumented with the
// flexio.pack.{bytes,memcpy_runs} registry counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace flexio::adios {

/// Extents or coordinates, one entry per dimension. Row-major (C order):
/// the last dimension is contiguous in memory.
using Dims = std::vector<std::uint64_t>;

/// Number of elements spanned by `d` (1 for scalars / empty dims).
std::uint64_t volume(const Dims& d);

/// "[4x7x2]" - for diagnostics.
std::string dims_to_string(const Dims& d);

/// A hyperslab of a global array: offset (per-dim start) + count (extent).
struct Box {
  Dims offset;
  Dims count;

  std::size_t ndim() const { return offset.size(); }
  std::uint64_t elements() const { return volume(count); }
  bool valid() const { return offset.size() == count.size(); }

  friend bool operator==(const Box&, const Box&) = default;
};

/// Intersection of two boxes (same rank). Returns false when disjoint.
bool intersect(const Box& a, const Box& b, Box* out);

/// True when `inner` lies entirely within `outer`.
bool contains(const Box& outer, const Box& inner);

/// Copy `region` (given in *global* coordinates) from a buffer holding the
/// block `src_box` into a buffer holding the block `dst_box`. The region
/// must be contained in both boxes. `elem_size` is bytes per element.
/// Buffers are dense row-major layouts of their boxes.
void copy_region(const Box& src_box, const std::byte* src, const Box& dst_box,
                 std::byte* dst, const Box& region, std::size_t elem_size);

/// Flat element offset of global coordinate `coord` within block `box`.
std::uint64_t flat_index(const Box& box, const Dims& coord);

/// Standard block decomposition of a global array over `parts` ranks along
/// dimension `dim` (remainder spread over the first ranks). Used by tests,
/// examples, and the workload generators.
Box block_decompose(const Dims& global, int parts, int part, int dim = 0);

}  // namespace flexio::adios
