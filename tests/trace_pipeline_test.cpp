// End-to-end telemetry pipeline test: a 2-program (writer + reader)
// coupled run over the shm transport, each side tagged as its own virtual
// process, exported to per-process Chrome traces, merged, and validated --
// every reader step span must carry the writer's step id and hang under
// the matching writer end_step span, on a monotonic offset-corrected
// timeline. Also pins the per-phase latency attribution: the
// flexio.step.*.ns histograms move once per step and the shipped
// MonitorReport carries writer-side phase sums the advisor consumes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "adios/array.h"
#include "core/advisor.h"
#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/trace_merge.h"

namespace flexio {
namespace {

using adios::Box;

constexpr int kSteps = 4;
constexpr std::uint64_t kN = 1024;
constexpr std::uint32_t kWriterPid = 1;
constexpr std::uint32_t kReaderPid = 2;

std::uint64_t hist_count(
    const std::map<std::string, metrics::MetricSnapshot>& snaps,
    const std::string& name) {
  const auto it = snaps.find(name);
  return it == snaps.end() ? 0 : it->second.hist.count;
}

TEST(TracePipelineTest, MergedTimelineStitchesReaderStepsUnderWriter) {
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  trace::set_enabled(true);
  trace::reset();

  const std::string flight_path =
      (std::filesystem::temp_directory_path() /
       ("flexio_pipeline_flight." + std::to_string(::getpid()) + ".jsonl"))
          .string();
  flight::Options fopt;
  fopt.path = flight_path;
  fopt.background = false;
  ASSERT_TRUE(flight::start(fopt).is_ok());

  const auto before = metrics::snapshot_all();

  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;

  std::optional<wire::MonitorReport> writer_report;
  std::uint64_t reader_transfer_count = 0;
  std::thread reader_thread([&] {
    trace::set_thread_pid(kReaderPid);
    StreamSpec spec;
    spec.stream = "pipeline_trace";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = method;
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> dst(kN);
    for (;;) {
      auto step = r.value()->begin_step();
      if (!step.is_ok()) break;
      ASSERT_TRUE(r.value()
                      ->schedule_read("field", Box{{0}, {kN}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(dst))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_TRUE(r.value()->end_step().is_ok());
    }
    writer_report = r.value()->writer_report();
    reader_transfer_count = r.value()->monitor().count("phase.transfer_ns") +
                            r.value()->monitor().count("phase.unpack_ns");
    (void)r.value()->close();
    trace::set_thread_pid(0);
  });

  {
    trace::set_thread_pid(kWriterPid);
    StreamSpec spec;
    spec.stream = "pipeline_trace";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = method;
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data(kN, 1.0);
    const auto meta = adios::global_array_var(
        "field", serial::DataType::kDouble, {kN}, Box{{0}, {kN}});
    for (int s = 0; s < kSteps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(
          w.value()
              ->write(meta, as_bytes_view(std::span<const double>(data)))
              .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
      flight::request_sample();
      flight::maybe_sample();
    }
    ASSERT_TRUE(w.value()->close().is_ok());
    trace::set_thread_pid(0);
  }
  reader_thread.join();
  flight::stop();

  // --- per-phase attribution: each histogram moved once per step.
  const auto after = metrics::snapshot_all();
  const auto phase_delta = [&](const std::string& name) {
    return hist_count(after, name) - hist_count(before, name);
  };
  const auto steps_u = static_cast<std::uint64_t>(kSteps);
  EXPECT_EQ(phase_delta("flexio.step.pack.ns"), steps_u);
  EXPECT_EQ(phase_delta("flexio.step.enqueue.ns"), steps_u);
  EXPECT_EQ(phase_delta("flexio.step.transfer.ns"), steps_u);
  EXPECT_EQ(phase_delta("flexio.step.unpack.ns"), steps_u);
  EXPECT_EQ(phase_delta("flexio.step.total.ns"), steps_u);
  EXPECT_GT(reader_transfer_count, 0u);

  // --- the shipped MonitorReport carries writer-side phase sums, and the
  // advisor prefers them over the legacy close-time estimate.
  ASSERT_TRUE(writer_report.has_value());
  EXPECT_EQ(writer_report->phase_steps, steps_u);
  EXPECT_GT(writer_report->enqueue_ns, 0u);
  const PluginPlacementInputs in =
      inputs_from_reports(*writer_report, 1.0, 1.0, 0.0, 1e9);
  const double expected =
      static_cast<double>(writer_report->pack_ns + writer_report->enqueue_ns) *
      1e-9 / static_cast<double>(writer_report->phase_steps);
  EXPECT_DOUBLE_EQ(in.writer_headroom_seconds, expected);

  // --- the flight recorder saw the run and its lines parse.
  {
    std::ifstream in_file(flight_path);
    ASSERT_TRUE(in_file.good());
    std::string line;
    std::size_t lines = 0;
    bool saw_bytes = false;
    while (std::getline(in_file, line)) {
      auto doc = json::parse(line);
      ASSERT_TRUE(doc.is_ok()) << line;
      if (const json::Value* counters = doc.value().find("counters")) {
        if (counters->find("flexio.bytes.sent")) saw_bytes = true;
      }
      ++lines;
    }
    EXPECT_GE(lines, 2u);  // start marker + at least one delta sample
    EXPECT_TRUE(saw_bytes);
    std::remove(flight_path.c_str());
  }

  // --- merge the per-process exports and validate the stitched timeline.
  auto merged = trace::merge_traces(trace::chrome_json_for(kWriterPid),
                                    trace::chrome_json_for(kReaderPid));
  trace::set_enabled(false);
  metrics::set_enabled(metrics_was);
  ASSERT_TRUE(merged.is_ok());
  // Same OS clock on both sides: the estimated offset is bounded by the
  // one-way frame latency. The slack absorbs that estimation bias on slow
  // (sanitizer) builds; monotonicity is checked exactly regardless.
  ASSERT_TRUE(merged.value().validate(/*slack_us=*/1e5).is_ok());
  EXPECT_GT(merged.value().clock_pairs_a, 0u);
  EXPECT_GT(merged.value().clock_pairs_b, 0u);

  std::map<std::uint64_t, const trace::MergedEvent*> by_id;
  for (const trace::MergedEvent& e : merged.value().events) {
    if (e.id != 0) by_id[e.id] = &e;
  }
  std::map<std::int64_t, int> reader_steps_seen;
  int writer_steps = 0;
  for (const trace::MergedEvent& e : merged.value().events) {
    if (e.name == "writer.end_step") {
      EXPECT_EQ(e.pid, kWriterPid);
      EXPECT_GE(e.step, 0);
      ++writer_steps;
    }
    if (e.name != "reader.perform_reads" && e.name != "reader.end_step") {
      continue;
    }
    // Every reader step span carries the writer's step id and is parented
    // under the matching writer end_step span.
    EXPECT_EQ(e.pid, kReaderPid);
    ASSERT_GE(e.step, 0) << e.name;
    ASSERT_NE(e.peer, 0u) << e.name << " step " << e.step;
    const auto it = by_id.find(e.peer);
    ASSERT_NE(it, by_id.end());
    EXPECT_STREQ(it->second->name.c_str(), "writer.end_step");
    EXPECT_EQ(it->second->step, e.step);
    EXPECT_EQ(it->second->pid, kWriterPid);
    EXPECT_EQ(e.parent, e.peer);  // stitched as the cross-process parent
    if (e.name == "reader.perform_reads") ++reader_steps_seen[e.step];
  }
  EXPECT_EQ(writer_steps, kSteps);
  EXPECT_EQ(reader_steps_seen.size(), static_cast<std::size_t>(kSteps));
}

TEST(TracePipelineTest, MergedTimelineNestsPoolSpansUnderSendPieces) {
  // Parallel pack: 1 writer -> 2 readers with pack_threads=4, so every
  // step dispatches one pool task per reader. The tasks run on pool
  // threads, but TaskScope re-homes their spans: in the merged timeline
  // every writer.pack_task must carry the writer pid and hang under the
  // step's writer.send_pieces span.
  const bool metrics_was = metrics::enabled();
  metrics::set_enabled(true);
  trace::set_enabled(true);
  trace::reset();

  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 2);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;
  method.pack_threads = 4;

  constexpr std::uint64_t kHalf = kN / 2;
  std::vector<std::thread> reader_threads;
  for (int rank = 0; rank < 2; ++rank) {
    reader_threads.emplace_back([&, rank] {
      trace::set_thread_pid(kReaderPid);
      StreamSpec spec;
      spec.stream = "pipeline_pool_trace";
      spec.endpoint = EndpointSpec{&viz, rank, evpath::Location{0, 1}};
      spec.method = method;
      auto r = rt.open_reader(spec);
      ASSERT_TRUE(r.is_ok());
      std::vector<double> dst(kHalf);
      for (;;) {
        auto step = r.value()->begin_step();
        if (!step.is_ok()) break;
        ASSERT_TRUE(r.value()
                        ->schedule_read("field", Box{{rank * kHalf}, {kHalf}},
                                        MutableByteView(std::as_writable_bytes(
                                            std::span<double>(dst))))
                        .is_ok());
        ASSERT_TRUE(r.value()->perform_reads().is_ok());
        ASSERT_TRUE(r.value()->end_step().is_ok());
      }
      (void)r.value()->close();
      trace::set_thread_pid(0);
    });
  }

  {
    trace::set_thread_pid(kWriterPid);
    StreamSpec spec;
    spec.stream = "pipeline_pool_trace";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = method;
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    EXPECT_EQ(w.value()->pack_threads(), 4);
    std::vector<double> data(kN, 2.0);
    const auto meta = adios::global_array_var(
        "field", serial::DataType::kDouble, {kN}, Box{{0}, {kN}});
    for (int s = 0; s < kSteps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(
          w.value()
              ->write(meta, as_bytes_view(std::span<const double>(data)))
              .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
    trace::set_thread_pid(0);
  }
  for (std::thread& t : reader_threads) t.join();

  auto merged = trace::merge_traces(trace::chrome_json_for(kWriterPid),
                                    trace::chrome_json_for(kReaderPid));
  trace::set_enabled(false);
  metrics::set_enabled(metrics_was);
  ASSERT_TRUE(merged.is_ok());
  ASSERT_TRUE(merged.value().validate(/*slack_us=*/1e5).is_ok());

  std::map<std::uint64_t, const trace::MergedEvent*> by_id;
  for (const trace::MergedEvent& e : merged.value().events) {
    if (e.id != 0) by_id[e.id] = &e;
  }
  int pool_spans = 0;
  for (const trace::MergedEvent& e : merged.value().events) {
    if (e.name != "writer.pack_task") continue;
    ++pool_spans;
    // Pool-thread span, re-homed into the writer's timeline: writer pid,
    // the step annotation inherited from the submitting thread, and the
    // dispatching send_pieces span (same step) as the parent.
    EXPECT_EQ(e.pid, kWriterPid);
    EXPECT_GE(e.step, 0);
    ASSERT_NE(e.parent, 0u);
    const auto it = by_id.find(e.parent);
    ASSERT_NE(it, by_id.end());
    EXPECT_STREQ(it->second->name.c_str(), "writer.send_pieces");
    EXPECT_EQ(it->second->pid, kWriterPid);
    EXPECT_EQ(it->second->step, e.step);
  }
  // One pool task per reader per step.
  EXPECT_EQ(pool_spans, kSteps * 2);
}

}  // namespace
}  // namespace flexio
