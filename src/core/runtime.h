// The FlexIO runtime: the middleware's user-facing entry point.
//
// A Runtime owns the message bus (transports), the directory server, and
// the per-process endpoints. Applications open StreamWriters/StreamReaders
// against it; whether a stream runs online (memory-to-memory through shm /
// RDMA) or offline (BP files) is decided purely by the method configuration
// (paper Section II.B: "a one-line update to the configuration file is
// sufficient to switch between file I/O and online data movement").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/monitor.h"
#include "core/program.h"
#include "core/stream_registry.h"
#include "core/wire.h"
#include "evpath/bus.h"
#include "evpath/directory.h"
#include "xml/config.h"

namespace flexio {

class StreamWriter;
class StreamReader;

/// A compiled Data Conditioning plug-in: transforms one data piece on the
/// fly (selection, sampling, unit conversion, markup...).
using PluginFn =
    std::function<StatusOr<wire::DataPiece>(const wire::DataPiece&)>;

/// Compiles CoD-mini source text into a plug-in. Installed by the cod
/// module; the core never parses plug-in source itself (the codelet is
/// mobile *source*, compiled where it lands -- paper Section II.F).
using PluginCompiler =
    std::function<StatusOr<PluginFn>(const std::string& source)>;

/// Identity of one rank of one program, plus its machine placement.
struct EndpointSpec {
  Program* program = nullptr;  // non-owning; must outlive the stream
  int rank = 0;
  evpath::Location location;
};

/// Everything needed to open one side of a stream.
struct StreamSpec {
  std::string stream;        // stream/file name (the "file" of stream mode)
  EndpointSpec endpoint;
  xml::MethodConfig method;  // method.method: "FLEXIO" (stream) | "BP" (file)
  std::string file_dir = "."; // where BP mode puts/finds files
  /// Reader only, membership mode: join a stream that is already running
  /// instead of taking part in the open handshake. The open state is
  /// bootstrapped from the directory's open-info blob and the rank blocks
  /// until the coordinator admits it at a step boundary.
  bool late_join = false;
};

class Runtime {
 public:
  Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Open the writer side. In stream mode this rendezvouses with the reader
  /// program (directory lookup + open handshake), so the matching
  /// open_reader must be issued concurrently.
  StatusOr<std::unique_ptr<StreamWriter>> open_writer(const StreamSpec& spec);

  /// Open the reader side.
  StatusOr<std::unique_ptr<StreamReader>> open_reader(const StreamSpec& spec);

  /// Install the DC plug-in compiler (see flexio::cod::make_plugin_compiler).
  void set_plugin_compiler(PluginCompiler compiler);
  PluginCompiler plugin_compiler() const;

  evpath::MessageBus& bus() { return bus_; }
  evpath::DirectoryServer& directory() { return directory_; }
  StreamRegistry& registry() { return registry_; }

  /// Deliver an encoded wire::Heartbeat frame to the directory. Readers
  /// beat through this adapter (encode -> deliver -> decode) rather than
  /// calling the directory object directly, so the directory can move out
  /// of process without a protocol change.
  Status deliver_heartbeat(ByteView frame);

  /// Endpoint name convention: streams are isolated namespaces. This is
  /// the *dedicated* (default) convention; with shared_links the registry
  /// names endpoints per (program, rank) instead -- always derive peer
  /// names through StreamChannel::peer_name, which knows the mode.
  static std::string endpoint_name(const std::string& stream,
                                   const std::string& program, int rank) {
    return StreamRegistry::dedicated_endpoint_name(stream, program, rank);
  }

 private:
  friend class StreamWriter;
  friend class StreamReader;

  evpath::MessageBus bus_;
  evpath::DirectoryServer directory_;
  // Declared after bus_ so channels and drainers are torn down while the
  // bus (which their endpoints reference) is still alive.
  StreamRegistry registry_{&bus_};
  mutable std::mutex mutex_;
  PluginCompiler plugin_compiler_;
};

}  // namespace flexio
