// Leveled logging. The middleware logs placement decisions, transport
// selection, and retries; tests silence it by raising the threshold.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace flexio {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

bool log_enabled(LogLevel level);
void log_emit(LogLevel level, const char* file, int line,
              const std::string& message);

/// Stream-builder so call sites can write FLEXIO_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_emit(level_, file_, line_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace flexio

#define FLEXIO_LOG(level)                                            \
  if (!::flexio::detail::log_enabled(::flexio::LogLevel::level)) {   \
  } else                                                             \
    ::flexio::detail::LogLine(::flexio::LogLevel::level, __FILE__, __LINE__)
