#!/usr/bin/env python3
"""Tests for check_bench_overhead.py, run as part of CI.

The gate script is itself load-bearing -- a silent mis-dispatch would let a
perf regression through -- so these tests pin its contract: reports are
dispatched by JSON "name", the pool-scaling gates skip (not fail) below
SCALE_MIN_CORES, malformed reports fail loudly, and a run with no gateable
report is an error rather than a green build.

Each test invokes the script as a subprocess on synthetic reports, the same
way CI does.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_overhead.py")


def metric(name, median_ns, **extra):
    m = {"name": name, "median": median_ns, "unit": "ns"}
    m.update(extra)
    return m


def transports_report(cores=8, watchdog_ns=1.0, expose_ns=5e3,
                      pool4_ns=50e3):
    """A micro_transports report that passes every gate by default."""
    return {
        "schema": "flexio-bench-v1",
        "name": "micro_transports",
        "counters": {"bench.hw_concurrency": cores},
        "metrics": [
            metric("BM_MetricsCounterEnabled", 10.0),
            metric("BM_MetricsCounterDisabled", 1.0),
            metric("BM_TraceSpanDisabled", 1.0),
            metric("BM_FlightRecorderDisabled", 1.0),
            metric("BM_FlightRecorderIdle", 2.0),
            metric("BM_WatchdogDisabled", watchdog_ns),
            metric("BM_StatsExposeSnapshot", expose_ns),
            metric("BM_StreamStepParallelPack/0/manual_time", 101e3),
            metric("BM_StreamStepParallelPack/1/manual_time", 100e3),
            metric("BM_StreamStepParallelPack/4/manual_time", pool4_ns),
            metric("BM_StreamStepParallelUnpack/0/manual_time", 101e3),
            metric("BM_StreamStepParallelUnpack/1/manual_time", 100e3),
            metric("BM_StreamStepParallelUnpack/4/manual_time", pool4_ns),
        ],
    }


def pack_report(seed_ns=1000.0, strided_ns=100.0):
    return {
        "schema": "flexio-bench-v1",
        "name": "micro_pack",
        "metrics": [
            metric("BM_PackSeedInterior3D", seed_ns),
            metric("BM_PackStridedInterior3D", strided_ns),
        ],
    }


class CheckBenchOverheadTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_report(self, report, filename="report.json"):
        path = os.path.join(self.tmp.name, filename)
        with open(path, "w") as f:
            json.dump(report, f)
        return path

    def run_script(self, *paths):
        return subprocess.run([sys.executable, SCRIPT, *paths],
                              capture_output=True, text=True)

    def test_passing_transports_report(self):
        proc = self.run_script(self.write_report(transports_report()))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ok: BM_WatchdogDisabled", proc.stdout)
        self.assertIn("ok: BM_StatsExposeSnapshot", proc.stdout)

    def test_dispatch_by_report_name(self):
        # A micro_pack report must hit the pack gate, not the overhead
        # gate, regardless of argument order or file name.
        path = self.write_report(pack_report(), "BENCH_weird_name.json")
        proc = self.run_script(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("pack speedup", proc.stdout)
        self.assertNotIn("BM_WatchdogDisabled", proc.stdout)

    def test_watchdog_over_budget_fails(self):
        report = transports_report(watchdog_ns=50.0)  # > max(5, 0.6 * 10)
        proc = self.run_script(self.write_report(report))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL: BM_WatchdogDisabled", proc.stdout)

    def test_expose_over_budget_fails(self):
        report = transports_report(expose_ns=5e6)  # > 1 ms sanity budget
        proc = self.run_script(self.write_report(report))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL: BM_StatsExposeSnapshot", proc.stdout)

    def test_scaling_gate_skips_below_min_cores(self):
        # 4 threads no faster than serial would fail the speedup gate, but
        # on a 2-core report the gate must skip instead.
        report = transports_report(cores=2, pool4_ns=100e3)
        proc = self.run_script(self.write_report(report))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("skip:", proc.stdout)
        self.assertNotIn("FAIL", proc.stdout)

    def test_scaling_gate_binds_at_min_cores(self):
        report = transports_report(cores=4, pool4_ns=100e3)
        proc = self.run_script(self.write_report(report))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("speedup", proc.stdout)

    def test_malformed_report_fails(self):
        path = os.path.join(self.tmp.name, "bad.json")
        with open(path, "w") as f:
            f.write("{ not json")
        proc = self.run_script(path)
        self.assertNotEqual(proc.returncode, 0)

    def test_wrong_schema_fails(self):
        report = transports_report()
        report["schema"] = "flexio-bench-v0"
        proc = self.run_script(self.write_report(report))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("unexpected schema", proc.stderr + proc.stdout)

    def test_missing_metric_fails(self):
        report = transports_report()
        report["metrics"] = [m for m in report["metrics"]
                             if m["name"] != "BM_WatchdogDisabled"]
        proc = self.run_script(self.write_report(report))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("missing from report", proc.stderr + proc.stdout)

    def test_no_gateable_report_fails(self):
        report = transports_report()
        report["name"] = "per_stream_latency_table"
        proc = self.run_script(self.write_report(report))
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("no gateable report", proc.stderr + proc.stdout)

    def test_multiple_reports_any_order(self):
        pack = self.write_report(pack_report(), "pack.json")
        transports = self.write_report(transports_report(),
                                       "transports.json")
        proc = self.run_script(pack, transports)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("pack speedup", proc.stdout)
        self.assertIn("BM_WatchdogDisabled", proc.stdout)


if __name__ == "__main__":
    unittest.main()
