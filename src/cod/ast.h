// Abstract syntax tree for CoD-mini.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cod/token.h"

namespace flexio::cod {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kNumber,  // literal
    kVar,     // local or environment global
    kUnary,   // op args[0]
    kBinary,  // args[0] op args[1]
    kCall,    // name(args...)
    kIndex,   // name[args[0]] -- environment arrays only
  };
  Kind kind = Kind::kNumber;
  int line = 1;
  double number = 0;
  std::string name;
  Tok op = Tok::kEnd;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDecl,    // type name (= a)?
    kAssign,  // name = a
    kIf,      // if (a) body else else_body
    kWhile,   // while (a) body
    kFor,     // for (init; a; step) body
    kReturn,  // return a?
    kExpr,    // a;
    kBlock,   // { body }
  };
  Kind kind = Kind::kExpr;
  int line = 1;
  std::string name;
  ExprPtr a;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  StmtPtr init;  // for
  StmtPtr step;  // for
};

struct FunctionAst {
  std::string name;
  bool returns_value = false;  // void vs int/double (both map to double)
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 1;
};

struct ProgramAst {
  std::vector<FunctionAst> functions;

  const FunctionAst* find(std::string_view name) const {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace flexio::cod
