// Event-driven two-stage pipeline simulation.
//
// Cross-validates the closed-form assembly in apps::simulate_coupled: a
// producer (the simulation) emits one data interval at a time, each
// interval's movement serializes on the transport channel, and a consumer
// (the analytics) processes intervals in order. The discrete-event version
// makes no steady-state assumption, so agreement with the closed form (see
// tests/pipeline_sim_test.cpp) is evidence the figures' totals are not an
// artifact of the algebra.
#pragma once

#include "sim/engine.h"

namespace flexio::sim {

struct PipelineSpec {
  int intervals = 1;
  /// Producer time per interval (compute + MPI + producer-visible I/O).
  double producer_seconds = 1.0;
  /// Transport occupancy per interval; transfers serialize on the channel.
  double movement_seconds = 0.0;
  /// Consumer processing time per interval.
  double consumer_seconds = 0.0;
  /// Synchronous movement blocks the producer (it cannot start the next
  /// interval until the transfer completed); asynchronous movement
  /// overlaps the producer's next interval.
  bool async_movement = true;
};

struct PipelineTrace {
  double total_seconds = 0;      // completion of the last consumer interval
  double producer_finish = 0;    // when the producer finished its last work
  double consumer_busy = 0;      // total consumer processing time
  double consumer_idle = 0;      // gaps while waiting for data
};

/// Run the pipeline on a fresh event engine. Deterministic.
PipelineTrace simulate_pipeline(const PipelineSpec& spec);

}  // namespace flexio::sim
