#include "core/advisor.h"

#include <algorithm>

namespace flexio {

PluginPlacementInputs inputs_from_reports(const wire::MonitorReport& writer,
                                          double var_bytes_per_step,
                                          double reduction_ratio,
                                          double plugin_seconds_per_step,
                                          double movement_bandwidth) {
  PluginPlacementInputs in;
  in.bytes_per_step = var_bytes_per_step;
  in.reduction_ratio = reduction_ratio;
  in.plugin_seconds_per_step = plugin_seconds_per_step;
  in.movement_bandwidth = movement_bandwidth;
  // Headroom estimate: the time the writer already spends on data movement
  // per step is what it tolerates; a simulation whose sends are instant
  // has no slack. Prefer the per-phase attribution (pack + transport
  // hand-off, measured at the exact seams) when the report carries it;
  // fall back to the coarse close-time send total for old-format reports.
  if (writer.phase_steps > 0) {
    in.writer_headroom_seconds =
        static_cast<double>(writer.pack_ns + writer.enqueue_ns) * 1e-9 /
        static_cast<double>(writer.phase_steps);
  } else {
    const double steps =
        std::max<double>(1.0, static_cast<double>(writer.steps));
    in.writer_headroom_seconds = writer.send_seconds / steps;
  }
  return in;
}

}  // namespace flexio
