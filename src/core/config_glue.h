// Gluing the XML configuration to stream opening.
//
// The paper's workflow: applications never construct transport settings in
// code; they name an adios-group, and the external XML file decides the
// method (file vs. stream) and its tuning hints. These helpers resolve a
// group against a parsed xml::Config into the StreamSpec the Runtime
// consumes, and validate written variables against the group's declared
// schema (name + type, with symbolic dimensions left to runtime values).
#pragma once

#include <string>

#include "core/runtime.h"

namespace flexio {

/// Build the StreamSpec for `group_name` from `config`. The stream name is
/// the group name; the method comes from the group's <method> element (a
/// group without one defaults to the BP file engine, matching ADIOS
/// semantics). `file_dir` applies to file-mode methods.
StatusOr<StreamSpec> spec_from_config(const xml::Config& config,
                                      const std::string& group_name,
                                      const EndpointSpec& endpoint,
                                      const std::string& file_dir = ".");

/// Check a variable about to be written against the group's declaration:
/// it must be declared with the same element type; array rank must match
/// the declared dimension count. Literal extents in the declaration are
/// enforced; symbolic ones (e.g. "nparticles") accept any runtime value.
Status validate_against_group(const xml::GroupConfig& group,
                              const adios::VarMeta& meta);

}  // namespace flexio
