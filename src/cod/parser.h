// Recursive-descent parser for CoD-mini.
#pragma once

#include "cod/ast.h"
#include "util/status.h"

namespace flexio::cod {

/// Parse a whole plug-in source (a sequence of function definitions).
StatusOr<ProgramAst> parse(std::string_view source);

}  // namespace flexio::cod
