#include "evpath/directory.h"

#include <algorithm>

#include "util/json.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace flexio::evpath {

namespace {

metrics::Counter& joins_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.joins");
  return c;
}
metrics::Counter& leaves_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.leaves");
  return c;
}
metrics::Counter& deaths_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.deaths");
  return c;
}
metrics::Gauge& epoch_gauge() {
  static metrics::Gauge& g = metrics::gauge("flexio.membership.epoch");
  return g;
}
metrics::Counter& stats_frames_counter() {
  static metrics::Counter& c = metrics::counter("flexio.telemetry.frames");
  return c;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string_view member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kLeft:
      return "left";
    case MemberState::kDead:
      return "dead";
  }
  return "?";
}

const Member* MembershipView::find(int rank) const {
  for (const Member& m : members) {
    if (m.rank == rank) return &m;
  }
  return nullptr;
}

int MembershipView::alive_count() const {
  int n = 0;
  for (const Member& m : members) {
    if (m.state == MemberState::kAlive) ++n;
  }
  return n;
}

Status DirectoryServer::register_stream(const std::string& stream_name,
                                        const std::string& coordinator_contact,
                                        std::vector<std::byte> open_info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = streams_.emplace(stream_name, coordinator_contact);
  if (!inserted) {
    return make_error(ErrorCode::kAlreadyExists,
                      "stream already registered: " + stream_name);
  }
  stream_info_[stream_name] = std::move(open_info);
  // A previous stream of the same name leaves a closed tombstone group;
  // this is a fresh stream, so its membership starts from scratch.
  auto git = groups_.find(stream_name);
  if (git != groups_.end() && git->second.closed) groups_.erase(git);
  ++stats_.registrations;
  cv_.notify_all();
  return Status::ok();
}

Status DirectoryServer::unregister_stream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.erase(stream_name) == 0) {
    return make_error(ErrorCode::kNotFound,
                      "stream not registered: " + stream_name);
  }
  stream_info_.erase(stream_name);
  // Keep the membership group as a closed tombstone rather than erasing
  // it: readers drain steps the writer buffered before closing, and their
  // liveness sweeps must still see (and declare) deaths in that window --
  // dropping the group here would leave a crashed straggler alive forever
  // and wedge the survivors' collectives.
  auto git = groups_.find(stream_name);
  if (git != groups_.end()) git->second.closed = true;
  cv_.notify_all();
  return Status::ok();
}

StatusOr<std::string> DirectoryServer::lookup(const std::string& stream_name,
                                              std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    ++stats_.lookup_waits;
    if (!cv_.wait_for(lock, timeout, [&] {
          it = streams_.find(stream_name);
          return it != streams_.end();
        })) {
      return make_error(ErrorCode::kNotFound,
                        "stream never registered: " + stream_name);
    }
  }
  return it->second;
}

StatusOr<std::vector<std::byte>> DirectoryServer::lookup_info(
    const std::string& stream_name, std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = stream_info_.find(stream_name);
  if (it == stream_info_.end()) {
    if (!cv_.wait_for(lock, timeout, [&] {
          it = stream_info_.find(stream_name);
          return it != stream_info_.end();
        })) {
      return make_error(ErrorCode::kNotFound,
                        "stream never registered: " + stream_name);
    }
  }
  return it->second;
}

DirectoryStats DirectoryServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DirectoryServer::set_membership_options(const MembershipOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  membership_options_ = options;
}

MembershipOptions DirectoryServer::membership_options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_options_;
}

bool DirectoryServer::membership_enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_options_.enabled;
}

void DirectoryServer::sweep_locked(Group& group) {
  const std::uint64_t now = metrics::now_ns();
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(membership_options_.ttl.count());
  bool changed = false;
  for (auto& [rank, member] : group.members) {
    if (member.state != MemberState::kAlive) continue;
    if (now >= member.last_beat_ns && now - member.last_beat_ns > ttl) {
      member.state = MemberState::kDead;
      ++group.epoch;
      deaths_counter().inc();
      epoch_gauge().add(1);
      changed = true;
    }
  }
  if (changed) cv_.notify_all();
}

StatusOr<Member> DirectoryServer::join_member(const std::string& stream_name,
                                              int rank,
                                              const std::string& contact) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!membership_options_.enabled) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "directory membership disabled");
  }
  Group& group = groups_[stream_name];
  if (group.closed) {
    return make_error(ErrorCode::kNotFound,
                      "stream closed: " + stream_name);
  }
  sweep_locked(group);
  auto it = group.members.find(rank);
  std::uint64_t incarnation = 1;
  if (it != group.members.end()) {
    if (it->second.state == MemberState::kAlive) {
      return make_error(ErrorCode::kAlreadyExists,
                        "member still alive: " + stream_name + " rank " +
                            std::to_string(rank));
    }
    incarnation = it->second.incarnation + 1;
  }
  Member member;
  member.rank = rank;
  member.contact = contact;
  member.incarnation = incarnation;
  member.state = MemberState::kAlive;
  member.join_epoch = ++group.epoch;
  member.last_beat_ns = metrics::now_ns();
  group.members[rank] = member;
  joins_counter().inc();
  epoch_gauge().add(1);
  cv_.notify_all();
  return member;
}

Status DirectoryServer::leave_member(const std::string& stream_name, int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no membership group: " + stream_name);
  }
  auto it = git->second.members.find(rank);
  if (it == git->second.members.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown member: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  if (it->second.state != MemberState::kAlive) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "member not alive: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  it->second.state = MemberState::kLeft;
  ++git->second.epoch;
  leaves_counter().inc();
  epoch_gauge().add(1);
  cv_.notify_all();
  return Status::ok();
}

Status DirectoryServer::heartbeat(const std::string& stream_name, int rank,
                                  std::uint64_t incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no membership group: " + stream_name);
  }
  sweep_locked(git->second);
  auto it = git->second.members.find(rank);
  if (it == git->second.members.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown member: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  // Fencing: a dead or superseded incarnation may not beat itself back to
  // life; the rank must rejoin under a fresh incarnation.
  if (it->second.state != MemberState::kAlive ||
      it->second.incarnation != incarnation) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "member fenced: " + stream_name + " rank " +
                          std::to_string(rank) + " incarnation " +
                          std::to_string(incarnation));
  }
  it->second.last_beat_ns = metrics::now_ns();
  return Status::ok();
}

MembershipView DirectoryServer::membership(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipView view;
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) return view;
  sweep_locked(git->second);
  view.epoch = git->second.epoch;
  view.members.reserve(git->second.members.size());
  for (const auto& [rank, member] : git->second.members) {
    view.members.push_back(member);
  }
  return view;
}

std::uint64_t DirectoryServer::membership_epoch(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) return 0;
  sweep_locked(git->second);
  return git->second.epoch;
}

StatusOr<std::uint64_t> DirectoryServer::wait_for_epoch_change(
    const std::string& stream_name, std::uint64_t last_seen,
    std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto git = groups_.find(stream_name);
    if (git != groups_.end()) {
      sweep_locked(git->second);
      if (git->second.epoch != last_seen) return git->second.epoch;
    }
    // Wake periodically even without joins/leaves so TTL expiry is noticed
    // (the fake clock can advance without any cv activity).
    const auto slice = std::min(
        deadline, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
    if (std::chrono::steady_clock::now() >= deadline) {
      return make_error(ErrorCode::kTimeout,
                        "membership epoch unchanged: " + stream_name);
    }
    cv_.wait_until(lock, slice);
  }
}

Status DirectoryServer::fold_stats(const std::string& program, int rank,
                                   const std::string& stats_line) {
  auto parsed = json::parse(stats_line);
  if (!parsed.is_ok()) return parsed.status();
  const json::Value& v = parsed.value();
  const json::Value* schema = v.find("schema");
  if (schema == nullptr || schema->as_string() != "flexio-stats-v1") {
    return make_error(ErrorCode::kInvalidArgument,
                      "stats frame is not flexio-stats-v1");
  }
  // Validate sections up front so a malformed frame leaves no partial fold.
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const json::Value* s = v.find(section);
    if (s != nullptr && s->kind() != json::Value::Kind::kObject) {
      return make_error(ErrorCode::kInvalidArgument,
                        std::string("stats section is not an object: ") +
                            section);
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  RankStats& rs = rank_stats_[{program, rank}];
  rs.program = program;
  rs.rank = rank;
  ++rs.frames;
  if (const json::Value* t = v.find("t_ns")) {
    rs.last_ns = static_cast<std::uint64_t>(t->as_number());
  }
  if (const json::Value* counters = v.find("counters")) {
    for (const auto& [name, delta] : counters->as_object()) {
      rs.counters[name] += static_cast<std::uint64_t>(delta.as_number());
    }
  }
  if (const json::Value* gauges = v.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object()) {
      rs.gauges[name] = static_cast<std::int64_t>(value.as_number());
    }
  }
  if (const json::Value* hists = v.find("histograms")) {
    for (const auto& [name, h] : hists->as_object()) {
      RankStats::Hist& agg = rs.histograms[name];
      if (const json::Value* c = h.find("count")) {
        agg.count += static_cast<std::uint64_t>(c->as_number());
      }
      if (const json::Value* s = h.find("sum")) {
        agg.sum += static_cast<std::uint64_t>(s->as_number());
      }
      // Quantiles are cumulative positions, not deltas: latest wins.
      if (const json::Value* p = h.find("p50")) agg.p50 = p->as_number();
      if (const json::Value* p = h.find("p99")) agg.p99 = p->as_number();
    }
  }
  stats_frames_counter().inc();
  return Status::ok();
}

ClusterSnapshot DirectoryServer::cluster() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ClusterSnapshot out;
  out.reserve(rank_stats_.size());
  for (const auto& [key, rs] : rank_stats_) out.push_back(rs);
  return out;
}

std::string DirectoryServer::cluster_json() const {
  const ClusterSnapshot snap = cluster();
  std::string out = "{\"schema\":\"flexio-cluster-v1\",\"ranks\":[";
  bool first_rank = true;
  for (const RankStats& rs : snap) {
    if (!first_rank) out += ",";
    first_rank = false;
    out += str_format(
        "\n{\"program\":\"%s\",\"rank\":%d,\"t_ns\":%llu,\"frames\":%llu",
        json_escape(rs.program).c_str(), rs.rank,
        static_cast<unsigned long long>(rs.last_ns),
        static_cast<unsigned long long>(rs.frames));
    const auto append_section = [&out](const char* name, const auto& entries,
                                       const auto& render) {
      if (entries.empty()) return;
      out += str_format(",\"%s\":{", name);
      bool first = true;
      for (const auto& [key, value] : entries) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(key) + "\":" + render(value);
      }
      out += "}";
    };
    append_section("counters", rs.counters, [](std::uint64_t v) {
      return str_format("%llu", static_cast<unsigned long long>(v));
    });
    append_section("gauges", rs.gauges, [](std::int64_t v) {
      return str_format("%lld", static_cast<long long>(v));
    });
    append_section("histograms", rs.histograms, [](const RankStats::Hist& h) {
      return str_format("{\"count\":%llu,\"sum\":%llu,\"p50\":%.1f,"
                        "\"p99\":%.1f}",
                        static_cast<unsigned long long>(h.count),
                        static_cast<unsigned long long>(h.sum), h.p50, h.p99);
    });
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<std::string> DirectoryServer::dead_members() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto& [stream, group] : groups_) {
    sweep_locked(group);
    for (const auto& [rank, member] : group.members) {
      if (member.state == MemberState::kDead) {
        out.push_back(stream + "/" + std::to_string(rank));
      }
    }
  }
  return out;
}

}  // namespace flexio::evpath
