// Figure 8: Last-level cache miss rates of GTS on Smoky.
//
// Compares GTS running solo (3 OpenMP threads, no I/O or analytics)
// against GTS with analytics on the helper core sharing its L3, in misses
// per thousand instructions, plus the resulting simulation-time increase
// (paper: +47% misses, +4.1% simulation time).
#include <cstdio>

#include "apps/scenarios.h"
#include "bench/report.h"

int main() {
  using namespace flexio;
  using namespace flexio::apps;
  const sim::MachineDesc machine = sim::smoky();
  const auto helper = simulate_coupled(
      gts_scenario(machine, 512, GtsVariant::kHelperTopoAware));
  if (!helper.is_ok()) {
    std::fprintf(stderr, "model failed\n");
    return 1;
  }
  const auto& r = helper.value();
  std::printf("Figure 8: L3 misses per 1K instructions, GTS on %s\n\n",
              machine.name.c_str());
  std::printf("%-52s %10.2f\n", "GTS (3 threads) solo", r.l3_mpki_solo);
  std::printf("%-52s %10.2f\n", "GTS (3 threads) with analytics on helper core",
              r.l3_mpki_corun);
  std::printf("\nmiss-rate increase: +%.0f%%\n",
              100.0 * (r.l3_mpki_corun / r.l3_mpki_solo - 1));
  std::printf("simulation time increase from cache interference: +%.1f%%\n",
              100.0 * (r.cache_slowdown - 1));

  bench::Report report("fig8_cache_interference");
  report.add_samples("l3_mpki_solo", "mpki", 0, 1, {r.l3_mpki_solo});
  report.add_samples("l3_mpki_corun", "mpki", 0, 1, {r.l3_mpki_corun});
  report.add_samples("miss_rate_increase", "%", 0, 1,
                     {100.0 * (r.l3_mpki_corun / r.l3_mpki_solo - 1)});
  report.add_samples("sim_time_increase", "%", 0, 1,
                     {100.0 * (r.cache_slowdown - 1)});
  return report.write().is_ok() ? 0 : 1;
}
