// Many-stream multiplexing fairness bench (DESIGN.md "Stream
// multiplexing").
//
// 1000 mouse streams (mixed small frames) and a handful of elephant
// streams (64 KiB frames, sent continuously) multiplex over ONE shared
// endpoint. Producers send through StreamRegistry channels -- the mux
// prefix + per-stream credit + DRR drain path under test -- while a raw
// peer endpoint timestamps per-stream delivery latency by demuxing the
// wire prefix, exactly the way SharedEndpoint routes inbound frames.
//
// Two scenarios run back to back: mice alone (the isolated baseline) and
// mice with elephants. BENCH_micro_many_streams.json carries the pooled
// and per-stream-p99 mouse latency summaries for both plus the O(links)
// counters; tools/check_bench_overhead.py gates mouse p99 under elephants
// against the mice-only baseline (skipped below 4 cores) and the shared
// endpoint count against the stream count (always).
// BENCH_micro_many_streams_table.json is the per-stream latency table CI
// uploads as an artifact.
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.h"
#include "core/stream_registry.h"
#include "core/wire.h"
#include "evpath/bus.h"
#include "util/status.h"

namespace {

using namespace flexio;

constexpr int kMice = 1000;
constexpr int kElephants = 4;
constexpr int kFrames = 40;         // sync frames per mouse stream
constexpr int kProducers = 8;       // threads sharing the mouse streams
constexpr std::size_t kElephantBytes = 64u << 10;  // one DRR quantum

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScenarioOut {
  std::vector<std::vector<double>> mouse_ns;  // per-stream delivery latency
  std::uint64_t elephant_frames = 0;
  std::size_t shared_endpoints = 0;
  std::size_t attached_streams = 0;
};

ScenarioOut run_scenario(bool with_elephants) {
  evpath::MessageBus bus;
  StreamRegistry registry(&bus);
  const evpath::Location loc{0, 0};
  const evpath::LinkOptions lopts;
  MuxOptions mux;
  mux.shared_links = true;
  // A quarter of an elephant frame: each elephant accumulates deficit over
  // four rotations per 64 KiB frame, so every rotation carries on average
  // one elephant frame against a full pass of the active mice.
  mux.drr_quantum_bytes = 16u << 10;

  // The consumer plays the reader-side peer as a raw endpoint: one inbound
  // link regardless of stream count, demuxed by wire prefix.
  auto consumer_or = bus.create_endpoint(
      StreamRegistry::shared_endpoint_name("viz", 0), loc, lopts);
  FLEXIO_CHECK(consumer_or.is_ok());
  auto consumer = std::move(consumer_or).value();
  const std::string dest = consumer->name();

  std::vector<std::shared_ptr<StreamChannel>> mice;
  std::map<std::uint64_t, std::size_t> mouse_index;
  mice.reserve(kMice);
  for (int s = 0; s < kMice; ++s) {
    auto ch = registry.attach("m" + std::to_string(s), "sim", 0, loc, lopts,
                              mux);
    FLEXIO_CHECK(ch.is_ok());
    mouse_index[ch.value()->stream_id()] = mice.size();
    mice.push_back(std::move(ch).value());
  }
  std::vector<std::shared_ptr<StreamChannel>> elephants;
  if (with_elephants) {
    for (int e = 0; e < kElephants; ++e) {
      auto ch = registry.attach("elephant" + std::to_string(e), "sim", 0, loc,
                                lopts, mux);
      FLEXIO_CHECK(ch.is_ok());
      elephants.push_back(std::move(ch).value());
    }
  }

  ScenarioOut out;
  out.mouse_ns.resize(kMice);
  for (auto& v : out.mouse_ns) v.reserve(kFrames);

  std::atomic<bool> consumer_stop{false};
  std::atomic<std::uint64_t> elephant_frames{0};
  std::thread drain([&] {
    evpath::Message msg;
    while (!consumer_stop.load(std::memory_order_relaxed)) {
      if (!consumer->recv(&msg, std::chrono::milliseconds(10)).is_ok()) {
        continue;
      }
      const std::int64_t now = now_ns();
      if (msg.eos) continue;
      const auto frame = wire::decode_mux(ByteView(msg.payload));
      if (!frame.is_ok() || frame.value().stream_id == 0) continue;
      const ByteView inner = frame.value().inner;
      if (inner.size() < sizeof(std::int64_t)) continue;
      const auto it = mouse_index.find(frame.value().stream_id);
      if (it == mouse_index.end()) {
        elephant_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::int64_t stamp = 0;
      std::memcpy(&stamp, inner.data(), sizeof stamp);
      out.mouse_ns[it->second].push_back(static_cast<double>(now - stamp));
    }
  });

  // Elephants blast max-credit async traffic for the whole mouse run; the
  // DRR drainer is what keeps them from starving the sync mouse frames.
  std::atomic<bool> mice_done{false};
  std::vector<std::thread> fat;
  for (auto& ch : elephants) {
    fat.emplace_back([&, ch] {
      std::vector<std::byte> frame(kElephantBytes, std::byte{0xEE});
      const std::int64_t stamp = now_ns();
      std::memcpy(frame.data(), &stamp, sizeof stamp);
      while (!mice_done.load(std::memory_order_relaxed)) {
        if (!ch->send(dest, ByteView(frame), evpath::SendMode::kAsync)
                 .is_ok()) {
          break;
        }
      }
      (void)ch->flush(std::chrono::seconds(30));
    });
  }

  // Mouse producers: each thread owns a stride of the streams and sends
  // one sync frame per stream per round. Mixed sizes, 256 B to ~1.8 KiB.
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      std::vector<std::byte> frame;
      for (int f = 0; f < kFrames; ++f) {
        for (int s = t; s < kMice; s += kProducers) {
          frame.assign(256 + 512 * static_cast<std::size_t>(s % 4),
                       std::byte{0x5A});
          const std::int64_t stamp = now_ns();
          std::memcpy(frame.data(), &stamp, sizeof stamp);
          if (!mice[static_cast<std::size_t>(s)]
                   ->send(dest, ByteView(frame), evpath::SendMode::kSync)
                   .is_ok()) {
            return;
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  mice_done.store(true);
  for (auto& t : fat) t.join();

  out.shared_endpoints = registry.shared_endpoint_count();
  out.attached_streams = registry.attached_stream_count();
  out.elephant_frames = elephant_frames.load();

  // Let the consumer drain anything still in flight before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  consumer_stop.store(true);
  drain.join();
  mice.clear();
  elephants.clear();
  return out;
}

void summarize(bench::Report* report, bench::Report* table,
               const std::string& tag, const ScenarioOut& s) {
  std::vector<double> pooled;
  std::vector<double> per_stream_p99;
  pooled.reserve(static_cast<std::size_t>(kMice) * kFrames);
  per_stream_p99.reserve(kMice);
  for (std::size_t i = 0; i < s.mouse_ns.size(); ++i) {
    const std::vector<double>& lat = s.mouse_ns[i];
    if (lat.empty()) continue;
    pooled.insert(pooled.end(), lat.begin(), lat.end());
    per_stream_p99.push_back(bench::Report::quantile(lat, 0.99));
    table->add_samples(tag + "/mouse/" + std::to_string(i), "ns", 0,
                       static_cast<int>(lat.size()), lat);
  }
  const int pooled_reps = static_cast<int>(pooled.size());
  const int p99_reps = static_cast<int>(per_stream_p99.size());
  report->add_samples("many_streams.mouse_ns." + tag, "ns", 0, pooled_reps,
                      std::move(pooled));
  report->add_samples("many_streams.mouse_p99_ns." + tag, "ns", 0, p99_reps,
                      std::move(per_stream_p99));
}

}  // namespace

int main() {
  flexio::bench::Report report("micro_many_streams");
  flexio::bench::Report table("micro_many_streams_table");

  const ScenarioOut baseline = run_scenario(/*with_elephants=*/false);
  const ScenarioOut mixed = run_scenario(/*with_elephants=*/true);

  summarize(&report, &table, "mice_only", baseline);
  summarize(&report, &table, "with_elephants", mixed);

  report.add_counter("bench.hw_concurrency",
                     std::thread::hardware_concurrency());
  report.add_counter("bench.many_streams.streams", mixed.attached_streams);
  report.add_counter("bench.many_streams.shared_endpoints",
                     mixed.shared_endpoints);
  report.add_counter("bench.many_streams.elephant_frames",
                     mixed.elephant_frames);

  const flexio::Status st = report.write();
  const flexio::Status st2 = table.write();
  if (!st.is_ok() || !st2.is_ok()) {
    std::fprintf(stderr, "%s\n",
                 (!st.is_ok() ? st : st2).to_string().c_str());
    return 1;
  }
  return 0;
}
