// Cross-validation: the event-driven pipeline vs. the closed-form coupled
// model used by the figure harnesses.
#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "sim/pipeline.h"

namespace flexio {
namespace {

using apps::CoupledConfig;
using apps::GtsVariant;
using sim::PipelineSpec;
using sim::PipelineTrace;

TEST(PipelineSimTest, ProducerBoundPipeline) {
  PipelineSpec spec;
  spec.intervals = 10;
  spec.producer_seconds = 2.0;
  spec.movement_seconds = 0.1;
  spec.consumer_seconds = 0.5;
  const PipelineTrace t = simulate_pipeline(spec);
  // Steady state is producer-bound: total = 10 x 2.0 + fill (0.1 + 0.5).
  EXPECT_NEAR(t.total_seconds, 10 * 2.0 + 0.6, 1e-9);
  EXPECT_NEAR(t.consumer_busy, 5.0, 1e-9);
  EXPECT_GT(t.consumer_idle, 0.0);
}

TEST(PipelineSimTest, ConsumerBoundPipeline) {
  PipelineSpec spec;
  spec.intervals = 10;
  spec.producer_seconds = 0.5;
  spec.movement_seconds = 0.0;
  spec.consumer_seconds = 2.0;
  const PipelineTrace t = simulate_pipeline(spec);
  // Consumer is the bottleneck: total = fill (0.5) + 10 x 2.0.
  EXPECT_NEAR(t.total_seconds, 0.5 + 10 * 2.0, 1e-9);
  EXPECT_NEAR(t.consumer_idle, 0.0, 1e-9);
}

TEST(PipelineSimTest, ChannelBoundPipeline) {
  PipelineSpec spec;
  spec.intervals = 10;
  spec.producer_seconds = 0.5;
  spec.movement_seconds = 2.0;   // transfers serialize on the channel
  spec.consumer_seconds = 0.5;
  const PipelineTrace t = simulate_pipeline(spec);
  // Channel-bound: transfers end at 0.5 + 2k; last consumer ends +0.5.
  EXPECT_NEAR(t.total_seconds, 0.5 + 10 * 2.0 + 0.5, 1e-9);
}

TEST(PipelineSimTest, SyncMovementStretchesProducer) {
  PipelineSpec spec;
  spec.intervals = 5;
  spec.producer_seconds = 1.0;
  spec.movement_seconds = 0.5;
  spec.consumer_seconds = 0.1;
  spec.async_movement = false;
  const PipelineTrace t = simulate_pipeline(spec);
  // Each interval costs producer 1.0 + 0.5 when sync.
  EXPECT_NEAR(t.producer_finish, 5 * 1.5, 1e-9);
  spec.async_movement = true;
  const PipelineTrace a = simulate_pipeline(spec);
  EXPECT_NEAR(a.producer_finish, 5 * 1.0, 1e-9);
  EXPECT_LT(a.total_seconds, t.total_seconds);
}

TEST(PipelineSimTest, SingleIntervalDegenerate) {
  PipelineSpec spec;
  spec.intervals = 1;
  spec.producer_seconds = 3.0;
  spec.movement_seconds = 1.0;
  spec.consumer_seconds = 2.0;
  const PipelineTrace t = simulate_pipeline(spec);
  EXPECT_NEAR(t.total_seconds, 6.0, 1e-9);
  EXPECT_NEAR(t.consumer_idle, 0.0, 1e-9);  // only fill, which is excluded
}

// The cross-validation proper: rebuild each GTS scenario's pipeline from
// the coupled model's own interval phases, run it event-driven, and demand
// agreement with the closed-form Total Execution Time.
class CrossValidationTest : public ::testing::TestWithParam<GtsVariant> {};

TEST_P(CrossValidationTest, DesMatchesClosedForm) {
  const CoupledConfig config =
      apps::gts_scenario(sim::smoky(), 512, GetParam());
  auto model = apps::simulate_coupled(config);
  ASSERT_TRUE(model.is_ok());
  const auto& m = model.value();

  PipelineSpec spec;
  spec.intervals = config.intervals;
  spec.producer_seconds =
      m.interval.sim_compute + m.interval.sim_mpi + m.interval.sim_io +
      (config.placement == apps::AnalyticsPlacement::kInline
           ? m.interval.analytics
           : 0.0);
  const bool coupled =
      config.placement != apps::AnalyticsPlacement::kInline &&
      config.placement != apps::AnalyticsPlacement::kNone;
  spec.movement_seconds =
      coupled && config.placement != apps::AnalyticsPlacement::kHelperCore
          ? m.movement_seconds
          : 0.0;
  spec.consumer_seconds = coupled ? m.interval.analytics : 0.0;
  spec.async_movement = config.async_movement;
  const PipelineTrace t = simulate_pipeline(spec);

  // Agreement within 2%: the closed form approximates the fill term.
  EXPECT_NEAR(t.total_seconds, m.total_seconds, 0.02 * m.total_seconds)
      << apps::gts_variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CrossValidationTest,
    ::testing::Values(GtsVariant::kInline, GtsVariant::kHelperTopoAware,
                      GtsVariant::kStaging, GtsVariant::kSolo),
    [](const auto& suite_info) {
      std::string name(apps::gts_variant_name(suite_info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace flexio
