// Figure 6: GTS Total Execution Time under different analytics placements,
// weak-scaled over GTS cores, on Smoky (a) and Titan (b).
//
// Prints one column per paper series: Inline, Helper Core under the three
// placement algorithms, Staging, and the solo lower bound. With --metrics
// it additionally prints the Section IV.A cost metrics (node-hours and
// inter-node data movement volume) per placement.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "bench/report.h"

namespace {

using namespace flexio;
using namespace flexio::apps;

/// Per-series total_seconds over the weak-scaling sweep, summarized into
/// the bench report as one metric per (machine, series).
void report_machine(bench::Report* report, const sim::MachineDesc& machine,
                    const std::vector<int>& scales) {
  for (GtsVariant v : kAllGtsVariants) {
    std::vector<double> totals;
    for (int cores : scales) {
      auto result = simulate_coupled(gts_scenario(machine, cores, v));
      if (result.is_ok()) totals.push_back(result.value().total_seconds);
    }
    report->add_samples(machine.name + "/" + std::string(gts_variant_name(v)),
                        "s", 0, static_cast<int>(totals.size()),
                        std::move(totals));
  }
}

void run_csv(const sim::MachineDesc& machine, const std::vector<int>& scales) {
  for (int cores : scales) {
    for (GtsVariant v : kAllGtsVariants) {
      auto result = simulate_coupled(gts_scenario(machine, cores, v));
      if (!result.is_ok()) continue;
      std::printf("%s,%d,%s,%.4f,%.4f,%.2f\n", machine.name.c_str(), cores,
                  std::string(gts_variant_name(v)).c_str(),
                  result.value().total_seconds, result.value().node_hours,
                  result.value().inter_node_bytes / 1e9);
    }
  }
}

void run_machine(const sim::MachineDesc& machine,
                 const std::vector<int>& scales, bool metrics) {
  std::printf("\nFigure 6 (%s): GTS Total Execution Time (seconds)\n",
              machine.name.c_str());
  std::printf("%-10s", "GTS cores");
  for (GtsVariant v : kAllGtsVariants) {
    std::printf(" %32s", std::string(gts_variant_name(v)).c_str());
  }
  std::printf("\n");
  for (int cores : scales) {
    std::printf("%-10d", cores);
    for (GtsVariant v : kAllGtsVariants) {
      auto result = simulate_coupled(gts_scenario(machine, cores, v));
      if (!result.is_ok()) {
        std::printf(" %32s", result.status().to_string().c_str());
        continue;
      }
      std::printf(" %32.2f", result.value().total_seconds);
    }
    std::printf("\n");
  }

  if (!metrics) return;
  std::printf("\nSection IV.A cost metrics at %d cores (%s)\n", scales.back(),
              machine.name.c_str());
  std::printf("%-34s %12s %12s %18s\n", "placement", "nodes", "node-hours",
              "inter-node GB");
  for (GtsVariant v : kAllGtsVariants) {
    auto result = simulate_coupled(gts_scenario(machine, scales.back(), v));
    if (!result.is_ok()) continue;
    std::printf("%-34s %12d %12.3f %18.2f\n",
                std::string(gts_variant_name(v)).c_str(),
                result.value().nodes_used, result.value().node_hours,
                result.value().inter_node_bytes / 1e9);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine_arg = "both";
  bool metrics = true;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      machine_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      metrics = false;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;  // machine,cores,series,total_s,node_hours,internode_gb
    }
  }
  if (csv) std::printf("machine,cores,series,total_s,node_hours,internode_gb\n");
  flexio::bench::Report report("fig6_gts_placement");
  if (machine_arg == "smoky" || machine_arg == "both") {
    if (csv) run_csv(flexio::sim::smoky(), {128, 256, 512, 1024});
    else run_machine(flexio::sim::smoky(), {128, 256, 512, 1024}, metrics);
    report_machine(&report, flexio::sim::smoky(), {128, 256, 512, 1024});
  }
  if (machine_arg == "titan" || machine_arg == "both") {
    if (csv) run_csv(flexio::sim::titan(), {128, 256, 512, 1024, 2048, 4096});
    else run_machine(flexio::sim::titan(), {128, 256, 512, 1024, 2048, 4096},
                     metrics);
    report_machine(&report, flexio::sim::titan(),
                   {128, 256, 512, 1024, 2048, 4096});
  }
  return report.write().is_ok() ? 0 : 1;
}
