// Weighted communication graphs for placement decisions.
//
// Vertices are processes (simulation ranks followed by analytics ranks);
// edge weights are bytes moved per I/O interval. The holistic policy
// records both inter-program movement (from the FlexIO transfer plan) and
// intra-program MPI traffic (from the application's communication pattern)
// in one graph (paper Section III.B.2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/common.h"

namespace flexio::placement {

class CommGraph {
 public:
  explicit CommGraph(int num_vertices);

  int size() const { return static_cast<int>(adjacency_.size()); }

  /// Accumulate symmetric edge weight (self-edges are ignored).
  void add_edge(int u, int v, double weight);

  /// Neighbors of u with accumulated weights.
  const std::map<int, double>& neighbors(int u) const {
    return adjacency_[static_cast<std::size_t>(u)];
  }

  double edge_weight(int u, int v) const;

  /// Sum of all edge weights (each edge once).
  double total_weight() const;

  /// Sum of weights of edges crossing between different parts.
  double cut_weight(const std::vector<int>& part) const;

 private:
  std::vector<std::map<int, double>> adjacency_;
};

/// Build the coupled-run graph: vertices [0, W) are simulation ranks,
/// [W, W+R) analytics ranks. `inter` is the W x R transfer volume matrix;
/// `sim_intra` / `analytics_intra` are optional square matrices of
/// program-internal traffic (pass empty to ignore, as data-aware mapping
/// does).
CommGraph build_coupled_graph(
    const std::vector<std::vector<std::uint64_t>>& inter,
    const std::vector<std::vector<double>>& sim_intra,
    const std::vector<std::vector<double>>& analytics_intra);

/// Intra-program traffic of a 2-D nearest-neighbour halo pattern (GTS-like
/// grids): ranks arranged in the most-square grid, each exchanging
/// `bytes_per_neighbor` with each grid neighbour.
std::vector<std::vector<double>> grid2d_traffic(int ranks,
                                                double bytes_per_neighbor);

/// Same for a 3-D block decomposition (S3D-like).
std::vector<std::vector<double>> grid3d_traffic(int ranks,
                                                double bytes_per_neighbor);

}  // namespace flexio::placement
