// Deterministic random numbers.
//
// The simulator and the workload generators must be reproducible run-to-run
// so the figure harnesses regenerate identical series; every consumer takes
// an explicit seed instead of touching global state.
#pragma once

#include <cstdint>
#include <limits>

namespace flexio {

/// SplitMix64: tiny, fast, well-distributed; good enough for workload
/// synthesis and simulator jitter (not cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Modulo bias is negligible for the bounds used here (<< 2^64).
    return next_u64() % bound;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw: true with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Approximate standard normal via sum of uniforms (Irwin-Hall, n=12).
  double next_gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return s - 6.0;
  }

 private:
  std::uint64_t state_;
};

}  // namespace flexio
