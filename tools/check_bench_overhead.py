#!/usr/bin/env python3
"""Perf-smoke gate: disabled instrumentation must stay (nearly) free.

Reads a BENCH_micro_transports.json report (schema flexio-bench-v1) and
checks that the disabled-path overhead benchmarks cost at most
max(ABS_BUDGET_NS, REL_BUDGET * enabled-counter cost). A disabled counter
or span is one relaxed atomic load plus a branch; if it ever approaches the
enabled fetch_add cost, someone put work on the wrong side of the gate.

With a second report argument (BENCH_micro_pack.json) it also gates the
strided pack kernel: on the 3-D interior-region workload the iterative
kernel must stay at least PACK_SPEEDUP_MIN times faster than the seed's
recursive kernel (both run the same workload, so the time ratio is the
inverse throughput ratio).

Usage: check_bench_overhead.py <BENCH_micro_transports.json>
                               [<BENCH_micro_pack.json>]
"""
import json
import sys

ABS_BUDGET_NS = 5.0  # a load+branch costs ~1 ns; 5 leaves CI noise room
REL_BUDGET = 0.6     # disabled must be well under the enabled fetch_add

DISABLED = ["BM_MetricsCounterDisabled", "BM_TraceSpanDisabled",
            "BM_FlightRecorderDisabled", "BM_FlightRecorderIdle"]
ENABLED = "BM_MetricsCounterEnabled"

PACK_SPEEDUP_MIN = 2.0
PACK_SEED = "BM_PackSeedInterior3D"
PACK_STRIDED = "BM_PackStridedInterior3D"

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def median_ns(report, name):
    for metric in report["metrics"]:
        if metric["name"] == name:
            return metric["median"] * UNIT_TO_NS[metric["unit"]]
    sys.exit(f"FAIL: metric {name!r} missing from report "
             f"(have: {[m['name'] for m in report['metrics']]})")


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "flexio-bench-v1":
        sys.exit(f"FAIL: unexpected schema {report.get('schema')!r} in {path}")
    return report


def check_overhead(report):
    enabled = median_ns(report, ENABLED)
    budget = max(ABS_BUDGET_NS, REL_BUDGET * enabled)
    failed = False
    for name in DISABLED:
        cost = median_ns(report, name)
        verdict = "ok" if cost <= budget else "FAIL"
        print(f"{verdict}: {name} median {cost:.2f} ns "
              f"(budget {budget:.2f} ns, enabled counter {enabled:.2f} ns)")
        failed |= cost > budget
    return failed


def check_pack_speedup(report):
    seed = median_ns(report, PACK_SEED)
    strided = median_ns(report, PACK_STRIDED)
    speedup = seed / strided
    ok = speedup >= PACK_SPEEDUP_MIN
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: pack speedup {speedup:.2f}x "
          f"(seed {seed:.0f} ns vs strided {strided:.0f} ns, "
          f"need >= {PACK_SPEEDUP_MIN:.1f}x)")
    return not ok


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    failed = check_overhead(load_report(sys.argv[1]))
    if len(sys.argv) == 3:
        failed |= check_pack_speedup(load_report(sys.argv[2]))
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
