// Tests for the discrete-event engine, the max-min flow network, the
// machine descriptions, and the cache interference model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/flow_network.h"
#include "sim/machine.h"
#include "sim/machine_xml.h"

namespace flexio::sim {
namespace {

TEST(EventEngineTest, RunsEventsInTimeOrder) {
  EventEngine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(eng.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngineTest, EqualTimesRunFifo) {
  EventEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngineTest, EventsCanScheduleEvents) {
  EventEngine eng;
  double fired_at = -1;
  eng.schedule_at(1.0, [&] {
    eng.schedule_after(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
  EXPECT_EQ(eng.executed(), 2u);
}

TEST(EventEngineTest, CancelPreventsExecution) {
  EventEngine eng;
  bool ran = false;
  const EventId id = eng.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));  // second cancel is a no-op
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.executed(), 0u);
}

TEST(EventEngineTest, RunUntilStopsAtBoundary) {
  EventEngine eng;
  int count = 0;
  eng.schedule_at(1.0, [&] { ++count; });
  eng.schedule_at(2.0, [&] { ++count; });
  eng.schedule_at(3.0, [&] { ++count; });
  eng.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  EXPECT_EQ(eng.pending(), 1u);
  eng.run();
  EXPECT_EQ(count, 3);
}

TEST(FlowNetworkTest, SingleFlowTakesFullCapacity) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  double done_at = -1;
  net.start_flow({l}, 500.0, [&](SimTime t) { done_at = t; });
  eng.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(FlowNetworkTest, TwoFlowsShareFairly) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  double a = -1, b = -1;
  net.start_flow({l}, 500.0, [&](SimTime t) { a = t; });
  net.start_flow({l}, 500.0, [&](SimTime t) { b = t; });
  eng.run();
  // Both get 50 B/s: each 500-byte flow finishes at t=10.
  EXPECT_NEAR(a, 10.0, 1e-9);
  EXPECT_NEAR(b, 10.0, 1e-9);
}

TEST(FlowNetworkTest, ShortFlowFreesBandwidthForLong) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  double a = -1, b = -1;
  net.start_flow({l}, 100.0, [&](SimTime t) { a = t; });  // short
  net.start_flow({l}, 500.0, [&](SimTime t) { b = t; });  // long
  eng.run();
  // Share 50/50 until the short one ends at t=2 (100/50); the long one then
  // has 400 left at 100 B/s -> finishes at t=6.
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 6.0, 1e-9);
}

TEST(FlowNetworkTest, MaxMinAcrossTwoLinks) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId narrow = net.add_link(10.0, "narrow");
  const LinkId wide = net.add_link(100.0, "wide");
  double via_both = -1, wide_only = -1;
  // Flow A crosses narrow+wide; flow B only wide. Max-min: A is capped at
  // 10 by the narrow link, B soaks up the remaining 90 on the wide link.
  net.start_flow({narrow, wide}, 100.0, [&](SimTime t) { via_both = t; });
  net.start_flow({wide}, 900.0, [&](SimTime t) { wide_only = t; });
  eng.run();
  EXPECT_NEAR(via_both, 10.0, 1e-9);
  EXPECT_NEAR(wide_only, 10.0, 1e-9);
}

TEST(FlowNetworkTest, IncastDividesReceiverBandwidth) {
  // The staging-placement effect: N senders into one receiver NIC.
  EventEngine eng;
  FlowNetwork net(&eng);
  std::vector<LinkId> tx;
  for (int i = 0; i < 8; ++i) {
    tx.push_back(net.add_link(100.0, "tx" + std::to_string(i)));
  }
  const LinkId rx = net.add_link(100.0, "rx");
  int finished = 0;
  double last = 0;
  for (int i = 0; i < 8; ++i) {
    net.start_flow({tx[static_cast<std::size_t>(i)], rx}, 100.0,
                   [&](SimTime t) {
                     ++finished;
                     last = t;
                   });
  }
  eng.run();
  EXPECT_EQ(finished, 8);
  // Each sender could do 100 B/s alone, but the shared receiver gives each
  // 12.5 B/s -> 8 seconds.
  EXPECT_NEAR(last, 8.0, 1e-9);
}

TEST(FlowNetworkTest, ZeroByteFlowCompletesImmediately) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  double t = -1;
  net.start_flow({l}, 0.0, [&](SimTime when) { t = when; });
  eng.run();
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(FlowNetworkTest, CompletionCallbackCanChainFlows) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  double second_done = -1;
  net.start_flow({l}, 100.0, [&](SimTime) {
    net.start_flow({l}, 100.0, [&](SimTime t) { second_done = t; });
  });
  eng.run();
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(FlowNetworkTest, LinkStatsAccumulate) {
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(100.0, "link");
  net.start_flow({l}, 300.0, [](SimTime) {});
  eng.run();
  EXPECT_DOUBLE_EQ(net.link_stats(l).bytes_carried, 300.0);
  EXPECT_NEAR(net.link_stats(l).busy_time, 3.0, 1e-9);
  EXPECT_EQ(net.link_name(l), "link");
}

TEST(FlowNetworkTest, ManyFlowsConserveWork) {
  // Property: total bytes / capacity <= makespan <= sum bytes / capacity.
  EventEngine eng;
  FlowNetwork net(&eng);
  const LinkId l = net.add_link(1000.0, "link");
  double total = 0;
  int finished = 0;
  for (int i = 1; i <= 20; ++i) {
    const double bytes = 100.0 * i;
    total += bytes;
    net.start_flow({l}, bytes, [&](SimTime) { ++finished; });
  }
  const SimTime makespan = eng.run();
  EXPECT_EQ(finished, 20);
  // One link, all flows start at t=0: the link is continuously busy, so
  // makespan equals total bytes / capacity.
  EXPECT_NEAR(makespan, total / 1000.0, 1e-6);
}

TEST(MachineTest, TitanShape) {
  const MachineDesc m = titan();
  EXPECT_EQ(m.num_nodes, 18688);
  EXPECT_EQ(m.cores_per_node(), 16);
  EXPECT_EQ(m.sockets_per_node, 2);
  EXPECT_EQ(m.total_cores(), 18688L * 16);
}

TEST(MachineTest, SmokyShape) {
  const MachineDesc m = smoky();
  EXPECT_EQ(m.num_nodes, 80);
  EXPECT_EQ(m.cores_per_node(), 16);
  EXPECT_EQ(m.sockets_per_node, 4);
  EXPECT_DOUBLE_EQ(m.l3_bytes_per_socket, 2.0 * (1 << 20));
}

TEST(MachineTest, LocateRoundTrips) {
  const MachineDesc m = smoky();
  for (long id : {0L, 1L, 15L, 16L, 37L, 1279L}) {
    const CoreLocation loc = m.locate(id);
    EXPECT_EQ(m.core_id(loc), id);
  }
  const CoreLocation loc = m.locate(21);  // node 1, second socket, core 1
  EXPECT_EQ(loc.node, 1);
  EXPECT_EQ(loc.socket, 1);
  EXPECT_EQ(loc.core_in_socket, 1);
}

TEST(MachineTest, CopyBandwidthRespectsNuma) {
  const MachineDesc m = smoky();
  const CoreLocation a{0, 0, 0}, b{0, 0, 3}, c{0, 2, 0};
  EXPECT_DOUBLE_EQ(m.copy_bw(a, b), m.mem_bw_local);
  EXPECT_DOUBLE_EQ(m.copy_bw(a, c), m.mem_bw_remote);
}

TEST(MachineXmlTest, ParsesUserDefinedMachine) {
  auto m = machine_from_xml_text(R"(
    <machine name="mycluster" nodes="128" sockets="2" cores-per-socket="12"
             ghz="2.4" l3-mb="16" nic-gbps="12.5" nic-latency-us="1.0"
             mem-local-gbps="10" mem-remote-gbps="6"
             fs-aggregate-gbps="30" fs-per-node-gbps="1.5"/>)");
  ASSERT_TRUE(m.is_ok()) << m.status().to_string();
  EXPECT_EQ(m.value().name, "mycluster");
  EXPECT_EQ(m.value().num_nodes, 128);
  EXPECT_EQ(m.value().cores_per_node(), 24);
  EXPECT_DOUBLE_EQ(m.value().core_ghz, 2.4);
  EXPECT_DOUBLE_EQ(m.value().l3_bytes_per_socket, 16.0 * (1 << 20));
  EXPECT_DOUBLE_EQ(m.value().nic_bw, 12.5e9);
  EXPECT_DOUBLE_EQ(m.value().nic_latency, 1e-6);
  EXPECT_DOUBLE_EQ(m.value().mem_bw_remote, 6e9);
  EXPECT_DOUBLE_EQ(m.value().fs_aggregate_bw, 30e9);
}

TEST(MachineXmlTest, DefaultsPreservedWhenOmitted) {
  auto m = machine_from_xml_text(R"(<machine name="tiny" nodes="4"/>)");
  ASSERT_TRUE(m.is_ok());
  const MachineDesc defaults;
  EXPECT_EQ(m.value().num_nodes, 4);
  EXPECT_EQ(m.value().sockets_per_node, defaults.sockets_per_node);
  EXPECT_DOUBLE_EQ(m.value().nic_bw, defaults.nic_bw);
}

TEST(MachineXmlTest, RejectsBadInput) {
  EXPECT_FALSE(machine_from_xml_text("<machine/>").is_ok());  // unnamed
  EXPECT_FALSE(machine_from_xml_text("<cluster name=\"x\"/>").is_ok());
  EXPECT_FALSE(
      machine_from_xml_text("<machine name=\"x\" nodes=\"-3\"/>").is_ok());
  EXPECT_FALSE(
      machine_from_xml_text("<machine name=\"x\" nic-gbps=\"fast\"/>")
          .is_ok());
}

TEST(CacheTest, NoCorunnerNoSlowdownWhenFits) {
  CacheWorkload w{1 << 20, 2.0, 0.3};
  EXPECT_DOUBLE_EQ(corun_slowdown(w, 2.0 * (1 << 20), 0.0), 1.0);
}

TEST(CacheTest, EffectiveCapacityPartitioning) {
  const double l3 = 2.0 * (1 << 20);
  // Fits: co-runner carves out its share.
  EXPECT_DOUBLE_EQ(effective_l3(l3, 1 << 20, 512 << 10),
                   l3 - (512 << 10));
  // Overcommitted: proportional share.
  EXPECT_DOUBLE_EQ(effective_l3(l3, 3 << 20, 3 << 20), l3 / 2);
}

TEST(CacheTest, MissInflationFollowsSqrtLaw) {
  CacheWorkload w{4.0 * (1 << 20), 2.0, 1.0};
  const double full = inflated_mpki(w, 4.0 * (1 << 20));
  const double quarter = inflated_mpki(w, 1.0 * (1 << 20));
  EXPECT_DOUBLE_EQ(full, 2.0);
  EXPECT_DOUBLE_EQ(quarter, 4.0);  // (4x demand/capacity)^0.5 = 2x misses
}

TEST(CacheTest, SlowdownScalesWithSensitivity) {
  CacheWorkload insensitive{4 << 20, 2.0, 0.0};
  CacheWorkload sensitive{4 << 20, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(slowdown_factor(insensitive, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(slowdown_factor(sensitive, 4.0), 1.5);
}

TEST(CacheTest, Figure8ShapeReproducible) {
  // Calibration used by the Fig. 8 harness: GTS-like workload sharing a
  // 2 MB Smoky L3 with an analytics co-runner suffers ~1.4-1.5x misses and
  // a few percent runtime loss -- the paper reports +47% and +4.1%.
  const double l3 = 2.0 * (1 << 20);
  CacheWorkload gts{3.0 * (1 << 20), 8.0, 0.09};
  const double cws = 3.5 * (1 << 20);
  const double solo = inflated_mpki(gts, effective_l3(l3, gts.working_set_bytes, 0));
  const double corun =
      inflated_mpki(gts, effective_l3(l3, gts.working_set_bytes, cws));
  const double miss_increase = corun / solo;
  EXPECT_GT(miss_increase, 1.3);
  EXPECT_LT(miss_increase, 1.6);
  const double slowdown =
      slowdown_factor(gts, gts.base_mpki * miss_increase) /
      slowdown_factor(gts, gts.base_mpki * 1.0);
  EXPECT_GT(slowdown, 1.01);
  EXPECT_LT(slowdown, 1.08);
}

}  // namespace
}  // namespace flexio::sim
