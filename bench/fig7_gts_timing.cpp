// Figure 7: Detailed timing of GTS and analytics, 128 MPI processes on
// Smoky.
//
// Case 1 -- GTS with 3 OpenMP threads, analytics on the freed helper core;
// Case 2 -- GTS with 4 OpenMP threads, analytics inline;
// Case 3 -- GTS with 3 OpenMP threads, solo (no I/O, no analytics).
// Per-interval phases are printed as the paper's stacked bars: the two
// simulation cycles, I/O, analysis, and idle time, plus the derived
// headline numbers (the ~2.7% cost of yielding one core, the ~23.6% inline
// analytics weight, and the ~67% helper idle fraction).
#include <cstdio>

#include "apps/scenarios.h"
#include "bench/report.h"

int main() {
  using namespace flexio;
  using namespace flexio::apps;
  bench::Report report("fig7_gts_timing");
  const sim::MachineDesc machine = sim::smoky();
  // 128 MPI processes x 4 cores each = 512 GTS cores.
  const int cores = 512;

  const auto helper =
      simulate_coupled(gts_scenario(machine, cores, GtsVariant::kHelperTopoAware));
  const auto inline_r =
      simulate_coupled(gts_scenario(machine, cores, GtsVariant::kInline));
  auto solo_cfg = gts_scenario(machine, cores, GtsVariant::kSolo);
  solo_cfg.threads_per_rank = 3;  // Case 3 runs GTS with 3 threads, solo
  const auto solo3 = simulate_coupled(solo_cfg);
  if (!helper.is_ok() || !inline_r.is_ok() || !solo3.is_ok()) {
    std::fprintf(stderr, "model failed\n");
    return 1;
  }

  std::printf("Figure 7: Detailed timing, GTS with 128 MPI processes on %s\n",
              machine.name.c_str());
  std::printf("(per I/O interval; cycle1/cycle2 = the two simulation cycles)\n\n");
  std::printf("%-44s %8s %8s %8s %9s %8s\n", "case", "cycle1", "cycle2", "I/O",
              "analysis", "idle");
  auto row = [](const char* name, const apps::PhaseBreakdown& ph,
                bool analytics_on_side) {
    std::printf("%-44s %8.3f %8.3f %8.4f %9.3f %8.3f\n", name,
                ph.sim_compute / 2, ph.sim_compute / 2, ph.sim_io,
                ph.analytics, analytics_on_side ? ph.analytics_idle : 0.0);
  };
  row("Case 1: helper core (GTS 3 threads)", helper.value().interval, true);
  row("Case 2: inline (GTS 4 threads)", inline_r.value().interval, false);
  row("Case 3: solo (GTS 3 threads)", solo3.value().interval, false);

  const auto& h = helper.value().interval;
  const auto& i = inline_r.value().interval;
  const auto& s = solo3.value().interval;
  // Thread-count cost: 4-thread solo compute vs 3-thread solo compute.
  auto solo4_cfg = gts_scenario(machine, cores, GtsVariant::kSolo);
  const auto solo4 = simulate_coupled(solo4_cfg);
  std::printf("\ncost of yielding one core to analytics: +%.1f%%\n",
              100.0 * (s.sim_compute / solo4.value().interval.sim_compute - 1));
  std::printf("inline analytics weight in GTS runtime: %.1f%%\n",
              100.0 * i.analytics / (i.sim_compute + i.sim_mpi + i.analytics));
  std::printf("helper-core analytics idle fraction: %.1f%%\n",
              100.0 * h.analytics_idle / (h.analytics + h.analytics_idle));
  std::printf("helper-core I/O visibility: %.2f%% of the interval\n",
              100.0 * h.sim_io / (h.sim_compute + h.sim_mpi + h.sim_io));

  auto headline = [&report](const std::string& name, double value) {
    report.add_samples(name, "%", 0, 1, {value});
  };
  headline("yield_one_core_cost",
           100.0 * (s.sim_compute / solo4.value().interval.sim_compute - 1));
  headline("inline_analytics_weight",
           100.0 * i.analytics / (i.sim_compute + i.sim_mpi + i.analytics));
  headline("helper_idle_fraction",
           100.0 * h.analytics_idle / (h.analytics + h.analytics_idle));
  headline("helper_io_visibility",
           100.0 * h.sim_io / (h.sim_compute + h.sim_mpi + h.sim_io));
  return report.write().is_ok() ? 0 : 1;
}
