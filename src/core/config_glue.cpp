#include "core/config_glue.h"

#include "util/strings.h"

namespace flexio {

StatusOr<StreamSpec> spec_from_config(const xml::Config& config,
                                      const std::string& group_name,
                                      const EndpointSpec& endpoint,
                                      const std::string& file_dir) {
  const xml::GroupConfig* group = config.group(group_name);
  if (group == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "no adios-group named " + group_name + " in config");
  }
  StreamSpec spec;
  spec.stream = group_name;
  spec.endpoint = endpoint;
  spec.file_dir = file_dir;
  if (const xml::MethodConfig* method = config.method_for(group_name)) {
    spec.method = *method;
  } else {
    // ADIOS default: no <method> element means file output.
    spec.method.group = group_name;
    spec.method.method = "BP";
  }
  return spec;
}

Status validate_against_group(const xml::GroupConfig& group,
                              const adios::VarMeta& meta) {
  const xml::VarConfig* declared = nullptr;
  for (const xml::VarConfig& var : group.vars) {
    if (var.name == meta.name) {
      declared = &var;
      break;
    }
  }
  if (declared == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "variable not declared in group '" + group.name +
                          "': " + meta.name);
  }
  auto declared_type = serial::parse_datatype(declared->type);
  if (!declared_type.is_ok()) return declared_type.status();
  if (declared_type.value() != meta.type) {
    return make_error(
        ErrorCode::kInvalidArgument,
        str_format("variable '%s' declared as %s but written as %s",
                   meta.name.c_str(), declared->type.c_str(),
                   std::string(serial::datatype_name(meta.type)).c_str()));
  }
  const std::size_t declared_rank = declared->dimensions.size();
  const std::size_t written_rank =
      meta.shape == adios::ShapeKind::kScalar ? 0 : meta.block.ndim();
  if (declared_rank != written_rank) {
    return make_error(
        ErrorCode::kInvalidArgument,
        str_format("variable '%s' declared with %zu dimensions, written with "
                   "%zu",
                   meta.name.c_str(), declared_rank, written_rank));
  }
  for (std::size_t d = 0; d < declared_rank; ++d) {
    long long literal = 0;
    if (!parse_int(declared->dimensions[d], &literal)) {
      continue;  // symbolic extent: any runtime value is fine
    }
    if (static_cast<std::uint64_t>(literal) != meta.block.count[d]) {
      return make_error(
          ErrorCode::kInvalidArgument,
          str_format("variable '%s' dimension %zu declared as %lld, written "
                     "as %llu",
                     meta.name.c_str(), d, literal,
                     static_cast<unsigned long long>(meta.block.count[d])));
    }
  }
  return Status::ok();
}

}  // namespace flexio
