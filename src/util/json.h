// Minimal recursive-descent JSON parser: just enough to read back the
// JSON this codebase writes (trace::chrome_json, bench reports,
// metrics::snapshot_json) in tools/flexio_trace and in tests. Numbers are
// doubles; no \uXXXX escapes beyond pass-through.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace flexio::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return *array_; }
  const Object& as_object() const { return *object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document (trailing whitespace allowed).
StatusOr<Value> parse(std::string_view text);

}  // namespace flexio::json
