// Token definitions for CoD-mini.
//
// CoD-mini reproduces the role of ECho/EVPath's CoD ("C on demand"): Data
// Conditioning plug-ins travel between address spaces as C-subset *source
// strings* and are compiled where they land (paper Section II.F). The
// subset: int/double/void functions, locals, control flow (if/while/for),
// arithmetic/comparison/logic, calls, and host-provided builtins for the
// data being conditioned.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flexio::cod {

enum class Tok : std::uint8_t {
  // literals / identifiers
  kNumber, kIdent,
  // keywords
  kInt, kDouble, kVoid, kIf, kElse, kWhile, kFor, kReturn,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon,
  // operators
  kAssign, kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe, kAndAnd, kOrOr, kBang,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier name / literal text
  double number = 0;  // kNumber value
  int line = 1;
};

std::string_view tok_name(Tok kind);

}  // namespace flexio::cod
