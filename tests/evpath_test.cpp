// Tests for the EVPath-like layer: links over all three transports, the
// endpoint/bus connection management, and the directory server.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "evpath/bus.h"
#include "evpath/directory.h"
#include "evpath/link.h"

namespace flexio::evpath {
namespace {

using namespace std::chrono_literals;

ByteView bytes_of(const std::string& s) {
  return ByteView(reinterpret_cast<const std::byte*>(s.data()), s.size());
}

std::string string_of(const std::vector<std::byte>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

// ------------------------------------------------------------ link tests --

class LinkParamTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  void make_pair_for(TransportKind kind) {
    LinkOptions opts;
    opts.timeout = 2s;
    opts.rdma_eager_threshold = 128;
    switch (kind) {
      case TransportKind::kInproc:
        std::tie(send_, recv_) = make_inproc_link("peer", opts);
        break;
      case TransportKind::kShm:
        std::tie(send_, recv_) = make_shm_link("peer", opts);
        break;
      case TransportKind::kRdma: {
        auto tx = fabric_.create_nic("tx");
        auto rx = fabric_.create_nic("rx");
        ASSERT_TRUE(tx.is_ok());
        ASSERT_TRUE(rx.is_ok());
        std::tie(send_, recv_) =
            make_rdma_link("peer", opts, tx.value(), rx.value());
        break;
      }
    }
  }

  Message must_receive() {
    Message msg;
    bool got = false;
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (!got) {
      EXPECT_TRUE(recv_->try_receive(&msg, &got).is_ok());
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "receive timed out";
        break;
      }
    }
    return msg;
  }

  nnti::Fabric fabric_;
  std::unique_ptr<SendLink> send_;
  std::unique_ptr<RecvLink> recv_;
};

TEST_P(LinkParamTest, SmallMessageRoundTrip) {
  make_pair_for(GetParam());
  ASSERT_TRUE(send_->send(bytes_of("hello"), SendMode::kAsync).is_ok());
  const Message msg = must_receive();
  EXPECT_EQ(string_of(msg.payload), "hello");
  EXPECT_EQ(msg.from, "peer");
  EXPECT_FALSE(msg.eos);
  EXPECT_EQ(send_->kind(), GetParam());
  EXPECT_EQ(recv_->kind(), GetParam());
}

TEST_P(LinkParamTest, LargeMessageRoundTrip) {
  make_pair_for(GetParam());
  std::string big(100000, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = char('A' + i % 26);
  ASSERT_TRUE(send_->send(bytes_of(big), SendMode::kAsync).is_ok());
  const Message msg = must_receive();
  EXPECT_EQ(string_of(msg.payload), big);
}

TEST_P(LinkParamTest, OrderPreservedAcrossSizes) {
  make_pair_for(GetParam());
  ASSERT_TRUE(send_->send(bytes_of("first-small"), SendMode::kAsync).is_ok());
  const std::string big(50000, 'B');
  ASSERT_TRUE(send_->send(bytes_of(big), SendMode::kAsync).is_ok());
  ASSERT_TRUE(send_->send(bytes_of("last-small"), SendMode::kAsync).is_ok());
  EXPECT_EQ(string_of(must_receive().payload), "first-small");
  EXPECT_EQ(string_of(must_receive().payload), big);
  EXPECT_EQ(string_of(must_receive().payload), "last-small");
}

TEST_P(LinkParamTest, EosDeliveredOnce) {
  make_pair_for(GetParam());
  ASSERT_TRUE(send_->send(bytes_of("data"), SendMode::kAsync).is_ok());
  ASSERT_TRUE(send_->close().is_ok());
  EXPECT_FALSE(must_receive().eos);
  EXPECT_TRUE(must_receive().eos);
  Message msg;
  bool got = true;
  ASSERT_TRUE(recv_->try_receive(&msg, &got).is_ok());
  EXPECT_FALSE(got);
}

TEST_P(LinkParamTest, StatsCountMessagesAndBytes) {
  make_pair_for(GetParam());
  ASSERT_TRUE(send_->send(bytes_of("12345"), SendMode::kAsync).is_ok());
  const LinkStats s = send_->stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.bytes, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, LinkParamTest,
                         ::testing::Values(TransportKind::kInproc,
                                           TransportKind::kShm,
                                           TransportKind::kRdma),
                         [](const auto& suite_info) {
                           return std::string(
                               transport_kind_name(suite_info.param));
                         });

TEST(RdmaLinkTest, EagerThresholdBoundary) {
  // Messages at the threshold ride the message queue; one byte over uses
  // the rendezvous protocol. Both must round-trip identically.
  nnti::Fabric fabric;
  LinkOptions opts;
  opts.timeout = 2s;
  opts.rdma_eager_threshold = 256;
  auto tx = fabric.create_nic("btx");
  auto rx = fabric.create_nic("brx");
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(rx.is_ok());
  auto [send, recv] = make_rdma_link("peer", opts, tx.value(), rx.value());
  const std::string at_threshold(256, 'a');
  const std::string over_threshold(257, 'b');
  ASSERT_TRUE(send->send(bytes_of(at_threshold), SendMode::kAsync).is_ok());
  ASSERT_TRUE(send->send(bytes_of(over_threshold), SendMode::kAsync).is_ok());
  Message msg;
  bool got = false;
  while (!got) ASSERT_TRUE(recv->try_receive(&msg, &got).is_ok());
  EXPECT_EQ(string_of(msg.payload), at_threshold);
  // The eager message needs no Get; the rendezvous one does.
  EXPECT_EQ(rx.value()->stats().gets, 0u);
  got = false;
  while (!got) ASSERT_TRUE(recv->try_receive(&msg, &got).is_ok());
  EXPECT_EQ(string_of(msg.payload), over_threshold);
  EXPECT_EQ(rx.value()->stats().gets, 1u);
}

TEST(ShmLinkTest, XpmemDisabledStillSyncs) {
  LinkOptions opts;
  opts.timeout = 2s;
  opts.use_xpmem = false;
  auto [send, recv] = make_shm_link("peer", opts);
  const std::string big(50000, 'x');
  std::thread consumer([&recv = recv] {
    Message msg;
    bool got = false;
    while (!got) {
      ASSERT_TRUE(recv->try_receive(&msg, &got).is_ok());
      std::this_thread::yield();
    }
    EXPECT_EQ(msg.payload.size(), 50000u);
  });
  EXPECT_TRUE(send->send(bytes_of(big), SendMode::kSync).is_ok());
  consumer.join();
}

TEST(RdmaLinkTest, SyncSendWaitsForReceiverFetch) {
  nnti::Fabric fabric;
  LinkOptions opts;
  opts.timeout = 2s;
  opts.rdma_eager_threshold = 64;
  auto tx = fabric.create_nic("tx");
  auto rx = fabric.create_nic("rx");
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(rx.is_ok());
  auto [send, recv] = make_rdma_link("peer", opts, tx.value(), rx.value());

  const std::string big(10000, 'z');
  std::thread consumer([&recv = recv] {
    Message msg;
    bool got = false;
    while (!got) {
      ASSERT_TRUE(recv->try_receive(&msg, &got).is_ok());
      std::this_thread::yield();
    }
    EXPECT_EQ(msg.payload.size(), 10000u);
  });
  EXPECT_TRUE(send->send(bytes_of(big), SendMode::kSync).is_ok());
  consumer.join();
}

TEST(RdmaLinkTest, SyncSendTimesOutWithoutReceiver) {
  nnti::Fabric fabric;
  LinkOptions opts;
  opts.timeout = 20ms;
  opts.rdma_eager_threshold = 64;
  auto tx = fabric.create_nic("tx");
  auto rx = fabric.create_nic("rx");
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(rx.is_ok());
  auto [send, recv] = make_rdma_link("peer", opts, tx.value(), rx.value());
  const std::string big(10000, 'z');
  EXPECT_EQ(send->send(bytes_of(big), SendMode::kSync).code(),
            ErrorCode::kTimeout);
}

TEST(RdmaLinkTest, RetriesTransientFaults) {
  nnti::Fabric fabric;
  LinkOptions opts;
  opts.timeout = 2s;
  opts.max_retries = 3;
  auto tx = fabric.create_nic("tx");
  auto rx = fabric.create_nic("rx");
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(rx.is_ok());
  int failures = 2;
  fabric.set_fault_injector([&failures](nnti::Op op, const std::string&,
                                        const std::string&) {
    if (op == nnti::Op::kPutMessage && failures > 0) {
      --failures;
      return make_error(ErrorCode::kUnavailable, "injected flake");
    }
    return Status::ok();
  });
  auto [send, recv] = make_rdma_link("peer", opts, tx.value(), rx.value());
  ASSERT_TRUE(send->send(bytes_of("persist"), SendMode::kAsync).is_ok());
  EXPECT_EQ(send->stats().retries, 2u);
  Message msg;
  bool got = false;
  while (!got) ASSERT_TRUE(recv->try_receive(&msg, &got).is_ok());
  EXPECT_EQ(string_of(msg.payload), "persist");
}

// -------------------------------------------------------- endpoint tests --

TEST(BusTest, TransportSelectedByPlacement) {
  MessageBus bus;
  auto sim0 = bus.create_endpoint("sim0", Location{0, 0});
  auto helper = bus.create_endpoint("helper0", Location{0, 1});
  auto stager = bus.create_endpoint("stager0", Location{5, 0});
  auto inline0 = bus.create_endpoint("inline0", Location{0, 0});
  ASSERT_TRUE(sim0.is_ok());
  ASSERT_TRUE(helper.is_ok());
  ASSERT_TRUE(stager.is_ok());
  ASSERT_TRUE(inline0.is_ok());

  ASSERT_TRUE(sim0.value()->send("helper0", bytes_of("a")).is_ok());
  ASSERT_TRUE(sim0.value()->send("stager0", bytes_of("b")).is_ok());
  ASSERT_TRUE(sim0.value()->send("inline0", bytes_of("c")).is_ok());

  EXPECT_EQ(sim0.value()->transport_to("helper0").value(), TransportKind::kShm);
  EXPECT_EQ(sim0.value()->transport_to("stager0").value(),
            TransportKind::kRdma);
  EXPECT_EQ(sim0.value()->transport_to("inline0").value(),
            TransportKind::kInproc);
}

TEST(BusTest, RecvMultiplexesPeers) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  auto b = bus.create_endpoint("b", Location{0, 1}).value();
  auto c = bus.create_endpoint("c", Location{1, 0}).value();
  ASSERT_TRUE(b->send("a", bytes_of("from-b")).is_ok());
  ASSERT_TRUE(c->send("a", bytes_of("from-c")).is_ok());

  std::map<std::string, std::string> seen;
  for (int i = 0; i < 2; ++i) {
    Message msg;
    ASSERT_TRUE(a->recv(&msg, 2s).is_ok());
    seen[msg.from] = string_of(msg.payload);
  }
  EXPECT_EQ(seen["b"], "from-b");
  EXPECT_EQ(seen["c"], "from-c");
}

TEST(BusTest, RecvFromFiltersPeer) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  auto b = bus.create_endpoint("b", Location{0, 1}).value();
  auto c = bus.create_endpoint("c", Location{0, 2}).value();
  ASSERT_TRUE(b->send("a", bytes_of("from-b")).is_ok());
  ASSERT_TRUE(c->send("a", bytes_of("from-c")).is_ok());
  Message msg;
  ASSERT_TRUE(a->recv_from("c", &msg, 2s).is_ok());
  EXPECT_EQ(msg.from, "c");
  ASSERT_TRUE(a->recv_from("b", &msg, 2s).is_ok());
  EXPECT_EQ(msg.from, "b");
}

TEST(BusTest, SendToUnknownEndpointFails) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  EXPECT_EQ(a->send("ghost", bytes_of("x")).code(), ErrorCode::kNotFound);
}

TEST(BusTest, DuplicateEndpointNameRejected) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  EXPECT_EQ(bus.create_endpoint("a", Location{1, 0}).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(BusTest, RecvTimesOutQuietly) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  Message msg;
  EXPECT_EQ(a->recv(&msg, 10ms).code(), ErrorCode::kTimeout);
}

TEST(BusTest, EosThenLinkRemoved) {
  MessageBus bus;
  auto a = bus.create_endpoint("a", Location{0, 0}).value();
  auto b = bus.create_endpoint("b", Location{0, 1}).value();
  ASSERT_TRUE(b->send("a", bytes_of("payload")).is_ok());
  ASSERT_TRUE(b->close_to("a").is_ok());
  Message msg;
  ASSERT_TRUE(a->recv(&msg, 2s).is_ok());
  EXPECT_FALSE(msg.eos);
  ASSERT_TRUE(a->recv(&msg, 2s).is_ok());
  EXPECT_TRUE(msg.eos);
  EXPECT_EQ(msg.from, "b");
  EXPECT_EQ(a->recv(&msg, 10ms).code(), ErrorCode::kTimeout);
}

TEST(BusTest, PipelineAcrossNodesUnderLoad) {
  MessageBus bus;
  auto writer = bus.create_endpoint("w", Location{0, 0}).value();
  auto reader = bus.create_endpoint("r", Location{1, 0}).value();
  constexpr int kCount = 300;
  std::thread producer([&] {
    std::vector<std::byte> msg;
    for (int i = 0; i < kCount; ++i) {
      msg.resize(128 + static_cast<std::size_t>(i) * 37 % 20000);
      std::memcpy(msg.data(), &i, sizeof i);
      ASSERT_TRUE(writer->send("r", ByteView(msg)).is_ok());
    }
    ASSERT_TRUE(writer->close_to("r").is_ok());
  });
  int received = 0;
  for (;;) {
    Message msg;
    ASSERT_TRUE(reader->recv(&msg, 10s).is_ok());
    if (msg.eos) break;
    int seq = -1;
    std::memcpy(&seq, msg.payload.data(), sizeof seq);
    ASSERT_EQ(seq, received);
    ASSERT_EQ(msg.payload.size(),
              128 + static_cast<std::size_t>(received) * 37 % 20000);
    ++received;
  }
  EXPECT_EQ(received, kCount);
  producer.join();
}

// ------------------------------------------------------- directory tests --

TEST(DirectoryTest, RegisterLookupUnregister) {
  DirectoryServer dir;
  ASSERT_TRUE(dir.register_stream("particles.bp", "sim:coord").is_ok());
  auto contact = dir.lookup("particles.bp", 10ms);
  ASSERT_TRUE(contact.is_ok());
  EXPECT_EQ(contact.value(), "sim:coord");
  ASSERT_TRUE(dir.unregister_stream("particles.bp").is_ok());
  EXPECT_EQ(dir.lookup("particles.bp", 5ms).status().code(),
            ErrorCode::kNotFound);
}

TEST(DirectoryTest, DuplicateRegistrationRejected) {
  DirectoryServer dir;
  ASSERT_TRUE(dir.register_stream("s", "a").is_ok());
  EXPECT_EQ(dir.register_stream("s", "b").code(), ErrorCode::kAlreadyExists);
}

TEST(DirectoryTest, UnregisterUnknownFails) {
  DirectoryServer dir;
  EXPECT_EQ(dir.unregister_stream("nope").code(), ErrorCode::kNotFound);
}

TEST(DirectoryTest, LookupWaitsForLateWriter) {
  DirectoryServer dir;
  std::thread writer([&] {
    // Register only once the reader is observably blocked inside lookup();
    // a fixed sleep races with the reader on loaded single-core machines.
    while (dir.stats().lookup_waits == 0) std::this_thread::yield();
    ASSERT_TRUE(dir.register_stream("late", "writer:coord").is_ok());
  });
  auto contact = dir.lookup("late", 10s);  // reader arrives first
  ASSERT_TRUE(contact.is_ok());
  EXPECT_EQ(contact.value(), "writer:coord");
  EXPECT_GE(dir.stats().lookup_waits, 1u);
  writer.join();
}

TEST(DirectoryTest, StatsShowDiscoveryOnlyRole) {
  DirectoryServer dir;
  ASSERT_TRUE(dir.register_stream("s", "c").is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dir.lookup("s", 10ms).is_ok());
  }
  const DirectoryStats s = dir.stats();
  EXPECT_EQ(s.registrations, 1u);
  EXPECT_EQ(s.lookups, 5u);
}

}  // namespace
}  // namespace flexio::evpath
