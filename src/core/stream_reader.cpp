#include "core/stream_reader.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/backoff.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/stats_server.h"
#include "util/trace.h"

namespace flexio {

namespace {

std::chrono::nanoseconds ns_from_ms(double ms) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ms * 1e6));
}

// Shared with StreamWriter: the same "flexio.handshake.*" registry counters
// count both sides, so a colocated run sees 2x the per-side totals.
metrics::Counter& handshakes_performed_counter() {
  static metrics::Counter& c = metrics::counter("flexio.handshake.performed");
  return c;
}
metrics::Counter& handshakes_skipped_counter() {
  static metrics::Counter& c = metrics::counter("flexio.handshake.skipped");
  return c;
}
metrics::Counter& stream_bytes_received_counter() {
  static metrics::Counter& c = metrics::counter("flexio.bytes.received");
  return c;
}
// Also shared with StreamWriter: both sides cache their transfer plans.
metrics::Counter& plan_cache_hits_counter() {
  static metrics::Counter& c = metrics::counter("flexio.plan.cache_hits");
  return c;
}
metrics::Counter& plan_cache_misses_counter() {
  static metrics::Counter& c = metrics::counter("flexio.plan.cache_misses");
  return c;
}
// Per-step phase attribution, reader side: wire latency of the step's data
// messages (send stamp -> decode), unpack/placement time, and the whole
// announce -> data-complete chain.
metrics::Histogram& step_transfer_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.step.transfer.ns");
  return h;
}
metrics::Histogram& step_unpack_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.step.unpack.ns");
  return h;
}
// Parallel-unpack critical path: the slowest per-piece placement task of
// the step. Sum (above) is thread-count invariant total work; the gap to
// this max is what the read pool reclaims from the step's wall clock.
metrics::Histogram& step_unpack_critical_hist() {
  static metrics::Histogram& h =
      metrics::histogram("flexio.step.unpack.critical.ns");
  return h;
}
metrics::Histogram& step_total_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.step.total.ns");
  return h;
}

/// Encoded per-rank contribution to the read request (Step 1.a payload).
std::vector<std::byte> encode_rank_request(const wire::ReadRequest& req) {
  return wire::encode(req);
}

}  // namespace

StreamReader::~StreamReader() { (void)close(); }

void StreamReader::observe_data_msg(const wire::DataMsg& m) {
  if (!m.trace) return;
  trace::clock_sample(m.trace->send_ns);
  const std::uint64_t now = metrics::now_ns();
  if (now > m.trace->send_ns) {
    transfer_accum_[m.step] += now - m.trace->send_ns;
  }
}

Status StreamReader::open(Runtime* rt, const StreamSpec& spec) {
  trace::Span span("reader.open");
  rt_ = rt;
  spec_ = spec;
  stream_id_ = wire::stream_id_hash(spec.stream);
  program_ = spec.endpoint.program;
  rank_ = spec.endpoint.rank;
  timeout_ = ns_from_ms(spec.method.timeout_ms);
  FLEXIO_CHECK(program_ != nullptr);
  FLEXIO_CHECK(rank_ >= 0 && rank_ < program_->size());
  if (spec.method.telemetry || !spec.method.stats_addr.empty()) {
    telemetry::configure(spec.method.stats_addr, spec.method.telemetry);
  }

  if (spec.method.method != "FLEXIO") {
    // Offline mode: wait (bounded) for the writer to finish its files --
    // this is the "seamlessly switch analytics to run offline" path. The
    // retry delay backs off geometrically up to a hard cap, so a writer
    // that is seconds away does not get hammered and one that is minutes
    // away does not burn the whole deadline asleep.
    const auto deadline = std::chrono::steady_clock::now() + timeout_;
    util::Backoff backoff;
    for (;;) {
      auto bp = adios::BpReader::open(spec.file_dir, spec.stream);
      if (bp.is_ok()) {
        bp_ = std::move(bp).value();
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) return bp.status();
      backoff.sleep();
    }
    writer_size_ = bp_->num_writers();
    bp_steps_ = bp_->steps();
    return Status::ok();
  }

  evpath::LinkOptions lopts;
  lopts.queue_entries = spec.method.queue_entries;
  lopts.queue_payload_bytes = spec.method.queue_payload_bytes;
  lopts.pool_bytes = spec.method.pool_bytes;
  lopts.rdma_pool_bytes = spec.method.rdma_pool_bytes;
  lopts.timeout = timeout_;
  lopts.max_retries = spec.method.max_retries;
  MuxOptions mux;
  mux.shared_links = spec.method.shared_links;
  mux.credit_bytes = spec.method.credit_bytes;
  mux.drr_quantum_bytes = spec.method.drr_quantum_bytes;
  mux.timeout = timeout_;
  auto ch = rt->registry().attach(spec.stream, program_->name(), rank_,
                                  spec.endpoint.location, lopts, mux);
  if (!ch.is_ok()) return ch.status();
  channel_ = std::move(ch).value();

  // Unpack concurrency, the mirror of the writer's pack pool: method
  // config wins, FLEXIO_READ_THREADS is the fallback, serial the default.
  // Spawned once per stream; perform_reads dispatches per-piece placement
  // tasks into it every step.
  read_threads_ = spec.method.read_threads > 0
                      ? spec.method.read_threads
                      : util::WorkPool::env_read_threads(1);
  if (read_threads_ > 1) {
    read_pool_ = std::make_shared<util::WorkPool>(read_threads_ - 1);
  }

  membership_ = rt->directory().membership_enabled();
  if (membership_ && spec.late_join) return open_late_join(rt);
  if (membership_) {
    // Join before the coordinator contacts the writer, with a barrier so
    // every rank is in the group before the first announce can observe it:
    // the initial epoch is deterministically the program size.
    auto joined =
        rt->directory().join_member(spec.stream, rank_, channel_->name());
    if (!joined.is_ok()) return joined.status();
    incarnation_ = joined.value().incarnation;
    join_epoch_ = joined.value().join_epoch;
    FLEXIO_RETURN_IF_ERROR(program_->barrier(rank_, timeout_));
  }

  std::vector<std::byte> info;
  if (rank_ == Program::kCoordinator) {
    // Directory lookup, then the open handshake with the writer coordinator.
    auto contact = rt->directory().lookup(spec.stream, timeout_);
    if (!contact.is_ok()) return contact.status();
    writer_coord_ = contact.value();
    // Both sides must multiplex the same way: a dedicated-mode reader
    // sending unprefixed frames at a shared writer endpoint (or the
    // reverse) would only ever be dropped at the demux. Fail loudly here.
    if (StreamRegistry::is_shared_name(writer_coord_) != channel_->shared()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "stream multiplexing mode mismatch: writer contact " +
                            writer_coord_);
    }
    wire::OpenRequest req;
    req.reader_program = program_->name();
    req.reader_size = program_->size();
    FLEXIO_RETURN_IF_ERROR(
        channel_->send(writer_coord_, ByteView(wire::encode(req))));
    evpath::Message msg;
    FLEXIO_RETURN_IF_ERROR(channel_->recv_from(writer_coord_, &msg, timeout_));
    auto reply = wire::decode_open_reply(ByteView(msg.payload));
    if (!reply.is_ok()) return reply.status();
    writer_program_ = reply.value().writer_program;
    writer_size_ = reply.value().writer_size;
    caching_ = static_cast<xml::CachingLevel>(reply.value().caching);
    batching_ = reply.value().batching;
    serial::BufWriter w;
    w.put_string(writer_program_);
    w.put_string(writer_coord_);
    w.put_varint(static_cast<std::uint64_t>(writer_size_));
    w.put_u8(reply.value().caching);
    info = w.take();
  }
  FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &info, timeout_));
  if (rank_ != Program::kCoordinator) {
    serial::BufReader r{ByteView(info)};
    FLEXIO_RETURN_IF_ERROR(r.get_string(&writer_program_));
    FLEXIO_RETURN_IF_ERROR(r.get_string(&writer_coord_));
    std::uint64_t size = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&size));
    writer_size_ = static_cast<int>(size);
    std::uint8_t caching = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_u8(&caching));
    caching_ = static_cast<xml::CachingLevel>(caching);
  }
  if (membership_) {
    start_heartbeats();
    if (rank_ == Program::kCoordinator) {
      // Failure detector: blocked collective waits poll this hook, which
      // sweeps the directory's TTLs and excises dead or departed ranks --
      // unblocking the very round that polled it. It also excises a rank
      // whose directory incarnation is newer than the one the rounds were
      // applied with: a respawn can land inside a single sweep window, so
      // "alive" may describe a joiner that is not in the rounds yet while
      // the participant the rounds wait on is already gone.
      applied_inc_ = std::make_shared<AppliedIncarnations>();
      {
        const evpath::MembershipView view =
            rt_->directory().membership(spec_.stream);
        std::lock_guard<std::mutex> lock(applied_inc_->mutex);
        for (const evpath::Member& m : view.members) {
          applied_inc_->inc[m.rank] = m.incarnation;
        }
      }
      Runtime* rt_ptr = rt_;
      Program* prog = program_;
      const std::string stream = spec_.stream;
      auto applied = applied_inc_;
      program_->set_liveness_hook([rt_ptr, prog, stream, applied]() {
        const evpath::MembershipView view =
            rt_ptr->directory().membership(stream);
        for (const evpath::Member& m : view.members) {
          if (m.rank == Program::kCoordinator || !prog->is_active(m.rank)) {
            continue;
          }
          bool gone = m.state != evpath::MemberState::kAlive;
          if (!gone) {
            std::lock_guard<std::mutex> lock(applied->mutex);
            const auto it = applied->inc.find(m.rank);
            gone = it != applied->inc.end() && m.incarnation > it->second;
          }
          if (gone) prog->deactivate(m.rank);
        }
      });
    }
  }
  return Status::ok();
}

Status StreamReader::open_late_join(Runtime* rt) {
  // Bootstrap the open state from the directory's open-info blob instead
  // of a live OpenRequest exchange: the writer is mid-run and its
  // coordinator is not listening for opens.
  auto info = rt->directory().lookup_info(spec_.stream, timeout_);
  if (!info.is_ok()) return info.status();
  auto reply = wire::decode_open_reply(ByteView(info.value()));
  if (!reply.is_ok()) return reply.status();
  writer_program_ = reply.value().writer_program;
  writer_size_ = reply.value().writer_size;
  caching_ = static_cast<xml::CachingLevel>(reply.value().caching);
  batching_ = reply.value().batching;
  auto contact = rt->directory().lookup(spec_.stream, timeout_);
  if (!contact.is_ok()) return contact.status();
  writer_coord_ = contact.value();
  if (StreamRegistry::is_shared_name(writer_coord_) != channel_->shared()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "stream multiplexing mode mismatch: writer contact " +
                          writer_coord_);
  }

  // Rejoin under a fresh incarnation. The previous incarnation of this
  // rank may still be counted alive (its TTL has not expired yet), in
  // which case the join is refused -- retry with bounded backoff until the
  // sweep fences it.
  util::Backoff backoff;
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    auto joined =
        rt->directory().join_member(spec_.stream, rank_, channel_->name());
    if (joined.is_ok()) {
      incarnation_ = joined.value().incarnation;
      join_epoch_ = joined.value().join_epoch;
      break;
    }
    if (joined.status().code() != ErrorCode::kAlreadyExists ||
        std::chrono::steady_clock::now() > deadline) {
      return joined.status();
    }
    backoff.sleep();
  }
  // Beat from the moment of joining: admission can take up to a full step
  // and must not race the TTL.
  start_heartbeats();
  // The coordinator admits this rank when it applies the first membership
  // view whose epoch covers our join (an epoch-changed announce). Gating
  // on the join epoch (not on the rank slot being active) keeps this from
  // mistaking the dead predecessor's not-yet-excised slot for admission.
  return program_->await_admission(rank_, join_epoch_, timeout_);
}

void StreamReader::start_heartbeats() {
  hb_stop_.store(false, std::memory_order_release);
  hb_stats_.prime();  // piggybacked deltas start from the join, not birth
  hb_stats_seq_ = 0;
  const auto ttl = rt_->directory().membership_options().ttl;
  auto interval = ttl / 4;
  if (interval < std::chrono::milliseconds(1)) {
    interval = std::chrono::milliseconds(1);
  }
  if (interval > std::chrono::milliseconds(100)) {
    interval = std::chrono::milliseconds(100);
  }
  hb_thread_ = std::thread([this, interval] {
    while (!hb_stop_.load(std::memory_order_acquire)) {
      const std::uint64_t pause =
          hb_pause_until_ns_.load(std::memory_order_acquire);
      if (pause == 0 || metrics::now_ns() >= pause) {
        wire::Heartbeat hb;
        hb.stream = spec_.stream;
        hb.rank = rank_;
        hb.incarnation = incarnation_;
        hb.send_ns = metrics::now_ns();
        if (telemetry::publish_enabled()) {
          // Piggyback this rank's registry deltas since the last beat;
          // empty when nothing changed (the trailer is then omitted).
          hb.program = spec_.endpoint.program != nullptr
                           ? spec_.endpoint.program->name()
                           : "";
          hb.stats = hb_stats_.next_line(++hb_stats_seq_, hb.send_ns);
        }
        const Status st = rt_->deliver_heartbeat(ByteView(wire::encode(hb)));
        if (st.code() == ErrorCode::kFailedPrecondition) {
          // Fenced: the directory declared us dead while we were merely
          // slow. We must stop participating -- a zombie cannot rejoin the
          // group under its old incarnation.
          fenced_.store(true, std::memory_order_release);
          return;
        }
        if (st.code() == ErrorCode::kNotFound) return;  // stream closed
      }
      // Sleep the interval in 1 ms slices so stop_heartbeats is prompt.
      auto remaining = interval;
      while (remaining.count() > 0 &&
             !hb_stop_.load(std::memory_order_acquire)) {
        const auto slice = remaining < std::chrono::milliseconds(1)
                               ? remaining
                               : std::chrono::nanoseconds(
                                     std::chrono::milliseconds(1));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  });
}

void StreamReader::stop_heartbeats() {
  hb_stop_.store(true, std::memory_order_release);
  if (hb_thread_.joinable()) hb_thread_.join();
}

void StreamReader::pause_heartbeats_for(std::chrono::nanoseconds d) {
  hb_pause_until_ns_.store(
      metrics::now_ns() + static_cast<std::uint64_t>(d.count()),
      std::memory_order_release);
}

Status StreamReader::leave() {
  if (!membership_ || bp_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "leave requires stream mode with membership enabled");
  }
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "leave with an open step (drain it first)");
  }
  if (rank_ == Program::kCoordinator) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "the coordinator rank cannot leave");
  }
  if (left_ || crashed_ || closed_) return Status::ok();
  stop_heartbeats();
  FLEXIO_RETURN_IF_ERROR(rt_->directory().leave_member(spec_.stream, rank_));
  program_->deactivate(rank_);
  channel_.reset();
  left_ = true;
  closed_ = true;
  return Status::ok();
}

void StreamReader::simulate_crash() {
  stop_heartbeats();
  crashed_ = true;
  closed_ = true;
  // Destroying the channel tears down this stream's inbound path. In
  // dedicated mode that destroys the endpoint and its links, so senders
  // observe receiver-gone fast-fails; in shared mode only this stream's
  // demux inbox detaches (its frames drop at the demux) and the shared
  // endpoint lives on for the other streams. Either way the directory is
  // *not* told: the failure detector has to notice the missing
  // heartbeats, exactly as with a real crash.
  channel_.reset();
}

void StreamReader::apply_membership(std::uint64_t announce_epoch) {
  // Prefer the view the writer shipped ahead of the announce (it is the
  // exact view behind the announce's epoch); fall back to the directory.
  std::vector<wire::MemberInfo> members;
  if (pending_membership_) {
    members = std::move(pending_membership_->members);
    pending_membership_.reset();
  } else {
    const evpath::MembershipView view =
        rt_->directory().membership(spec_.stream);
    for (const evpath::Member& m : view.members) {
      members.push_back(wire::MemberInfo{
          m.rank, m.contact, m.incarnation,
          static_cast<std::uint8_t>(m.state), m.join_epoch});
    }
  }
  for (const wire::MemberInfo& m : members) {
    if (m.rank == Program::kCoordinator) continue;
    if (m.state == 0 && m.join_epoch <= announce_epoch) {
      // Admit: the writer planned this epoch with the joiner in view, so
      // it is safe to include it in the collective rounds from here on.
      // admit() also records the epoch so a late joiner's admission gate
      // distinguishes this view from ones predating its join.
      if (applied_inc_) {
        std::lock_guard<std::mutex> lock(applied_inc_->mutex);
        applied_inc_->inc[m.rank] = m.incarnation;
      }
      program_->admit(m.rank, announce_epoch);
    } else if (m.state != 0 && program_->is_active(m.rank)) {
      program_->deactivate(m.rank);
    }
  }
}

Status StreamReader::next_control(std::vector<std::byte>* out) {
  // Coordinator-only: pull messages until a control frame appears; stash
  // data that raced ahead of the announce.
  if (!control_stash_.empty()) {
    *out = std::move(control_stash_.front());
    control_stash_.pop_front();
    return Status::ok();
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    evpath::Message msg;
    FLEXIO_RETURN_IF_ERROR(channel_->recv(&msg, timeout_));
    if (msg.eos) continue;  // link teardown marker, not a protocol frame
    auto type = wire::peek_type(ByteView(msg.payload));
    if (!type.is_ok()) return type.status();
    if (type.value() == wire::MsgType::kData) {
      auto data = wire::decode_data(ByteView(msg.payload));
      if (!data.is_ok()) return data.status();
      observe_data_msg(data.value());
      stash_.push_back(std::move(data).value());
      if (std::chrono::steady_clock::now() > deadline) {
        return make_error(ErrorCode::kTimeout, "control frame never arrived");
      }
      continue;
    }
    *out = std::move(msg.payload);
    return Status::ok();
  }
}

StatusOr<StepId> StreamReader::begin_step_file() {
  if (bp_cursor_ >= bp_steps_.size()) {
    return make_error(ErrorCode::kEndOfStream, "no more steps in file");
  }
  step_ = bp_steps_[bp_cursor_];
  in_step_ = true;
  return step_;
}

StatusOr<StepId> StreamReader::begin_step_stream() {
  trace::Span span("reader.begin_step");
  const bool do_exchange =
      steps_completed_ == 0 || caching_ != xml::CachingLevel::kAll;
  // Coordinator resolves the step (or EOS), everyone else learns by bcast.
  std::vector<std::byte> frame;
  if (rank_ == Program::kCoordinator) {
    if (do_exchange) {
      if (eos_ && control_stash_.empty() && step_ >= close_last_step_) {
        // The Close frame was already consumed during perform_reads (it
        // can arrive interleaved with the final step's data) and no
        // announces are stashed: go straight to the EOS broadcast instead
        // of waiting for a control frame that will never come.
        frame = writer_report_ ? wire::encode(*writer_report_)
                               : wire::encode_close(close_last_step_);
        FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &frame, timeout_));
        eos_delivered_ = true;
        return make_error(ErrorCode::kEndOfStream, "writer closed the stream");
      }
      Status st = next_control(&frame);
      if (!st.is_ok()) return st;
      auto type = wire::peek_type(ByteView(frame));
      if (!type.is_ok()) return type.status();
      while (type.value() == wire::MsgType::kMonitorReport ||
             type.value() == wire::MsgType::kMembershipUpdate) {
        if (type.value() == wire::MsgType::kMonitorReport) {
          auto report = wire::decode_monitor_report(ByteView(frame));
          if (!report.is_ok()) return report.status();
          writer_report_ = report.value();
        } else {
          // Membership view shipped ahead of an epoch-changed announce;
          // applied when the announce itself is processed below.
          auto upd = wire::decode_membership_update(ByteView(frame));
          if (!upd.is_ok()) return upd.status();
          pending_membership_ = std::move(upd).value();
        }
        st = next_control(&frame);
        if (!st.is_ok()) return st;
        type = wire::peek_type(ByteView(frame));
        if (!type.is_ok()) return type.status();
      }
      if (type.value() == wire::MsgType::kClose) {
        // EOS: propagate the writer-side monitoring report to every rank
        // by broadcasting it in place of the close frame.
        auto last = wire::decode_close(ByteView(frame));
        if (!last.is_ok()) return last.status();
        close_last_step_ = last.value();
        frame = writer_report_ ? wire::encode(*writer_report_)
                               : wire::encode_close(close_last_step_);
      } else if (type.value() != wire::MsgType::kStepAnnounce) {
        return make_error(ErrorCode::kInternal,
                          "unexpected control frame in begin_step");
      }
    } else {
      // Fully cached handshake: the next step is identified by the first
      // data message to arrive (or the close frame). A real StepAnnounce
      // arriving here means the writer forced a re-exchange (membership
      // epoch change); it takes precedence over pacing by data -- and it
      // cannot race data for its own step, because the writers only send
      // once this rank's coordinator has answered the announce.
      bool have_frame = false;
      while (!have_frame) {
        if (!control_stash_.empty()) {
          frame = std::move(control_stash_.front());
          control_stash_.pop_front();
          break;
        }
        StepId next = -1;
        for (const wire::DataMsg& m : stash_) {
          if (m.step > step_ && (next < 0 || m.step < next)) next = m.step;
        }
        if (next >= 0) {
          wire::StepAnnounce ann;
          ann.step = next;
          frame = wire::encode(ann);  // blocks omitted; ranks reuse cache
          break;
        }
        if (eos_ && step_ >= close_last_step_) {
          // All steps up to the writer's last are consumed: really done.
          frame = writer_report_ ? wire::encode(*writer_report_)
                                 : wire::encode_close(close_last_step_);
          break;
        }
        evpath::Message msg;
        FLEXIO_RETURN_IF_ERROR(channel_->recv(&msg, timeout_));
        if (msg.eos) continue;
        auto type = wire::peek_type(ByteView(msg.payload));
        if (!type.is_ok()) return type.status();
        switch (type.value()) {
          case wire::MsgType::kData: {
            auto data = wire::decode_data(ByteView(msg.payload));
            if (!data.is_ok()) return data.status();
            observe_data_msg(data.value());
            stash_.push_back(std::move(data).value());
            break;
          }
          case wire::MsgType::kClose: {
            auto last = wire::decode_close(ByteView(msg.payload));
            if (!last.is_ok()) return last.status();
            close_last_step_ = last.value();
            eos_ = true;
            break;
          }
          case wire::MsgType::kMonitorReport: {
            auto report = wire::decode_monitor_report(ByteView(msg.payload));
            if (!report.is_ok()) return report.status();
            writer_report_ = report.value();
            break;
          }
          case wire::MsgType::kStepAnnounce:
            frame = std::move(msg.payload);
            have_frame = true;
            break;
          case wire::MsgType::kMembershipUpdate: {
            auto upd = wire::decode_membership_update(ByteView(msg.payload));
            if (!upd.is_ok()) return upd.status();
            pending_membership_ = std::move(upd).value();
            break;
          }
          default:
            return make_error(ErrorCode::kInternal,
                              "unexpected frame while pacing cached steps");
        }
      }
    }
  }
  if (membership_ && rank_ == Program::kCoordinator) {
    // Apply membership changes *before* the broadcast, so the round forms
    // over exactly the ranks the announce's epoch covers: joiners are
    // admitted (waking their await_admission) and the departed excised.
    auto ft = wire::peek_type(ByteView(frame));
    if (ft.is_ok() && ft.value() == wire::MsgType::kStepAnnounce) {
      auto ann = wire::decode_step_announce(ByteView(frame));
      if (!ann.is_ok()) return ann.status();
      if (ann.value().membership_epoch) {
        apply_membership(*ann.value().membership_epoch);
      }
    }
  }
  FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &frame, timeout_));
  auto frame_type = wire::peek_type(ByteView(frame));
  if (!frame_type.is_ok()) return frame_type.status();
  if (frame_type.value() == wire::MsgType::kClose ||
      frame_type.value() == wire::MsgType::kMonitorReport) {
    if (frame_type.value() == wire::MsgType::kMonitorReport) {
      auto report = wire::decode_monitor_report(ByteView(frame));
      if (!report.is_ok()) return report.status();
      writer_report_ = report.value();
    }
    eos_ = true;
    eos_delivered_ = true;
    return make_error(ErrorCode::kEndOfStream, "writer closed the stream");
  }
  auto ann = wire::decode_step_announce(ByteView(frame));
  if (!ann.is_ok()) return ann.status();
  step_ = ann.value().step;
  have_announce_epoch_ = ann.value().membership_epoch.has_value();
  if (have_announce_epoch_) announce_epoch_ = *ann.value().membership_epoch;
  have_announce_ctx_ = false;
  if (ann.value().trace) {
    announce_ctx_ = *ann.value().trace;
    have_announce_ctx_ = true;
    trace::clock_sample(announce_ctx_.send_ns);
  }
  if (!ann.value().blocks.empty() || steps_completed_ == 0) {
    step_blocks_ = std::move(ann.value().blocks);
  }
  in_step_ = true;
  return step_;
}

StatusOr<StepId> StreamReader::begin_step() {
  if (fenced()) {
    return make_error(ErrorCode::kUnavailable,
                      "rank fenced: declared dead by the directory");
  }
  if (closed_) {
    return make_error(ErrorCode::kFailedPrecondition, "reader closed");
  }
  if (in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "step already open");
  }
  if (eos_delivered_) {
    // EOS is collective: it is only final once begin_step broadcast it to
    // every rank (the raw Close frame can race ahead of the final steps'
    // data and is tracked separately via close_last_step_).
    return make_error(ErrorCode::kEndOfStream, "stream already ended");
  }
  pending_reads_.clear();
  pending_pg_.clear();
  pg_blocks_.clear();
  return bp_ ? begin_step_file() : begin_step_stream();
}

Status StreamReader::schedule_read(const std::string& var,
                                   const adios::Box& selection,
                                   MutableByteView dst) {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "schedule_read outside step");
  }
  // Validate against the announced metadata (stream mode) or the file
  // index (file mode) and check the destination size.
  serial::DataType type = serial::DataType::kDouble;
  adios::Dims global_dims;
  bool found = false;
  if (bp_) {
    auto blocks = bp_->inquire(step_, var);
    if (!blocks.is_ok()) return blocks.status();
    type = blocks.value()[0].meta.type;
    global_dims = blocks.value()[0].meta.global_dims;
    found = true;
  } else {
    for (const wire::BlockInfo& b : step_blocks_) {
      if (b.meta.name == var &&
          b.meta.shape == adios::ShapeKind::kGlobalArray) {
        type = b.meta.type;
        global_dims = b.meta.global_dims;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return make_error(ErrorCode::kNotFound, "no global array named " + var);
  }
  // The selection must live inside the announced global space. (Within it,
  // the reader receives whatever the writers covered; asking beyond the
  // array's bounds is a caller bug and would otherwise stall silently.)
  if (selection.ndim() != global_dims.size() ||
      !contains(adios::Box{adios::Dims(global_dims.size(), 0), global_dims},
                selection)) {
    return make_error(ErrorCode::kOutOfRange,
                      "selection outside the global space of " + var);
  }
  if (dst.size() != selection.elements() * serial::size_of(type)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "destination buffer size mismatch for " + var);
  }
  pending_reads_.push_back(PendingRead{var, selection, dst});
  return Status::ok();
}

Status StreamReader::schedule_read_pg(int writer_rank) {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "schedule_read_pg outside step");
  }
  if (writer_rank < 0 || writer_rank >= writer_size_) {
    return make_error(ErrorCode::kOutOfRange, "no such writer rank");
  }
  pending_pg_.push_back(writer_rank);
  return Status::ok();
}

Status StreamReader::install_plugin(const std::string& var,
                                    const std::string& source,
                                    bool run_at_writer) {
  if (rank_ != Program::kCoordinator) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "plug-ins are installed by the coordinator rank");
  }
  if (bp_) {
    return make_error(ErrorCode::kUnimplemented,
                      "plug-ins require stream mode");
  }
  pending_plugins_.push_back(wire::PluginInstall{var, source, run_at_writer});
  return Status::ok();
}

Status StreamReader::remove_plugin(const std::string& var, bool from_writer) {
  return install_plugin(var, "", from_writer);
}

Status StreamReader::migrate_plugin(const std::string& var,
                                    const std::string& source,
                                    bool to_writer) {
  FLEXIO_RETURN_IF_ERROR(remove_plugin(var, /*from_writer=*/!to_writer));
  return install_plugin(var, source, to_writer);
}

Status StreamReader::place_piece(wire::DataPiece piece, int writer_rank,
                                 std::vector<PgBlock>* pg_out) {
  if (piece.meta.shape == adios::ShapeKind::kLocalArray) {
    PgBlock block;
    block.writer_rank = writer_rank;
    const auto plug = reader_plugins_.find(piece.meta.name);
    if (plug != reader_plugins_.end()) {
      PerfMonitor::ScopedTimer pt(&monitor_, "plugin.exec");
      auto transformed = plug->second(piece);
      if (!transformed.is_ok()) return transformed.status();
      block.meta = transformed.value().meta;
      block.payload = std::move(transformed.value().payload);
    } else {
      block.meta = piece.meta;
      block.payload = std::move(piece.payload);  // the piece is ours: no copy
    }
    pg_out->push_back(std::move(block));
    return Status::ok();
  }
  // Global-array piece: route the region into every overlapping pending
  // read (normally exactly one).
  const wire::DataPiece* effective = &piece;
  wire::DataPiece transformed_storage;
  const auto plug = reader_plugins_.find(piece.meta.name);
  if (plug != reader_plugins_.end()) {
    PerfMonitor::ScopedTimer pt(&monitor_, "plugin.exec");
    auto transformed = plug->second(piece);
    if (!transformed.is_ok()) return transformed.status();
    transformed_storage = std::move(transformed).value();
    if (transformed_storage.payload.size() != piece.payload.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "reader-side plug-in changed global-array size");
    }
    effective = &transformed_storage;
  }
  const std::size_t elem = serial::size_of(effective->meta.type);
  bool placed = false;
  for (PendingRead& pr : pending_reads_) {
    if (pr.var != effective->meta.name) continue;
    adios::Box overlap;
    if (!intersect(pr.selection, effective->region, &overlap)) continue;
    adios::copy_region(effective->region, effective->payload.data(),
                       pr.selection, pr.dst.data(), overlap, elem);
    placed = true;
  }
  if (!placed) {
    return make_error(ErrorCode::kInternal,
                      "received piece matches no pending read: " +
                          effective->meta.name);
  }
  return Status::ok();
}

Status StreamReader::perform_reads_file() {
  PerfMonitor::ScopedTimer t(&monitor_, "read.file");
  for (const PendingRead& pr : pending_reads_) {
    FLEXIO_RETURN_IF_ERROR(bp_->read_global(step_, pr.var, pr.selection,
                                            pr.dst));
    monitor_.add_count("bytes.read", pr.dst.size());
  }
  for (int w : pending_pg_) {
    for (const adios::BpBlockRef& ref : bp_->blocks_for_writer(step_, w)) {
      if (ref.meta.shape != adios::ShapeKind::kLocalArray) continue;
      PgBlock block;
      block.writer_rank = w;
      block.meta = ref.meta;
      block.payload.resize(ref.payload_bytes);
      FLEXIO_RETURN_IF_ERROR(
          bp_->read_block(ref, MutableByteView(block.payload)));
      monitor_.add_count("bytes.read", block.payload.size());
      pg_blocks_.push_back(std::move(block));
    }
  }
  return Status::ok();
}

Status StreamReader::perform_reads_stream() {
  // Annotate this step's spans with {stream, step} and parent them under
  // the writer's end_step span from the announce's trace context.
  trace::StepScope step_scope(stream_id_, step_,
                              have_announce_ctx_ ? announce_ctx_.span_id : 0);
  trace::Span span("reader.perform_reads");
  // An announce stamped with an epoch other than the one the cached
  // handshake was exchanged under invalidates the cache: re-exchange and
  // re-plan even when CACHING_ALL would skip it.
  const bool epoch_changed = membership_ && have_announce_epoch_ &&
                             announce_epoch_ != cached_epoch_;
  const bool do_exchange = steps_completed_ == 0 ||
                           caching_ != xml::CachingLevel::kAll || epoch_changed;

  // Assemble this rank's request.
  wire::ReadRequest mine;
  mine.step = step_;
  for (const PendingRead& pr : pending_reads_) {
    mine.selections.push_back(wire::SelectionInfo{rank_, pr.var, pr.selection});
  }
  for (int w : pending_pg_) {
    mine.pg_requests.push_back(wire::PgRequestInfo{rank_, w});
  }

  if (do_exchange) {
    trace::Span hs_span("reader.handshake");
    PerfMonitor::ScopedTimer t(&monitor_, "handshake.exchange");
    // Step 1.a: gather selections at the coordinator.
    std::vector<std::vector<std::byte>> all;
    FLEXIO_RETURN_IF_ERROR(program_->gather(
        rank_, ByteView(encode_rank_request(mine)), &all, timeout_));
    std::vector<std::byte> merged_raw;
    if (rank_ == Program::kCoordinator) {
      wire::ReadRequest merged;
      merged.step = step_;
      for (const auto& raw : all) {
        if (raw.empty()) continue;  // inactive rank slot (elastic gather)
        auto part = wire::decode_read_request(ByteView(raw));
        if (!part.is_ok()) return part.status();
        for (auto& s : part.value().selections) {
          merged.selections.push_back(std::move(s));
        }
        for (auto& p : part.value().pg_requests) {
          merged.pg_requests.push_back(p);
        }
      }
      merged.plugins = pending_plugins_;
      pending_plugins_.clear();
      merged.trace = wire::TraceContext{stream_id_, step_, span.id(),
                                        metrics::now_ns()};
      // Echo the announce's epoch: the collective agreement point. The
      // writer adopts it as the epoch its fresh handshake state is valid
      // for; every reader rank picks it up from the broadcast below.
      if (membership_ && have_announce_epoch_) {
        merged.membership_epoch = announce_epoch_;
      }
      merged_raw = wire::encode(merged);
      // Step 2: ship the reader-side distribution to the writer side.
      FLEXIO_RETURN_IF_ERROR(
          channel_->send(writer_coord_, ByteView(merged_raw)));
    }
    // Step 3: every reader rank learns the full request (and plug-ins).
    FLEXIO_RETURN_IF_ERROR(program_->broadcast(rank_, &merged_raw, timeout_));
    auto merged = wire::decode_read_request(ByteView(merged_raw));
    if (!merged.is_ok()) return merged.status();
    cached_request_ = std::move(merged).value();
    have_cached_request_ = true;
    if (cached_request_.membership_epoch) {
      cached_epoch_ = *cached_request_.membership_epoch;
    }
    monitor_.add_count("handshake.performed", 1);
    handshakes_performed_counter().inc();

    for (const wire::PluginInstall& p : cached_request_.plugins) {
      if (p.run_at_writer) continue;
      if (p.source.empty()) {
        reader_plugins_.erase(p.var);
        continue;
      }
      PluginCompiler compiler = rt_->plugin_compiler();
      if (!compiler) {
        return make_error(ErrorCode::kUnimplemented,
                          "no plug-in compiler installed in runtime");
      }
      auto fn = compiler(p.source);
      if (!fn.is_ok()) return fn.status();
      reader_plugins_[p.var] = std::move(fn).value();
    }
    // Expected pieces for this rank (the exchange may have changed either
    // side's distribution, so the plan is recomputed -- a cache miss).
    cached_expected_ =
        pieces_to_reader(plan_transfers(step_blocks_, cached_request_), rank_);
    plan_cache_misses_counter().inc();
    monitor_.add_count("plan.cache_miss", 1);
  } else {
    monitor_.add_count("handshake.skipped", 1);
    handshakes_skipped_counter().inc();
    plan_cache_hits_counter().inc();
    monitor_.add_count("plan.cache_hit", 1);
    if (rank_ == Program::kCoordinator && !pending_plugins_.empty()) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "plug-in (un)installation needs handshakes; "
                        "CACHING_ALL skips them after the first step");
    }
    // CACHING_ALL contract: selections must not change across steps.
    wire::ReadRequest cached_mine;
    cached_mine.step = step_;
    for (const auto& s : cached_request_.selections) {
      if (s.reader_rank == rank_) cached_mine.selections.push_back(s);
    }
    for (const auto& p : cached_request_.pg_requests) {
      if (p.reader_rank == rank_) cached_mine.pg_requests.push_back(p);
    }
    if (cached_mine.selections.size() != mine.selections.size() ||
        cached_mine.pg_requests.size() != mine.pg_requests.size()) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "CACHING_ALL requires identical selections each step");
    }
    for (std::size_t i = 0; i < mine.selections.size(); ++i) {
      if (mine.selections[i].var != cached_mine.selections[i].var ||
          !(mine.selections[i].box == cached_mine.selections[i].box)) {
        return make_error(
            ErrorCode::kFailedPrecondition,
            "CACHING_ALL requires identical selections each step");
      }
    }
  }

  // Step 4.a: receive the packed strides. Expected pieces are bucketed by
  // (writer_rank, var) so each arriving piece probes only its own bucket
  // instead of scanning the full expectation list -- O(pieces log buckets)
  // instead of O(pieces x expected).
  PerfMonitor::ScopedTimer t(&monitor_, "read.receive");
  std::multimap<std::pair<int, std::string>, const TransferPiece*> remaining;
  for (const TransferPiece& p : cached_expected_) {
    remaining.emplace(std::make_pair(p.writer_rank, p.var), &p);
  }
  // Matched pieces in arrival order. Placement (plug-in + copy/move) is
  // deferred to one batch after the drain so the read pool can run it in
  // parallel; the frames themselves drain strictly serially, keeping
  // receive order and control-frame handling unchanged.
  struct MatchedPiece {
    wire::DataPiece piece;
    int writer_rank = 0;
  };
  std::vector<MatchedPiece> matched;
  matched.reserve(cached_expected_.size());
  auto try_match = [&](wire::DataMsg& msg) -> StatusOr<bool> {
    bool any = false;
    for (wire::DataPiece& piece : msg.pieces) {
      const auto [lo, hi] = remaining.equal_range(
          std::make_pair(msg.writer_rank, piece.meta.name));
      auto hit = remaining.end();
      for (auto it = lo; it != hi; ++it) {
        const TransferPiece* e = it->second;
        if (!e->whole_block && !(e->region == piece.region)) continue;
        hit = it;
        break;
      }
      if (hit == remaining.end()) {
        return make_error(ErrorCode::kInternal,
                          "unexpected data piece for " + piece.meta.name);
      }
      remaining.erase(hit);
      const std::size_t piece_bytes = piece.bytes().size();
      matched.push_back(MatchedPiece{std::move(piece), msg.writer_rank});
      monitor_.add_count("bytes.received", piece_bytes);
      stream_bytes_received_counter().add(piece_bytes);
      any = true;
    }
    return any;
  };

  // Drain the stash first (messages that raced ahead).
  for (std::size_t i = 0; i < stash_.size();) {
    if (stash_[i].step == step_) {
      auto matched = try_match(stash_[i]);
      if (!matched.is_ok()) return matched.status();
      stash_[i] = std::move(stash_.back());
      stash_.pop_back();
    } else {
      ++i;
    }
  }
  while (!remaining.empty()) {
    evpath::Message msg;
    FLEXIO_RETURN_IF_ERROR(channel_->recv(&msg, timeout_));
    if (msg.eos) continue;
    auto type = wire::peek_type(ByteView(msg.payload));
    if (!type.is_ok()) return type.status();
    switch (type.value()) {
      case wire::MsgType::kData: {
        auto data = wire::decode_data(ByteView(msg.payload));
        if (!data.is_ok()) return data.status();
        observe_data_msg(data.value());
        if (data.value().step == step_) {
          auto matched = try_match(data.value());
          if (!matched.is_ok()) return matched.status();
        } else if (data.value().step > step_) {
          stash_.push_back(std::move(data).value());
        } else {
          return make_error(ErrorCode::kInternal, "stale data message");
        }
        break;
      }
      case wire::MsgType::kClose: {
        // Data for this step may still be in flight on other links; record
        // the close and keep waiting for the remaining pieces.
        auto last = wire::decode_close(ByteView(msg.payload));
        if (!last.is_ok()) return last.status();
        close_last_step_ = last.value();
        eos_ = true;
        break;
      }
      case wire::MsgType::kMonitorReport: {
        auto report = wire::decode_monitor_report(ByteView(msg.payload));
        if (!report.is_ok()) return report.status();
        writer_report_ = report.value();
        break;
      }
      case wire::MsgType::kStepAnnounce:
        // The writer ran ahead: the next step's announce overtook the tail
        // of this step's data on other links. Keep it for begin_step.
        control_stash_.push_back(std::move(msg.payload));
        break;
      case wire::MsgType::kMembershipUpdate: {
        // Rode ahead of a future epoch-changed announce; hold it for the
        // begin_step that consumes that announce.
        auto upd = wire::decode_membership_update(ByteView(msg.payload));
        if (!upd.is_ok()) return upd.status();
        pending_membership_ = std::move(upd).value();
        break;
      }
      default:
        return make_error(ErrorCode::kInternal,
                          "unexpected control frame during perform_reads");
    }
  }

  // Placement batch: one plug-in + place task per matched piece, the
  // mirror of the writer's per-reader pack tasks. Expected pieces cover
  // disjoint destination regions and per-task PgBlock slots keep delivery
  // in arrival order, so tasks never write the same byte. Per-task timing
  // slots are disjoint indices read after run_batch's completion wait (the
  // synchronization point). All-run + first-error-wins, like the writer:
  // one bad piece must not suppress its siblings' placement.
  const std::size_t n_matched = matched.size();
  std::vector<std::uint64_t> task_ns(n_matched, 0);
  Status placed = Status::ok();
  if (read_pool_ != nullptr && n_matched > 1) {
    std::vector<std::vector<PgBlock>> pg_slots(n_matched);
    // Tasks inherit this thread's trace identity: their spans parent under
    // reader.perform_reads in the stitched timeline.
    const trace::TaskContext tctx = trace::TaskContext::capture();
    std::vector<util::WorkPool::Task> tasks;
    tasks.reserve(n_matched);
    for (std::size_t i = 0; i < n_matched; ++i) {
      tasks.push_back(
          [this, tctx, &matched, &pg_slots, &task_ns, i]() -> Status {
            trace::TaskScope task_identity(tctx);
            trace::Span task_span("reader.unpack_task");
            const std::uint64_t t0 = metrics::now_ns();
            const Status st = place_piece(std::move(matched[i].piece),
                                          matched[i].writer_rank,
                                          &pg_slots[i]);
            task_ns[i] = metrics::now_ns() - t0;
            return st;
          });
    }
    placed = read_pool_->run_batch(std::move(tasks));
    for (std::vector<PgBlock>& slot : pg_slots) {
      for (PgBlock& block : slot) pg_blocks_.push_back(std::move(block));
    }
  } else {
    // Serial path: same deferred batch, executed inline in arrival order.
    for (std::size_t i = 0; i < n_matched; ++i) {
      const std::uint64_t t0 = metrics::now_ns();
      const Status st = place_piece(std::move(matched[i].piece),
                                    matched[i].writer_rank, &pg_blocks_);
      task_ns[i] = metrics::now_ns() - t0;
      if (placed.is_ok()) placed = st;
    }
  }
  if (!placed.is_ok()) return placed;
  std::uint64_t unpack_ns = 0;
  std::uint64_t unpack_max = 0;
  for (const std::uint64_t t_ns : task_ns) {
    unpack_ns += t_ns;
    if (t_ns > unpack_max) unpack_max = t_ns;
  }

  // Fold this step's phase timings into the registry histograms and the
  // per-endpoint monitor. Transfer time may have accumulated before the
  // step opened (stashed early arrivals), hence the per-step map.
  std::uint64_t transfer_ns = 0;
  if (const auto it = transfer_accum_.find(step_);
      it != transfer_accum_.end()) {
    transfer_ns = it->second;
    transfer_accum_.erase(it);
  }
  step_transfer_hist().record(transfer_ns);
  step_unpack_hist().record(unpack_ns);
  step_unpack_critical_hist().record(unpack_max);
  monitor_.add_count("phase.transfer_ns", transfer_ns);
  monitor_.add_count("phase.unpack_ns", unpack_ns);
  monitor_.add_count("phase.unpack_critical_ns", unpack_max);
  if (have_announce_ctx_ && announce_ctx_.step == step_) {
    const std::uint64_t now = metrics::now_ns();
    const std::uint64_t total =
        now > announce_ctx_.send_ns ? now - announce_ctx_.send_ns : 0;
    step_total_hist().record(total);
    monitor_.add_count("phase.total_ns", total);
  }
  return Status::ok();
}

Status StreamReader::perform_reads() {
  if (fenced()) {
    return make_error(ErrorCode::kUnavailable,
                      "rank fenced: declared dead by the directory");
  }
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "perform_reads outside step");
  }
  return bp_ ? perform_reads_file() : perform_reads_stream();
}

StatusOr<double> StreamReader::scalar_double(const std::string& name) const {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  if (bp_) {
    auto blocks = bp_->inquire(step_, name);
    if (!blocks.is_ok()) return blocks.status();
    const auto& ref = blocks.value()[0];
    if (ref.meta.type != serial::DataType::kDouble) {
      return make_error(ErrorCode::kInvalidArgument, name + " is not double");
    }
    double v = 0;
    std::vector<std::byte> raw(sizeof v);
    FLEXIO_RETURN_IF_ERROR(
        const_cast<adios::BpReader*>(bp_.get())
            ->read_block(ref, MutableByteView(raw)));
    std::memcpy(&v, raw.data(), sizeof v);
    return v;
  }
  for (const wire::BlockInfo& b : step_blocks_) {
    if (b.meta.name == name && b.meta.shape == adios::ShapeKind::kScalar &&
        b.meta.type == serial::DataType::kDouble) {
      double v = 0;
      if (b.scalar_payload.size() != sizeof v) {
        return make_error(ErrorCode::kInternal, "scalar payload size");
      }
      std::memcpy(&v, b.scalar_payload.data(), sizeof v);
      return v;
    }
  }
  return make_error(ErrorCode::kNotFound, "no double scalar named " + name);
}

StatusOr<std::int64_t> StreamReader::scalar_int(const std::string& name) const {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  if (bp_) {
    auto blocks = bp_->inquire(step_, name);
    if (!blocks.is_ok()) return blocks.status();
    const auto& ref = blocks.value()[0];
    std::int64_t v = 0;
    std::vector<std::byte> raw(sizeof v);
    FLEXIO_RETURN_IF_ERROR(
        const_cast<adios::BpReader*>(bp_.get())
            ->read_block(ref, MutableByteView(raw)));
    std::memcpy(&v, raw.data(), sizeof v);
    return v;
  }
  for (const wire::BlockInfo& b : step_blocks_) {
    if (b.meta.name == name && b.meta.shape == adios::ShapeKind::kScalar &&
        b.meta.type == serial::DataType::kInt64) {
      std::int64_t v = 0;
      if (b.scalar_payload.size() != sizeof v) {
        return make_error(ErrorCode::kInternal, "scalar payload size");
      }
      std::memcpy(&v, b.scalar_payload.data(), sizeof v);
      return v;
    }
  }
  return make_error(ErrorCode::kNotFound, "no int scalar named " + name);
}

StatusOr<std::vector<adios::VarMeta>> StreamReader::inquire(
    const std::string& var) const {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  std::vector<adios::VarMeta> out;
  if (bp_) {
    auto blocks = bp_->inquire(step_, var);
    if (!blocks.is_ok()) return blocks.status();
    for (const auto& ref : blocks.value()) out.push_back(ref.meta);
    return out;
  }
  for (const wire::BlockInfo& b : step_blocks_) {
    if (b.meta.name == var) out.push_back(b.meta);
  }
  if (out.empty()) {
    return make_error(ErrorCode::kNotFound, "no variable named " + var);
  }
  return out;
}

Status StreamReader::end_step() {
  if (!in_step_) {
    return make_error(ErrorCode::kFailedPrecondition, "no step open");
  }
  if (!bp_) {
    // Record the step boundary as a (near zero-duration) span carrying the
    // step annotation, so merged timelines show where each reader step
    // closed and parent it under the matching writer step.
    trace::StepScope step_scope(stream_id_, step_,
                                have_announce_ctx_ ? announce_ctx_.span_id : 0);
    trace::Span span("reader.end_step");
  }
  in_step_ = false;
  ++steps_completed_;
  if (bp_) ++bp_cursor_;
  return Status::ok();
}

Status StreamReader::close() {
  if (closed_) {
    stop_heartbeats();  // idempotent; covers leave()/simulate_crash() paths
    return Status::ok();
  }
  closed_ = true;
  if (membership_ && !bp_) {
    stop_heartbeats();
    if (rank_ == Program::kCoordinator) program_->set_liveness_hook(nullptr);
    if (!eos_delivered_ && !left_ && !crashed_ && !fenced()) {
      // Closing mid-stream is a graceful departure. After EOS the group is
      // being retired with the stream; no leave to announce.
      (void)rt_->directory().leave_member(spec_.stream, rank_);
    }
  }
  return Status::ok();
}

}  // namespace flexio
