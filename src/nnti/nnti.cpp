#include "nnti/nnti.h"

#include <cstring>
#include <thread>

#include "util/metrics.h"

namespace flexio::nnti {

namespace {
// Fabric-wide frame accounting. The putmsg counters obey, by construction:
//   delivered == sent_ok - dropped + duplicated
// and a consumer that drains every queue observes received == delivered.
// tests/trace_test.cpp checks these against the FaultPlan's decision log.
metrics::Counter& putmsg_sent() {
  static metrics::Counter& c = metrics::counter("nnti.putmsg.sent");
  return c;
}
metrics::Counter& putmsg_delivered() {
  static metrics::Counter& c = metrics::counter("nnti.putmsg.delivered");
  return c;
}
metrics::Counter& putmsg_dropped() {
  static metrics::Counter& c = metrics::counter("nnti.putmsg.dropped");
  return c;
}
metrics::Counter& putmsg_duplicated() {
  static metrics::Counter& c = metrics::counter("nnti.putmsg.duplicated");
  return c;
}
metrics::Counter& putmsg_received() {
  static metrics::Counter& c = metrics::counter("nnti.putmsg.received");
  return c;
}
metrics::Counter& get_bytes_counter() {
  static metrics::Counter& c = metrics::counter("nnti.get.bytes");
  return c;
}
metrics::Counter& put_bytes_counter() {
  static metrics::Counter& c = metrics::counter("nnti.put.bytes");
  return c;
}
metrics::Counter& register_counter() {
  static metrics::Counter& c = metrics::counter("nnti.registrations");
  return c;
}
// Bytes sitting in NIC message queues fabric-wide: delivered but not yet
// polled by the consumer. The flight recorder samples this to show
// transport backpressure building while a run is live.
metrics::Gauge& inflight_bytes_gauge() {
  static metrics::Gauge& g = metrics::gauge("nnti.inflight.bytes");
  return g;
}
}  // namespace

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kConnect: return "connect";
    case Op::kPutMessage: return "putmsg";
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kRegister: return "register";
  }
  return "unknown";
}

Nic::Nic(Fabric* fabric, std::string name, std::size_t queue_depth)
    : fabric_(fabric), name_(std::move(name)), queue_depth_(queue_depth) {}

Nic::~Nic() { fabric_->remove(name_); }

StatusOr<MemRegion> Nic::register_memory(void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot register empty region");
  }
  FLEXIO_RETURN_IF_ERROR(fabric_->inject(Op::kRegister, name_, ""));
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = next_key_++;
  regions_[key] = Region{static_cast<std::byte*>(addr), len};
  ++stats_.registrations;
  if (metrics::enabled()) register_counter().inc();
  return MemRegion{key, len};
}

Status Nic::unregister_memory(const MemRegion& region) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.erase(region.key) == 0) {
    return make_error(ErrorCode::kNotFound, "region not registered");
  }
  ++stats_.deregistrations;
  return Status::ok();
}

Status Nic::put_message(const std::string& peer, ByteView msg) {
  return put_message_impl(peer, std::vector<std::byte>(msg.begin(), msg.end()));
}

Status Nic::put_message_iov(const std::string& peer,
                            std::span<const ByteView> frags) {
  std::size_t total = 0;
  for (const ByteView& f : frags) total += f.size();
  std::vector<std::byte> gathered;
  gathered.reserve(total);
  for (const ByteView& f : frags) {
    gathered.insert(gathered.end(), f.begin(), f.end());
  }
  return put_message_impl(peer, std::move(gathered));
}

Status Nic::put_message_impl(const std::string& peer,
                             std::vector<std::byte>&& msg) {
  const FaultAction action =
      fabric_->inject_action(Op::kPutMessage, name_, peer);
  if (!action.status.is_ok()) return action.status;
  if (action.drop) {
    // Fire-and-forget: silently lost. The caller sees success, so this
    // counts as a sent frame that never gets delivered.
    putmsg_sent().inc();
    putmsg_dropped().inc();
    return Status::ok();
  }
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  std::vector<std::byte> dup;
  if (action.duplicate) dup = msg;  // copy before the frame moves away
  const Status st = target->deliver(std::move(msg));
  if (st.is_ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.messages_sent;
    // One gate check for both touches on the send fast path.
    if (metrics::enabled()) {
      putmsg_sent().inc();
      putmsg_delivered().inc();
    }
  }
  if (st.is_ok() && action.duplicate) {
    // A duplicated frame that finds the peer queue full is simply dropped;
    // the original delivery decides the caller-visible outcome.
    if (target->deliver(std::move(dup)).is_ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.messages_sent;
      if (metrics::enabled()) {
        putmsg_delivered().inc();
        putmsg_duplicated().inc();
      }
    }
  }
  return st;
}

Status Nic::deliver(std::vector<std::byte>&& msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (message_queue_.size() >= queue_depth_) {
    return make_error(ErrorCode::kResourceExhausted,
                      "message queue full at " + name_);
  }
  if (metrics::enabled()) {
    inflight_bytes_gauge().add(static_cast<std::int64_t>(msg.size()));
  }
  message_queue_.push_back(std::move(msg));
  queue_cv_.notify_one();
  return Status::ok();
}

Status Nic::poll_message(std::vector<std::byte>* out,
                         std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!queue_cv_.wait_for(lock, timeout,
                          [this] { return !message_queue_.empty(); })) {
    return make_error(ErrorCode::kTimeout, "poll_message timed out");
  }
  *out = std::move(message_queue_.front());
  message_queue_.pop_front();
  ++stats_.messages_received;
  if (metrics::enabled()) {
    putmsg_received().inc();
    inflight_bytes_gauge().sub(static_cast<std::int64_t>(out->size()));
  }
  return Status::ok();
}

Status Nic::read_region(std::uint64_t key, std::uint64_t offset,
                        MutableByteView dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = regions_.find(key);
  if (it == regions_.end()) {
    return make_error(ErrorCode::kNotFound, "remote region not registered");
  }
  if (offset + dst.size() > it->second.len) {
    return make_error(ErrorCode::kOutOfRange, "RDMA get out of bounds");
  }
  std::memcpy(dst.data(), it->second.addr + offset, dst.size());
  return Status::ok();
}

Status Nic::write_region(std::uint64_t key, std::uint64_t offset,
                         ByteView src) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = regions_.find(key);
  if (it == regions_.end()) {
    return make_error(ErrorCode::kNotFound, "remote region not registered");
  }
  if (offset + src.size() > it->second.len) {
    return make_error(ErrorCode::kOutOfRange, "RDMA put out of bounds");
  }
  std::memcpy(it->second.addr + offset, src.data(), src.size());
  return Status::ok();
}

Status Nic::get(const std::string& peer, const MemRegion& remote,
                std::uint64_t offset, MutableByteView dst) {
  const FaultAction action = fabric_->inject_action(Op::kGet, name_, peer);
  if (!action.status.is_ok()) return action.status;
  if (action.drop) {
    // A one-sided read that vanishes on the wire is a timeout at the
    // initiator: nothing ever lands in dst.
    return make_error(ErrorCode::kTimeout, "injected drop of RDMA get");
  }
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  const int transfers = action.duplicate ? 2 : 1;
  for (int i = 0; i < transfers; ++i) {
    FLEXIO_RETURN_IF_ERROR(target->read_region(remote.key, offset, dst));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.gets += static_cast<std::uint64_t>(transfers);
  stats_.bytes_get += static_cast<std::uint64_t>(transfers) * dst.size();
  if (metrics::enabled()) {
    get_bytes_counter().add(static_cast<std::uint64_t>(transfers) *
                            dst.size());
  }
  return Status::ok();
}

Status Nic::put(const std::string& peer, ByteView src, const MemRegion& remote,
                std::uint64_t offset) {
  const FaultAction action = fabric_->inject_action(Op::kPut, name_, peer);
  if (!action.status.is_ok()) return action.status;
  if (action.drop) {
    return make_error(ErrorCode::kTimeout, "injected drop of RDMA put");
  }
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  const int transfers = action.duplicate ? 2 : 1;
  for (int i = 0; i < transfers; ++i) {
    FLEXIO_RETURN_IF_ERROR(target->write_region(remote.key, offset, src));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.puts += static_cast<std::uint64_t>(transfers);
  stats_.bytes_put += static_cast<std::uint64_t>(transfers) * src.size();
  if (metrics::enabled()) {
    put_bytes_counter().add(static_cast<std::uint64_t>(transfers) *
                            src.size());
  }
  return Status::ok();
}

bool Nic::peer_alive(const std::string& peer) const {
  return fabric_->lookup(peer) != nullptr;
}

NicStats Nic::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StatusOr<std::shared_ptr<Nic>> Fabric::create_nic(const std::string& name,
                                                  std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nics_.find(name);
  if (it != nics_.end() && !it->second.expired()) {
    return make_error(ErrorCode::kAlreadyExists, "nic exists: " + name);
  }
  std::shared_ptr<Nic> nic(new Nic(this, name, queue_depth));
  nics_[name] = nic;
  return nic;
}

Status Fabric::connect(const std::string& from, const std::string& to) {
  FLEXIO_RETURN_IF_ERROR(inject(Op::kConnect, from, to));
  if (!lookup(to)) {
    return make_error(ErrorCode::kNotFound, "no such peer: " + to);
  }
  return Status::ok();
}

void Fabric::set_fault_injector(FaultInjector injector) {
  if (!injector) {
    set_fault_hook(nullptr);
    return;
  }
  set_fault_hook([injector = std::move(injector)](
                     Op op, const std::string& local,
                     const std::string& peer) {
    FaultAction action;
    action.status = injector(op, local, peer);
    return action;
  });
}

void Fabric::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  hook_ = std::move(hook);
}

std::shared_ptr<Nic> Fabric::lookup(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nics_.find(name);
  return it == nics_.end() ? nullptr : it->second.lock();
}

Status Fabric::inject(Op op, const std::string& local,
                      const std::string& peer) {
  const FaultAction action = inject_action(op, local, peer);
  if (!action.status.is_ok()) return action.status;
  if (action.drop) {
    // Ops routed through this helper (connect, register) are synchronous:
    // losing one on the wire looks like a timeout to the initiator.
    return make_error(ErrorCode::kTimeout,
                      std::string("injected drop of ") +
                          std::string(op_name(op)));
  }
  return Status::ok();
}

FaultAction Fabric::inject_action(Op op, const std::string& local,
                                  const std::string& peer) {
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hook = hook_;
  }
  if (!hook) return FaultAction{};
  FaultAction action = hook(op, local, peer);
  if (action.delay.count() > 0) std::this_thread::sleep_for(action.delay);
  return action;
}

void Fabric::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  nics_.erase(name);
}

}  // namespace flexio::nnti
