// Tests for CoD-mini: lexer, parser, compiler, VM, and the DC plug-in
// adapter over stream data pieces.
#include <gtest/gtest.h>

#include <cstring>

#include "cod/lexer.h"
#include "cod/parser.h"
#include "cod/plugin.h"
#include "cod/program.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include <thread>

namespace flexio::cod {
namespace {

using serial::DataType;

// ---------------------------------------------------------------- lexer --

TEST(LexerTest, TokenizesOperatorsAndNumbers) {
  auto tokens = tokenize("x = 3.5e2 + 4 % 2; // comment\ny == x != 1");
  ASSERT_TRUE(tokens.is_ok()) << tokens.status().to_string();
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, Tok::kIdent);
  EXPECT_EQ(t[1].kind, Tok::kAssign);
  EXPECT_EQ(t[2].kind, Tok::kNumber);
  EXPECT_DOUBLE_EQ(t[2].number, 350.0);
  EXPECT_EQ(t[3].kind, Tok::kPlus);
  EXPECT_EQ(t[5].kind, Tok::kPercent);
  EXPECT_EQ(t[7].kind, Tok::kSemicolon);
  EXPECT_EQ(t[9].kind, Tok::kEq);
  EXPECT_EQ(t[11].kind, Tok::kNe);
  EXPECT_EQ(t.back().kind, Tok::kEnd);
}

TEST(LexerTest, KeywordsAndComments) {
  auto tokens = tokenize("int double void if else while for return /* all\nof this skipped */ x");
  ASSERT_TRUE(tokens.is_ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, Tok::kInt);
  EXPECT_EQ(t[2].kind, Tok::kVoid);
  EXPECT_EQ(t[7].kind, Tok::kReturn);
  EXPECT_EQ(t[8].kind, Tok::kIdent);
  EXPECT_EQ(t[8].line, 2);  // comment newline counted
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(tokenize("a @ b").is_ok());
  EXPECT_FALSE(tokenize("/* never closed").is_ok());
}

// --------------------------------------------------------------- parser --

TEST(ParserTest, ParsesFunctionShapes) {
  auto ast = parse(R"(
    double add(double a, double b) { return a + b; }
    void transform() { int i; i = 0; }
  )");
  ASSERT_TRUE(ast.is_ok()) << ast.status().to_string();
  ASSERT_EQ(ast.value().functions.size(), 2u);
  EXPECT_TRUE(ast.value().functions[0].returns_value);
  EXPECT_EQ(ast.value().functions[0].params.size(), 2u);
  EXPECT_FALSE(ast.value().functions[1].returns_value);
  EXPECT_NE(ast.value().find("add"), nullptr);
  EXPECT_EQ(ast.value().find("missing"), nullptr);
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(parse("void f() { if }").is_ok());
  EXPECT_FALSE(parse("void f() { x = ; }").is_ok());
  EXPECT_FALSE(parse("void f() {").is_ok());
  EXPECT_FALSE(parse("void f(void x) {}").is_ok());
  EXPECT_FALSE(parse("double 3() {}").is_ok());
  EXPECT_FALSE(parse("void f() {} void f() {}").is_ok());  // duplicate
  EXPECT_FALSE(parse("x = 3;").is_ok());  // statements only inside functions
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto ast = parse("void f() {\n\n  x = ;\n}");
  ASSERT_FALSE(ast.is_ok());
  EXPECT_NE(ast.status().message().find("line 3"), std::string::npos);
}

// --------------------------------------------------------- compiler+vm --

/// Compile and run `source`'s function `fn` with args, with an optional
/// prepared environment.
StatusOr<double> eval(const std::string& source, const std::string& fn,
                      std::vector<double> args = {},
                      Environment* env_in = nullptr,
                      const VmLimits& limits = {}) {
  auto ast = parse(source);
  if (!ast.is_ok()) return ast.status();
  Environment local_env;
  Environment* env = env_in != nullptr ? env_in : &local_env;
  auto program = compile(ast.value(), *env);
  if (!program.is_ok()) return program.status();
  return run(program.value(), fn, std::span<const double>(args), *env, limits);
}

TEST(VmTest, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("double f() { return 2 + 3 * 4; }", "f").value(), 14);
  EXPECT_DOUBLE_EQ(eval("double f() { return (2 + 3) * 4; }", "f").value(), 20);
  EXPECT_DOUBLE_EQ(eval("double f() { return -3 + 1; }", "f").value(), -2);
  EXPECT_DOUBLE_EQ(eval("double f() { return 7 % 3; }", "f").value(), 1);
  EXPECT_DOUBLE_EQ(eval("double f() { return 10 / 4; }", "f").value(), 2.5);
}

TEST(VmTest, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(eval("double f() { return 3 < 4 && 4 <= 4; }", "f").value(), 1);
  EXPECT_DOUBLE_EQ(eval("double f() { return 3 > 4 || 0; }", "f").value(), 0);
  EXPECT_DOUBLE_EQ(eval("double f() { return !(1 == 2); }", "f").value(), 1);
  EXPECT_DOUBLE_EQ(eval("double f() { return 5 >= 6; }", "f").value(), 0);
}

TEST(VmTest, ShortCircuitSkipsSideEffects) {
  // Division by zero on the right side must not run when short-circuited.
  EXPECT_DOUBLE_EQ(eval("double f() { return 0 && 1 / 0; }", "f").value(), 0);
  EXPECT_DOUBLE_EQ(eval("double f() { return 1 || 1 / 0; }", "f").value(), 1);
  // But it does run when reached.
  EXPECT_FALSE(eval("double f() { return 1 && 1 / 0; }", "f").is_ok());
}

TEST(VmTest, ControlFlow) {
  EXPECT_DOUBLE_EQ(
      eval("double f(double x) { if (x > 0) return 1; else return 2; }", "f",
           {5})
          .value(),
      1);
  EXPECT_DOUBLE_EQ(
      eval("double f(double x) { if (x > 0) return 1; else return 2; }", "f",
           {-5})
          .value(),
      2);
  EXPECT_DOUBLE_EQ(
      eval("double f() { int s = 0; int i; for (i = 1; i <= 10; i = i + 1) "
           "s = s + i; return s; }",
           "f")
          .value(),
      55);
  EXPECT_DOUBLE_EQ(
      eval("double f() { int s = 0; int i = 0; while (i < 5) { s = s + 2; "
           "i = i + 1; } return s; }",
           "f")
          .value(),
      10);
}

TEST(VmTest, FunctionsCallEachOther) {
  const std::string src = R"(
    double square(double x) { return x * x; }
    double f(double a, double b) { return square(a) + square(b); }
  )";
  EXPECT_DOUBLE_EQ(eval(src, "f", {3, 4}).value(), 25);
}

TEST(VmTest, RecursionWorks) {
  const std::string src =
      "double fact(double n) { if (n <= 1) return 1; return n * fact(n - 1); }";
  EXPECT_DOUBLE_EQ(eval(src, "fact", {6}).value(), 720);
}

TEST(VmTest, RecursionDepthBounded) {
  const std::string src = "double f(double n) { return f(n + 1); }";
  auto result = eval(src, "f", {0});
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("depth"), std::string::npos);
}

TEST(VmTest, InstructionBudgetStopsRunaways) {
  VmLimits limits;
  limits.max_instructions = 10000;
  auto result = eval("void f() { while (1) {} }", "f", {}, nullptr, limits);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("budget"), std::string::npos);
}

TEST(VmTest, ScopingShadowsAndExpires) {
  const std::string src = R"(
    double f() {
      int x = 1;
      { int x = 2; }
      return x;
    }
  )";
  EXPECT_DOUBLE_EQ(eval(src, "f").value(), 1);
  // Redeclaration in the same scope is an error.
  EXPECT_FALSE(eval("void f() { int x; int x; }", "f").is_ok());
  // Use of undeclared variables is a compile error.
  EXPECT_FALSE(eval("void f() { y = 3; }", "f").is_ok());
  EXPECT_FALSE(eval("double f() { return y; }", "f").is_ok());
}

TEST(VmTest, DisassemblerListsEveryFunction) {
  auto ast = parse(R"(
    double square(double x) { return x * x; }
    void transform() {
      int i;
      for (i = 0; i < 3; i = i + 1) square(i);
    }
  )");
  ASSERT_TRUE(ast.is_ok());
  Environment env;
  auto program = compile(ast.value(), env);
  ASSERT_TRUE(program.is_ok());
  const std::string listing = disassemble(program.value());
  EXPECT_NE(listing.find("square (params=1"), std::string::npos);
  EXPECT_NE(listing.find("transform (params=0"), std::string::npos);
  EXPECT_NE(listing.find("call"), std::string::npos);
  EXPECT_NE(listing.find("jz"), std::string::npos);
  EXPECT_NE(listing.find("mul"), std::string::npos);
}

TEST(VmTest, EnvironmentGlobalsArraysBuiltins) {
  Environment env;
  std::vector<double> data{10, 20, 30};
  double sum = 0;
  env.add_global("n", 3);
  env.add_array("input", std::span<const double>(data));
  env.add_builtin("accumulate", 1, [&sum](std::span<const double> a) {
    sum += a[0];
    return StatusOr<double>(sum);
  });
  const std::string src = R"(
    void transform() {
      int i;
      for (i = 0; i < n; i = i + 1) accumulate(input[i]);
    }
  )";
  ASSERT_TRUE(eval(src, "transform", {}, &env).is_ok());
  EXPECT_DOUBLE_EQ(sum, 60);
}

TEST(VmTest, ArrayBoundsChecked) {
  Environment env;
  std::vector<double> data{1, 2};
  env.add_array("input", std::span<const double>(data));
  EXPECT_FALSE(eval("double f() { return input[5]; }", "f", {}, &env).is_ok());
  EXPECT_FALSE(eval("double f() { return input[-1]; }", "f", {}, &env).is_ok());
}

TEST(VmTest, BuiltinArityChecked) {
  Environment env;
  env.add_builtin("two", 2, [](std::span<const double> a) {
    return StatusOr<double>(a[0] + a[1]);
  });
  EXPECT_FALSE(eval("double f() { return two(1); }", "f", {}, &env).is_ok());
  EXPECT_DOUBLE_EQ(eval("double f() { return two(1, 2); }", "f", {}, &env)
                       .value(),
                   3);
}

TEST(VmTest, DivisionByZeroReported) {
  EXPECT_FALSE(eval("double f() { return 1 / 0; }", "f").is_ok());
  EXPECT_FALSE(eval("double f() { return 1 % 0; }", "f").is_ok());
}

// ------------------------------------------------------------- plug-ins --

wire::DataPiece particle_piece(std::vector<double> values, std::uint64_t cols) {
  wire::DataPiece piece;
  const std::uint64_t rows = values.size() / cols;
  piece.meta = adios::local_array_var("zion", DataType::kDouble, {rows, cols});
  piece.region = piece.meta.block;
  piece.payload.resize(values.size() * sizeof(double));
  std::memcpy(piece.payload.data(), values.data(), piece.payload.size());
  return piece;
}

std::vector<double> piece_values(const wire::DataPiece& piece) {
  std::vector<double> out(piece.payload.size() / sizeof(double));
  std::memcpy(out.data(), piece.payload.data(), piece.payload.size());
  return out;
}

TEST(PluginTest, RangeQueryFilter) {
  // The paper's GTS example: keep particles whose velocity (attribute 1)
  // exceeds a threshold.
  auto plugin = compile_plugin(R"(
    void transform() {
      int r;
      for (r = 0; r < rows; r = r + 1) {
        if (input[r * cols + 1] > 10.0) keep_row(r);
      }
    }
  )");
  ASSERT_TRUE(plugin.is_ok()) << plugin.status().to_string();
  auto out = plugin.value()(particle_piece({1, 5,    // row 0: v=5 drop
                                            2, 15,   // row 1: v=15 keep
                                            3, 25},  // row 2: v=25 keep
                                           2));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().meta.block.count[0], 2u);
  EXPECT_EQ(piece_values(out.value()), (std::vector<double>{2, 15, 3, 25}));
}

TEST(PluginTest, SamplingEveryKth) {
  auto plugin = compile_plugin(R"(
    void transform() {
      int r;
      for (r = 0; r < rows; r = r + 4) keep_row(r);
    }
  )");
  ASSERT_TRUE(plugin.is_ok());
  std::vector<double> values;
  for (int i = 0; i < 16; ++i) values.push_back(i);
  auto out = plugin.value()(particle_piece(values, 1));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(piece_values(out.value()), (std::vector<double>{0, 4, 8, 12}));
}

TEST(PluginTest, UnitConversionOnGlobalArray) {
  auto plugin = compile_plugin(R"(
    void transform() {
      int i;
      for (i = 0; i < n; i = i + 1) emit(input[i] * 1.5 + 1.0);
    }
  )");
  ASSERT_TRUE(plugin.is_ok());
  wire::DataPiece piece;
  piece.meta = adios::global_array_var("T", DataType::kDouble, {4},
                                       adios::Box{{0}, {4}});
  piece.region = adios::Box{{1}, {2}};
  std::vector<double> values{10, 20};
  piece.payload.resize(values.size() * sizeof(double));
  std::memcpy(piece.payload.data(), values.data(), piece.payload.size());
  auto out = plugin.value()(piece);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().region, piece.region);
  EXPECT_EQ(piece_values(out.value()), (std::vector<double>{16, 31}));
}

TEST(PluginTest, GlobalArraySizeChangeRejected) {
  auto plugin = compile_plugin("void transform() { emit(1.0); }");
  ASSERT_TRUE(plugin.is_ok());
  wire::DataPiece piece;
  piece.meta = adios::global_array_var("T", DataType::kDouble, {4},
                                       adios::Box{{0}, {4}});
  piece.region = piece.meta.block;
  piece.payload.resize(4 * sizeof(double));
  EXPECT_FALSE(plugin.value()(piece).is_ok());
}

TEST(PluginTest, BoundingBoxViaMinMax) {
  // Markup-style plug-in: emits a 2-value bounding box of attribute 0.
  auto plugin = compile_plugin(R"(
    void transform() {
      double lo = input[0];
      double hi = input[0];
      int r;
      for (r = 1; r < rows; r = r + 1) {
        lo = min(lo, input[r * cols]);
        hi = max(hi, input[r * cols]);
      }
      emit(lo);
      emit(hi);
    }
  )");
  ASSERT_TRUE(plugin.is_ok());
  auto out = plugin.value()(particle_piece({5, 0, -3, 0, 9, 0}, 2));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().meta.block.count[0], 1u);  // one 2-col row
  EXPECT_EQ(piece_values(out.value()), (std::vector<double>{-3, 9}));
}

TEST(PluginTest, AnnotationOnlyPassesThrough) {
  auto plugin = compile_plugin(R"(
    void transform() {
      int i;
      double s = 0;
      for (i = 0; i < n; i = i + 1) s = s + input[i];
    }
  )");
  ASSERT_TRUE(plugin.is_ok());
  const auto piece = particle_piece({1, 2, 3, 4}, 2);
  auto out = plugin.value()(piece);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().payload, piece.payload);
  EXPECT_EQ(out.value().meta, piece.meta);
}

TEST(PluginTest, PartialRowRejected) {
  auto plugin = compile_plugin("void transform() { emit(1.0); }");
  ASSERT_TRUE(plugin.is_ok());
  EXPECT_FALSE(plugin.value()(particle_piece({1, 2, 3, 4}, 2)).is_ok());
}

TEST(PluginTest, RequiresTransformEntryPoint) {
  EXPECT_FALSE(compile_plugin("void other() {}").is_ok());
  EXPECT_FALSE(compile_plugin("not even code").is_ok());
}

TEST(PluginTest, MathBuiltinsAvailable) {
  auto plugin = compile_plugin(R"(
    void transform() {
      emit(exp(0.0));
      emit(log(input[0]));
      emit(sin(0.0) + cos(0.0));
    })");
  ASSERT_TRUE(plugin.is_ok()) << plugin.status().to_string();
  auto out = plugin.value()(particle_piece({2.718281828459045}, 1));
  ASSERT_TRUE(out.is_ok());
  const auto vals = piece_values(out.value());
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 1.0);
  EXPECT_NEAR(vals[1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(vals[2], 1.0);
  // log of non-positive input is a runtime error, not a NaN.
  auto bad = plugin.value()(particle_piece({-1.0}, 1));
  EXPECT_FALSE(bad.is_ok());
}

TEST(PluginTest, IntPayloadsConvert) {
  auto plugin = compile_plugin(R"(
    void transform() {
      int i;
      for (i = 0; i < n; i = i + 1) emit(input[i] * 2);
    }
  )");
  ASSERT_TRUE(plugin.is_ok());
  wire::DataPiece piece;
  piece.meta = adios::local_array_var("ids", DataType::kInt32, {3});
  piece.region = piece.meta.block;
  const std::int32_t ids[3] = {1, 2, 3};
  piece.payload.resize(sizeof ids);
  std::memcpy(piece.payload.data(), ids, sizeof ids);
  auto out = plugin.value()(piece);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  const auto* vals =
      reinterpret_cast<const std::int32_t*>(out.value().payload.data());
  EXPECT_EQ(vals[0], 2);
  EXPECT_EQ(vals[2], 6);
}

TEST(PluginTest, EndToEndMobileCodeletOverStream) {
  // The full Section II.F story: the analytics side writes a CoD source
  // string; it travels to the simulation side with the read request, is
  // compiled there, and conditions the particle data before it ever
  // crosses the transport.
  Runtime rt;
  rt.set_plugin_compiler(make_plugin_compiler());
  Program sim("sim", 1);
  Program viz("viz", 1);

  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "codstream";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method.method = "FLEXIO";
    spec.method.timeout_ms = 20000;
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> particles;
    for (int p = 0; p < 10; ++p) {
      particles.push_back(p);        // id
      particles.push_back(p * 2.0);  // velocity
    }
    for (int s = 0; s < 2; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(
          w.value()
              ->write(adios::local_array_var("zion", DataType::kDouble,
                                             {10, 2}),
                      as_bytes_view(std::span<const double>(particles)))
              .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
    EXPECT_EQ(w.value()->monitor().count("plugin.pieces"), 2u);
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "codstream";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{3, 0}};
    spec.method.method = "FLEXIO";
    spec.method.timeout_ms = 20000;
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    ASSERT_TRUE(r.value()
                    ->install_plugin("zion", R"(
                      void transform() {
                        int i;
                        for (i = 0; i < rows; i = i + 1) {
                          if (input[i * cols + 1] >= 10.0) keep_row(i);
                        }
                      })",
                                     /*run_at_writer=*/true)
                    .is_ok());
    int steps = 0;
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      ASSERT_TRUE(r.value()->schedule_read_pg(0).is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_EQ(r.value()->pg_blocks().size(), 1u);
      // Velocity >= 10 keeps particles 5..9.
      EXPECT_EQ(r.value()->pg_blocks()[0].meta.block.count[0], 5u);
      ASSERT_TRUE(r.value()->end_step().is_ok());
      ++steps;
    }
    EXPECT_EQ(steps, 2);
  });
  writer.join();
  reader.join();
}

TEST(PluginTest, CompilerFactoryMatchesRuntimeHook) {
  PluginCompiler compiler = make_plugin_compiler();
  auto fn = compiler("void transform() { keep_row(0); }");
  ASSERT_TRUE(fn.is_ok());
  auto out = fn.value()(particle_piece({7, 8, 9, 10}, 2));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(piece_values(out.value()), (std::vector<double>{7, 8}));
}

}  // namespace
}  // namespace flexio::cod
