// Endpoints and the message bus (EVPath process + connection management).
//
// An Endpoint stands in for one process's EVPath stack: it sends to named
// peers and multiplexes receives over all inbound links. The MessageBus is
// the in-process "network": it tracks endpoints by name and, on first
// contact, builds the right link for the pair -- shared memory when both
// endpoints sit on the same (simulated) node, the NNTI RDMA protocol when
// they do not (paper Section II.B: transports are configured automatically
// from placement). Endpoints on the same node *and* same rank slot use the
// trivial in-process transport (inline placement).
//
// Locking (DESIGN.md "Endpoint locking inventory"): the outbound side is
// sharded per link. A reader-writer lock guards the name -> link map
// (shared for lookup and stats scraping, exclusive only to insert or erase
// an entry), and each link carries its own send mutex, so pack-pool tasks
// targeting different readers enqueue concurrently while sends to the same
// destination stay ordered -- the per-link monotone sequence and
// duplicate-frame suppression in link.cpp depend on that order. Teardown
// (drop_link, endpoint destruction) erases the map entry but the entry is
// refcounted: an in-flight send holds it alive and finishes on the
// detached link, so teardown never blocks behind a slow send and a send
// never touches freed link state.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "evpath/link.h"
#include "evpath/message.h"
#include "nnti/nnti.h"
#include "util/backoff.h"
#include "util/status.h"

namespace flexio::evpath {

class MessageBus;

class Endpoint {
 public:
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& name() const { return name_; }
  const Location& location() const { return location_; }

  /// Send to a named endpoint, creating the link on first use.
  Status send(const std::string& to, ByteView msg,
              SendMode mode = SendMode::kAsync);

  /// Scatter-gather send: the wire message is the concatenation of `frags`.
  /// Transports with a native gather path skip the flat coalescing copy.
  Status send_iov(const std::string& to, std::span<const ByteView> frags,
                  SendMode mode = SendMode::kAsync);

  /// Close the outbound link to a peer (delivers EOS on its side).
  Status close_to(const std::string& to);

  /// Forget the cached outbound link to `to` without closing it (no EOS).
  /// The next send reconnects from scratch. Used when a peer respawned
  /// under the same name: the old link points at the dead incarnation's
  /// transport state. No-op if no link was cached. Safe against in-flight
  /// sends: a send already holding the entry finishes on the old link.
  void drop_link(const std::string& to);

  /// Receive the next message from any peer. EOS messages are delivered
  /// once per closed link (out->eos == true), after which the link is
  /// dropped. Times out with kTimeout.
  Status recv(Message* out, std::chrono::nanoseconds timeout);

  /// Receive the next message from one specific peer; messages from other
  /// peers stay queued on their links.
  Status recv_from(const std::string& from, Message* out,
                   std::chrono::nanoseconds timeout);

  /// Transport used to reach a peer; kNotFound before the first send.
  /// Takes only the shared side of the link-map lock: never stalls sends.
  StatusOr<TransportKind> transport_to(const std::string& to) const;

  /// Counters for the outbound link to `to` (zeroes before first send).
  /// Shared map lock + that one link's send mutex: stats scraping (flight
  /// recorder) contends only with sends to the same peer, never the rest.
  LinkStats outbound_stats(const std::string& to) const;

 private:
  friend class MessageBus;
  Endpoint(MessageBus* bus, std::string name, Location location,
           LinkOptions options);

  /// One outbound link plus the mutex serializing every call into it.
  /// SendLink implementations are not internally synchronized (per-link
  /// sequence counters, outstanding-buffer maps, stats); holding `mutex`
  /// across send/close/stats is what makes them safe. Entries are shared
  /// so teardown can erase the map slot while a send is in flight: the
  /// sender's reference keeps the entry (and link) alive until it returns.
  struct LinkEntry {
    std::mutex mutex;
    std::unique_ptr<SendLink> link;
  };

  void attach_recv_link(const std::string& from,
                        std::unique_ptr<RecvLink> link);
  std::shared_ptr<LinkEntry> outbound(const std::string& to) const;
  StatusOr<std::shared_ptr<LinkEntry>> outbound_or_connect(
      const std::string& to);

  MessageBus* bus_;
  std::string name_;
  Location location_;
  LinkOptions options_;

  // map_mutex_ guards the map structure only (shared: lookup; exclusive:
  // insert/erase). connect_mutex_ serializes link *creation* so concurrent
  // first-sends to the same peer dial once -- it is never held during a
  // send, and map_mutex_ is only taken inside it (lock order: connect ->
  // map; nothing takes them the other way around).
  mutable std::shared_mutex map_mutex_;
  std::map<std::string, std::shared_ptr<LinkEntry>> send_links_;
  std::mutex connect_mutex_;

  mutable std::mutex recv_mutex_;
  struct Inbound {
    std::string from;
    std::unique_ptr<RecvLink> link;
  };
  std::vector<Inbound> recv_links_;
  std::size_t rr_cursor_ = 0;  // round-robin fairness across inbound links

  // Idle-recv pacing state, persistent across recv calls so repeated short
  // timed polls (a demux pump slicing one long wait into many recv calls)
  // keep climbing the ladder instead of restarting the spin tier each call.
  // A successful dequeue resets it to the spin tier: a burst arriving after
  // an idle period must not eat a stale max-backoff sleep. Guarded by its
  // own mutex (taken after recv_mutex_ is released, or nested inside it on
  // the dequeue path; never the other way around).
  mutable std::mutex recv_idle_mutex_;
  int recv_spins_ = 0;
  util::Backoff recv_backoff_;
};

class MessageBus {
 public:
  MessageBus() = default;
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Create a named endpoint at a location. Names must be unique among
  /// live endpoints. The bus must outlive all endpoints it created.
  StatusOr<std::shared_ptr<Endpoint>> create_endpoint(
      const std::string& name, Location location, LinkOptions options = {});

  /// The underlying fabric (fault injection for tests).
  nnti::Fabric& fabric() { return fabric_; }

 private:
  friend class Endpoint;

  /// Build a (send, recv) pair between two endpoints and attach the recv
  /// side to the target. Called under the sender's connect_mutex_ (one
  /// dial per peer at a time), never under its link-map lock.
  StatusOr<std::unique_ptr<SendLink>> connect(Endpoint* from,
                                              const std::string& to);
  std::shared_ptr<Endpoint> lookup(const std::string& name);
  void remove(const std::string& name);

  std::mutex mutex_;
  std::map<std::string, std::weak_ptr<Endpoint>> endpoints_;
  nnti::Fabric fabric_;
  std::uint64_t next_link_id_ = 1;
};

}  // namespace flexio::evpath
