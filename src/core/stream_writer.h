// Writer side of a FlexIO stream.
//
// Implements the ADIOS-compatible write API over either transport mode:
//  * stream mode ("FLEXIO"): the 4-step handshake of Section II.C with the
//    three caching levels, optional variable batching, sync/async delivery,
//    and writer-side DC plug-in execution;
//  * file mode ("BP"): the offline path through the BP-like file engine.
// All ranks of the writer program call every method collectively (SPMD).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "adios/bp_file.h"
#include "core/redistribution.h"
#include "core/runtime.h"
#include "util/work_pool.h"

namespace flexio {

class StreamWriter {
 public:
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Start a new output step (strictly increasing ids).
  Status begin_step(StepId step);

  /// Declare + buffer one variable. The payload is copied, so the caller
  /// may reuse its buffer immediately (this is what makes async mode safe).
  Status write(const adios::VarMeta& meta, ByteView payload);

  /// Convenience scalar writers.
  Status write_scalar(const std::string& name, double value);
  Status write_scalar(const std::string& name, std::int64_t value);

  /// Complete the step: run the handshake (as far as the caching level
  /// demands) and move the data.
  Status end_step();

  /// Close the stream: in stream mode ships the monitoring report and the
  /// End-of-Stream to the reader program.
  Status close();

  bool file_mode() const { return bp_ != nullptr; }

  /// Transport the runtime auto-configured towards a reader rank (valid
  /// after data has been sent to it). Lets callers verify that a placement
  /// decision was enforced: same node -> shm, across nodes -> rdma.
  StatusOr<evpath::TransportKind> transport_to_reader(int reader_rank) const {
    if (!channel_) {
      return make_error(ErrorCode::kFailedPrecondition, "file mode");
    }
    return channel_->transport_to(
        channel_->peer_name(spec_.stream, reader_program_, reader_rank));
  }

  /// Writer-side monitoring (Section II.G).
  const PerfMonitor& monitor() const { return monitor_; }

  /// Packing concurrency the writer resolved at open() (method config,
  /// else FLEXIO_PACK_THREADS, else 1 = serial).
  int pack_threads() const { return pack_threads_; }

  /// Replace the pack pool (tests: share one pool across writers, or force
  /// a specific worker count). Must not be called with a step in flight.
  void set_pack_pool_for_testing(std::shared_ptr<util::WorkPool> pool) {
    pack_pool_ = std::move(pool);
    pack_threads_ = pack_pool_ ? pack_pool_->workers() + 1 : 1;
  }

 private:
  friend class Runtime;
  StreamWriter() = default;

  Status open(Runtime* rt, const StreamSpec& spec);
  Status end_step_stream();
  Status end_step_file();
  Status run_handshake(bool* did_exchange);
  Status send_pieces();
  /// One pool task: pack, transform, and send every planned piece for one
  /// reader. Shared writer state is read-only while a batch is in flight
  /// (see DESIGN.md "Parallel pack"); the out-params are this task's
  /// private slots in the per-task timing vectors.
  struct ReaderWork;
  Status send_to_reader(const ReaderWork& work, std::uint64_t* pack_ns,
                        std::uint64_t* enqueue_ns);
  void rebuild_send_plan();
  bool plan_bindings_valid() const;
  wire::MonitorReport build_report() const;
  /// Membership record for a reader rank (nullptr when membership is off or
  /// the rank never joined).
  const wire::MemberInfo* member_info(int reader_rank) const;
  /// A data send to `reader_rank` failed mid-step. Poll the directory
  /// (bounded by ~2x TTL) until it corroborates the loss; true means the
  /// reader is declared gone and its remaining pieces may be dropped.
  bool confirm_reader_gone(int reader_rank);

  Runtime* rt_ = nullptr;
  StreamSpec spec_;
  Program* program_ = nullptr;
  int rank_ = 0;
  std::chrono::nanoseconds timeout_{};

  // Stream mode. The channel is the writer's only path to the transport:
  // dedicated per-stream endpoint by default, shared multiplexed endpoint
  // under method shared_links (core/stream_registry.h).
  std::shared_ptr<StreamChannel> channel_;
  std::string reader_program_;
  int reader_size_ = 0;
  std::string reader_coord_;  // endpoint name of reader rank 0

  // Elastic membership (DESIGN.md "Elastic membership"). The coordinator
  // reads the directory's view once per step and broadcasts it, so every
  // writer rank gates its sends against the same epoch. planned_epoch_ is
  // the epoch the cached handshake (and thus the send plan) was exchanged
  // under; a differing step epoch forces a re-exchange even when the
  // caching level would skip it.
  bool membership_ = false;
  std::uint64_t planned_epoch_ = 0;
  wire::MembershipUpdate member_update_;
  bool have_members_ = false;
  // Incarnation each reader's cached link was established against; a bump
  // means the rank respawned and the stale link must be dropped.
  std::map<int, std::uint64_t> link_incarnation_;

  // Step state.
  bool in_step_ = false;
  bool closed_ = false;
  StepId step_ = -1;
  StepId last_step_ = -1;
  std::uint64_t steps_completed_ = 0;
  // Step telemetry: the stream's stable id (stamped into wire trace
  // contexts) and the current end_step span whose id frames sent this
  // step carry, so the reader can parent its spans under it.
  std::uint64_t stream_id_ = 0;
  std::uint64_t step_span_id_ = 0;
  std::vector<wire::BlockInfo> my_blocks_;
  std::vector<std::vector<std::byte>> my_payloads_;  // parallel to my_blocks_

  // Handshake caches (paper Section II.C.2, third optimization).
  std::vector<wire::BlockInfo> cached_all_blocks_;  // coordinator only
  wire::ReadRequest cached_request_;
  bool have_cached_request_ = false;

  // Cached send plan: the per-reader piece groupings from plan_transfers
  // plus each piece's binding to the buffered payload index. Valid until
  // the handshake re-exchanges (the reader's request may have changed) or
  // the step writes different blocks. Counted in flexio.plan.cache_{hits,
  // misses}.
  struct PlannedPiece {
    TransferPiece piece;
    std::size_t block_index;  // into my_blocks_ / my_payloads_
  };
  std::vector<std::pair<int, std::vector<PlannedPiece>>> cached_plan_;
  bool have_cached_plan_ = false;

  // Writer-side DC plug-ins, keyed by variable name.
  std::map<std::string, PluginFn> plugins_;

  // Parallel pack (DESIGN.md "Parallel pack"): per-reader piece groups are
  // packed + sent as pool tasks. pack_threads_ is the total concurrency
  // including the caller; the pool holds pack_threads_ - 1 workers and is
  // absent when the writer runs serial (pack_threads_ == 1).
  int pack_threads_ = 1;
  std::shared_ptr<util::WorkPool> pack_pool_;

  // File mode.
  std::unique_ptr<adios::BpWriter> bp_;

  PerfMonitor monitor_;
};

}  // namespace flexio
