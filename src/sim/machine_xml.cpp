#include "sim/machine_xml.h"

#include "util/strings.h"

namespace flexio::sim {

namespace {

/// Parse attribute `key` as double when present; leaves *out untouched
/// otherwise. Malformed values are errors.
Status maybe_double(const xml::Element& e, std::string_view key, double* out) {
  if (!e.has_attr(key)) return Status::ok();
  double v = 0;
  if (!parse_double(e.attr(key), &v) || v <= 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "bad machine attribute: " + std::string(key));
  }
  *out = v;
  return Status::ok();
}

Status maybe_int(const xml::Element& e, std::string_view key, int* out) {
  if (!e.has_attr(key)) return Status::ok();
  long long v = 0;
  if (!parse_int(e.attr(key), &v) || v <= 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "bad machine attribute: " + std::string(key));
  }
  *out = static_cast<int>(v);
  return Status::ok();
}

}  // namespace

StatusOr<MachineDesc> machine_from_xml(const xml::Element& element) {
  if (element.name != "machine") {
    return make_error(ErrorCode::kInvalidArgument,
                      "expected <machine>, got <" + element.name + ">");
  }
  MachineDesc m;
  m.name = std::string(element.attr("name"));
  if (m.name.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "<machine> needs a name");
  }
  FLEXIO_RETURN_IF_ERROR(maybe_int(element, "nodes", &m.num_nodes));
  FLEXIO_RETURN_IF_ERROR(maybe_int(element, "sockets", &m.sockets_per_node));
  FLEXIO_RETURN_IF_ERROR(
      maybe_int(element, "cores-per-socket", &m.cores_per_socket));
  FLEXIO_RETURN_IF_ERROR(maybe_double(element, "ghz", &m.core_ghz));

  double l3_mb = m.l3_bytes_per_socket / (1 << 20);
  FLEXIO_RETURN_IF_ERROR(maybe_double(element, "l3-mb", &l3_mb));
  m.l3_bytes_per_socket = l3_mb * (1 << 20);

  auto gbps = [&element](std::string_view key, double* field) -> Status {
    double v = *field / 1e9;
    FLEXIO_RETURN_IF_ERROR(maybe_double(element, key, &v));
    *field = v * 1e9;
    return Status::ok();
  };
  FLEXIO_RETURN_IF_ERROR(gbps("nic-gbps", &m.nic_bw));
  FLEXIO_RETURN_IF_ERROR(gbps("mem-local-gbps", &m.mem_bw_local));
  FLEXIO_RETURN_IF_ERROR(gbps("mem-remote-gbps", &m.mem_bw_remote));
  FLEXIO_RETURN_IF_ERROR(gbps("fs-aggregate-gbps", &m.fs_aggregate_bw));
  FLEXIO_RETURN_IF_ERROR(gbps("fs-per-node-gbps", &m.fs_per_node_bw));

  double nic_latency_us = m.nic_latency * 1e6;
  FLEXIO_RETURN_IF_ERROR(
      maybe_double(element, "nic-latency-us", &nic_latency_us));
  m.nic_latency = nic_latency_us * 1e-6;
  return m;
}

StatusOr<MachineDesc> machine_from_xml_text(std::string_view text) {
  auto doc = xml::parse(text);
  if (!doc.is_ok()) return doc.status();
  return machine_from_xml(doc.value().root());
}

}  // namespace flexio::sim
