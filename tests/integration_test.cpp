// Cross-module integration: placement decisions driving the live runtime.
//
// The paper's pitch in one test file: a placement policy computes where
// every process goes; FlexIO "automatically configures the underlying
// transport to enforce any placement decision" (Section III). We run the
// policy, place the actual rank threads at the decided locations, run the
// coupled pipeline for real, and verify both the data and the transports.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>

#include "adios/array.h"

#include "apps/gts.h"
#include "apps/gts_analytics.h"
#include "core/redistribution.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "placement/policies.h"

namespace flexio {
namespace {

using adios::Box;
using serial::DataType;

struct PlacedPipelineCase {
  const char* name;
  int writers;
  int readers;
  // Traffic shaping: affine -> co-location (helper core);
  // internal-heavy -> separation (staging).
  bool affine_traffic;
  evpath::TransportKind expected_transport;
};

class PlacedPipelineTest
    : public ::testing::TestWithParam<PlacedPipelineCase> {};

TEST_P(PlacedPipelineTest, PolicyDecisionIsEnforcedByTransports) {
  const PlacedPipelineCase& pc = GetParam();
  // A small machine: nodes with 4 cores so the decision is interesting.
  sim::MachineDesc machine = sim::smoky();
  machine.cores_per_socket = 2;
  machine.sockets_per_node = 2;

  // 1. Plan the inter-program traffic with the real planner.
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < pc.writers; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::local_array_var("zion", DataType::kDouble, {1000, 7});
    blocks.push_back(std::move(b));
  }
  wire::ReadRequest request;
  for (int w = 0; w < pc.writers; ++w) {
    request.pg_requests.push_back(
        wire::PgRequestInfo{w % pc.readers, w});
  }
  const auto plan = plan_transfers(blocks, request);

  // 2. Run the placement policy.
  placement::PlacementRequest req;
  req.machine = machine;
  req.policy = placement::Policy::kTopologyAware;
  req.sim_processes = pc.writers;
  req.analytics_processes = pc.readers;
  req.inter = comm_matrix(plan, pc.writers, pc.readers);
  if (!pc.affine_traffic) {
    // Make each program's internal traffic dominate: the partitioner then
    // separates the programs onto different nodes (staging).
    req.sim_intra.assign(static_cast<std::size_t>(pc.writers),
                         std::vector<double>(
                             static_cast<std::size_t>(pc.writers), 1e9));
    req.analytics_intra.assign(
        static_cast<std::size_t>(pc.readers),
        std::vector<double>(static_cast<std::size_t>(pc.readers), 1e9));
  }
  auto placed = placement::place(req);
  ASSERT_TRUE(placed.is_ok()) << placed.status().to_string();

  // 3. Enforce it: each rank's Location comes from the placement result.
  auto location_of = [&machine](long core, int rank) {
    return evpath::Location{machine.locate(core).node, rank};
  };
  Runtime rt;
  Program sim_prog("sim", pc.writers);
  Program viz_prog("viz", pc.readers);
  std::vector<std::thread> threads;
  std::vector<StatusOr<evpath::TransportKind>> transports(
      static_cast<std::size_t>(pc.writers),
      make_error(ErrorCode::kUnimplemented, "unset"));

  for (int w = 0; w < pc.writers; ++w) {
    threads.emplace_back([&, w] {
      StreamSpec spec;
      spec.stream = std::string("placed_") + pc.name;
      spec.endpoint = EndpointSpec{
          &sim_prog, w,
          location_of(placed.value().sim_core[static_cast<std::size_t>(w)], w)};
      spec.method.method = "FLEXIO";
      auto writer = rt.open_writer(spec);
      ASSERT_TRUE(writer.is_ok());
      apps::GtsRank gts(w, 500);
      for (int s = 0; s < 2; ++s) {
        gts.advance();
        ASSERT_TRUE(writer.value()->begin_step(s).is_ok());
        ASSERT_TRUE(
            writer.value()
                ->write(gts.zion_meta(),
                        as_bytes_view(std::span<const double>(gts.zion())))
                .is_ok());
        ASSERT_TRUE(writer.value()->end_step().is_ok());
      }
      // Record the transport the bus picked for this writer's reader.
      transports[static_cast<std::size_t>(w)] =
          writer.value()->transport_to_reader(w % pc.readers);
      ASSERT_TRUE(writer.value()->close().is_ok());
    });
  }
  for (int r = 0; r < pc.readers; ++r) {
    threads.emplace_back([&, r] {
      StreamSpec spec;
      spec.stream = std::string("placed_") + pc.name;
      spec.endpoint = EndpointSpec{
          &viz_prog, r,
          location_of(
              placed.value().analytics_core[static_cast<std::size_t>(r)],
              1000 + r)};
      spec.method.method = "FLEXIO";
      auto reader = rt.open_reader(spec);
      ASSERT_TRUE(reader.is_ok());
      std::uint64_t particles = 0;
      for (;;) {
        auto step = reader.value()->begin_step();
        if (step.status().code() == ErrorCode::kEndOfStream) break;
        ASSERT_TRUE(step.is_ok());
        for (int w = 0; w < pc.writers; ++w) {
          if (w % pc.readers == r) {
            ASSERT_TRUE(reader.value()->schedule_read_pg(w).is_ok());
          }
        }
        ASSERT_TRUE(reader.value()->perform_reads().is_ok());
        for (const PgBlock& block : reader.value()->pg_blocks()) {
          particles += block.meta.block.count[0];
        }
        ASSERT_TRUE(reader.value()->end_step().is_ok());
      }
      EXPECT_GT(particles, 0u);
    });
  }
  for (auto& t : threads) t.join();

  // 4. The policy's classification must match what the bus actually did.
  const auto expected_kind = pc.affine_traffic
                                 ? placement::PlacementKind::kHelperCore
                                 : placement::PlacementKind::kStaging;
  EXPECT_EQ(placed.value().kind, expected_kind);
  for (int w = 0; w < pc.writers; ++w) {
    ASSERT_TRUE(transports[static_cast<std::size_t>(w)].is_ok());
    EXPECT_EQ(transports[static_cast<std::size_t>(w)].value(),
              pc.expected_transport)
        << "writer " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decisions, PlacedPipelineTest,
    ::testing::Values(
        // Affine traffic + room on the nodes -> helper cores -> shm.
        PlacedPipelineCase{"helper", 3, 1, true,
                           evpath::TransportKind::kShm},
        // Internal-heavy traffic -> program separation -> RDMA.
        PlacedPipelineCase{"staging", 4, 4, false,
                           evpath::TransportKind::kRdma}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// PreDatA-style chained pipeline: sim -> preparatory analytics -> deep
// analytics. The middle program reads one stream and writes another, which
// the runtime supports because endpoints are per (stream, program, rank).
TEST(ChainedPipelineTest, ThreeStagePipeline) {
  Runtime rt;
  Program sim_prog("sim", 1), prep_prog("prep", 1), deep_prog("deep", 1);
  const adios::Dims global{32};

  std::thread sim([&] {
    StreamSpec spec;
    spec.stream = "stage1";
    spec.endpoint = EndpointSpec{&sim_prog, 0, {0, 0}};
    spec.method.method = "FLEXIO";
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data(32);
    for (int s = 0; s < 3; ++s) {
      std::iota(data.begin(), data.end(), s * 100.0);
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("raw", DataType::kDouble,
                                                      global, Box{{0}, global}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });

  std::thread prep([&] {
    // Reader of stage1 AND writer of stage2, in one rank.
    StreamSpec rspec;
    rspec.stream = "stage1";
    rspec.endpoint = EndpointSpec{&prep_prog, 0, {1, 0}};
    rspec.method.method = "FLEXIO";
    auto r = rt.open_reader(rspec);
    ASSERT_TRUE(r.is_ok());
    StreamSpec wspec;
    wspec.stream = "stage2";
    wspec.endpoint = EndpointSpec{&prep_prog, 0, {1, 0}};
    wspec.method.method = "FLEXIO";
    auto w = rt.open_writer(wspec);
    ASSERT_TRUE(w.is_ok());

    std::vector<double> data(32);
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()
                      ->schedule_read("raw", Box{{0}, global},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(data))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_TRUE(r.value()->end_step().is_ok());
      // Preparatory step: downsample by 4.
      std::vector<double> reduced(8);
      for (int i = 0; i < 8; ++i) reduced[static_cast<std::size_t>(i)] = data[static_cast<std::size_t>(i) * 4];
      ASSERT_TRUE(w.value()->begin_step(step.value()).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("reduced",
                                                      DataType::kDouble, {8},
                                                      Box{{0}, {8}}),
                              as_bytes_view(std::span<const double>(reduced)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });

  std::thread deep([&] {
    StreamSpec spec;
    spec.stream = "stage2";
    spec.endpoint = EndpointSpec{&deep_prog, 0, {2, 0}};
    spec.method.method = "FLEXIO";
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> reduced(8);
    int steps = 0;
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()
                      ->schedule_read("reduced", Box{{0}, {8}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(reduced))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      EXPECT_DOUBLE_EQ(reduced[0], step.value() * 100.0);
      EXPECT_DOUBLE_EQ(reduced[7], step.value() * 100.0 + 28.0);
      ASSERT_TRUE(r.value()->end_step().is_ok());
      ++steps;
    }
    EXPECT_EQ(steps, 3);
  });
  sim.join();
  prep.join();
  deep.join();
}

// Feedback loop: a second stream flowing analytics -> simulation carries
// steering data derived from the analysis (the runtime-management pattern
// of Section II.G generalized to computational steering).
TEST(ChainedPipelineTest, FeedbackStreamSteersTheSimulation) {
  Runtime rt;
  Program sim_prog("sim", 1), viz_prog("viz", 1);
  std::vector<double> applied_feedback;

  std::thread sim([&] {
    StreamSpec out_spec;
    out_spec.stream = "forward";
    out_spec.endpoint = EndpointSpec{&sim_prog, 0, {0, 0}};
    out_spec.method.method = "FLEXIO";
    auto w = rt.open_writer(out_spec);
    ASSERT_TRUE(w.is_ok());
    StreamSpec in_spec;
    in_spec.stream = "feedback";
    in_spec.endpoint = EndpointSpec{&sim_prog, 0, {0, 0}};
    in_spec.method.method = "FLEXIO";
    auto fb = rt.open_reader(in_spec);
    ASSERT_TRUE(fb.is_ok());

    double parameter = 1.0;
    for (int s = 0; s < 3; ++s) {
      std::vector<double> data(4, parameter);
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("field",
                                                      DataType::kDouble, {4},
                                                      Box{{0}, {4}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
      // Consume one steering step: the analytics' response to this output.
      auto step = fb.value()->begin_step();
      ASSERT_TRUE(step.is_ok());
      // Even scalar-only steps call perform_reads: the writer's end_step
      // rendezvouses with the reader's request (outside CACHING_ALL).
      ASSERT_TRUE(fb.value()->perform_reads().is_ok());
      auto knob = fb.value()->scalar_double("knob");
      ASSERT_TRUE(knob.is_ok());
      applied_feedback.push_back(knob.value());
      parameter = knob.value();
      ASSERT_TRUE(fb.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });

  std::thread viz([&] {
    StreamSpec in_spec;
    in_spec.stream = "forward";
    in_spec.endpoint = EndpointSpec{&viz_prog, 0, {1, 0}};
    in_spec.method.method = "FLEXIO";
    auto r = rt.open_reader(in_spec);
    ASSERT_TRUE(r.is_ok());
    StreamSpec out_spec;
    out_spec.stream = "feedback";
    out_spec.endpoint = EndpointSpec{&viz_prog, 0, {1, 0}};
    out_spec.method.method = "FLEXIO";
    auto w = rt.open_writer(out_spec);
    ASSERT_TRUE(w.is_ok());

    std::vector<double> data(4);
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()
                      ->schedule_read("field", Box{{0}, {4}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(data))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_TRUE(r.value()->end_step().is_ok());
      // Steering decision: double the simulation's parameter each step.
      ASSERT_TRUE(w.value()->begin_step(step.value()).is_ok());
      ASSERT_TRUE(w.value()->write_scalar("knob", data[0] * 2.0).is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  sim.join();
  viz.join();
  // parameter 1 -> fed back 2 -> 4 -> 8.
  EXPECT_EQ(applied_feedback, (std::vector<double>{2.0, 4.0, 8.0}));
}

// The full stack in one scenario: placement + stream + analytics chain.
TEST(FullStackTest, GtsQueryPipelineProducesConsistentHistograms) {
  Runtime rt;
  Program sim_prog("sim", 2);
  Program viz_prog("viz", 1);
  apps::Histogram1D from_stream;
  std::uint64_t direct_selected = 0, stream_selected = 0;

  // Reference: run the analytics directly on the same deterministic data.
  {
    std::uint64_t n = 0;
    for (int w = 0; w < 2; ++w) {
      apps::GtsRank gts(w, 2000, /*seed=*/99);
      gts.advance();
      const auto result =
          apps::analyze_particles(std::span<const double>(gts.zion()));
      direct_selected += result.selected_particles;
      n += result.input_particles;
    }
    ASSERT_GT(n, 0u);
  }

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      StreamSpec spec;
      spec.stream = "fullstack";
      spec.endpoint = EndpointSpec{&sim_prog, w, {0, w}};
      spec.method.method = "FLEXIO";
      auto writer = rt.open_writer(spec);
      ASSERT_TRUE(writer.is_ok());
      apps::GtsRank gts(w, 2000, /*seed=*/99);
      gts.advance();
      ASSERT_TRUE(writer.value()->begin_step(0).is_ok());
      ASSERT_TRUE(writer.value()
                      ->write(gts.zion_meta(),
                              as_bytes_view(std::span<const double>(gts.zion())))
                      .is_ok());
      ASSERT_TRUE(writer.value()->end_step().is_ok());
      ASSERT_TRUE(writer.value()->close().is_ok());
    });
  }
  threads.emplace_back([&] {
    StreamSpec spec;
    spec.stream = "fullstack";
    spec.endpoint = EndpointSpec{&viz_prog, 0, {4, 0}};
    spec.method.method = "FLEXIO";
    auto reader = rt.open_reader(spec);
    ASSERT_TRUE(reader.is_ok());
    auto step = reader.value()->begin_step();
    ASSERT_TRUE(step.is_ok());
    ASSERT_TRUE(reader.value()->schedule_read_pg(0).is_ok());
    ASSERT_TRUE(reader.value()->schedule_read_pg(1).is_ok());
    ASSERT_TRUE(reader.value()->perform_reads().is_ok());
    for (const PgBlock& block : reader.value()->pg_blocks()) {
      const auto result = apps::analyze_particles(std::span<const double>(
          reinterpret_cast<const double*>(block.payload.data()),
          block.payload.size() / sizeof(double)));
      stream_selected += result.selected_particles;
    }
    ASSERT_TRUE(reader.value()->end_step().is_ok());
    while (reader.value()->begin_step().status().code() !=
           ErrorCode::kEndOfStream) {
    }
  });
  for (auto& t : threads) t.join();
  // Moving the data through FlexIO must not change the analytics result.
  EXPECT_EQ(stream_selected, direct_selected);
}

}  // namespace
}  // namespace flexio
