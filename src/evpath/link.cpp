#include "evpath/link.h"

#include <cstring>
#include <map>
#include <thread>

#include "serial/buffer.h"
#include "util/log.h"
#include "util/metrics.h"

namespace flexio::evpath {

namespace {

// Transport-level observability shared by every link in the process:
// per-transport send latency (enqueue-to-accepted for shm/inproc; control
// message placed + rendezvous data registered for rdma), frame/byte
// volumes, and the retry pressure of the timeout-and-retry wrapper.
metrics::Histogram& send_latency_hist(TransportKind kind) {
  static metrics::Histogram& inproc = metrics::histogram("evpath.inproc.send.ns");
  static metrics::Histogram& shm = metrics::histogram("evpath.shm.send.ns");
  static metrics::Histogram& rdma = metrics::histogram("evpath.rdma.send.ns");
  switch (kind) {
    case TransportKind::kInproc: return inproc;
    case TransportKind::kShm: return shm;
    case TransportKind::kRdma: return rdma;
  }
  return inproc;
}

metrics::Counter& send_bytes_counter() {
  static metrics::Counter& c = metrics::counter("evpath.send.bytes");
  return c;
}
metrics::Counter& send_msgs_counter() {
  static metrics::Counter& c = metrics::counter("evpath.send.msgs");
  return c;
}
metrics::Counter& recv_msgs_counter() {
  static metrics::Counter& c = metrics::counter("evpath.recv.msgs");
  return c;
}
metrics::Counter& retry_counter() {
  static metrics::Counter& c = metrics::counter("evpath.send.retries");
  return c;
}

// One increment per message a native scatter-gather override shipped
// without the flat coalescing copy the base send_iov would have made.
metrics::Counter& copies_avoided_counter() {
  static metrics::Counter& c = metrics::counter("flexio.wire.copies_avoided");
  return c;
}

void note_send(TransportKind kind, std::size_t bytes, std::uint64_t start_ns) {
  if (!metrics::enabled()) return;
  send_msgs_counter().inc();
  send_bytes_counter().add(bytes);
  send_latency_hist(kind).record(metrics::now_ns() - start_ns);
}

std::size_t iov_bytes(std::span<const ByteView> frags) {
  std::size_t n = 0;
  for (const ByteView& f : frags) n += f.size();
  return n;
}

}  // namespace

Status SendLink::send_iov(std::span<const ByteView> frags, SendMode mode) {
  // Fallback: coalesce into one buffer. Native transports override this.
  std::vector<std::byte> flat;
  flat.reserve(iov_bytes(frags));
  for (const ByteView& f : frags) flat.insert(flat.end(), f.begin(), f.end());
  return send(ByteView(flat), mode);
}

std::string_view transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kShm: return "shm";
    case TransportKind::kRdma: return "rdma";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------- inproc --

struct InprocState {
  std::mutex mutex;
  std::deque<std::vector<std::byte>> queue;
  bool closed = false;
  // Set by the receive side's destructor: frames sent after this would
  // otherwise queue forever with nobody to drain them, masking a dead
  // reader as silent success.
  bool receiver_gone = false;
};

class InprocSendLink final : public SendLink {
 public:
  InprocSendLink(std::shared_ptr<InprocState> state) : state_(std::move(state)) {}

  Status send(ByteView msg, SendMode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->closed) {
      return make_error(ErrorCode::kFailedPrecondition, "link closed");
    }
    if (state_->receiver_gone) {
      return make_error(ErrorCode::kUnavailable, "inproc receiver gone");
    }
    state_->queue.emplace_back(msg.begin(), msg.end());
    ++stats_.messages;
    stats_.bytes += msg.size();
    note_send(TransportKind::kInproc, msg.size(), start_ns);
    return Status::ok();
  }

  Status send_iov(std::span<const ByteView> frags, SendMode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    // Gather once into the queue entry itself instead of flattening first.
    std::vector<std::byte> entry;
    const std::size_t total = iov_bytes(frags);
    entry.reserve(total);
    for (const ByteView& f : frags) entry.insert(entry.end(), f.begin(), f.end());
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->closed) {
      return make_error(ErrorCode::kFailedPrecondition, "link closed");
    }
    if (state_->receiver_gone) {
      return make_error(ErrorCode::kUnavailable, "inproc receiver gone");
    }
    state_->queue.push_back(std::move(entry));
    ++stats_.messages;
    stats_.bytes += total;
    note_send(TransportKind::kInproc, total, start_ns);
    if (metrics::enabled()) copies_avoided_counter().inc();
    return Status::ok();
  }

  Status close() override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->closed = true;
    return Status::ok();
  }

  TransportKind kind() const override { return TransportKind::kInproc; }
  LinkStats stats() const override { return stats_; }

 private:
  std::shared_ptr<InprocState> state_;
  LinkStats stats_;
};

class InprocRecvLink final : public RecvLink {
 public:
  InprocRecvLink(std::string peer, std::shared_ptr<InprocState> state)
      : peer_(std::move(peer)), state_(std::move(state)) {}

  ~InprocRecvLink() override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->receiver_gone = true;
  }

  Status try_receive(Message* out, bool* got) override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->queue.empty()) {
      out->from = peer_;
      out->payload = std::move(state_->queue.front());
      out->eos = false;
      state_->queue.pop_front();
      *got = true;
      if (metrics::enabled()) recv_msgs_counter().inc();
      return Status::ok();
    }
    if (state_->closed && !eos_delivered_) {
      eos_delivered_ = true;
      out->from = peer_;
      out->payload.clear();
      out->eos = true;
      *got = true;
      return Status::ok();
    }
    *got = false;
    return Status::ok();
  }

  TransportKind kind() const override { return TransportKind::kInproc; }

 private:
  std::string peer_;
  std::shared_ptr<InprocState> state_;
  bool eos_delivered_ = false;
};

// ------------------------------------------------------------------- shm --

class ShmSendLink final : public SendLink {
 public:
  explicit ShmSendLink(std::shared_ptr<shm::Channel> channel)
      : channel_(std::move(channel)) {}

  Status send(ByteView msg, SendMode mode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    const Status st = mode == SendMode::kSync ? channel_->send_sync(msg)
                                              : channel_->send(msg);
    if (st.is_ok()) {
      ++stats_.messages;
      stats_.bytes += msg.size();
      note_send(TransportKind::kShm, msg.size(), start_ns);
    }
    return st;
  }

  Status send_iov(std::span<const ByteView> frags, SendMode mode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    const Status st = mode == SendMode::kSync ? channel_->send_sync_iov(frags)
                                              : channel_->send_iov(frags);
    if (st.is_ok()) {
      const std::size_t total = iov_bytes(frags);
      ++stats_.messages;
      stats_.bytes += total;
      note_send(TransportKind::kShm, total, start_ns);
      if (metrics::enabled()) copies_avoided_counter().inc();
    }
    return st;
  }

  Status close() override { return channel_->close(); }
  TransportKind kind() const override { return TransportKind::kShm; }
  LinkStats stats() const override { return stats_; }

 private:
  std::shared_ptr<shm::Channel> channel_;
  LinkStats stats_;
};

class ShmRecvLink final : public RecvLink {
 public:
  ShmRecvLink(std::string peer, std::shared_ptr<shm::Channel> channel)
      : peer_(std::move(peer)), channel_(std::move(channel)) {}

  ~ShmRecvLink() override {
    // A sender blocked on ring space or an XPMEM sync ack would otherwise
    // spin out its full timeout against a consumer that no longer exists.
    channel_->abandon_receiver();
  }

  Status try_receive(Message* out, bool* got) override {
    std::vector<std::byte> payload;
    const Status st =
        channel_->receive_for(&payload, std::chrono::nanoseconds(0));
    if (st.code() == ErrorCode::kTimeout) {
      *got = false;
      return Status::ok();
    }
    if (st.code() == ErrorCode::kEndOfStream) {
      if (eos_delivered_) {
        *got = false;
        return Status::ok();
      }
      eos_delivered_ = true;
      out->from = peer_;
      out->payload.clear();
      out->eos = true;
      *got = true;
      return Status::ok();
    }
    FLEXIO_RETURN_IF_ERROR(st);
    out->from = peer_;
    out->payload = std::move(payload);
    out->eos = false;
    *got = true;
    if (metrics::enabled()) recv_msgs_counter().inc();
    return Status::ok();
  }

  TransportKind kind() const override { return TransportKind::kShm; }

 private:
  std::string peer_;
  std::shared_ptr<shm::Channel> channel_;
  bool eos_delivered_ = false;
};

// ------------------------------------------------------------------ rdma --

// Control-message tags on the NNTI small-message queues.
enum class RdmaTag : std::uint8_t {
  kEager = 0,       // payload rides in the control message
  kRendezvous = 1,  // payload sits in a registered sender buffer; Get it
  kAck = 2,         // receiver finished the Get; sender may reuse buffer
  kEos = 3,
};

struct RdmaControl {
  RdmaTag tag = RdmaTag::kEager;
  std::uint64_t seq = 0;
  std::uint64_t len = 0;
  nnti::MemRegion region;
};

void encode_rdma_control(const RdmaControl& ctl, ByteView payload,
                         serial::BufWriter* w) {
  w->put_u8(static_cast<std::uint8_t>(ctl.tag));
  w->put_varint(ctl.seq);
  w->put_varint(ctl.len);
  w->put_u64(ctl.region.key);
  w->put_u64(ctl.region.len);
  if (!payload.empty()) w->put_raw(payload.data(), payload.size());
}

Status decode_rdma_control(ByteView raw, RdmaControl* ctl, ByteView* payload) {
  serial::BufReader r(raw);
  std::uint8_t tag = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&tag));
  if (tag > static_cast<std::uint8_t>(RdmaTag::kEos)) {
    return make_error(ErrorCode::kInternal, "bad rdma control tag");
  }
  ctl->tag = static_cast<RdmaTag>(tag);
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&ctl->seq));
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&ctl->len));
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&ctl->region.key));
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&ctl->region.len));
  FLEXIO_RETURN_IF_ERROR(r.get_view(r.remaining(), payload));
  return Status::ok();
}

/// Retry wrapper: the paper's "simple timeout-and-retry schemes to cope
/// with errors and failures during data movement".
template <typename Fn>
Status with_retries(Fn&& fn, int max_retries, LinkStats* stats) {
  Status last;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    last = fn();
    if (last.is_ok()) return last;
    if (last.code() != ErrorCode::kUnavailable &&
        last.code() != ErrorCode::kResourceExhausted &&
        last.code() != ErrorCode::kTimeout) {
      return last;  // non-transient
    }
    if (attempt < max_retries) {
      ++stats->retries;
      retry_counter().inc();
      std::this_thread::yield();
    }
  }
  return last;
}

class RdmaSendLink final : public SendLink {
 public:
  RdmaSendLink(std::string peer_nic, LinkOptions options,
               std::shared_ptr<nnti::Nic> nic)
      : peer_nic_(std::move(peer_nic)),
        options_(options),
        nic_(std::move(nic)),
        cache_(nic_.get(), options.rdma_pool_bytes) {}

  ~RdmaSendLink() override {
    // Rendezvous buffers whose acks never arrived (receiver gone, link
    // abandoned without close()) still belong to the cache; hand them back
    // so its destructor deregisters and frees them.
    for (auto& [seq, buf] : outstanding_) cache_.release(buf);
  }

  Status send(ByteView msg, SendMode mode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    // Opportunistic poll; a transient ack error here surfaces on the next
    // blocking drain instead.
    (void)drain_acks(std::chrono::nanoseconds(0));
    Status st;
    if (msg.size() <= options_.rdma_eager_threshold) {
      st = send_eager(msg);
    } else {
      st = send_rendezvous(msg, mode);
    }
    if (st.is_ok()) {
      ++stats_.messages;
      stats_.bytes += msg.size();
      note_send(TransportKind::kRdma, msg.size(), start_ns);
    }
    return st;
  }

  Status send_iov(std::span<const ByteView> frags, SendMode mode) override {
    const std::uint64_t start_ns = metrics::enabled() ? metrics::now_ns() : 0;
    (void)drain_acks(std::chrono::nanoseconds(0));
    const std::size_t total = iov_bytes(frags);
    Status st;
    if (total <= options_.rdma_eager_threshold) {
      st = send_eager_iov(frags, total);
    } else {
      st = send_rendezvous_iov(frags, total, mode);
    }
    if (st.is_ok()) {
      ++stats_.messages;
      stats_.bytes += total;
      note_send(TransportKind::kRdma, total, start_ns);
      if (metrics::enabled()) copies_avoided_counter().inc();
    }
    return st;
  }

  Status close() override {
    // Wait for outstanding rendezvous buffers so nothing leaks, then EOS.
    const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
    while (!outstanding_.empty()) {
      if (!nic_->peer_alive(peer_nic_)) {
        return make_error(ErrorCode::kUnavailable,
                          "rdma close: receiver gone with transfers in flight");
      }
      FLEXIO_RETURN_IF_ERROR(drain_acks(std::chrono::milliseconds(1)));
      if (std::chrono::steady_clock::now() > deadline) {
        return make_error(ErrorCode::kTimeout,
                          "rdma close: unacked rendezvous transfers");
      }
    }
    serial::BufWriter w;
    encode_rdma_control(RdmaControl{RdmaTag::kEos, 0, 0, {}}, {}, &w);
    return with_retries(
        [&] { return nic_->put_message(peer_nic_, w.view()); },
        options_.max_retries, &stats_);
  }

  TransportKind kind() const override { return TransportKind::kRdma; }
  LinkStats stats() const override { return stats_; }

 private:
  Status send_eager(ByteView msg) {
    serial::BufWriter w;
    encode_rdma_control(RdmaControl{RdmaTag::kEager, next_seq_++, msg.size(), {}},
                        msg, &w);
    return with_retries(
        [&] { return nic_->put_message(peer_nic_, w.view()); },
        options_.max_retries, &stats_);
  }

  Status send_eager_iov(std::span<const ByteView> frags, std::size_t total) {
    // The control header and every payload fragment gather straight into
    // the peer's queue frame -- no flat intermediate message.
    serial::BufWriter w;
    encode_rdma_control(RdmaControl{RdmaTag::kEager, next_seq_++, total, {}},
                        {}, &w);
    std::vector<ByteView> all;
    all.reserve(frags.size() + 1);
    all.push_back(w.view());
    all.insert(all.end(), frags.begin(), frags.end());
    return with_retries(
        [&] { return nic_->put_message_iov(peer_nic_, all); },
        options_.max_retries, &stats_);
  }

  Status send_rendezvous(ByteView msg, SendMode mode) {
    auto buffer = cache_.acquire(msg.size());
    if (!buffer.is_ok()) return buffer.status();
    nnti::RegisteredBuffer buf = buffer.value();
    std::memcpy(buf.data, msg.data(), msg.size());
    return finish_rendezvous(buf, msg.size(), mode);
  }

  Status send_rendezvous_iov(std::span<const ByteView> frags,
                             std::size_t total, SendMode mode) {
    // Gather the fragments directly into the registered buffer the
    // receiver will Get from, skipping the flat coalescing copy.
    auto buffer = cache_.acquire(total);
    if (!buffer.is_ok()) return buffer.status();
    nnti::RegisteredBuffer buf = buffer.value();
    std::byte* dst = buf.data;
    for (const ByteView& f : frags) {
      if (f.empty()) continue;
      std::memcpy(dst, f.data(), f.size());
      dst += f.size();
    }
    return finish_rendezvous(buf, total, mode);
  }

  /// Announce a filled registered buffer to the receiver and (for sync
  /// sends) wait for the Get-completion ack.
  Status finish_rendezvous(nnti::RegisteredBuffer buf, std::size_t len,
                           SendMode mode) {
    const std::uint64_t seq = next_seq_++;
    serial::BufWriter w;
    encode_rdma_control(
        RdmaControl{RdmaTag::kRendezvous, seq, len, buf.region}, {}, &w);
    const Status st = with_retries(
        [&] { return nic_->put_message(peer_nic_, w.view()); },
        options_.max_retries, &stats_);
    if (!st.is_ok()) {
      cache_.release(buf);
      return st;
    }
    outstanding_.emplace(seq, buf);
    if (mode == SendMode::kSync) {
      const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
      while (outstanding_.count(seq) != 0) {
        if (!nic_->peer_alive(peer_nic_)) {
          // The buffer stays in outstanding_; the destructor hands it back
          // to the cache since no Get can touch it anymore.
          return make_error(ErrorCode::kUnavailable,
                            "rdma sync send: receiver gone");
        }
        FLEXIO_RETURN_IF_ERROR(drain_acks(std::chrono::milliseconds(1)));
        if (std::chrono::steady_clock::now() > deadline) {
          return make_error(ErrorCode::kTimeout,
                            "rdma sync send: receiver never fetched data");
        }
      }
    }
    return Status::ok();
  }

  /// Consume ack messages from our own queue, releasing buffers.
  Status drain_acks(std::chrono::nanoseconds wait) {
    for (;;) {
      std::vector<std::byte> raw;
      const Status st = nic_->poll_message(&raw, wait);
      if (st.code() == ErrorCode::kTimeout) return Status::ok();
      FLEXIO_RETURN_IF_ERROR(st);
      RdmaControl ctl;
      ByteView payload;
      FLEXIO_RETURN_IF_ERROR(decode_rdma_control(ByteView(raw), &ctl, &payload));
      if (ctl.tag != RdmaTag::kAck) {
        return make_error(ErrorCode::kInternal,
                          "unexpected message on rdma sender queue");
      }
      const auto it = outstanding_.find(ctl.seq);
      if (it != outstanding_.end()) {
        cache_.release(it->second);
        outstanding_.erase(it);
      }
      wait = std::chrono::nanoseconds(0);  // drain the rest without blocking
    }
  }

  std::string peer_nic_;
  LinkOptions options_;
  std::shared_ptr<nnti::Nic> nic_;
  nnti::RegistrationCache cache_;
  std::map<std::uint64_t, nnti::RegisteredBuffer> outstanding_;
  std::uint64_t next_seq_ = 1;
  LinkStats stats_;
};

class RdmaRecvLink final : public RecvLink {
 public:
  RdmaRecvLink(std::string peer, std::string sender_nic_name,
               LinkOptions options, std::shared_ptr<nnti::Nic> nic)
      : peer_(std::move(peer)),
        sender_nic_name_(std::move(sender_nic_name)),
        options_(options),
        nic_(std::move(nic)) {}

  Status try_receive(Message* out, bool* got) override {
    *got = false;
    std::vector<std::byte> raw;
    const Status st = nic_->poll_message(&raw, std::chrono::nanoseconds(0));
    if (st.code() == ErrorCode::kTimeout) return Status::ok();
    FLEXIO_RETURN_IF_ERROR(st);
    RdmaControl ctl;
    ByteView payload;
    FLEXIO_RETURN_IF_ERROR(decode_rdma_control(ByteView(raw), &ctl, &payload));
    switch (ctl.tag) {
      case RdmaTag::kEager:
        if (ctl.seq <= last_data_seq_) return Status::ok();  // duplicate frame
        last_data_seq_ = ctl.seq;
        out->from = peer_;
        out->payload.assign(payload.begin(), payload.end());
        out->eos = false;
        *got = true;
        if (metrics::enabled()) recv_msgs_counter().inc();
        return Status::ok();
      case RdmaTag::kRendezvous: {
        // Duplicate detection matters most here: the first copy of the
        // frame was Get+acked already, so the sender may have reused (or
        // freed) the registered buffer a second Get would touch.
        if (ctl.seq <= last_data_seq_) return Status::ok();
        last_data_seq_ = ctl.seq;
        // Receiver-directed Get (paper: "we use receiver-directed RDMA Get
        // for data movement"), then ack so the sender can reuse its buffer.
        out->payload.resize(ctl.len);
        LinkStats dummy;
        FLEXIO_RETURN_IF_ERROR(with_retries(
            [&] {
              return nic_->get(sender_nic_name_, ctl.region, 0,
                               MutableByteView(out->payload));
            },
            options_.max_retries, &dummy));
        serial::BufWriter w;
        encode_rdma_control(RdmaControl{RdmaTag::kAck, ctl.seq, 0, {}}, {}, &w);
        FLEXIO_RETURN_IF_ERROR(with_retries(
            [&] { return nic_->put_message(sender_nic_name_, w.view()); },
            options_.max_retries, &dummy));
        out->from = peer_;
        out->eos = false;
        *got = true;
        if (metrics::enabled()) recv_msgs_counter().inc();
        return Status::ok();
      }
      case RdmaTag::kEos:
        out->from = peer_;
        out->payload.clear();
        out->eos = true;
        *got = true;
        return Status::ok();
      case RdmaTag::kAck:
        return make_error(ErrorCode::kInternal,
                          "ack arrived on rdma receiver queue");
    }
    return make_error(ErrorCode::kInternal, "unreachable");
  }

  TransportKind kind() const override { return TransportKind::kRdma; }

 private:
  std::string peer_;
  std::string sender_nic_name_;
  LinkOptions options_;
  std::shared_ptr<nnti::Nic> nic_;
  // Highest data-frame sequence seen; eager and rendezvous frames share one
  // monotone per-link sequence, so anything at or below it is a duplicate.
  std::uint64_t last_data_seq_ = 0;
};

}  // namespace

std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_inproc_link(std::string peer_name, LinkOptions) {
  auto state = std::make_shared<InprocState>();
  return {std::make_unique<InprocSendLink>(state),
          std::make_unique<InprocRecvLink>(std::move(peer_name), state)};
}

std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_shm_link(std::string peer_name, LinkOptions options) {
  shm::ChannelOptions copts;
  copts.queue_entries = options.queue_entries;
  copts.queue_payload_bytes = options.queue_payload_bytes;
  copts.pool_bytes = options.pool_bytes;
  copts.use_xpmem = options.use_xpmem;
  copts.timeout = options.timeout;
  auto channel = std::make_shared<shm::Channel>(copts);
  return {std::make_unique<ShmSendLink>(channel),
          std::make_unique<ShmRecvLink>(std::move(peer_name), channel)};
}

std::pair<std::unique_ptr<SendLink>, std::unique_ptr<RecvLink>>
make_rdma_link(std::string peer_name, LinkOptions options,
               std::shared_ptr<nnti::Nic> sender_nic,
               std::shared_ptr<nnti::Nic> receiver_nic) {
  const std::string sender_name = sender_nic->name();
  const std::string receiver_name = receiver_nic->name();
  auto send = std::make_unique<RdmaSendLink>(receiver_name, options,
                                             std::move(sender_nic));
  auto recv = std::make_unique<RdmaRecvLink>(std::move(peer_name), sender_name,
                                             options, std::move(receiver_nic));
  return {std::move(send), std::move(recv)};
}

}  // namespace flexio::evpath
