// Small string helpers shared by the XML parser, config handling, and the
// CoD-mini lexer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flexio {

/// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Case-sensitive prefix test.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a non-negative size with optional K/M/G (binary) suffix, e.g.
/// "64M" -> 67108864. Returns false on malformed input.
bool parse_size(std::string_view s, std::size_t* out);

/// Parse a signed integer; returns false on malformed input or overflow.
bool parse_int(std::string_view s, long long* out);

/// Parse a double; returns false on malformed input.
bool parse_double(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace flexio
