// Data Conditioning plug-in adapter: CoD-mini programs over stream pieces.
//
// This is the glue that makes CoD-mini codelets act as the paper's DC
// plug-ins (Section II.F): make_plugin_compiler() yields the compiler the
// FlexIO runtime invokes when a plug-in source string arrives from the
// peer side. The compiled plug-in sees, for each data piece:
//   globals   n (elements), rows, cols, step-invariant shape info
//   array     input[i]            -- the piece's payload as doubles
//   builtins  emit(v)             -- append one value to the output
//             keep_row(r)         -- append input row r (all cols values)
//             sqrt/fabs/pow/floor/min/max
// and must define `void transform()`. If transform() never emits anything
// and never references emit/keep_row, the piece passes through unchanged
// (annotation-only plug-ins). Local-array pieces may shrink or grow by
// whole rows (selection, sampling); global-array pieces must preserve
// their element count (e.g. unit conversion).
#pragma once

#include <string>

#include "cod/program.h"
#include "core/runtime.h"

namespace flexio::cod {

/// Compile `source` into a reusable DC plug-in. The program is compiled
/// once; each piece execution binds a fresh environment.
StatusOr<PluginFn> compile_plugin(const std::string& source,
                                  const VmLimits& limits = {});

/// A PluginCompiler for Runtime::set_plugin_compiler().
PluginCompiler make_plugin_compiler(const VmLimits& limits = {});

}  // namespace flexio::cod
