// Shared encoder for "flexio-stats-v1" delta lines.
//
// Both the flight recorder (local JSONL history) and the heartbeat
// piggyback path (cluster aggregation, docs/OBSERVABILITY.md) emit the
// same schema: one JSON object carrying only what changed since the
// previous sample -- counter deltas, new gauge values, histogram
// count/sum deltas plus current p50/p99 bucket-quantiles. This class owns
// the previous-sample state and renders the line, so the two producers
// cannot drift apart.
//
//   {"schema":"flexio-stats-v1","seq":3,"t_ns":17000,
//    "counters":{"evpath.send.msgs":42},
//    "gauges":{"shm.queue.occupancy":3},
//    "histograms":{"flexio.step.total.ns":
//        {"count":4,"sum":812345,"p50":180224.0,"p99":229376.0}}}
//
// p50/p99 are *cumulative* quantiles at sample time (not quantiles of the
// delta window): the log-bucketed histogram cannot subtract snapshots
// per-bucket cheaply, and the watchdog's stall detectors only need the
// current tail position. Consumers written against the original schema
// ({count,sum} only) keep parsing -- the new keys are additive.
//
// Not thread-safe; callers serialize (the flight recorder samples under
// its mutex, a reader's heartbeat thread owns its encoder exclusively).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/metrics.h"

namespace flexio::telemetry {

class DeltaEncoder {
 public:
  /// Baseline the current registry contents so the first next_line()
  /// reports deltas since now, not since process birth.
  void prime();

  /// One "flexio-stats-v1" line of changes since the previous call (or
  /// prime()). Returns an empty string when nothing changed -- callers
  /// skip the sample. `seq` and `t_ns` are stamped into the line.
  std::string next_line(std::uint64_t seq, std::uint64_t t_ns);

 private:
  struct Prev {
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    std::uint64_t hist_count = 0;
    std::uint64_t hist_sum = 0;
  };

  void note_prev(const std::string& name, const metrics::MetricSnapshot& s);

  std::map<std::string, Prev> prev_;
};

}  // namespace flexio::telemetry
