// Interconnect topologies over the flow network.
//
// Builds the link graph of the two machine families the paper evaluates on
// and routes node-to-node transfers across them:
//  * a 3-D torus with bidirectional links and dimension-ordered routing
//    (Gemini / Cray XK6 -- Titan),
//  * a two-level fat tree with leaf switches and a core switch layer
//    (InfiniBand -- Smoky).
// Every hop is a FlowNetwork link, so concurrent transfers contend for
// shared links under max-min fairness; NIC injection/ejection links model
// the per-node bandwidth cap.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/flow_network.h"
#include "sim/machine.h"
#include "util/status.h"

namespace flexio::sim {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Links a transfer from `src` to `dst` crosses (including both NICs).
  /// src == dst yields an empty path (loopback costs nothing here).
  virtual std::vector<LinkId> route(int src_node, int dst_node) const = 0;

  virtual int num_nodes() const = 0;

  /// Start a node-to-node transfer over the routed path.
  void transfer(FlowNetwork* net, int src_node, int dst_node, double bytes,
                std::function<void(SimTime)> on_done) const {
    net->start_flow(route(src_node, dst_node), bytes, std::move(on_done));
  }
};

/// 3-D torus (Gemini-like). Each node has NIC injection/ejection links;
/// each torus edge is a pair of directed links. Routing is dimension-
/// ordered (X, then Y, then Z), taking the shorter wrap-around direction.
class TorusTopology : public Topology {
 public:
  /// Builds links in `net` for a dims[0] x dims[1] x dims[2] torus. NIC
  /// links carry `nic_bw`; torus links carry `link_bw`.
  TorusTopology(FlowNetwork* net, std::array<int, 3> dims, double nic_bw,
                double link_bw);

  std::vector<LinkId> route(int src_node, int dst_node) const override;
  int num_nodes() const override { return dims_[0] * dims_[1] * dims_[2]; }

  /// Coordinates of a node id (x-major order).
  std::array<int, 3> coords(int node) const;
  int node_at(const std::array<int, 3>& c) const;

  /// Number of torus hops the route takes (for tests).
  int hop_count(int src_node, int dst_node) const;

 private:
  // Directed link ids: link_[node][dim][dir] with dir 0 = +, 1 = -.
  LinkId torus_link(int node, int dim, int dir) const {
    return torus_links_[static_cast<std::size_t>((node * 3 + dim) * 2 + dir)];
  }

  std::array<int, 3> dims_;
  std::vector<LinkId> nic_tx_, nic_rx_;
  std::vector<LinkId> torus_links_;
};

/// Two-level fat tree (InfiniBand-like): nodes attach to leaf switches of
/// `leaf_radix` ports; every leaf has an uplink trunk to the core with
/// `oversubscription` controlling its capacity (1.0 = full bisection).
class FatTreeTopology : public Topology {
 public:
  FatTreeTopology(FlowNetwork* net, int nodes, int leaf_radix, double nic_bw,
                  double oversubscription = 1.0);

  std::vector<LinkId> route(int src_node, int dst_node) const override;
  int num_nodes() const override { return static_cast<int>(nic_tx_.size()); }

  int leaf_of(int node) const { return node / leaf_radix_; }

 private:
  int leaf_radix_;
  std::vector<LinkId> nic_tx_, nic_rx_;
  std::vector<LinkId> leaf_up_, leaf_down_;  // per-leaf trunks to the core
};

/// Topology for a machine description: Titan-style machines (2 NUMA
/// domains) get a torus sized to hold `nodes_used`; others get a fat tree.
std::unique_ptr<Topology> make_topology(FlowNetwork* net,
                                        const MachineDesc& machine,
                                        int nodes_used);

}  // namespace flexio::sim
