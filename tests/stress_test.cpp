// Concurrency stress tests for the shared-memory layer: spinning
// producer/consumer pairs hammer the FastForward SPSC queue and the full
// channel, verifying FIFO order and zero lost entries. The default profile
// is short enough for CI; set FLEXIO_STRESS_ITERS to scale up (e.g.
// FLEXIO_STRESS_ITERS=2000000 for a soak run). These binaries are also the
// primary TSan targets -- see docs/TESTING.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include "evpath/bus.h"
#include "shm/channel.h"
#include "shm/spsc_queue.h"

namespace flexio::shm {
namespace {

using namespace std::chrono_literals;

std::uint64_t stress_iters(std::uint64_t short_profile) {
  const char* env = std::getenv("FLEXIO_STRESS_ITERS");
  if (env == nullptr || *env == '\0') return short_profile;
  // Parse signed and range-check: strtoull would silently wrap a negative
  // value ("-5") to ~2^64 and spin the test for days.
  char* end = nullptr;
  const long long n = std::strtoll(env, &end, 0);
  if (end == env || *end != '\0' || n <= 0) {
    ADD_FAILURE() << "FLEXIO_STRESS_ITERS must be a positive integer, got \""
                  << env << "\"";
    return short_profile;
  }
  return static_cast<std::uint64_t>(n);
}

TEST(SpscStressTest, SpinningPairFifoOrderZeroLoss) {
  const std::uint64_t kMessages = stress_iters(50000);
  SpscQueue queue(64, 64);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      std::uint64_t value = i;
      while (!queue.try_enqueue(
          ByteView(reinterpret_cast<const std::byte*>(&value),
                   sizeof(value)))) {
        // spin: FastForward's hot path, no blocking primitive involved
      }
    }
  });

  std::uint64_t received = 0;
  std::uint64_t sum_check = 0;
  std::vector<std::byte> msg;
  std::thread consumer([&] {
    while (received < kMessages) {
      if (!queue.try_dequeue(&msg)) continue;
      ASSERT_EQ(msg.size(), sizeof(std::uint64_t));
      std::uint64_t value = 0;
      std::memcpy(&value, msg.data(), sizeof(value));
      // FIFO: each dequeued value is exactly the next expected sequence
      // number; any loss, duplication, or reorder breaks this immediately.
      ASSERT_EQ(value, received);
      sum_check += value;
      ++received;
    }
  });

  producer.join();
  consumer.join();
  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(sum_check, kMessages * (kMessages - 1) / 2);
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.enqueued, kMessages);
  EXPECT_EQ(stats.dequeued, kMessages);
}

TEST(SpscStressTest, VariableLengthPayloadsSurviveWrap) {
  // Length-varying messages force every payload size class through the
  // ring repeatedly (the ring has 16 entries, so wraps are constant).
  const std::uint64_t kMessages = stress_iters(20000);
  SpscQueue queue(16, 128);

  std::thread producer([&] {
    std::vector<std::byte> payload;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      payload.assign(1 + i % 120, std::byte{static_cast<unsigned char>(i)});
      while (!queue.try_enqueue(ByteView(payload))) {
      }
    }
  });
  std::thread consumer([&] {
    std::vector<std::byte> msg;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      while (!queue.try_dequeue(&msg)) {
      }
      ASSERT_EQ(msg.size(), 1 + i % 120);
      ASSERT_EQ(msg[0], std::byte{static_cast<unsigned char>(i)});
    }
  });
  producer.join();
  consumer.join();
}

TEST(SpscStressTest, BlockingApiUnderContention) {
  const std::uint64_t kMessages = stress_iters(20000);
  SpscQueue queue(8, 64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      std::uint64_t value = i;
      ASSERT_TRUE(queue
                      .enqueue(ByteView(reinterpret_cast<const std::byte*>(
                                            &value),
                                        sizeof(value)),
                               10s)
                      .is_ok());
    }
  });
  std::thread consumer([&] {
    std::vector<std::byte> msg;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(queue.dequeue(&msg, 10s).is_ok());
      std::uint64_t value = 0;
      std::memcpy(&value, msg.data(), sizeof(value));
      ASSERT_EQ(value, i);
    }
  });
  producer.join();
  consumer.join();
}

TEST(ChannelStressTest, MixedInlinePoolXpmemTraffic) {
  // Exercise all three channel paths under contention: inline (<= 192 B),
  // pool (async large), and xpmem (sync large). Sequence numbers embedded
  // in the payload verify order and integrity across path switches.
  const std::uint64_t kMessages = stress_iters(10000);
  ChannelOptions options;
  options.queue_entries = 32;
  options.pool_bytes = 1 << 20;
  options.timeout = 30s;
  Channel channel(options);

  auto fill = [](std::vector<std::byte>* buf, std::uint64_t seq,
                 std::size_t n) {
    buf->resize(n);
    std::memcpy(buf->data(), &seq, sizeof(seq));
    for (std::size_t i = sizeof(seq); i < n; ++i) {
      (*buf)[i] = static_cast<std::byte>(seq + i);
    }
  };

  std::thread producer([&] {
    std::vector<std::byte> buf;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      const std::size_t size = (i % 3 == 0) ? 64 : 1024 + i % 512;
      fill(&buf, i, size);
      if (i % 5 == 0) {
        ASSERT_TRUE(channel.send_sync(ByteView(buf)).is_ok());
      } else {
        ASSERT_TRUE(channel.send(ByteView(buf)).is_ok());
      }
    }
    ASSERT_TRUE(channel.close().is_ok());
  });
  std::thread consumer([&] {
    std::vector<std::byte> msg;
    std::vector<std::byte> want;
    for (std::uint64_t i = 0;; ++i) {
      const Status st = channel.receive(&msg);
      if (st.code() == ErrorCode::kEndOfStream) {
        ASSERT_EQ(i, kMessages);  // zero lost entries
        break;
      }
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      const std::size_t size = (i % 3 == 0) ? 64 : 1024 + i % 512;
      fill(&want, i, size);
      ASSERT_EQ(msg, want);  // FIFO across inline/pool/xpmem switches
    }
  });
  producer.join();
  consumer.join();

  const ChannelStats stats = channel.stats();
  EXPECT_GT(stats.inline_sends, 0u);
  EXPECT_GT(stats.pool_sends, 0u);
  EXPECT_GT(stats.xpmem_sends, 0u);
}

TEST(SpscStressTest, ThirdThreadStatsSnapshotsAreRaceFree) {
  // QueueStats counters are relaxed atomics precisely so a monitoring
  // thread may sample them mid-traffic; this is the TSan regression guard
  // for that contract (producer/consumer cursors stay thread-private).
  const std::uint64_t kMessages = stress_iters(20000);
  SpscQueue queue(32, 64);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::uint64_t value = 0;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      value = i;
      while (!queue.try_enqueue(
          ByteView(reinterpret_cast<const std::byte*>(&value),
                   sizeof(value)))) {
      }
    }
  });
  std::thread consumer([&] {
    std::vector<std::byte> msg;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      while (!queue.try_dequeue(&msg)) {
      }
    }
    done.store(true, std::memory_order_release);
  });
  std::thread monitor([&] {
    std::uint64_t last_enq = 0, last_deq = 0;
    while (!done.load(std::memory_order_acquire)) {
      const QueueStats stats = queue.stats();
      // Monotone and consistent: dequeues never outrun enqueues.
      ASSERT_GE(stats.enqueued, last_enq);
      ASSERT_GE(stats.dequeued, last_deq);
      ASSERT_LE(stats.dequeued, stats.enqueued);
      last_enq = stats.enqueued;
      last_deq = stats.dequeued;
    }
  });
  producer.join();
  consumer.join();
  monitor.join();
  EXPECT_EQ(queue.stats().dequeued, kMessages);
}

TEST(EndpointStressTest, StatsPollingDuringRdmaTraffic) {
  // A monitoring thread polls outbound_stats()/transport_to() while the
  // sender streams messages over an RDMA link pair. Endpoint serializes
  // both behind send_mutex_; this test pins that contract under TSan (link
  // stats counters are plain fields, so any unlocked path is a real race).
  const std::uint64_t kMessages = stress_iters(2000);
  evpath::MessageBus bus;
  auto tx = bus.create_endpoint("stress.tx", evpath::Location{0, 0});
  auto rx = bus.create_endpoint("stress.rx", evpath::Location{1, 0});
  ASSERT_TRUE(tx.is_ok() && rx.is_ok());
  std::atomic<bool> done{false};

  std::thread sender([&] {
    std::vector<std::byte> payload;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      // Alternate eager and rendezvous sizes.
      payload.assign(i % 2 == 0 ? 64 : 8192,
                     static_cast<std::byte>(i));
      ASSERT_TRUE(tx.value()->send("stress.rx", ByteView(payload)).is_ok());
    }
    ASSERT_TRUE(tx.value()->close_to("stress.rx").is_ok());
  });
  std::thread receiver([&] {
    evpath::Message msg;
    std::uint64_t received = 0;
    for (;;) {
      ASSERT_TRUE(rx.value()->recv(&msg, std::chrono::seconds(30)).is_ok());
      if (msg.eos) break;
      ASSERT_EQ(msg.payload.size(), received % 2 == 0 ? 64u : 8192u);
      ++received;
    }
    ASSERT_EQ(received, kMessages);
    done.store(true, std::memory_order_release);
  });
  std::thread monitor([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const evpath::LinkStats stats = tx.value()->outbound_stats("stress.rx");
      ASSERT_GE(stats.messages, last);
      last = stats.messages;
      (void)tx.value()->transport_to("stress.rx");
      std::this_thread::yield();
    }
  });
  sender.join();
  receiver.join();
  monitor.join();
  EXPECT_EQ(tx.value()->outbound_stats("stress.rx").messages, kMessages);
}

}  // namespace
}  // namespace flexio::shm
