#include "serial/schema.h"

namespace flexio::serial {

std::size_t size_of(DataType t) {
  switch (t) {
    case DataType::kInt8:
    case DataType::kUInt8: return 1;
    case DataType::kInt16:
    case DataType::kUInt16: return 2;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat: return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kDouble: return 8;
    case DataType::kString:
    case DataType::kBytes: return 0;
  }
  return 0;
}

StatusOr<DataType> parse_datatype(std::string_view name) {
  if (name == "int8" || name == "byte") return DataType::kInt8;
  if (name == "int16" || name == "short") return DataType::kInt16;
  if (name == "int32" || name == "int" || name == "integer")
    return DataType::kInt32;
  if (name == "int64" || name == "long") return DataType::kInt64;
  if (name == "uint8" || name == "unsigned byte") return DataType::kUInt8;
  if (name == "uint16") return DataType::kUInt16;
  if (name == "uint32" || name == "unsigned integer") return DataType::kUInt32;
  if (name == "uint64" || name == "unsigned long") return DataType::kUInt64;
  if (name == "float" || name == "real") return DataType::kFloat;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  if (name == "bytes") return DataType::kBytes;
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown data type: " + std::string(name));
}

std::string_view datatype_name(DataType t) {
  switch (t) {
    case DataType::kInt8: return "int8";
    case DataType::kInt16: return "int16";
    case DataType::kInt32: return "int32";
    case DataType::kInt64: return "int64";
    case DataType::kUInt8: return "uint8";
    case DataType::kUInt16: return "uint16";
    case DataType::kUInt32: return "uint32";
    case DataType::kUInt64: return "uint64";
    case DataType::kFloat: return "float";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kBytes: return "bytes";
  }
  return "unknown";
}

Schema::Schema(std::string name, std::vector<FieldDesc> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {}

int Schema::field_index(std::string_view field_name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t Schema::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // field separator
    h *= 0x100000001b3ULL;
  };
  mix(name_);
  for (const auto& f : fields_) {
    mix(f.name);
    mix(datatype_name(f.type));
    mix(f.is_array ? "[]" : "");
  }
  return h;
}

void Schema::encode(BufWriter* w) const {
  w->put_string(name_);
  w->put_varint(fields_.size());
  for (const auto& f : fields_) {
    w->put_string(f.name);
    w->put_u8(static_cast<std::uint8_t>(f.type));
    w->put_u8(f.is_array ? 1 : 0);
  }
}

StatusOr<Schema> Schema::decode(BufReader* r) {
  std::string name;
  FLEXIO_RETURN_IF_ERROR(r->get_string(&name));
  std::uint64_t count = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_varint(&count));
  std::vector<FieldDesc> fields;
  fields.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FieldDesc f;
    FLEXIO_RETURN_IF_ERROR(r->get_string(&f.name));
    std::uint8_t type = 0;
    FLEXIO_RETURN_IF_ERROR(r->get_u8(&type));
    if (type > static_cast<std::uint8_t>(DataType::kBytes)) {
      return make_error(ErrorCode::kInvalidArgument, "bad field type tag");
    }
    f.type = static_cast<DataType>(type);
    std::uint8_t is_array = 0;
    FLEXIO_RETURN_IF_ERROR(r->get_u8(&is_array));
    f.is_array = is_array != 0;
    fields.push_back(std::move(f));
  }
  return Schema(std::move(name), std::move(fields));
}

Record::Record(const Schema* schema) : schema_(schema) {
  FLEXIO_CHECK(schema != nullptr);
  values_.resize(schema->fields().size());
  // Default-initialize values to the field's natural empty value.
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const FieldDesc& f = schema->fields()[i];
    if (f.is_array) {
      if (f.type == DataType::kDouble || f.type == DataType::kFloat) {
        values_[i] = std::vector<double>{};
      } else if (f.type == DataType::kBytes) {
        values_[i] = std::vector<std::byte>{};
      } else {
        values_[i] = std::vector<std::int64_t>{};
      }
    } else {
      switch (f.type) {
        case DataType::kFloat:
        case DataType::kDouble: values_[i] = 0.0; break;
        case DataType::kString: values_[i] = std::string{}; break;
        case DataType::kBytes: values_[i] = std::vector<std::byte>{}; break;
        case DataType::kUInt8:
        case DataType::kUInt16:
        case DataType::kUInt32:
        case DataType::kUInt64: values_[i] = std::uint64_t{0}; break;
        default: values_[i] = std::int64_t{0}; break;
      }
    }
  }
}

namespace {

/// Does this in-memory Value shape match the declared field?
bool value_matches(const FieldDesc& f, const Value& v) {
  if (f.is_array) {
    if (f.type == DataType::kDouble || f.type == DataType::kFloat) {
      return std::holds_alternative<std::vector<double>>(v);
    }
    if (f.type == DataType::kBytes) {
      return std::holds_alternative<std::vector<std::byte>>(v);
    }
    return std::holds_alternative<std::vector<std::int64_t>>(v);
  }
  switch (f.type) {
    case DataType::kFloat:
    case DataType::kDouble: return std::holds_alternative<double>(v);
    case DataType::kString: return std::holds_alternative<std::string>(v);
    case DataType::kBytes:
      return std::holds_alternative<std::vector<std::byte>>(v);
    case DataType::kUInt8:
    case DataType::kUInt16:
    case DataType::kUInt32:
    case DataType::kUInt64:
      return std::holds_alternative<std::uint64_t>(v) ||
             std::holds_alternative<std::int64_t>(v);
    default:
      return std::holds_alternative<std::int64_t>(v) ||
             std::holds_alternative<std::uint64_t>(v);
  }
}

std::uint64_t to_u64(const Value& v) {
  if (const auto* u = std::get_if<std::uint64_t>(&v)) return *u;
  return static_cast<std::uint64_t>(std::get<std::int64_t>(v));
}

void encode_scalar(DataType t, const Value& v, BufWriter* w) {
  switch (t) {
    case DataType::kInt8:
    case DataType::kUInt8: w->put_u8(static_cast<std::uint8_t>(to_u64(v))); break;
    case DataType::kInt16:
    case DataType::kUInt16:
      w->put_u16(static_cast<std::uint16_t>(to_u64(v)));
      break;
    case DataType::kInt32:
    case DataType::kUInt32:
      w->put_u32(static_cast<std::uint32_t>(to_u64(v)));
      break;
    case DataType::kInt64:
    case DataType::kUInt64: w->put_u64(to_u64(v)); break;
    case DataType::kFloat: {
      const float f = static_cast<float>(std::get<double>(v));
      w->put_raw(&f, sizeof f);
      break;
    }
    case DataType::kDouble: w->put_f64(std::get<double>(v)); break;
    case DataType::kString: w->put_string(std::get<std::string>(v)); break;
    case DataType::kBytes:
      w->put_bytes(ByteView(std::get<std::vector<std::byte>>(v)));
      break;
  }
}

Status decode_scalar(DataType t, BufReader* r, Value* out) {
  switch (t) {
    case DataType::kInt8: {
      std::uint8_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u8(&v));
      *out = static_cast<std::int64_t>(static_cast<std::int8_t>(v));
      return Status::ok();
    }
    case DataType::kUInt8: {
      std::uint8_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u8(&v));
      *out = static_cast<std::uint64_t>(v);
      return Status::ok();
    }
    case DataType::kInt16: {
      std::uint16_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u16(&v));
      *out = static_cast<std::int64_t>(static_cast<std::int16_t>(v));
      return Status::ok();
    }
    case DataType::kUInt16: {
      std::uint16_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u16(&v));
      *out = static_cast<std::uint64_t>(v);
      return Status::ok();
    }
    case DataType::kInt32: {
      std::uint32_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u32(&v));
      *out = static_cast<std::int64_t>(static_cast<std::int32_t>(v));
      return Status::ok();
    }
    case DataType::kUInt32: {
      std::uint32_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u32(&v));
      *out = static_cast<std::uint64_t>(v);
      return Status::ok();
    }
    case DataType::kInt64: {
      std::int64_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_i64(&v));
      *out = v;
      return Status::ok();
    }
    case DataType::kUInt64: {
      std::uint64_t v = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_u64(&v));
      *out = v;
      return Status::ok();
    }
    case DataType::kFloat: {
      float f = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_raw(&f, sizeof f));
      *out = static_cast<double>(f);
      return Status::ok();
    }
    case DataType::kDouble: {
      double d = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_f64(&d));
      *out = d;
      return Status::ok();
    }
    case DataType::kString: {
      std::string s;
      FLEXIO_RETURN_IF_ERROR(r->get_string(&s));
      *out = std::move(s);
      return Status::ok();
    }
    case DataType::kBytes: {
      ByteView bytes;
      FLEXIO_RETURN_IF_ERROR(r->get_bytes(&bytes));
      *out = std::vector<std::byte>(bytes.begin(), bytes.end());
      return Status::ok();
    }
  }
  return make_error(ErrorCode::kInternal, "bad type in decode_scalar");
}

}  // namespace

Status Record::set(std::string_view field, Value value) {
  const int idx = schema_->field_index(field);
  FLEXIO_CHECK(idx >= 0);
  const FieldDesc& f = schema_->fields()[static_cast<std::size_t>(idx)];
  if (!value_matches(f, value)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "type mismatch for field: " + std::string(field));
  }
  values_[static_cast<std::size_t>(idx)] = std::move(value);
  return Status::ok();
}

const Value& Record::get(std::string_view field) const {
  const int idx = schema_->field_index(field);
  FLEXIO_CHECK(idx >= 0);
  return values_[static_cast<std::size_t>(idx)];
}

StatusOr<std::int64_t> Record::get_int(std::string_view field) const {
  const Value& v = get(field);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    return static_cast<std::int64_t>(*u);
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "field is not integral: " + std::string(field));
}

StatusOr<double> Record::get_double(std::string_view field) const {
  const Value& v = get(field);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return make_error(ErrorCode::kInvalidArgument,
                    "field is not floating: " + std::string(field));
}

StatusOr<std::string> Record::get_string(std::string_view field) const {
  const Value& v = get(field);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return make_error(ErrorCode::kInvalidArgument,
                    "field is not string: " + std::string(field));
}

void Record::encode(BufWriter* w) const {
  w->put_u64(schema_->fingerprint());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const FieldDesc& f = schema_->fields()[i];
    const Value& v = values_[i];
    if (!f.is_array) {
      encode_scalar(f.type, v, w);
      continue;
    }
    if (f.type == DataType::kBytes) {
      w->put_bytes(ByteView(std::get<std::vector<std::byte>>(v)));
    } else if (f.type == DataType::kDouble || f.type == DataType::kFloat) {
      const auto& arr = std::get<std::vector<double>>(v);
      w->put_varint(arr.size());
      for (double d : arr) encode_scalar(f.type, Value(d), w);
    } else {
      const auto& arr = std::get<std::vector<std::int64_t>>(v);
      w->put_varint(arr.size());
      for (std::int64_t x : arr) encode_scalar(f.type, Value(x), w);
    }
  }
}

StatusOr<Record> Record::decode(const Schema& schema, BufReader* r) {
  std::uint64_t fp = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_u64(&fp));
  if (fp != schema.fingerprint()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "schema fingerprint mismatch for " + schema.name());
  }
  Record rec(&schema);
  for (std::size_t i = 0; i < schema.fields().size(); ++i) {
    const FieldDesc& f = schema.fields()[i];
    if (!f.is_array) {
      Value v;
      FLEXIO_RETURN_IF_ERROR(decode_scalar(f.type, r, &v));
      rec.values_[i] = std::move(v);
      continue;
    }
    if (f.type == DataType::kBytes) {
      ByteView bytes;
      FLEXIO_RETURN_IF_ERROR(r->get_bytes(&bytes));
      rec.values_[i] = std::vector<std::byte>(bytes.begin(), bytes.end());
      continue;
    }
    std::uint64_t n = 0;
    FLEXIO_RETURN_IF_ERROR(r->get_varint(&n));
    if (f.type == DataType::kDouble || f.type == DataType::kFloat) {
      std::vector<double> arr;
      arr.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) {
        Value v;
        FLEXIO_RETURN_IF_ERROR(decode_scalar(f.type, r, &v));
        arr.push_back(std::get<double>(v));
      }
      rec.values_[i] = std::move(arr);
    } else {
      std::vector<std::int64_t> arr;
      arr.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) {
        Value v;
        FLEXIO_RETURN_IF_ERROR(decode_scalar(f.type, r, &v));
        if (const auto* u = std::get_if<std::uint64_t>(&v)) {
          arr.push_back(static_cast<std::int64_t>(*u));
        } else {
          arr.push_back(std::get<std::int64_t>(v));
        }
      }
      rec.values_[i] = std::move(arr);
    }
  }
  return rec;
}

}  // namespace flexio::serial
