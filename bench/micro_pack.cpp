// Micro-benchmark of the strided pack kernel (adios::copy_region) against
// the seed's recursive implementation, kept here verbatim as the baseline.
//
// The interior-region workload is the one that matters for MxN
// redistribution: a reader selection cutting through a writer block yields
// short contiguous runs, so per-run overhead (the seed paid two O(ndim)
// flat_index walks plus a recursion frame per run) dominates the memcpys.
// The dense case shows the trailing-dimension coalescing collapsing a full
// block copy into a single memcpy. CI's perf-smoke gate asserts the
// interior-region speedup stays >= 2x (tools/check_bench_overhead.py).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "adios/array.h"
#include "bench/gbench_main.h"
#include "util/metrics.h"

namespace {

using namespace flexio;
using adios::Box;
using adios::Dims;

// ------------------------------------------------------ seed kernel (ref) --
// The pre-optimization copy_region: recursive row-major walk calling
// flat_index (O(ndim) with bounds checks) twice per contiguous run.

std::uint64_t seed_flat_index(const Box& box, const Dims& coord) {
  FLEXIO_CHECK(coord.size() == box.ndim());
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < box.ndim(); ++i) {
    FLEXIO_CHECK(coord[i] >= box.offset[i]);
    FLEXIO_CHECK(coord[i] < box.offset[i] + box.count[i]);
    idx = idx * box.count[i] + (coord[i] - box.offset[i]);
  }
  return idx;
}

void seed_copy_recursive(const Box& src_box, const std::byte* src,
                         const Box& dst_box, std::byte* dst, const Box& region,
                         std::size_t elem_size, Dims& coord, std::size_t dim) {
  const std::size_t n = region.ndim();
  if (dim + 1 == n || n == 0) {
    const std::uint64_t run = n == 0 ? 1 : region.count[n - 1];
    if (n > 0) coord[n - 1] = region.offset[n - 1];
    const std::uint64_t s = n == 0 ? 0 : seed_flat_index(src_box, coord);
    const std::uint64_t d = n == 0 ? 0 : seed_flat_index(dst_box, coord);
    std::memcpy(dst + d * elem_size, src + s * elem_size, run * elem_size);
    return;
  }
  for (std::uint64_t i = 0; i < region.count[dim]; ++i) {
    coord[dim] = region.offset[dim] + i;
    seed_copy_recursive(src_box, src, dst_box, dst, region, elem_size, coord,
                        dim + 1);
  }
}

void seed_copy_region(const Box& src_box, const std::byte* src,
                      const Box& dst_box, std::byte* dst, const Box& region,
                      std::size_t elem_size) {
  FLEXIO_CHECK(contains(src_box, region));
  FLEXIO_CHECK(contains(dst_box, region));
  if (region.elements() == 0) return;
  Dims coord(region.ndim(), 0);
  seed_copy_recursive(src_box, src, dst_box, dst, region, elem_size, coord, 0);
}

// -------------------------------------------------------------- workloads --

/// 3-D interior region: a 62x62x6 selection strictly inside a 64x64x8
/// block, so every one of the 3844 runs is a short (48-byte) memcpy.
struct Interior3D {
  Box src{{0, 0, 0}, {64, 64, 8}};
  Box dst{{1, 1, 1}, {62, 62, 6}};
  Box region{{1, 1, 1}, {62, 62, 6}};
  std::vector<double> a = std::vector<double>(src.elements(), 1.0);
  std::vector<double> b = std::vector<double>(dst.elements());
};

/// Dense case: region == src == dst, coalescible into one memcpy.
struct Dense3D {
  Box box{{0, 0, 0}, {64, 64, 16}};
  std::vector<double> a = std::vector<double>(box.elements(), 1.0);
  std::vector<double> b = std::vector<double>(box.elements());
};

template <typename W>
void set_bytes(benchmark::State& state, const W& w, const Box& region) {
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(region.elements() * sizeof(double)));
  (void)w;
}

void BM_PackSeedInterior3D(benchmark::State& state) {
  Interior3D w;
  for (auto _ : state) {
    seed_copy_region(w.src, reinterpret_cast<const std::byte*>(w.a.data()),
                     w.dst, reinterpret_cast<std::byte*>(w.b.data()), w.region,
                     sizeof(double));
    benchmark::DoNotOptimize(w.b.data());
  }
  set_bytes(state, w, w.region);
}
BENCHMARK(BM_PackSeedInterior3D);

void BM_PackStridedInterior3D(benchmark::State& state) {
  Interior3D w;
  for (auto _ : state) {
    adios::copy_region(w.src, reinterpret_cast<const std::byte*>(w.a.data()),
                       w.dst, reinterpret_cast<std::byte*>(w.b.data()),
                       w.region, sizeof(double));
    benchmark::DoNotOptimize(w.b.data());
  }
  set_bytes(state, w, w.region);
}
BENCHMARK(BM_PackStridedInterior3D);

void BM_PackSeedDense3D(benchmark::State& state) {
  Dense3D w;
  for (auto _ : state) {
    seed_copy_region(w.box, reinterpret_cast<const std::byte*>(w.a.data()),
                     w.box, reinterpret_cast<std::byte*>(w.b.data()), w.box,
                     sizeof(double));
    benchmark::DoNotOptimize(w.b.data());
  }
  set_bytes(state, w, w.box);
}
BENCHMARK(BM_PackSeedDense3D);

void BM_PackStridedDense3D(benchmark::State& state) {
  Dense3D w;
  for (auto _ : state) {
    adios::copy_region(w.box, reinterpret_cast<const std::byte*>(w.a.data()),
                       w.box, reinterpret_cast<std::byte*>(w.b.data()), w.box,
                       sizeof(double));
    benchmark::DoNotOptimize(w.b.data());
  }
  set_bytes(state, w, w.box);
}
BENCHMARK(BM_PackStridedDense3D);

}  // namespace

int main(int argc, char** argv) {
  // Enabled counters let the report record flexio.pack.{bytes,memcpy_runs}
  // deltas alongside the timings.
  flexio::metrics::set_enabled(true);
  return flexio::bench::run_benchmarks_with_report(argc, argv, "micro_pack");
}
