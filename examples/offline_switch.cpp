// The one-line switch: the same application code running online (stream)
// and offline (BP files), Section II.B's headline usability claim.
//
// The simulation and analytics below never mention a transport; only the
// method string changes between the two runs ("FLEXIO" vs "BP" -- in
// production that is one attribute in the XML config). The analytics
// output is identical either way.
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <thread>
#include <vector>

#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

namespace {

const adios::Dims kGlobal{10, 8};
constexpr int kSteps = 3;

void run_simulation(Runtime& rt, Program& prog, const xml::MethodConfig& method,
                    const std::string& stream, const std::string& dir) {
  StreamSpec spec;
  spec.stream = stream;
  spec.endpoint = EndpointSpec{&prog, 0, evpath::Location{0, 0}};
  spec.method = method;
  spec.file_dir = dir;
  auto writer = rt.open_writer(spec);
  FLEXIO_CHECK(writer.is_ok());
  const adios::Box block{{0, 0}, kGlobal};
  std::vector<double> field(block.elements());
  for (int step = 0; step < kSteps; ++step) {
    std::iota(field.begin(), field.end(), step * 1000.0);
    FLEXIO_CHECK(writer.value()->begin_step(step).is_ok());
    FLEXIO_CHECK(writer.value()
                     ->write(adios::global_array_var(
                                 "field", serial::DataType::kDouble, kGlobal,
                                 block),
                             as_bytes_view(std::span<const double>(field)))
                     .is_ok());
    FLEXIO_CHECK(writer.value()->end_step().is_ok());
  }
  FLEXIO_CHECK(writer.value()->close().is_ok());
}

std::vector<double> run_analytics(Runtime& rt, Program& prog,
                                  const xml::MethodConfig& method,
                                  const std::string& stream,
                                  const std::string& dir) {
  StreamSpec spec;
  spec.stream = stream;
  spec.endpoint = EndpointSpec{&prog, 0, evpath::Location{1, 0}};
  spec.method = method;
  spec.file_dir = dir;
  auto reader = rt.open_reader(spec);
  FLEXIO_CHECK(reader.is_ok());
  std::vector<double> means;
  std::vector<double> data(adios::volume(kGlobal));
  for (;;) {
    auto step = reader.value()->begin_step();
    if (step.status().code() == ErrorCode::kEndOfStream) break;
    FLEXIO_CHECK(step.is_ok());
    FLEXIO_CHECK(reader.value()
                     ->schedule_read("field", adios::Box{{0, 0}, kGlobal},
                                     MutableByteView(std::as_writable_bytes(
                                         std::span<double>(data))))
                     .is_ok());
    FLEXIO_CHECK(reader.value()->perform_reads().is_ok());
    means.push_back(std::accumulate(data.begin(), data.end(), 0.0) /
                    static_cast<double>(data.size()));
    FLEXIO_CHECK(reader.value()->end_step().is_ok());
  }
  FLEXIO_CHECK(reader.value()->close().is_ok());
  return means;
}

}  // namespace

int main() {
  const std::string dir = "offline_switch_data";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // --- Run 1: online, memory-to-memory, both programs live. -------------
  std::vector<double> online_means;
  {
    Runtime rt;
    Program sim("sim", 1), viz("viz", 1);
    xml::MethodConfig method;
    method.method = "FLEXIO";  // <- the one line
    std::thread w([&] { run_simulation(rt, sim, method, "switchdemo", dir); });
    std::thread r(
        [&] { online_means = run_analytics(rt, viz, method, "switchdemo", dir); });
    w.join();
    r.join();
  }

  // --- Run 2: offline, through BP files, analytics after the fact. ------
  std::vector<double> offline_means;
  {
    Runtime rt;
    Program sim("sim", 1), viz("viz", 1);
    xml::MethodConfig method;
    method.method = "BP";  // <- the one line, changed
    run_simulation(rt, sim, method, "switchdemo", dir);
    offline_means = run_analytics(rt, viz, method, "switchdemo", dir);
  }

  std::printf("step   online mean   offline mean\n");
  for (std::size_t s = 0; s < online_means.size(); ++s) {
    std::printf("%4zu %13.2f %14.2f%s\n", s, online_means[s],
                offline_means[s],
                online_means[s] == offline_means[s] ? "  (identical)" : "  !!");
  }
  std::filesystem::remove_all(dir);
  return online_means == offline_means ? 0 : 1;
}
