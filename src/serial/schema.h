// FFS-like self-describing record marshaling.
//
// EVPath's FFS transmits typed, named records whose schema travels with (or
// ahead of) the data, letting receivers decode messages from senders they
// were not compiled with. This module reproduces that capability: a Schema
// names typed fields, records encode against it, and the schema itself is
// serializable with a stable fingerprint so endpoints can detect mismatches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "serial/buffer.h"
#include "util/status.h"

namespace flexio::serial {

/// Element types understood by the middleware. Matches the ADIOS basic-type
/// set the paper's applications use (double arrays, int ids, ...).
enum class DataType : std::uint8_t {
  kInt8, kInt16, kInt32, kInt64,
  kUInt8, kUInt16, kUInt32, kUInt64,
  kFloat, kDouble,
  kString, kBytes,
};

/// Size in bytes of one element; 0 for variable-size types (string, bytes).
std::size_t size_of(DataType t);

/// "double" -> kDouble, etc. Returns error for unknown names.
StatusOr<DataType> parse_datatype(std::string_view name);

/// Canonical name of a type ("double", "int32", ...).
std::string_view datatype_name(DataType t);

/// One field of a record: scalar or variable-length array of a basic type.
struct FieldDesc {
  std::string name;
  DataType type = DataType::kDouble;
  bool is_array = false;

  friend bool operator==(const FieldDesc&, const FieldDesc&) = default;
};

/// Dynamic field value. Integral types widen to (u)int64 in memory; the
/// schema's declared type governs the wire width.
using Value = std::variant<std::int64_t, std::uint64_t, double, std::string,
                           std::vector<std::byte>, std::vector<std::int64_t>,
                           std::vector<double>>;

/// Named, ordered field list with a stable fingerprint.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<FieldDesc> fields);

  const std::string& name() const { return name_; }
  const std::vector<FieldDesc>& fields() const { return fields_; }

  /// Index of a field by name, or -1 when absent.
  int field_index(std::string_view field_name) const;

  /// FNV-1a over the canonical encoding; equal schemas hash equal.
  std::uint64_t fingerprint() const;

  /// Self-description: schemas travel ahead of first use on a connection.
  void encode(BufWriter* w) const;
  static StatusOr<Schema> decode(BufReader* r);

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::string name_;
  std::vector<FieldDesc> fields_;
};

/// A record bound to a schema: one Value per field, in schema order.
class Record {
 public:
  explicit Record(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  /// Set a field by name. Aborts on unknown field (programmer error);
  /// returns error on a value/type mismatch (data error).
  Status set(std::string_view field, Value value);

  /// Access a field by name; aborts on unknown field.
  const Value& get(std::string_view field) const;

  /// Typed convenience getters; return error on type mismatch.
  StatusOr<std::int64_t> get_int(std::string_view field) const;
  StatusOr<double> get_double(std::string_view field) const;
  StatusOr<std::string> get_string(std::string_view field) const;

  /// Wire encoding (schema fingerprint + field payloads).
  void encode(BufWriter* w) const;

  /// Decode against a known schema; checks the fingerprint first.
  static StatusOr<Record> decode(const Schema& schema, BufReader* r);

 private:
  const Schema* schema_;
  std::vector<Value> values_;
};

}  // namespace flexio::serial
