#include "sim/engine.h"

#include <algorithm>

namespace flexio::sim {

EventId EventEngine::schedule_at(SimTime when, std::function<void()> fn) {
  FLEXIO_CHECK(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_pending_;
  return id;
}

bool EventEngine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_pending_;
  return true;
}

SimTime EventEngine::run() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    const auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_pending_;
    now_ = e.when;
    ++executed_;
    fn();
  }
  return now_;
}

SimTime EventEngine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    const Entry e = queue_.top();
    queue_.pop();
    const auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_pending_;
    now_ = e.when;
    ++executed_;
    fn();
  }
  now_ = std::max(now_, until);
  return now_;
}

}  // namespace flexio::sim
