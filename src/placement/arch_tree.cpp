#include "placement/arch_tree.h"

namespace flexio::placement {

namespace {

/// Relative costs derived from the machine's bandwidth ratios: talking
/// within a NUMA domain is cheapest, across domains dearer, across nodes
/// dearest. Only the ordering matters to the mapper.
double node_cost(const sim::MachineDesc& m) { return 1.0 / m.nic_bw; }
double socket_cost(const sim::MachineDesc& m) { return 1.0 / m.mem_bw_remote; }
double core_cost(const sim::MachineDesc& m) { return 1.0 / m.mem_bw_local; }

}  // namespace

ArchTree ArchTree::two_level(const sim::MachineDesc& machine, int nodes_used) {
  FLEXIO_CHECK(nodes_used >= 1 && nodes_used <= machine.num_nodes);
  ArchTree tree;
  tree.machine_ = machine;
  tree.root_ = std::make_unique<ArchNode>();
  tree.root_->link_cost = node_cost(machine);
  tree.root_->first_core = 0;
  tree.root_->cores = static_cast<long>(nodes_used) * machine.cores_per_node();
  for (int n = 0; n < nodes_used; ++n) {
    auto node = std::make_unique<ArchNode>();
    node->link_cost = core_cost(machine);
    node->first_core = static_cast<long>(n) * machine.cores_per_node();
    node->cores = machine.cores_per_node();
    for (int c = 0; c < machine.cores_per_node(); ++c) {
      auto core = std::make_unique<ArchNode>();
      core->link_cost = 0;
      core->first_core = node->first_core + c;
      core->cores = 1;
      node->children.push_back(std::move(core));
    }
    tree.root_->children.push_back(std::move(node));
  }
  return tree;
}

ArchTree ArchTree::topology_aware(const sim::MachineDesc& machine,
                                  int nodes_used) {
  FLEXIO_CHECK(nodes_used >= 1 && nodes_used <= machine.num_nodes);
  ArchTree tree;
  tree.machine_ = machine;
  tree.root_ = std::make_unique<ArchNode>();
  tree.root_->link_cost = node_cost(machine);
  tree.root_->first_core = 0;
  tree.root_->cores = static_cast<long>(nodes_used) * machine.cores_per_node();
  for (int n = 0; n < nodes_used; ++n) {
    auto node = std::make_unique<ArchNode>();
    node->link_cost = socket_cost(machine);
    node->first_core = static_cast<long>(n) * machine.cores_per_node();
    node->cores = machine.cores_per_node();
    for (int s = 0; s < machine.sockets_per_node; ++s) {
      auto socket = std::make_unique<ArchNode>();
      socket->link_cost = core_cost(machine);
      socket->first_core =
          node->first_core + static_cast<long>(s) * machine.cores_per_socket;
      socket->cores = machine.cores_per_socket;
      for (int c = 0; c < machine.cores_per_socket; ++c) {
        auto core = std::make_unique<ArchNode>();
        core->link_cost = 0;
        core->first_core = socket->first_core + c;
        core->cores = 1;
        socket->children.push_back(std::move(core));
      }
      node->children.push_back(std::move(socket));
    }
    tree.root_->children.push_back(std::move(node));
  }
  return tree;
}

double ArchTree::core_distance(long a, long b) const {
  if (a == b) return 0;
  const ArchNode* node = root_.get();
  for (;;) {
    const ArchNode* child_with_both = nullptr;
    for (const auto& child : node->children) {
      const long lo = child->first_core;
      const long hi = child->first_core + child->cores;
      if (a >= lo && a < hi && b >= lo && b < hi) {
        child_with_both = child.get();
        break;
      }
    }
    if (child_with_both == nullptr) return node->link_cost;
    node = child_with_both;
  }
}

}  // namespace flexio::placement
