// Figure 4: Cost of dynamic buffer allocation and registration in RDMA Get
// on the Cray XK6 with the Gemini interconnect.
//
// Reproduces the paper's point-to-point bandwidth sweep: one curve with a
// persistent (static) buffer + registration, one paying allocation +
// registration on every transfer. Bandwidth comes from the calibrated
// Gemini cost model; a functional sanity column measures the real
// in-process registration-cache hit rate for the same access pattern.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.h"
#include "nnti/cost_model.h"
#include "nnti/nnti.h"
#include "nnti/registration_cache.h"
#include "sim/machine.h"
#include "util/metrics.h"

int main() {
  using namespace flexio;
  metrics::set_enabled(true);
  bench::Report report("fig4_rdma_registration");
  bench::CounterDelta delta;
  const sim::MachineDesc machine = sim::titan();
  const nnti::RdmaCostModel model(machine);

  std::printf("Figure 4: RDMA Get bandwidth on %s (Gemini)\n",
              machine.name.c_str());
  std::printf("%-12s %22s %22s %8s\n", "msg bytes", "static reg (MB/s)",
              "dynamic reg (MB/s)", "ratio");
  std::vector<double> static_mbps, dynamic_mbps;
  for (std::size_t bytes = 1 << 10; bytes <= (64u << 20); bytes <<= 1) {
    const double stat = model.bandwidth(bytes, /*dynamic=*/false) / 1e6;
    const double dyn = model.bandwidth(bytes, /*dynamic=*/true) / 1e6;
    static_mbps.push_back(stat);
    dynamic_mbps.push_back(dyn);
    std::printf("%-12zu %22.1f %22.1f %8.2f\n", bytes, stat, dyn, stat / dyn);
  }
  report.add_samples("static_reg_bandwidth", "MB/s", 0,
                     static_cast<int>(static_mbps.size()), static_mbps);
  report.add_samples("dynamic_reg_bandwidth", "MB/s", 0,
                     static_cast<int>(dynamic_mbps.size()), dynamic_mbps);

  // Functional cross-check: a GTS-like stream of varying message sizes
  // against the real registration cache; with the persistent pool nearly
  // every transfer avoids a fresh registration.
  nnti::Fabric fabric;
  auto nic = fabric.create_nic("bench");
  if (!nic.is_ok()) return 1;
  nnti::RegistrationCache cache(nic.value().get(), 512ull << 20);
  std::size_t size = 1 << 20;
  for (int step = 0; step < 200; ++step) {
    size = 1 << 20 | (static_cast<std::size_t>(step * 12345) & 0xFFFF);
    auto buf = cache.acquire(size);
    if (!buf.is_ok()) return 1;
    cache.release(buf.value());
  }
  const auto stats = cache.stats();
  std::printf(
      "\nregistration cache over 200 varying-size steps: %llu acquisitions, "
      "%llu registrations, %.1f%% reuse\n",
      static_cast<unsigned long long>(stats.acquisitions),
      static_cast<unsigned long long>(stats.registrations),
      100.0 * static_cast<double>(stats.hits) /
          static_cast<double>(stats.acquisitions));
  report.add_counter("regcache.acquisitions", stats.acquisitions);
  report.add_counter("regcache.registrations", stats.registrations);
  delta.drain(&report);
  return report.write().is_ok() ? 0 : 1;
}
