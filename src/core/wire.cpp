#include "core/wire.h"

namespace flexio::wire {

namespace {

using serial::BufReader;
using serial::BufWriter;

void put_box(BufWriter* w, const adios::Box& box) {
  w->put_varint(box.offset.size());
  for (std::uint64_t o : box.offset) w->put_varint(o);
  for (std::uint64_t c : box.count) w->put_varint(c);
}

Status get_box(BufReader* r, adios::Box* box) {
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_varint(&n));
  box->offset.resize(n);
  box->count.resize(n);
  for (auto& o : box->offset) FLEXIO_RETURN_IF_ERROR(r->get_varint(&o));
  for (auto& c : box->count) FLEXIO_RETURN_IF_ERROR(r->get_varint(&c));
  return Status::ok();
}

// Versioned trailer chain appended after a message's regular fields. Each
// trailer starts with a one-byte version tag; decoders read known trailers
// in any order and skip the rest of the frame at the first unknown tag
// (forward compatibility). A decoder that reaches the trailer position with
// no bytes left is looking at an old-format frame and reports "absent" for
// every trailer, so seed-format frames keep parsing (pinned by
// tests/core_test.cpp and tests/serial_test.cpp).
constexpr std::uint8_t kTraceTrailerV1 = 1;
constexpr std::uint8_t kMembershipTrailerV2 = 2;
constexpr std::uint8_t kStatsTrailerV3 = 3;

void put_trace_trailer(BufWriter* w, const std::optional<TraceContext>& t) {
  if (!t) return;
  w->put_u8(kTraceTrailerV1);
  w->put_varint(t->stream_id);
  w->put_i64(t->step);
  w->put_varint(t->span_id);
  w->put_varint(t->send_ns);
}

void put_trailers(BufWriter* w, const std::optional<TraceContext>& t,
                  const std::optional<std::uint64_t>& epoch) {
  put_trace_trailer(w, t);
  if (epoch) {
    w->put_u8(kMembershipTrailerV2);
    w->put_varint(*epoch);
  }
}

Status get_trailers(BufReader* r, std::optional<TraceContext>* trace,
                    std::optional<std::uint64_t>* epoch) {
  trace->reset();
  if (epoch != nullptr) epoch->reset();
  while (!r->at_end()) {
    std::uint8_t version = 0;
    FLEXIO_RETURN_IF_ERROR(r->get_u8(&version));
    if (version == kTraceTrailerV1) {
      TraceContext t;
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.stream_id));
      FLEXIO_RETURN_IF_ERROR(r->get_i64(&t.step));
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.span_id));
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.send_ns));
      *trace = t;
    } else if (version == kMembershipTrailerV2 && epoch != nullptr) {
      std::uint64_t e = 0;
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&e));
      *epoch = e;
    } else {
      ByteView rest;
      return r->get_view(r->remaining(), &rest);  // skip unknown trailers
    }
  }
  return Status::ok();
}

Status get_trace_trailer(BufReader* r, std::optional<TraceContext>* out) {
  return get_trailers(r, out, nullptr);
}

/// Telemetry piggyback: sender program name + one flexio-stats-v1 delta
/// line. Appended AFTER the trace trailer so v1-only decoders (which skip
/// the rest of the frame at the first unknown tag) still see the trace.
void put_stats_trailer(BufWriter* w, const std::string& program,
                       const std::string& stats) {
  if (program.empty() && stats.empty()) return;
  w->put_u8(kStatsTrailerV3);
  w->put_string(program);
  w->put_string(stats);
}

/// Heartbeat trailer chain: trace (v1) and stats (v3), either absent.
Status get_heartbeat_trailers(BufReader* r, std::optional<TraceContext>* trace,
                              std::string* program, std::string* stats) {
  trace->reset();
  program->clear();
  stats->clear();
  while (!r->at_end()) {
    std::uint8_t version = 0;
    FLEXIO_RETURN_IF_ERROR(r->get_u8(&version));
    if (version == kTraceTrailerV1) {
      TraceContext t;
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.stream_id));
      FLEXIO_RETURN_IF_ERROR(r->get_i64(&t.step));
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.span_id));
      FLEXIO_RETURN_IF_ERROR(r->get_varint(&t.send_ns));
      *trace = t;
    } else if (version == kStatsTrailerV3) {
      FLEXIO_RETURN_IF_ERROR(r->get_string(program));
      FLEXIO_RETURN_IF_ERROR(r->get_string(stats));
    } else {
      ByteView rest;
      return r->get_view(r->remaining(), &rest);  // skip unknown trailers
    }
  }
  return Status::ok();
}

Status expect_type(BufReader* r, MsgType want) {
  std::uint8_t tag = 0;
  FLEXIO_RETURN_IF_ERROR(r->get_u8(&tag));
  if (tag != static_cast<std::uint8_t>(want)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unexpected message type tag");
  }
  return Status::ok();
}

}  // namespace

std::uint64_t stream_id_hash(std::string_view stream) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  h &= 0xffffffffull;  // JSON-double safe
  return h == 0 ? 1 : h;
}

StatusOr<MsgType> peek_type(ByteView raw) {
  if (raw.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty message");
  }
  const auto tag = static_cast<std::uint8_t>(raw[0]);
  if (tag < static_cast<std::uint8_t>(MsgType::kOpenRequest) ||
      tag > static_cast<std::uint8_t>(MsgType::kMembershipUpdate)) {
    return make_error(ErrorCode::kInvalidArgument, "unknown message type");
  }
  return static_cast<MsgType>(tag);
}

std::vector<std::byte> encode_mux_prefix(std::uint64_t stream_id) {
  BufWriter w;
  w.put_u8(kMuxPrefixTag);
  w.put_varint(stream_id);
  return w.take();
}

StatusOr<MuxFrame> decode_mux(ByteView raw) {
  if (raw.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty message");
  }
  MuxFrame f;
  if (static_cast<std::uint8_t>(raw[0]) != kMuxPrefixTag) {
    f.inner = raw;  // legacy unprefixed frame
    return f;
  }
  BufReader r{raw};
  std::uint8_t tag = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&tag));
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&f.stream_id));
  if (f.stream_id == 0) {
    return make_error(ErrorCode::kInvalidArgument, "mux prefix stream_id 0");
  }
  FLEXIO_RETURN_IF_ERROR(r.get_view(r.remaining(), &f.inner));
  return f;
}

std::vector<std::byte> encode(const OpenRequest& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kOpenRequest));
  w.put_string(m.reader_program);
  w.put_varint(static_cast<std::uint64_t>(m.reader_size));
  return w.take();
}

StatusOr<OpenRequest> decode_open_request(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kOpenRequest));
  OpenRequest m;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.reader_program));
  std::uint64_t size = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&size));
  m.reader_size = static_cast<int>(size);
  return m;
}

std::vector<std::byte> encode(const OpenReply& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kOpenReply));
  w.put_string(m.writer_program);
  w.put_varint(static_cast<std::uint64_t>(m.writer_size));
  w.put_u8(m.caching);
  w.put_u8(m.batching ? 1 : 0);
  w.put_u8(m.async_writes ? 1 : 0);
  return w.take();
}

StatusOr<OpenReply> decode_open_reply(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kOpenReply));
  OpenReply m;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.writer_program));
  std::uint64_t size = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&size));
  m.writer_size = static_cast<int>(size);
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&m.caching));
  std::uint8_t b = 0, a = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&b));
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&a));
  m.batching = b != 0;
  m.async_writes = a != 0;
  return m;
}

std::vector<std::byte> encode(const StepAnnounce& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kStepAnnounce));
  w.put_i64(m.step);
  w.put_varint(m.blocks.size());
  for (const BlockInfo& b : m.blocks) {
    w.put_varint(static_cast<std::uint64_t>(b.writer_rank));
    b.meta.encode(&w);
    w.put_bytes(ByteView(b.scalar_payload));
  }
  put_trailers(&w, m.trace, m.membership_epoch);
  return w.take();
}

StatusOr<StepAnnounce> decode_step_announce(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kStepAnnounce));
  StepAnnounce m;
  FLEXIO_RETURN_IF_ERROR(r.get_i64(&m.step));
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.blocks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    BlockInfo b;
    std::uint64_t rank = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&rank));
    b.writer_rank = static_cast<int>(rank);
    auto meta = adios::VarMeta::decode(&r);
    if (!meta.is_ok()) return meta.status();
    b.meta = std::move(meta).value();
    ByteView payload;
    FLEXIO_RETURN_IF_ERROR(r.get_bytes(&payload));
    b.scalar_payload.assign(payload.begin(), payload.end());
    m.blocks.push_back(std::move(b));
  }
  FLEXIO_RETURN_IF_ERROR(get_trailers(&r, &m.trace, &m.membership_epoch));
  return m;
}

std::vector<std::byte> encode(const ReadRequest& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReadRequest));
  w.put_i64(m.step);
  w.put_varint(m.selections.size());
  for (const SelectionInfo& s : m.selections) {
    w.put_varint(static_cast<std::uint64_t>(s.reader_rank));
    w.put_string(s.var);
    put_box(&w, s.box);
  }
  w.put_varint(m.pg_requests.size());
  for (const PgRequestInfo& p : m.pg_requests) {
    w.put_varint(static_cast<std::uint64_t>(p.reader_rank));
    w.put_varint(static_cast<std::uint64_t>(p.writer_rank));
  }
  w.put_varint(m.plugins.size());
  for (const PluginInstall& p : m.plugins) {
    w.put_string(p.var);
    w.put_string(p.source);
    w.put_u8(p.run_at_writer ? 1 : 0);
  }
  put_trailers(&w, m.trace, m.membership_epoch);
  return w.take();
}

StatusOr<ReadRequest> decode_read_request(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kReadRequest));
  ReadRequest m;
  FLEXIO_RETURN_IF_ERROR(r.get_i64(&m.step));
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.selections.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SelectionInfo s;
    std::uint64_t rank = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&rank));
    s.reader_rank = static_cast<int>(rank);
    FLEXIO_RETURN_IF_ERROR(r.get_string(&s.var));
    FLEXIO_RETURN_IF_ERROR(get_box(&r, &s.box));
    m.selections.push_back(std::move(s));
  }
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.pg_requests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PgRequestInfo p;
    std::uint64_t a = 0, b = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&a));
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&b));
    p.reader_rank = static_cast<int>(a);
    p.writer_rank = static_cast<int>(b);
    m.pg_requests.push_back(p);
  }
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.plugins.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PluginInstall p;
    FLEXIO_RETURN_IF_ERROR(r.get_string(&p.var));
    FLEXIO_RETURN_IF_ERROR(r.get_string(&p.source));
    std::uint8_t at_writer = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_u8(&at_writer));
    p.run_at_writer = at_writer != 0;
    m.plugins.push_back(std::move(p));
  }
  FLEXIO_RETURN_IF_ERROR(get_trailers(&r, &m.trace, &m.membership_epoch));
  return m;
}

std::vector<std::byte> encode(const DataMsg& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kData));
  w.put_i64(m.step);
  w.put_varint(static_cast<std::uint64_t>(m.writer_rank));
  w.put_varint(m.pieces.size());
  for (const DataPiece& p : m.pieces) {
    p.meta.encode(&w);
    put_box(&w, p.region);
    w.put_bytes(p.bytes());
  }
  put_trace_trailer(&w, m.trace);
  return w.take();
}

serial::IovMessage encode_data_iov(const DataMsg& m) {
  serial::IovBuilder b;
  BufWriter& w = b.header();
  w.put_u8(static_cast<std::uint8_t>(MsgType::kData));
  w.put_i64(m.step);
  w.put_varint(static_cast<std::uint64_t>(m.writer_rank));
  w.put_varint(m.pieces.size());
  for (const DataPiece& p : m.pieces) {
    p.meta.encode(&w);
    put_box(&w, p.region);
    const ByteView payload = p.bytes();
    w.put_varint(payload.size());
    b.add_borrowed(payload);
  }
  // Header bytes written after the last borrowed payload become the final
  // wire fragment, so the trailer lands where decode_data expects it.
  put_trace_trailer(&w, m.trace);
  return std::move(b).finish();
}

StatusOr<DataMsg> decode_data(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kData));
  DataMsg m;
  FLEXIO_RETURN_IF_ERROR(r.get_i64(&m.step));
  std::uint64_t rank = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&rank));
  m.writer_rank = static_cast<int>(rank);
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.pieces.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    DataPiece p;
    auto meta = adios::VarMeta::decode(&r);
    if (!meta.is_ok()) return meta.status();
    p.meta = std::move(meta).value();
    FLEXIO_RETURN_IF_ERROR(get_box(&r, &p.region));
    ByteView payload;
    FLEXIO_RETURN_IF_ERROR(r.get_bytes(&payload));
    p.payload.assign(payload.begin(), payload.end());
    m.pieces.push_back(std::move(p));
  }
  FLEXIO_RETURN_IF_ERROR(get_trace_trailer(&r, &m.trace));
  return m;
}

std::vector<std::byte> encode(const PluginInstall& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kPluginInstall));
  w.put_string(m.var);
  w.put_string(m.source);
  w.put_u8(m.run_at_writer ? 1 : 0);
  return w.take();
}

StatusOr<PluginInstall> decode_plugin_install(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kPluginInstall));
  PluginInstall m;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.var));
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.source));
  std::uint8_t at_writer = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_u8(&at_writer));
  m.run_at_writer = at_writer != 0;
  return m;
}

std::vector<std::byte> encode(const MonitorReport& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kMonitorReport));
  w.put_u64(m.steps);
  w.put_u64(m.bytes_sent);
  w.put_f64(m.pack_seconds);
  w.put_f64(m.handshake_seconds);
  w.put_f64(m.send_seconds);
  w.put_u64(m.handshakes_performed);
  w.put_u64(m.handshakes_skipped);
  // Phase-attribution trailer (v1). Old decoders never read this far; old
  // frames end here and decode with all-zero phase fields.
  w.put_u8(1);
  w.put_u64(m.pack_ns);
  w.put_u64(m.enqueue_ns);
  w.put_u64(m.transfer_ns);
  w.put_u64(m.unpack_ns);
  w.put_u64(m.total_ns);
  w.put_u64(m.phase_steps);
  return w.take();
}

StatusOr<MonitorReport> decode_monitor_report(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kMonitorReport));
  MonitorReport m;
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.steps));
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.bytes_sent));
  FLEXIO_RETURN_IF_ERROR(r.get_f64(&m.pack_seconds));
  FLEXIO_RETURN_IF_ERROR(r.get_f64(&m.handshake_seconds));
  FLEXIO_RETURN_IF_ERROR(r.get_f64(&m.send_seconds));
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.handshakes_performed));
  FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.handshakes_skipped));
  if (!r.at_end()) {
    std::uint8_t version = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_u8(&version));
    if (version >= 1) {
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.pack_ns));
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.enqueue_ns));
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.transfer_ns));
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.unpack_ns));
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.total_ns));
      FLEXIO_RETURN_IF_ERROR(r.get_u64(&m.phase_steps));
    }
  }
  return m;
}

std::vector<std::byte> encode(const MembershipUpdate& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kMembershipUpdate));
  w.put_string(m.stream);
  w.put_varint(m.epoch);
  w.put_varint(m.members.size());
  for (const MemberInfo& mi : m.members) {
    w.put_varint(static_cast<std::uint64_t>(mi.rank));
    w.put_string(mi.contact);
    w.put_varint(mi.incarnation);
    w.put_u8(mi.state);
    w.put_varint(mi.join_epoch);
  }
  put_trace_trailer(&w, m.trace);
  return w.take();
}

StatusOr<MembershipUpdate> decode_membership_update(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kMembershipUpdate));
  MembershipUpdate m;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.stream));
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&m.epoch));
  std::uint64_t n = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&n));
  m.members.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MemberInfo mi;
    std::uint64_t rank = 0;
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&rank));
    mi.rank = static_cast<int>(rank);
    FLEXIO_RETURN_IF_ERROR(r.get_string(&mi.contact));
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&mi.incarnation));
    FLEXIO_RETURN_IF_ERROR(r.get_u8(&mi.state));
    FLEXIO_RETURN_IF_ERROR(r.get_varint(&mi.join_epoch));
    m.members.push_back(std::move(mi));
  }
  FLEXIO_RETURN_IF_ERROR(get_trace_trailer(&r, &m.trace));
  return m;
}

std::vector<std::byte> encode(const Heartbeat& m) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  w.put_string(m.stream);
  w.put_varint(static_cast<std::uint64_t>(m.rank));
  w.put_varint(m.incarnation);
  w.put_varint(m.send_ns);
  put_trace_trailer(&w, m.trace);
  put_stats_trailer(&w, m.program, m.stats);
  return w.take();
}

StatusOr<Heartbeat> decode_heartbeat(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kHeartbeat));
  Heartbeat m;
  FLEXIO_RETURN_IF_ERROR(r.get_string(&m.stream));
  std::uint64_t rank = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&rank));
  m.rank = static_cast<int>(rank);
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&m.incarnation));
  FLEXIO_RETURN_IF_ERROR(r.get_varint(&m.send_ns));
  FLEXIO_RETURN_IF_ERROR(
      get_heartbeat_trailers(&r, &m.trace, &m.program, &m.stats));
  return m;
}

std::vector<std::byte> encode_close(StepId last_step) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kClose));
  w.put_i64(last_step);
  return w.take();
}

StatusOr<StepId> decode_close(ByteView raw) {
  BufReader r{raw};
  FLEXIO_RETURN_IF_ERROR(expect_type(&r, MsgType::kClose));
  StepId last = 0;
  FLEXIO_RETURN_IF_ERROR(r.get_i64(&last));
  return last;
}

}  // namespace flexio::wire
