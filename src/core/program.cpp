#include "core/program.h"

#include <algorithm>

namespace flexio {

Program::Program(std::string name, int size)
    : name_(std::move(name)), size_(size) {
  FLEXIO_CHECK(size >= 1);
  active_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    active_[static_cast<std::size_t>(r)].store(true,
                                               std::memory_order_relaxed);
  }
  active_count_.store(size, std::memory_order_relaxed);
  admitted_epoch_.assign(static_cast<std::size_t>(size), 0);
  for (Slot* s : {&gather_slot_, &bcast_slot_, &barrier_slot_}) {
    s->arrived.assign(static_cast<std::size_t>(size), 0);
    s->departed.assign(static_cast<std::size_t>(size), 0);
    s->contributions.resize(static_cast<std::size_t>(size));
  }
}

// Each collective follows the same round structure:
//  entry    -- wait until no previous round is draining, then contribute;
//  complete -- latched when every *active* rank has arrived;
//  drain    -- once every arrival has departed (inactive ranks excused)
//              the slot resets for the next round.
// A collective timeout poisons the program (some rank is stuck); callers
// treat it as fatal, mirroring an MPI collective hang. With a liveness
// hook installed a stall caused by a dead rank instead resolves when the
// hook's sweep deactivates it and advance_locked re-latches the round.

void Program::advance_locked(Slot& s) {
  const auto idx = [](int r) { return static_cast<std::size_t>(r); };
  if (!s.complete) {
    bool any = false;
    bool all_active = true;
    for (int r = 0; r < size_; ++r) {
      if (s.arrived[idx(r)]) any = true;
      else if (is_active(r)) all_active = false;
    }
    if (any && all_active) s.complete = true;
  }
  if (s.complete) {
    // Excuse ranks that arrived but died before departing, then reset once
    // every arrival is accounted for.
    bool drained = true;
    for (int r = 0; r < size_; ++r) {
      if (!s.arrived[idx(r)] || s.departed[idx(r)]) continue;
      if (!is_active(r)) {
        s.departed[idx(r)] = 1;
        continue;
      }
      drained = false;
    }
    if (drained) {
      std::fill(s.arrived.begin(), s.arrived.end(), 0);
      std::fill(s.departed.begin(), s.departed.end(), 0);
      for (auto& c : s.contributions) c.clear();
      s.bcast_data.clear();
      s.complete = false;
      ++s.generation;
    }
  }
  s.cv.notify_all();
}

void Program::run_liveness_hook() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook = liveness_hook_;
  }
  if (hook) hook();
}

template <typename Pred>
Status Program::wait_slot(Slot& s, std::unique_lock<std::mutex>& lock,
                          std::chrono::steady_clock::time_point deadline,
                          Pred pred, const char* what) {
  // Without a failure detector, block exactly like the pre-elastic
  // program. With one, wake every few ms to let it sweep for deaths --
  // the sweep deactivates dead ranks, which re-advances this very slot.
  constexpr auto kPollSlice = std::chrono::milliseconds(2);
  const auto stalled = [&] {
    return make_error(ErrorCode::kTimeout,
                      std::string(what) + " in " + name_);
  };
  for (;;) {
    if (pred()) return Status::ok();
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return stalled();
    if (!has_hook_.load(std::memory_order_acquire)) {
      s.cv.wait_until(lock, deadline);
      if (pred()) return Status::ok();
      if (std::chrono::steady_clock::now() >= deadline) {
        return stalled();
      }
      continue;
    }
    const auto slice = std::min(deadline, now + kPollSlice);
    s.cv.wait_until(lock, slice);
    if (pred()) return Status::ok();
    lock.unlock();
    run_liveness_hook();
    lock.lock();
    advance_locked(s);
  }
}

Status Program::excised(const char* what, int rank) const {
  return make_error(ErrorCode::kUnavailable,
                    std::string(what) + ": rank " + std::to_string(rank) +
                        " excised from " + name_);
}

Status Program::gather(int rank, ByteView contribution,
                       std::vector<std::vector<std::byte>>* all,
                       std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  const auto idx = static_cast<std::size_t>(rank);
  Slot& s = gather_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  FLEXIO_RETURN_IF_ERROR(wait_slot(
      s, lock, deadline,
      [&] { return (!s.complete && !s.arrived[idx]) || !is_active(rank); },
      "gather entry stalled"));
  if (!is_active(rank)) return excised("gather", rank);
  s.contributions[idx] =
      std::vector<std::byte>(contribution.begin(), contribution.end());
  s.arrived[idx] = 1;
  advance_locked(s);
  FLEXIO_RETURN_IF_ERROR(
      wait_slot(s, lock, deadline,
                [&] { return s.complete || !is_active(rank); },
                "gather stalled waiting for ranks"));
  if (!s.complete && !is_active(rank)) return excised("gather", rank);
  if (rank == kCoordinator && all != nullptr) {
    *all = s.contributions;
  }
  s.departed[idx] = 1;
  advance_locked(s);
  return Status::ok();
}

Status Program::broadcast(int rank, std::vector<std::byte>* data,
                          std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  FLEXIO_CHECK(data != nullptr);
  const auto idx = static_cast<std::size_t>(rank);
  Slot& s = bcast_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  FLEXIO_RETURN_IF_ERROR(wait_slot(
      s, lock, deadline,
      [&] { return (!s.complete && !s.arrived[idx]) || !is_active(rank); },
      "broadcast entry stalled"));
  if (!is_active(rank)) return excised("broadcast", rank);
  if (rank == kCoordinator) s.bcast_data = *data;
  s.arrived[idx] = 1;
  advance_locked(s);
  FLEXIO_RETURN_IF_ERROR(wait_slot(
      s, lock, deadline, [&] { return s.complete || !is_active(rank); },
      "broadcast stalled"));
  if (!s.complete && !is_active(rank)) return excised("broadcast", rank);
  if (rank != kCoordinator) *data = s.bcast_data;
  s.departed[idx] = 1;
  advance_locked(s);
  return Status::ok();
}

Status Program::barrier(int rank, std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  const auto idx = static_cast<std::size_t>(rank);
  Slot& s = barrier_slot_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mutex);
  FLEXIO_RETURN_IF_ERROR(wait_slot(
      s, lock, deadline,
      [&] { return (!s.complete && !s.arrived[idx]) || !is_active(rank); },
      "barrier entry stalled"));
  if (!is_active(rank)) return excised("barrier", rank);
  s.arrived[idx] = 1;
  advance_locked(s);
  FLEXIO_RETURN_IF_ERROR(wait_slot(
      s, lock, deadline, [&] { return s.complete || !is_active(rank); },
      "barrier stalled"));
  if (!s.complete && !is_active(rank)) return excised("barrier", rank);
  s.departed[idx] = 1;
  advance_locked(s);
  return Status::ok();
}

void Program::activate(int rank) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    if (!active_[static_cast<std::size_t>(rank)].exchange(
            true, std::memory_order_acq_rel)) {
      active_count_.fetch_add(1, std::memory_order_acq_rel);
    }
    membership_cv_.notify_all();
  }
  for (Slot* s : {&gather_slot_, &bcast_slot_, &barrier_slot_}) {
    std::lock_guard<std::mutex> lock(s->mutex);
    advance_locked(*s);
  }
}

void Program::deactivate(int rank) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  FLEXIO_CHECK(rank != kCoordinator);
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    if (active_[static_cast<std::size_t>(rank)].exchange(
            false, std::memory_order_acq_rel)) {
      active_count_.fetch_sub(1, std::memory_order_acq_rel);
    }
    membership_cv_.notify_all();
  }
  // A round stalled on this rank's arrival re-latches over the survivors.
  for (Slot* s : {&gather_slot_, &bcast_slot_, &barrier_slot_}) {
    std::lock_guard<std::mutex> lock(s->mutex);
    advance_locked(*s);
  }
}

int Program::active_count() const {
  return active_count_.load(std::memory_order_acquire);
}

void Program::admit(int rank, std::uint64_t epoch) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  {
    std::lock_guard<std::mutex> lock(membership_mutex_);
    auto& admitted = admitted_epoch_[static_cast<std::size_t>(rank)];
    admitted = std::max(admitted, epoch);
  }
  activate(rank);
}

Status Program::await_admission(int rank, std::uint64_t join_epoch,
                                std::chrono::nanoseconds timeout) {
  FLEXIO_CHECK(rank >= 0 && rank < size_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(membership_mutex_);
  const auto admitted = [&] {
    return admitted_epoch_[static_cast<std::size_t>(rank)] >= join_epoch &&
           is_active(rank);
  };
  if (!membership_cv_.wait_until(lock, deadline, admitted)) {
    return make_error(ErrorCode::kTimeout,
                      "admission stalled: rank " + std::to_string(rank) +
                          " of " + name_);
  }
  return Status::ok();
}

void Program::set_liveness_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  liveness_hook_ = std::move(hook);
  has_hook_.store(static_cast<bool>(liveness_hook_),
                  std::memory_order_release);
}

}  // namespace flexio
