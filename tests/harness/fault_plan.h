// Deterministic, seed-driven fault planning for the NNTI fabric.
//
// A FaultPlan compiles declarative fault scripts -- fail / drop / delay /
// duplicate the Nth connect / register / putmsg / get / put, per peer pair
// or globally -- into an nnti::FaultHook, and records every decision it
// makes in an EventLog. Two layers compose:
//
//  * Scripted rules ("fail put nth=3 to=*viz.0* code=unavailable times=2").
//    Each rule keeps one occurrence counter per concrete (local, peer) pair
//    it matches, so firing is deterministic: ops on one pair are issued by
//    a single thread in program order.
//  * A seeded random layer. Decisions are *stateless*: occurrence n of op o
//    on pair (l, p) draws from hash(seed, o, l*, p*, n), where l*/p* are the
//    NIC names with their "#<id>" uniquifier stripped. The draw depends only
//    on those coordinates, never on cross-thread interleaving, so replaying
//    a seed reproduces the same faults byte-for-byte (compare
//    log().canonical()).
//
// Faults only apply to traffic that crosses the simulated interconnect
// (inter-node / RDMA links); shared-memory and in-proc links never touch
// the fabric.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nnti/nnti.h"
#include "util/event_log.h"
#include "util/status.h"

namespace flexio::torture {

enum class FaultKind { kFail, kDrop, kDelay, kDuplicate };

std::string_view fault_kind_name(FaultKind kind);

/// One declarative rule. `local` / `peer` are glob patterns ('*' wildcard)
/// matched against normalized NIC names; empty matches everything.
struct FaultRule {
  FaultKind kind = FaultKind::kFail;
  nnti::Op op = nnti::Op::kPutMessage;
  std::string local;                      // glob; "" or "*" = any
  std::string peer;                       // glob; "" or "*" = any
  std::uint64_t nth = 1;                  // 1-based occurrence, per pair
  std::uint64_t times = 1;                // consecutive occurrences hit
  ErrorCode code = ErrorCode::kUnavailable;  // for kFail
  std::chrono::nanoseconds delay{0};         // for kDelay
};

/// Rank-level fault actions for membership torture: instead of perturbing
/// fabric operations, these kill / gracefully depart / respawn / partition
/// whole reader ranks at deterministic points in their step loop. The
/// stress driver polls the plan at each point (see stress_driver.h); like
/// fabric rules they are replayable from the script/banner.
enum class RankOp { kKill, kLeave, kRespawn, kDelayHeartbeat };

std::string_view rank_op_name(RankOp op);

/// Where in the victim's step loop an action fires.
enum class StepPoint {
  kBegin,      // before begin_step(step): the rank never enters the step
  kPreReads,   // after begin_step, before perform_reads (mid-step)
  kPostReads,  // after perform_reads, before end_step (step data drained)
  kEnd,        // after end_step(step): clean step boundary
};

std::string_view step_point_name(StepPoint point);

struct RankAction {
  RankOp op = RankOp::kKill;
  int rank = 1;   // victim reader rank (never the coordinator)
  int step = 1;   // step index the action fires at
  StepPoint point = StepPoint::kBegin;
  std::chrono::nanoseconds delay{0};  // kDelayHeartbeat: suppression window
};

/// Seed-driven random fault mix. Probabilities are per op occurrence.
struct RandomProfile {
  double fail_prob = 0.0;    // transient kUnavailable failures
  double drop_prob = 0.0;    // silently lost frames
  double delay_prob = 0.0;   // jitter of delay_us
  double dup_prob = 0.0;     // duplicated deliveries
  std::uint64_t delay_us = 50;
  /// Never fail more than this many consecutive occurrences on one pair, so
  /// the transport's timeout-and-retry (max_retries) can always make
  /// progress. Keep below xml::MethodConfig::max_retries.
  int max_consecutive_fails = 2;
  /// Ops eligible for fail/drop. Delay/dup may hit any op. Defaults to the
  /// retry-wrapped data-movement ops.
  std::vector<nnti::Op> fail_ops = {nnti::Op::kPutMessage, nnti::Op::kGet,
                                    nnti::Op::kPut};
};

/// Strip the "#<id>" uniquifier the bus appends to per-link NIC names, so
/// rules and hashes see stable pair identities across runs.
std::string normalize_nic_name(const std::string& name);

/// '*'-wildcard glob match (anchored; '*' matches any run of characters).
bool glob_match(std::string_view pattern, std::string_view text);

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse a script: one rule per line, '#' comments, blank lines ignored.
  ///   <fail|drop|delay|dup> <connect|register|putmsg|get|put>
  ///       [nth=<N>] [times=<K>] [from=<glob>] [to=<glob>]
  ///       [code=<unavailable|timeout|resource_exhausted|internal>]
  ///       [delay_us=<U>]
  static StatusOr<FaultPlan> parse(std::string_view script);

  /// Seeded random plan. Deterministic per (seed, profile).
  static FaultPlan random(std::uint64_t seed, const RandomProfile& profile);

  /// Seeded kill/respawn plan: derives a victim rank (non-coordinator
  /// reader), a kill step/point, and -- when `respawn` -- a respawn some
  /// steps later, all from hash(seed). Deterministic per
  /// (seed, readers, steps).
  static FaultPlan random_membership(std::uint64_t seed, int readers,
                                     int steps, bool respawn);

  void add(const FaultRule& rule);
  void add(const RankAction& action);
  const std::vector<RankAction>& rank_actions() const { return rank_actions_; }

  /// Record a rank action's execution in the shared EventLog (same log as
  /// fabric decisions, so a failure banner shows one merged timeline).
  void note_rank_action(const RankAction& action, std::string_view what) const;

  /// Canonical script of the explicit rules (random layer noted separately
  /// in banner()).
  std::string script() const;

  /// Seed of the random layer (0 = none).
  std::uint64_t seed() const { return seed_; }

  /// Human-readable replay header: seed, profile, and rules. Print this on
  /// failure; feeding the same seed/script back reproduces the run.
  std::string banner() const;

  /// Install on a fabric. The plan's shared state outlives the returned
  /// hook, so the plan object may go out of scope after install.
  void install(nnti::Fabric* fabric) const;

  /// Remove any hook from the fabric.
  static void uninstall(nnti::Fabric* fabric);

  /// Build the hook without installing (for composing with other hooks).
  nnti::FaultHook hook() const;

  /// Decisions taken so far. Lives as long as any installed hook.
  const EventLog& log() const { return state_->log; }

  /// Total decisions that altered an operation.
  std::uint64_t faults_fired() const;

 private:
  struct State {
    std::mutex mutex;
    // Occurrence counters per (op, normalized local, normalized peer).
    std::map<std::string, std::uint64_t> counters;
    EventLog log;
    std::uint64_t fired = 0;
  };

  std::vector<FaultRule> rules_;
  std::vector<RankAction> rank_actions_;
  std::uint64_t seed_ = 0;
  bool random_enabled_ = false;
  RandomProfile profile_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace flexio::torture
