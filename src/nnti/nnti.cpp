#include "nnti/nnti.h"

#include <cstring>

namespace flexio::nnti {

Nic::Nic(Fabric* fabric, std::string name, std::size_t queue_depth)
    : fabric_(fabric), name_(std::move(name)), queue_depth_(queue_depth) {}

Nic::~Nic() { fabric_->remove(name_); }

StatusOr<MemRegion> Nic::register_memory(void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot register empty region");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = next_key_++;
  regions_[key] = Region{static_cast<std::byte*>(addr), len};
  ++stats_.registrations;
  return MemRegion{key, len};
}

Status Nic::unregister_memory(const MemRegion& region) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.erase(region.key) == 0) {
    return make_error(ErrorCode::kNotFound, "region not registered");
  }
  ++stats_.deregistrations;
  return Status::ok();
}

Status Nic::put_message(const std::string& peer, ByteView msg) {
  FLEXIO_RETURN_IF_ERROR(fabric_->inject(Op::kPutMessage, name_, peer));
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  const Status st = target->deliver(msg);
  if (st.is_ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.messages_sent;
  }
  return st;
}

Status Nic::deliver(ByteView msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (message_queue_.size() >= queue_depth_) {
    return make_error(ErrorCode::kResourceExhausted,
                      "message queue full at " + name_);
  }
  message_queue_.emplace_back(msg.begin(), msg.end());
  queue_cv_.notify_one();
  return Status::ok();
}

Status Nic::poll_message(std::vector<std::byte>* out,
                         std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!queue_cv_.wait_for(lock, timeout,
                          [this] { return !message_queue_.empty(); })) {
    return make_error(ErrorCode::kTimeout, "poll_message timed out");
  }
  *out = std::move(message_queue_.front());
  message_queue_.pop_front();
  ++stats_.messages_received;
  return Status::ok();
}

Status Nic::read_region(std::uint64_t key, std::uint64_t offset,
                        MutableByteView dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = regions_.find(key);
  if (it == regions_.end()) {
    return make_error(ErrorCode::kNotFound, "remote region not registered");
  }
  if (offset + dst.size() > it->second.len) {
    return make_error(ErrorCode::kOutOfRange, "RDMA get out of bounds");
  }
  std::memcpy(dst.data(), it->second.addr + offset, dst.size());
  return Status::ok();
}

Status Nic::write_region(std::uint64_t key, std::uint64_t offset,
                         ByteView src) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = regions_.find(key);
  if (it == regions_.end()) {
    return make_error(ErrorCode::kNotFound, "remote region not registered");
  }
  if (offset + src.size() > it->second.len) {
    return make_error(ErrorCode::kOutOfRange, "RDMA put out of bounds");
  }
  std::memcpy(it->second.addr + offset, src.data(), src.size());
  return Status::ok();
}

Status Nic::get(const std::string& peer, const MemRegion& remote,
                std::uint64_t offset, MutableByteView dst) {
  FLEXIO_RETURN_IF_ERROR(fabric_->inject(Op::kGet, name_, peer));
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  FLEXIO_RETURN_IF_ERROR(target->read_region(remote.key, offset, dst));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.gets;
  stats_.bytes_get += dst.size();
  return Status::ok();
}

Status Nic::put(const std::string& peer, ByteView src, const MemRegion& remote,
                std::uint64_t offset) {
  FLEXIO_RETURN_IF_ERROR(fabric_->inject(Op::kPut, name_, peer));
  std::shared_ptr<Nic> target = fabric_->lookup(peer);
  if (!target) {
    return make_error(ErrorCode::kUnavailable, "peer gone: " + peer);
  }
  FLEXIO_RETURN_IF_ERROR(target->write_region(remote.key, offset, src));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.puts;
  stats_.bytes_put += src.size();
  return Status::ok();
}

NicStats Nic::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StatusOr<std::shared_ptr<Nic>> Fabric::create_nic(const std::string& name,
                                                  std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nics_.find(name);
  if (it != nics_.end() && !it->second.expired()) {
    return make_error(ErrorCode::kAlreadyExists, "nic exists: " + name);
  }
  std::shared_ptr<Nic> nic(new Nic(this, name, queue_depth));
  nics_[name] = nic;
  return nic;
}

Status Fabric::connect(const std::string& from, const std::string& to) {
  FLEXIO_RETURN_IF_ERROR(inject(Op::kConnect, from, to));
  if (!lookup(to)) {
    return make_error(ErrorCode::kNotFound, "no such peer: " + to);
  }
  return Status::ok();
}

void Fabric::set_fault_injector(FaultInjector injector) {
  std::lock_guard<std::mutex> lock(mutex_);
  injector_ = std::move(injector);
}

std::shared_ptr<Nic> Fabric::lookup(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nics_.find(name);
  return it == nics_.end() ? nullptr : it->second.lock();
}

Status Fabric::inject(Op op, const std::string& local,
                      const std::string& peer) {
  FaultInjector injector;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    injector = injector_;
  }
  return injector ? injector(op, local, peer) : Status::ok();
}

void Fabric::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  nics_.erase(name);
}

}  // namespace flexio::nnti
