#include "apps/volume_renderer.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace flexio::apps {

namespace {

/// Cool-to-warm transfer function: value in [0,1] -> RGB.
void colormap(double t, float* rgb) {
  t = std::clamp(t, 0.0, 1.0);
  rgb[0] = static_cast<float>(0.23 + 0.71 * t);        // red rises
  rgb[1] = static_cast<float>(0.30 + 0.45 * (1.0 - std::fabs(2 * t - 1)));
  rgb[2] = static_cast<float>(0.75 - 0.60 * t);        // blue falls
}

}  // namespace

ImageFragment render_slab(const adios::Box& slab,
                          std::span<const double> field,
                          const RenderConfig& config) {
  FLEXIO_CHECK(slab.ndim() == 3);
  FLEXIO_CHECK(field.size() == slab.elements());
  ImageFragment frag;
  frag.width = static_cast<int>(slab.count[0]);
  frag.height = static_cast<int>(slab.count[1]);
  frag.z_offset = slab.offset[2];
  const auto pixels =
      static_cast<std::size_t>(frag.width) * static_cast<std::size_t>(frag.height);
  frag.rgb.assign(pixels * 3, 0.0f);
  frag.transmittance.assign(pixels, 1.0f);

  const auto nz = slab.count[2];
  const double range = std::max(config.value_hi - config.value_lo, 1e-12);
  for (std::uint64_t x = 0; x < slab.count[0]; ++x) {
    for (std::uint64_t y = 0; y < slab.count[1]; ++y) {
      const std::size_t pixel =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(frag.width) +
          static_cast<std::size_t>(x);
      float t = 1.0f;  // transmittance so far
      float rgb[3] = {0, 0, 0};
      for (std::uint64_t z = 0; z < nz && t > 1e-4f; ++z) {
        const double raw = field[(x * slab.count[1] + y) * nz + z];
        const double v = (raw - config.value_lo) / range;
        float sample_rgb[3];
        colormap(v, sample_rgb);
        const float alpha = static_cast<float>(
            std::clamp(v, 0.0, 1.0) * config.opacity_scale);
        for (int c = 0; c < 3; ++c) {
          rgb[c] += t * alpha * sample_rgb[c];
        }
        t *= 1.0f - alpha;
      }
      frag.rgb[pixel * 3 + 0] = rgb[0];
      frag.rgb[pixel * 3 + 1] = rgb[1];
      frag.rgb[pixel * 3 + 2] = rgb[2];
      frag.transmittance[pixel] = t;
    }
  }
  return frag;
}

StatusOr<std::vector<std::uint8_t>> composite(
    std::vector<ImageFragment> fragments) {
  if (fragments.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no fragments");
  }
  std::sort(fragments.begin(), fragments.end(),
            [](const ImageFragment& a, const ImageFragment& b) {
              return a.z_offset < b.z_offset;
            });
  const int width = fragments[0].width;
  const int height = fragments[0].height;
  const auto pixels =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  std::vector<float> rgb(pixels * 3, 0.0f);
  std::vector<float> transmittance(pixels, 1.0f);
  for (const ImageFragment& frag : fragments) {
    if (frag.width != width || frag.height != height) {
      return make_error(ErrorCode::kInvalidArgument,
                        "fragment image sizes differ");
    }
    for (std::size_t p = 0; p < pixels; ++p) {
      for (int c = 0; c < 3; ++c) {
        rgb[p * 3 + static_cast<std::size_t>(c)] +=
            transmittance[p] * frag.rgb[p * 3 + static_cast<std::size_t>(c)];
      }
      transmittance[p] *= frag.transmittance[p];
    }
  }
  std::vector<std::uint8_t> out(pixels * 3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::clamp(rgb[i], 0.0f, 1.0f) * 255.0f);
  }
  return out;
}

Status write_ppm(const std::string& path, int width, int height,
                 std::span<const std::uint8_t> rgb) {
  if (rgb.size() != static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height) * 3) {
    return make_error(ErrorCode::kInvalidArgument, "rgb buffer size wrong");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open " + path);
  }
  out << "P6\n" << width << " " << height << "\n255\n";
  out.write(reinterpret_cast<const char*>(rgb.data()),
            static_cast<std::streamsize>(rgb.size()));
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "ppm write failed");
}

}  // namespace flexio::apps
