// Uniform JSON reporting for the bench/ binaries.
//
// Every fig* harness and micro_* binary funnels its numbers through a
// Report so CI (and humans) get one machine-readable artifact per binary:
// BENCH_<name>.json, schema "flexio-bench-v1" (docs/OBSERVABILITY.md).
// A metric is a sample set summarized as median/p99/mean/min/max over
// `reps` measured repetitions after `warmup` unmeasured ones; counters are
// point-in-time values, typically metrics-registry deltas captured around
// the timed section.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace flexio::bench {

struct MetricSummary {
  std::string name;
  std::string unit;
  int warmup = 0;
  int reps = 0;
  double median = 0;
  double p99 = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
};

class Report {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// Run `fn` warmup times unmeasured, then `reps` times measured, and
  /// record the per-repetition wall time in nanoseconds.
  template <typename Fn>
  void measure(const std::string& label, int warmup, int reps, Fn&& fn) {
    for (int i = 0; i < warmup; ++i) fn();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    add_samples(label, "ns", warmup, reps, std::move(samples));
  }

  /// Summarize an externally-collected sample set.
  void add_samples(const std::string& label, const std::string& unit,
                   int warmup, int reps, std::vector<double> samples);

  /// Record a pre-summarized metric (e.g. from google-benchmark runs).
  void add_summary(MetricSummary summary) {
    metrics_.push_back(std::move(summary));
  }

  void add_counter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }

  /// Nearest-rank quantile of an unsorted sample set.
  static double quantile(std::vector<double> samples, double q);

  std::string json() const;

  /// Write BENCH_<name>.json into $FLEXIO_BENCH_DIR (or the cwd).
  Status write() const;

  const std::string& name() const { return name_; }
  const std::vector<MetricSummary>& metrics() const { return metrics_; }

 private:
  std::string name_;
  std::vector<MetricSummary> metrics_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Captures metrics-registry counter and histogram values at construction;
/// drain() adds the delta of everything that moved to the report. Histogram
/// deltas are folded in as two counters, `<name>.count` (samples recorded)
/// and `<name>.sum` (summed sample value, truncated to integer), so the
/// per-phase `flexio.step.*.ns` timings land in bench JSON alongside the
/// plain counters.
class CounterDelta {
 public:
  CounterDelta();
  void drain(Report* report) const;

 private:
  struct HistBase {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::map<std::string, std::uint64_t> base_;
  std::map<std::string, HistBase> hist_base_;
};

}  // namespace flexio::bench
