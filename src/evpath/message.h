// Message and addressing types for the EVPath-like layer.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace flexio::evpath {

/// Placement of an endpoint on the (real or simulated) machine. Transport
/// selection keys off it: same node -> shared memory, different node ->
/// RDMA (paper Section II.B: "intra- vs inter-node transports are
/// automatically configured according to the placements").
struct Location {
  int node = 0;
  int rank = 0;  // slot within its program, for diagnostics

  friend bool operator==(const Location&, const Location&) = default;
};

/// Which low-level transport a link uses.
enum class TransportKind { kInproc, kShm, kRdma };

std::string_view transport_kind_name(TransportKind kind);

/// One received message. `eos` marks the peer's clean close of the link;
/// payload is empty in that case.
struct Message {
  std::string from;
  std::vector<std::byte> payload;
  bool eos = false;
};

/// Delivery semantics for sends.
enum class SendMode {
  kAsync,  // return once the payload is safely buffered
  kSync,   // return once the receiver has consumed the payload
};

}  // namespace flexio::evpath
