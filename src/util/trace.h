// Span tracing for the data path: RAII spans with parent/child nesting,
// bounded ring-buffer storage, and Chrome trace_event JSON export
// (chrome://tracing / Perfetto "Open trace file").
//
// Cost model matches util/metrics.h: a disabled span is one relaxed atomic
// load and a branch (the constructor latches the decision, so a span that
// started enabled always records). Enabled spans take a global mutex only
// at end(), once per span -- tracing is a diagnosis mode, not a hot-path
// default. The ring keeps the newest spans: when it wraps, the oldest
// records are overwritten (tests/trace_test.cpp pins this).
//
// Span names must be string literals (or otherwise outlive the process):
// records store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace flexio::trace {

/// Runtime gate, independent of metrics::enabled(). Initialized from the
/// FLEXIO_TRACE environment variable.
bool enabled();
void set_enabled(bool on);

/// One completed span. Times come from metrics::now_ns() (fake-clock aware).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t id = 0;      // process-unique, monotonically assigned
  std::uint64_t parent = 0;  // id of the enclosing span on this thread, 0 = root
  std::uint32_t tid = 0;     // dense per-thread index, stable per thread
  std::uint32_t depth = 0;   // nesting depth (root = 0)
  std::uint32_t pid = 0;     // virtual process id (set_thread_pid), 0 = default
  std::uint64_t stream_id = 0;  // step annotation: stream hash, 0 = none
  std::int64_t step = -1;       // step annotation, -1 = none
  std::uint64_t peer_span = 0;  // span id in the peer process, 0 = none
  std::uint64_t remote_ns = 0;  // clock samples: peer timestamp, 0 = none
};

/// Resize the ring (drops existing records). Default capacity 4096, or
/// FLEXIO_TRACE_RING when set to a value >= 64. No minimum enforced --
/// tests use tiny rings; production code should call set_ring_capacity().
void set_capacity(std::size_t capacity);

/// Validated capacity change: sizes < 64 are rejected with a logged
/// warning (the ring keeps its current size). Newest-wins wrap semantics
/// are unchanged.
void set_ring_capacity(std::size_t capacity);
std::size_t ring_capacity();

/// Completed spans, oldest first. Safe to call while spans are recorded.
std::vector<SpanRecord> snapshot();

/// Drop all recorded spans.
void reset();

/// Virtual process identity for this thread. Simulated deployments run
/// writer and reader "processes" as thread groups inside one OS process;
/// stamping a per-thread pid keeps their spans separable so each side can
/// export its own ring slice (write_chrome_json_for) and the merge tool
/// can stitch them like genuinely separate processes.
void set_thread_pid(std::uint32_t pid);
std::uint32_t thread_pid();

/// Innermost open span id on this thread, 0 when none. Used to stamp the
/// current span's identity into outgoing wire headers.
std::uint64_t current_span_id();

/// Record a clock-sample marker: a zero-duration record pairing the local
/// clock (metrics::now_ns()) with a timestamp read from a peer's frame.
/// The merge tool estimates the inter-process clock offset from the
/// minimum one-way deltas of these pairs (NTP style). No-op when tracing
/// is disabled.
void clock_sample(std::uint64_t remote_ns);

/// Name used for clock-sample records in the ring and in exports.
inline constexpr const char* kClockSampleName = "flexio.clock_sample";

/// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
std::string chrome_json();

/// Same, restricted to records stamped with one virtual pid.
std::string chrome_json_for(std::uint32_t pid);

/// Write chrome_json() to a file (load via chrome://tracing).
Status write_chrome_json(const std::string& path);

/// Write chrome_json_for(pid) to a file.
Status write_chrome_json_for(const std::string& path, std::uint32_t pid);

class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin(name);
  }
  ~Span() {
    if (armed_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Id of this span while open (0 if tracing was disabled at construction).
  std::uint64_t id() const { return armed_ ? id_ : 0; }

 private:
  void begin(const char* name);
  void end();

  bool armed_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
};

/// Trace identity of a submitting thread, captured at task creation so a
/// worker-pool task can record spans as if it ran inline under the
/// submitter: same virtual pid, same {stream, step} annotation, and the
/// submitter's innermost open span as the parent of the task's root spans.
/// Cheap to capture and apply: thread-local reads and writes only.
struct TaskContext {
  std::uint32_t pid = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t stream_id = 0;
  std::int64_t step = -1;
  std::uint64_t peer_span = 0;
  static TaskContext capture();
};

/// RAII application of a TaskContext on the executing thread: installs the
/// pid, the step annotation, and a parent hint that root spans (empty open
/// stack) adopt instead of 0. Restores the previous state on destruction,
/// so pool threads carry no identity between tasks.
class TaskScope {
 public:
  explicit TaskScope(const TaskContext& ctx);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  std::uint32_t prev_pid_ = 0;
  std::uint64_t prev_parent_hint_ = 0;
  std::uint64_t prev_stream_ = 0;
  std::int64_t prev_step_ = -1;
  std::uint64_t prev_peer_ = 0;
};

/// RAII step annotation: while alive, every span *ending* on this thread
/// (and every clock_sample) is stamped with {stream_id, step, peer_span}.
/// Annotations are read at Span::end(), so a StepScope opened after a Span
/// in the same block still applies to it -- the span ends first. Nests;
/// the previous annotation is restored on destruction.
class StepScope {
 public:
  StepScope(std::uint64_t stream_id, std::int64_t step,
            std::uint64_t peer_span = 0);
  ~StepScope();
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

 private:
  std::uint64_t prev_stream_ = 0;
  std::int64_t prev_step_ = -1;
  std::uint64_t prev_peer_ = 0;
};

}  // namespace flexio::trace
