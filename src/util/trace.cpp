#include "util/trace.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "util/strings.h"

namespace flexio::trace {

namespace {

bool env_on(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  return std::string_view(v) == "1" || std::string_view(v) == "true" ||
         std::string_view(v) == "on";
}

std::atomic<bool> g_enabled{env_on("FLEXIO_TRACE")};

/// Global bounded span store. One mutex acquisition per completed span;
/// writers never hold it while the span body runs.
class Ring {
 public:
  static Ring& instance() {
    static Ring* r = new Ring;  // leaked: spans may end during shutdown
    return *r;
  }

  void push(const SpanRecord& rec) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (records_.size() < capacity_) {
      records_.push_back(rec);
    } else {
      records_[head_] = rec;
      head_ = (head_ + 1) % capacity_;
      wrapped_ = true;
    }
  }

  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    records_.clear();
    records_.reserve(capacity_);
    head_ = 0;
    wrapped_ = false;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
    head_ = 0;
    wrapped_ = false;
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(records_.size());
    if (!wrapped_) {
      out = records_;
    } else {
      // head_ points at the oldest record once the ring has wrapped.
      out.insert(out.end(), records_.begin() + static_cast<long>(head_),
                 records_.end());
      out.insert(out.end(), records_.begin(),
                 records_.begin() + static_cast<long>(head_));
    }
    return out;
  }

 private:
  Ring() { records_.reserve(capacity_); }
  mutable std::mutex mutex_;
  std::size_t capacity_ = 4096;
  std::vector<SpanRecord> records_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
};

std::uint32_t this_thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread stack of open span ids, for parent/depth bookkeeping.
struct OpenStack {
  std::vector<std::uint64_t> ids;
};
OpenStack& open_stack() {
  thread_local OpenStack stack;
  return stack;
}

std::atomic<std::uint64_t> g_next_span_id{1};

/// Escape a span name for JSON (names are identifiers in practice, but a
/// stray quote must not corrupt the export).
std::string json_escape(const char* s) {
  std::string out;
  for (; s && *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_capacity(std::size_t capacity) {
  Ring::instance().set_capacity(capacity);
}

std::vector<SpanRecord> snapshot() { return Ring::instance().snapshot(); }

void reset() { Ring::instance().reset(); }

void Span::begin(const char* name) {
  armed_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  OpenStack& stack = open_stack();
  parent_ = stack.ids.empty() ? 0 : stack.ids.back();
  depth_ = static_cast<std::uint32_t>(stack.ids.size());
  stack.ids.push_back(id_);
  start_ = metrics::now_ns();
}

void Span::end() {
  SpanRecord rec;
  rec.name = name_;
  rec.start_ns = start_;
  rec.end_ns = metrics::now_ns();
  rec.id = id_;
  rec.parent = parent_;
  rec.tid = this_thread_trace_id();
  rec.depth = depth_;
  OpenStack& stack = open_stack();
  // Spans are scoped objects, so per-thread teardown is LIFO by
  // construction; tolerate a mismatch (span moved across an unwind) by
  // popping back to our own id.
  while (!stack.ids.empty() && stack.ids.back() != id_) stack.ids.pop_back();
  if (!stack.ids.empty()) stack.ids.pop_back();
  Ring::instance().push(rec);
}

std::string chrome_json() {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += str_format(
        "{\"name\": \"%s\", \"cat\": \"flexio\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u, "
        "\"args\": {\"id\": %llu, \"parent\": %llu, \"depth\": %u}}%s\n",
        json_escape(s.name).c_str(), static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.end_ns - s.start_ns) / 1e3, s.tid,
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent), s.depth,
        i + 1 < spans.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

Status write_chrome_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open trace file: " + path);
  }
  out << chrome_json();
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "trace file write failed");
}

}  // namespace flexio::trace
