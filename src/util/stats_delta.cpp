#include "util/stats_delta.h"

#include "util/strings.h"

namespace flexio::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void DeltaEncoder::prime() {
  prev_.clear();
  for (const auto& [name, snap] : metrics::snapshot_all()) {
    note_prev(name, snap);
  }
}

void DeltaEncoder::note_prev(const std::string& name,
                             const metrics::MetricSnapshot& s) {
  Prev& p = prev_[name];
  p.counter = s.counter;
  p.gauge = s.gauge;
  p.hist_count = s.hist.count;
  p.hist_sum = s.hist.sum;
}

std::string DeltaEncoder::next_line(std::uint64_t seq, std::uint64_t t_ns) {
  const auto snaps = metrics::snapshot_all();
  std::string counters, gauges, hists;
  for (const auto& [name, snap] : snaps) {
    const Prev prev = prev_[name];  // default-zero for new metrics
    switch (snap.kind) {
      case metrics::MetricSnapshot::Kind::kCounter: {
        if (snap.counter != prev.counter) {
          if (!counters.empty()) counters += ",";
          counters += str_format(
              "\"%s\":%llu", json_escape(name).c_str(),
              static_cast<unsigned long long>(snap.counter - prev.counter));
        }
        break;
      }
      case metrics::MetricSnapshot::Kind::kGauge: {
        if (snap.gauge != prev.gauge) {
          if (!gauges.empty()) gauges += ",";
          gauges += str_format("\"%s\":%lld", json_escape(name).c_str(),
                               static_cast<long long>(snap.gauge));
        }
        break;
      }
      case metrics::MetricSnapshot::Kind::kHistogram: {
        if (snap.hist.count != prev.hist_count ||
            snap.hist.sum != prev.hist_sum) {
          if (!hists.empty()) hists += ",";
          hists += str_format(
              "\"%s\":{\"count\":%llu,\"sum\":%llu,\"p50\":%.1f,\"p99\":%.1f}",
              json_escape(name).c_str(),
              static_cast<unsigned long long>(snap.hist.count -
                                              prev.hist_count),
              static_cast<unsigned long long>(snap.hist.sum - prev.hist_sum),
              snap.hist.quantile(0.5), snap.hist.quantile(0.99));
        }
        break;
      }
    }
    note_prev(name, snap);
  }
  if (counters.empty() && gauges.empty() && hists.empty()) return {};
  std::string line = str_format(
      "{\"schema\":\"flexio-stats-v1\",\"seq\":%llu,\"t_ns\":%llu",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(t_ns));
  if (!counters.empty()) line += ",\"counters\":{" + counters + "}";
  if (!gauges.empty()) line += ",\"gauges\":{" + gauges + "}";
  if (!hists.empty()) line += ",\"histograms\":{" + hists + "}";
  line += "}";
  return line;
}

}  // namespace flexio::telemetry
