#!/usr/bin/env python3
"""Perf-smoke gate: disabled instrumentation must stay (nearly) free.

Reads a BENCH_micro_transports.json report (schema flexio-bench-v1) and
checks that the disabled-path overhead benchmarks cost at most
max(ABS_BUDGET_NS, REL_BUDGET * enabled-counter cost). A disabled counter
or span is one relaxed atomic load plus a branch; if it ever approaches the
enabled fetch_add cost, someone put work on the wrong side of the gate.

With a second report argument (BENCH_micro_pack.json) it also gates the
strided pack kernel: on the 3-D interior-region workload the iterative
kernel must stay at least PACK_SPEEDUP_MIN times faster than the seed's
recursive kernel (both run the same workload, so the time ratio is the
inverse throughput ratio).

The transports report also carries the two worker-pool scaling benches:
BM_StreamStepParallelPack (1 writer -> 16 readers, the pack + send phase)
and its mirror BM_StreamStepParallelUnpack (16 writers -> 1 reader, the
recv + placement phase). For each, 4 threads must beat serial by at least
SCALE_SPEEDUP_MIN on the phase's wall time, and the pool machinery itself,
run at concurrency 1 (a zero-worker pool, arg 0), must cost within
SCALE_OVERHEAD_REL of the plain serial path. The scaling half only binds
when the report's bench.hw_concurrency counter shows at least
SCALE_MIN_CORES cores -- four threads cannot speed anything up on a
one-core container, so there the gate reports itself skipped instead of
failing the build.

With a BENCH_micro_many_streams.json report it gates the multiplexing
fairness and fan-in properties: pooled mouse p99 with elephant streams
sharing the link must stay within MOUSE_P99_FACTOR of the mice-only
baseline (skipped below SCALE_MIN_CORES cores, like the pool scaling
gates), and the shared-link registry must have used O(links) connections
-- at least MANY_STREAMS_MIN streams over at most MANY_ENDPOINTS_MAX
shared endpoints (always binding; endpoint counting needs no parallelism).

Reports are matched by their JSON "name" field, so arguments can come in
any order and any subset.

Usage: check_bench_overhead.py <BENCH_*.json> [<BENCH_*.json> ...]
"""
import json
import sys

ABS_BUDGET_NS = 5.0  # a load+branch costs ~1 ns; 5 leaves CI noise room
REL_BUDGET = 0.6     # disabled must be well under the enabled fetch_add

DISABLED = ["BM_MetricsCounterDisabled", "BM_TraceSpanDisabled",
            "BM_FlightRecorderDisabled", "BM_FlightRecorderIdle",
            "BM_WatchdogDisabled"]
ENABLED = "BM_MetricsCounterEnabled"

# Sanity bound on rendering one /metrics scrape (stats-server thread, not
# the data path): generous, it only catches accidental O(huge) regressions.
EXPOSE_BENCH = "BM_StatsExposeSnapshot"
EXPOSE_BUDGET_NS = 1e6

PACK_SPEEDUP_MIN = 2.0
PACK_SEED = "BM_PackSeedInterior3D"
PACK_STRIDED = "BM_PackStridedInterior3D"

# (benchmark name, phase label) for the worker-pool scaling gates.
SCALE_BENCHES = [
    ("BM_StreamStepParallelPack", "pack+send"),
    ("BM_StreamStepParallelUnpack", "recv+unpack"),
]
SCALE_SPEEDUP_MIN = 1.5   # 4 threads vs serial, 16-way fan-out/fan-in
SCALE_OVERHEAD_REL = 0.02  # zero-worker pool (arg 0) vs plain serial
SCALE_MIN_CORES = 4

# Many-stream multiplexing gates (BENCH_micro_many_streams.json).
MOUSE_P99_FACTOR = 2.0     # mouse p99 with elephants vs mice-only
MANY_STREAMS_MIN = 1000    # streams the bench must have multiplexed
MANY_ENDPOINTS_MAX = 4     # shared endpoints those streams may cost

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def metric_ns(report, name, field):
    for metric in report["metrics"]:
        if metric["name"] == name:
            return metric[field] * UNIT_TO_NS[metric["unit"]]
    sys.exit(f"FAIL: metric {name!r} missing from report "
             f"(have: {[m['name'] for m in report['metrics']]})")


def median_ns(report, name):
    return metric_ns(report, name, "median")


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "flexio-bench-v1":
        sys.exit(f"FAIL: unexpected schema {report.get('schema')!r} in {path}")
    return report


def check_overhead(report):
    enabled = median_ns(report, ENABLED)
    budget = max(ABS_BUDGET_NS, REL_BUDGET * enabled)
    failed = False
    for name in DISABLED:
        cost = median_ns(report, name)
        verdict = "ok" if cost <= budget else "FAIL"
        print(f"{verdict}: {name} median {cost:.2f} ns "
              f"(budget {budget:.2f} ns, enabled counter {enabled:.2f} ns)")
        failed |= cost > budget
    expose = median_ns(report, EXPOSE_BENCH)
    ok = expose <= EXPOSE_BUDGET_NS
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: {EXPOSE_BENCH} median {expose / 1e3:.1f} us "
          f"(sanity budget {EXPOSE_BUDGET_NS / 1e3:.0f} us)")
    failed |= not ok
    return failed


def check_pack_speedup(report):
    seed = median_ns(report, PACK_SEED)
    strided = median_ns(report, PACK_STRIDED)
    speedup = seed / strided
    ok = speedup >= PACK_SPEEDUP_MIN
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: pack speedup {speedup:.2f}x "
          f"(seed {seed:.0f} ns vs strided {strided:.0f} ns, "
          f"need >= {PACK_SPEEDUP_MIN:.1f}x)")
    return not ok


def scale_medians(report, bench):
    """Median ns per scaling-bench arg (worker-pool thread count).

    Matched by prefix: google-benchmark appends /iterations:N/manual_time
    to the registered name, and pinning those suffixes here would couple
    the gate to bench tuning knobs.
    """
    out = {}
    for metric in report["metrics"]:
        name = metric["name"]
        if not name.startswith(bench + "/"):
            continue
        arg = int(name.split("/")[1])
        out[arg] = metric["median"] * UNIT_TO_NS[metric["unit"]]
    return out


def check_pool_scaling(report, bench, label):
    medians = scale_medians(report, bench)
    missing = [a for a in (0, 1, 4) if a not in medians]
    if missing:
        print(f"FAIL: {bench} args {missing} missing from report")
        return True
    serial, pool1, four = medians[1], medians[0], medians[4]
    failed = False

    overhead = pool1 / serial - 1.0
    ok = overhead <= SCALE_OVERHEAD_REL
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: {label} pool-at-1-thread overhead "
          f"{overhead * 100:+.1f}% "
          f"(pool {pool1 / 1e3:.0f} us vs serial {serial / 1e3:.0f} us, "
          f"budget {SCALE_OVERHEAD_REL * 100:.0f}%)")
    failed |= not ok

    cores = report.get("counters", {}).get("bench.hw_concurrency", 0)
    speedup = serial / four
    if cores < SCALE_MIN_CORES:
        print(f"skip: {label} scaling gate needs >= {SCALE_MIN_CORES} cores, "
              f"report ran on {cores} (measured {speedup:.2f}x at 4 threads)")
        return failed
    ok = speedup >= SCALE_SPEEDUP_MIN
    verdict = "ok" if ok else "FAIL"
    detail = ", ".join(f"{a}t {medians[a] / 1e3:.0f} us"
                       for a in sorted(medians) if a > 0)
    print(f"{verdict}: {label} speedup {speedup:.2f}x at 4 threads "
          f"({detail}; need >= {SCALE_SPEEDUP_MIN:.1f}x)")
    failed |= not ok
    return failed


def check_many_streams(report):
    counters = report.get("counters", {})
    streams = counters.get("bench.many_streams.streams", 0)
    endpoints = counters.get("bench.many_streams.shared_endpoints", 0)
    ok = streams >= MANY_STREAMS_MIN and endpoints <= MANY_ENDPOINTS_MAX
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: shared-link mode multiplexed {streams} streams over "
          f"{endpoints} shared endpoint(s) "
          f"(need >= {MANY_STREAMS_MIN} streams, <= {MANY_ENDPOINTS_MAX} "
          f"endpoints)")
    failed = not ok

    base = metric_ns(report, "many_streams.mouse_ns.mice_only", "p99")
    mixed = metric_ns(report, "many_streams.mouse_ns.with_elephants", "p99")
    factor = mixed / base
    cores = counters.get("bench.hw_concurrency", 0)
    if cores < SCALE_MIN_CORES:
        print(f"skip: mouse-p99 fairness gate needs >= {SCALE_MIN_CORES} "
              f"cores, report ran on {cores} (measured {factor:.2f}x)")
        return failed
    ok = factor <= MOUSE_P99_FACTOR
    verdict = "ok" if ok else "FAIL"
    print(f"{verdict}: mouse p99 {mixed / 1e3:.0f} us with elephants vs "
          f"{base / 1e3:.0f} us mice-only ({factor:.2f}x, "
          f"budget {MOUSE_P99_FACTOR:.1f}x)")
    failed |= not ok
    return failed


CHECKS = {
    "micro_transports": lambda r: check_overhead(r) | any(
        [check_pool_scaling(r, bench, label) for bench, label in
         SCALE_BENCHES]),
    "micro_pack": check_pack_speedup,
    "micro_many_streams": check_many_streams,
}


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    failed = False
    checked = 0
    for path in sys.argv[1:]:
        report = load_report(path)
        check = CHECKS.get(report.get("name"))
        if check is None:
            continue  # e.g. the per-stream latency table artifact
        failed |= bool(check(report))
        checked += 1
    if checked == 0:
        sys.exit("FAIL: no gateable report among the arguments")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
