// Quickstart: couple a tiny "simulation" with a tiny "analytics" program
// through a FlexIO stream.
//
// Two writer ranks produce a 2-D global array each step; one reader rank
// opens the stream by name and pulls the full array. Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

int main() {
  Runtime runtime;
  Program sim("sim", 2);   // the "simulation": 2 ranks (threads here)
  Program viz("viz", 1);   // the "analytics": 1 rank
  const adios::Dims global{8, 6};
  constexpr int kSteps = 3;

  // Method configuration normally comes from the XML file; the FLEXIO
  // method streams memory-to-memory, "BP" would write files instead.
  xml::MethodConfig method;
  method.method = "FLEXIO";

  auto writer_rank = [&](int rank) {
    StreamSpec spec;
    spec.stream = "quickstart";
    spec.endpoint = EndpointSpec{&sim, rank, evpath::Location{0, rank}};
    spec.method = method;
    auto writer = runtime.open_writer(spec);
    FLEXIO_CHECK(writer.is_ok());

    const adios::Box my_block = adios::block_decompose(global, 2, rank, 0);
    std::vector<double> field(my_block.elements());
    for (int step = 0; step < kSteps; ++step) {
      // Fill this rank's block: value = step*100 + global row.
      std::size_t i = 0;
      for (std::uint64_t r = 0; r < my_block.count[0]; ++r) {
        for (std::uint64_t c = 0; c < my_block.count[1]; ++c) {
          field[i++] = step * 100.0 + static_cast<double>(my_block.offset[0] + r);
        }
      }
      FLEXIO_CHECK(writer.value()->begin_step(step).is_ok());
      FLEXIO_CHECK(writer.value()
                       ->write(adios::global_array_var(
                                   "temperature", serial::DataType::kDouble,
                                   global, my_block),
                               as_bytes_view(std::span<const double>(field)))
                       .is_ok());
      FLEXIO_CHECK(writer.value()->write_scalar("time", step * 0.1).is_ok());
      FLEXIO_CHECK(writer.value()->end_step().is_ok());
    }
    FLEXIO_CHECK(writer.value()->close().is_ok());
  };

  auto reader_rank = [&] {
    StreamSpec spec;
    spec.stream = "quickstart";
    // Different node id -> the bus picks the RDMA transport automatically.
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{1, 0}};
    spec.method = method;
    auto reader = runtime.open_reader(spec);
    FLEXIO_CHECK(reader.is_ok());

    std::vector<double> data(adios::volume(global));
    const adios::Box everything{{0, 0}, global};
    for (;;) {
      auto step = reader.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      FLEXIO_CHECK(step.is_ok());
      FLEXIO_CHECK(reader.value()
                       ->schedule_read("temperature", everything,
                                       MutableByteView(std::as_writable_bytes(
                                           std::span<double>(data))))
                       .is_ok());
      FLEXIO_CHECK(reader.value()->perform_reads().is_ok());
      const double t = reader.value()->scalar_double("time").value();
      const double mean =
          std::accumulate(data.begin(), data.end(), 0.0) / double(data.size());
      std::printf("step %lld (time %.1f): mean temperature %.2f\n",
                  static_cast<long long>(step.value()), t, mean);
      FLEXIO_CHECK(reader.value()->end_step().is_ok());
    }
    std::printf("stream closed; writer moved %llu bytes across %llu steps\n",
                static_cast<unsigned long long>(
                    reader.value()->writer_report()->bytes_sent),
                static_cast<unsigned long long>(
                    reader.value()->writer_report()->steps));
  };

  std::thread w0([&] { writer_rank(0); });
  std::thread w1([&] { writer_rank(1); });
  std::thread r0(reader_rank);
  w0.join();
  w1.join();
  r0.join();
  return 0;
}
