// Concurrency battery for Endpoint's per-link locking (DESIGN.md
// "Endpoint locking inventory").
//
// The map lock is reader-writer and each link carries its own send mutex,
// so the properties worth pinning under TSan are exactly the ones the
// sharding could break: sends to *different* destinations proceed
// concurrently without corrupting each other, sends to the *same*
// destination stay ordered per sender, a first-send race dials exactly one
// link, stats scraping never tears mid-send, and drop_link churn while
// sends are in flight neither loses nor duplicates a frame (deferred
// reclamation keeps the detached link alive until the send returns).
// Everything here uses small payloads so even the RDMA links stay on the
// eager path -- queued frames survive a dropped send link because they
// already sit in receiver-owned queue state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "evpath/bus.h"
#include "util/backoff.h"

namespace flexio::evpath {
namespace {

using namespace std::chrono_literals;

// Frame payload: (sender thread, per-thread sequence number).
struct Frame {
  std::uint32_t thread = 0;
  std::uint32_t seq = 0;
};

ByteView bytes_of(const Frame& f) {
  return ByteView(reinterpret_cast<const std::byte*>(&f), sizeof f);
}

Frame frame_of(const Message& msg) {
  Frame f;
  EXPECT_EQ(msg.payload.size(), sizeof f);
  std::memcpy(&f, msg.payload.data(), sizeof f);
  return f;
}

/// Drain `expect` frames from `ep` (all from the hub); fails the test on a
/// timeout so a lost frame shows up as a count shortfall, not a hang.
std::vector<Frame> drain_frames(Endpoint& ep, std::size_t expect) {
  std::vector<Frame> frames;
  frames.reserve(expect);
  while (frames.size() < expect) {
    Message msg;
    const Status st = ep.recv(&msg, 10s);
    if (!st.is_ok()) {
      ADD_FAILURE() << ep.name() << " drained only " << frames.size() << "/"
                    << expect << ": " << st.to_string();
      break;
    }
    if (msg.eos) continue;
    frames.push_back(frame_of(msg));
  }
  return frames;
}

/// Per-thread sequences must be strictly increasing: the per-link send
/// mutex serializes same-destination sends, and each link is FIFO.
void expect_ordered_per_thread(const std::vector<Frame>& frames) {
  std::map<std::uint32_t, std::uint32_t> next;
  for (const Frame& f : frames) {
    auto [it, inserted] = next.emplace(f.thread, 0);
    EXPECT_EQ(f.seq, it->second)
        << "thread " << f.thread << " frames reordered or duplicated";
    it->second = f.seq + 1;
  }
}

TEST(EndpointConcurrencyTest, DisjointDestinationsSendConcurrently) {
  // One sender thread per destination: the link-map shared lock lets all
  // of them enqueue at once, and each receiver must still see its own
  // stream perfectly in order with nothing lost.
  constexpr int kThreads = 4;
  constexpr std::uint32_t kMessages = 200;
  MessageBus bus;
  auto hub = bus.create_endpoint("hub", Location{0, 0}).value();
  std::vector<std::shared_ptr<Endpoint>> receivers;
  for (int t = 0; t < kThreads; ++t) {
    // Alternate same-node (shm) and cross-node (RDMA) destinations so both
    // transports ride under the same contention.
    const Location loc = t % 2 == 0 ? Location{0, t + 1} : Location{1, t};
    receivers.push_back(
        bus.create_endpoint("recv" + std::to_string(t), loc).value());
  }

  std::vector<std::vector<Frame>> received(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string dest = "recv" + std::to_string(t);
      for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
        const Frame f{static_cast<std::uint32_t>(t), seq};
        ASSERT_TRUE(hub->send(dest, bytes_of(f)).is_ok());
      }
    });
    threads.emplace_back(
        [&, t] { received[t] = drain_frames(*receivers[t], kMessages); });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(received[t].size(), kMessages) << "receiver " << t;
    expect_ordered_per_thread(received[t]);
    for (const Frame& f : received[t]) {
      EXPECT_EQ(f.thread, static_cast<std::uint32_t>(t));
    }
    EXPECT_EQ(hub->outbound_stats("recv" + std::to_string(t)).messages,
              kMessages);
  }
}

TEST(EndpointConcurrencyTest, OverlappingDestinationStaysOrderedPerSender) {
  // All threads hammer one destination: the per-link mutex is the only
  // thing keeping the link's sequence counter and stats sane. Each
  // sender's own frames must arrive in order; across senders any
  // interleaving is legal.
  constexpr int kThreads = 4;
  constexpr std::uint32_t kMessages = 200;
  MessageBus bus;
  auto hub = bus.create_endpoint("hub", Location{0, 0}).value();
  auto sink = bus.create_endpoint("sink", Location{0, 1}).value();

  std::vector<Frame> frames;
  std::thread drainer(
      [&] { frames = drain_frames(*sink, kThreads * kMessages); });
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
        const Frame f{static_cast<std::uint32_t>(t), seq};
        ASSERT_TRUE(hub->send("sink", bytes_of(f)).is_ok());
      }
    });
  }
  for (std::thread& th : senders) th.join();
  drainer.join();

  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kThreads) * kMessages);
  expect_ordered_per_thread(frames);
  const LinkStats stats = hub->outbound_stats("sink");
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kThreads) * kMessages);
  EXPECT_EQ(stats.bytes,
            static_cast<std::uint64_t>(kThreads) * kMessages * sizeof(Frame));
}

TEST(EndpointConcurrencyTest, FirstSendRaceDialsExactlyOneLink) {
  // N threads race the very first send to a fresh peer. connect_mutex_'s
  // double-checked lookup must funnel them onto a single link: if two
  // links were dialed, some sends would land on the entry that lost the
  // map insert and the surviving link's stats would undercount.
  constexpr int kThreads = 8;
  MessageBus bus;
  auto hub = bus.create_endpoint("hub", Location{0, 0}).value();
  auto fresh = bus.create_endpoint("fresh", Location{1, 0}).value();

  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      const Frame f{static_cast<std::uint32_t>(t), 0};
      ASSERT_TRUE(hub->send("fresh", bytes_of(f)).is_ok());
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_TRUE(hub->transport_to("fresh").is_ok());
  EXPECT_EQ(hub->outbound_stats("fresh").messages,
            static_cast<std::uint64_t>(kThreads));
  const std::vector<Frame> frames = drain_frames(*fresh, kThreads);
  std::set<std::uint32_t> senders;
  for (const Frame& f : frames) senders.insert(f.thread);
  EXPECT_EQ(senders.size(), static_cast<std::size_t>(kThreads));
}

TEST(EndpointConcurrencyTest, LinkChurnNeverLosesOrDuplicatesFrames) {
  // drop_link storms while sends are in flight: every send either
  // completes on the link it grabbed (deferred reclamation) or re-dials,
  // so the union of frames across old and new links is exactly what was
  // sent -- nothing lost, nothing doubled. Global order is NOT promised
  // across a reconnect (the old link's queue drains independently), so
  // this asserts set-completeness only.
  constexpr int kThreads = 3;
  constexpr std::uint32_t kMessages = 150;
  MessageBus bus;
  auto hub = bus.create_endpoint("hub", Location{0, 0}).value();
  auto shm_sink = bus.create_endpoint("churn_shm", Location{0, 1}).value();
  auto rdma_sink = bus.create_endpoint("churn_rdma", Location{1, 0}).value();

  std::vector<Frame> shm_frames;
  std::vector<Frame> rdma_frames;
  // kThreads senders split across both sinks; thread ids stay globally
  // unique so the merged dedup check below is meaningful.
  std::thread shm_drain([&] {
    shm_frames =
        drain_frames(*shm_sink, (kThreads - kThreads / 2) * kMessages);
  });
  std::thread rdma_drain(
      [&] { rdma_frames = drain_frames(*rdma_sink, kThreads / 2 * kMessages); });

  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load()) {
      hub->drop_link("churn_shm");
      hub->drop_link("churn_rdma");
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      const std::string dest = t % 2 == 0 ? "churn_shm" : "churn_rdma";
      for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
        const Frame f{static_cast<std::uint32_t>(t), seq};
        ASSERT_TRUE(hub->send(dest, bytes_of(f)).is_ok());
      }
    });
  }
  for (std::thread& th : senders) th.join();
  done.store(true);
  churn.join();
  shm_drain.join();
  rdma_drain.join();

  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const std::vector<Frame>* frames : {&shm_frames, &rdma_frames}) {
    for (const Frame& f : *frames) {
      EXPECT_TRUE(seen.emplace(f.thread, f.seq).second)
          << "duplicate frame thread=" << f.thread << " seq=" << f.seq;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kMessages);
}

TEST(EndpointConcurrencyTest, StatsScrapeRunsAgainstLiveSends) {
  // transport_to and outbound_stats take the shared side of the map lock
  // plus one link's mutex -- a scraper loop (the flight recorder's access
  // pattern) must observe monotone counters and never block the other
  // destinations' senders out of making progress.
  constexpr std::uint32_t kMessages = 400;
  MessageBus bus;
  auto hub = bus.create_endpoint("hub", Location{0, 0}).value();
  auto a = bus.create_endpoint("a", Location{0, 1}).value();
  auto b = bus.create_endpoint("b", Location{1, 0}).value();

  std::atomic<bool> done{false};
  std::uint64_t last_a = 0;
  std::uint64_t last_b = 0;
  std::uint64_t scrapes = 0;
  std::thread scraper([&] {
    while (!done.load()) {
      const std::uint64_t now_a = hub->outbound_stats("a").messages;
      const std::uint64_t now_b = hub->outbound_stats("b").messages;
      EXPECT_GE(now_a, last_a);
      EXPECT_GE(now_b, last_b);
      last_a = now_a;
      last_b = now_b;
      (void)hub->transport_to("a");
      ++scrapes;
      std::this_thread::yield();
    }
  });
  std::thread drain_a([&] { drain_frames(*a, kMessages); });
  std::thread drain_b([&] { drain_frames(*b, kMessages); });
  std::thread send_a([&] {
    for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
      ASSERT_TRUE(hub->send("a", bytes_of(Frame{0, seq})).is_ok());
    }
  });
  std::thread send_b([&] {
    for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
      ASSERT_TRUE(hub->send("b", bytes_of(Frame{1, seq})).is_ok());
    }
  });
  send_a.join();
  send_b.join();
  drain_a.join();
  drain_b.join();
  done.store(true);
  scraper.join();

  EXPECT_GT(scrapes, 0u);
  EXPECT_EQ(hub->outbound_stats("a").messages, kMessages);
  EXPECT_EQ(hub->outbound_stats("b").messages, kMessages);
  EXPECT_EQ(hub->transport_to("a").value(), TransportKind::kShm);
  EXPECT_EQ(hub->transport_to("b").value(), TransportKind::kRdma);
}

// ------------------------------------------------ recv backoff schedule --

// Recorder for the process-wide Backoff sleep hook (plain function
// pointer, so the capture buffer is file-static). Single-threaded use
// only: the idle recv below runs on the test thread itself.
std::vector<std::chrono::nanoseconds>& recorded_sleeps() {
  static std::vector<std::chrono::nanoseconds> v;
  return v;
}
void record_sleep(std::chrono::nanoseconds d) {
  recorded_sleeps().push_back(d);
}

/// Poll `ep` with short timed-out recvs until at least `want` delays have
/// been recorded (bounded; fails the test if the ladder never grows). The
/// idle-backoff state persists across recv calls, so repeated polls keep
/// climbing the ladder even when scheduler load makes the spin-yield
/// prefix eat a whole 2ms timeout on its own.
void poll_idle_until(Endpoint& ep, std::size_t want) {
  for (int i = 0; i < 200 && recorded_sleeps().size() < want; ++i) {
    Message msg;
    ASSERT_EQ(ep.recv(&msg, 2ms).code(), ErrorCode::kTimeout);
  }
  ASSERT_GE(recorded_sleeps().size(), want)
      << "idle recv never reached " << want << " backoff sleeps";
}

TEST(EndpointRecvBackoffTest, IdleRecvBacksOffGeometricallyThenCaps) {
  // An idle recv spin-yields first, then falls into the 2us -> 256us
  // geometric schedule instead of busy-polling for the whole timeout. With
  // the fake-sleep hook installed the waits cost no wall-clock beyond the
  // (short) timeouts themselves, and the exact delay ladder is left
  // behind. The ladder spans recv calls (persistent idle state), so the
  // schedule is deterministic no matter how the polls slice it.
  MessageBus bus;
  auto lonely = bus.create_endpoint("lonely", Location{0, 0}).value();
  recorded_sleeps().clear();
  util::Backoff::set_sleep_for_testing(&record_sleep);
  poll_idle_until(*lonely, 10);
  util::Backoff::set_sleep_for_testing(nullptr);

  const std::vector<std::chrono::nanoseconds>& sleeps = recorded_sleeps();
  ASSERT_GE(sleeps.size(), 10u);
  using std::chrono::microseconds;
  const std::vector<std::chrono::nanoseconds> ladder = {
      microseconds(2),  microseconds(4),  microseconds(8),  microseconds(16),
      microseconds(32), microseconds(64), microseconds(128)};
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_EQ(sleeps[i], ladder[i]) << "rung " << i;
  }
  for (std::size_t i = ladder.size(); i < sleeps.size(); ++i) {
    ASSERT_EQ(sleeps[i], microseconds(256)) << "post-cap sleep " << i;
  }
  recorded_sleeps().clear();
}

TEST(EndpointRecvBackoffTest, LadderRestartsAfterSuccessfulDequeue) {
  // The idle state persists across recv calls -- a fresh timed poll on a
  // still-idle endpoint resumes at the cap, not at the spin tier -- but a
  // successful dequeue resets it: a burst arriving after a long idle period
  // must pay yields and a 2us rung, not a stale 256us sleep.
  using std::chrono::microseconds;
  MessageBus bus;
  auto rx = bus.create_endpoint("backoff.rx", Location{0, 0}).value();
  auto tx = bus.create_endpoint("backoff.tx", Location{0, 1}).value();
  util::Backoff::set_sleep_for_testing(&record_sleep);

  // Climb the ladder past the cap on an idle endpoint.
  recorded_sleeps().clear();
  poll_idle_until(*rx, 8);
  EXPECT_EQ(recorded_sleeps().back(), microseconds(256));

  // Still idle: the next recorded sleep continues at the cap (the
  // spin-yield budget was consumed by the earlier calls, too).
  recorded_sleeps().clear();
  poll_idle_until(*rx, 1);
  EXPECT_EQ(recorded_sleeps().front(), microseconds(256));

  // A message lands and is dequeued: the ladder restarts from the bottom.
  Message msg;
  ASSERT_TRUE(tx->send("backoff.rx", bytes_of(Frame{7, 0})).is_ok());
  ASSERT_TRUE(rx->recv(&msg, 10s).is_ok());
  EXPECT_EQ(frame_of(msg).thread, 7u);
  recorded_sleeps().clear();
  poll_idle_until(*rx, 2);
  EXPECT_EQ(recorded_sleeps()[0], microseconds(2)) << "ladder did not restart";
  EXPECT_EQ(recorded_sleeps()[1], microseconds(4));

  util::Backoff::set_sleep_for_testing(nullptr);
  recorded_sleeps().clear();
}

}  // namespace
}  // namespace flexio::evpath
