// Stitch two per-process Chrome trace exports into one timeline.
//
// Writer and reader sides each export their own trace ring
// (trace::write_chrome_json_for). Those files share no clock and no span
// namespace, but the wire protocol stamps a TraceContext into every
// handshake and data frame, and each side records clock-sample markers
// pairing its local receive clock with the peer's send clock. merge_traces
// uses those pairs to estimate the inter-process clock offset (NTP style:
// the minimum one-way delta in each direction bounds the offset from both
// sides), shifts the second file onto the first file's clock, remaps its
// span ids into a disjoint range, and re-parents spans that carry a
// peer-span reference (reader perform_reads / end_step under the writer's
// end_step). The result loads in chrome://tracing / Perfetto as one
// coherent multi-process timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace flexio::trace {

/// One event of a merged timeline (Chrome "X" event plus FlexIO args).
struct MergedEvent {
  std::string name;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  double ts_us = 0;   // on file A's clock after offset correction
  double dur_us = 0;
  std::uint64_t id = 0;      // remapped: file-B ids are offset by 2^32
  std::uint64_t parent = 0;  // same-process parent, or peer after stitching
  std::uint64_t peer = 0;    // cross-process parent (0 = none)
  std::uint64_t stream = 0;  // stream_id_hash (0 = none)
  std::uint64_t remote_ns = 0;  // clock samples only
  std::int64_t step = -1;       // step annotation (-1 = none)
};

struct MergedTrace {
  std::vector<MergedEvent> events;  // sorted by ts_us
  /// Estimated a_clock - b_clock in microseconds (added to B timestamps).
  double offset_us = 0;
  std::size_t clock_pairs_a = 0;  // samples of B's clock seen in file A
  std::size_t clock_pairs_b = 0;  // samples of A's clock seen in file B

  /// Chrome trace_event JSON of the merged timeline.
  std::string to_json() const;

  /// Well-formedness: events sorted by timestamp, and every span carrying
  /// a peer reference resolves to an existing parent that starts no later
  /// than the span itself (within slack_us) and agrees on step and stream
  /// when both sides carry them.
  Status validate(double slack_us = 0.0) const;
};

/// Merge two Chrome trace JSON documents (as produced by
/// trace::chrome_json_for). File A keeps its clock and ids.
StatusOr<MergedTrace> merge_traces(std::string_view a_json,
                                   std::string_view b_json);

/// Same, reading the documents from files.
StatusOr<MergedTrace> merge_trace_files(const std::string& a_path,
                                        const std::string& b_path);

/// Write merged.to_json() to a file.
Status write_merged(const MergedTrace& merged, const std::string& path);

}  // namespace flexio::trace
