// Minimal XML parser for FlexIO/ADIOS-style configuration files.
//
// The paper (Section II.B) configures transports and their tuning hints via
// an external XML file so that switching file I/O <-> stream transports needs
// no application code change. This parser supports exactly what those config
// files need: nested elements, attributes, text content, comments, XML
// declarations, and the five predefined entities. No namespaces, DTDs, or
// processing instructions.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace flexio::xml {

/// One parsed element; children are owned.
struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // concatenated character data directly inside this element
  std::vector<std::unique_ptr<Element>> children;

  /// First attribute value by name, or empty view when absent.
  std::string_view attr(std::string_view key) const;
  /// Whether the attribute is present.
  bool has_attr(std::string_view key) const;
  /// First child element with the given tag name, or nullptr.
  const Element* child(std::string_view tag) const;
  /// All children with the given tag name.
  std::vector<const Element*> children_named(std::string_view tag) const;
};

/// Parsed document; root() aborts if parsing produced no root.
class Document {
 public:
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}
  const Element& root() const {
    FLEXIO_CHECK(root_ != nullptr);
    return *root_;
  }

 private:
  std::unique_ptr<Element> root_;
};

/// Parse an XML document from text. Errors carry line numbers.
StatusOr<Document> parse(std::string_view text);

/// Parse the file at `path`.
StatusOr<Document> parse_file(const std::string& path);

}  // namespace flexio::xml
