// Runtime performance monitoring (paper Section II.G).
//
// Measurement points at every level of the FlexIO stack feed named metrics
// here: data-movement timings, handshake costs, transferred volumes, DC
// plug-in execution time, and buffer-pool memory usage. The data is used
// two ways, both reproduced: dumped to trace files for offline tuning
// (dump_csv) and shipped to the analytics side at runtime (the stream
// writer aggregates a wire::MonitorReport from these metrics at close).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/wire.h"
#include "evpath/directory.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/status.h"

namespace flexio {

class PerfMonitor {
 public:
  /// Record one timing sample, in seconds, under a metric name such as
  /// "write.pack" or "handshake.exchange".
  void record_time(const std::string& metric, double seconds);

  /// Accumulate a counter such as "bytes.sent" or "handshake.skipped".
  void add_count(const std::string& metric, std::uint64_t n);

  /// Timing statistics for one metric (zeros when never recorded).
  RunningStats time_stats(const std::string& metric) const;

  /// Counter value (0 when never touched).
  std::uint64_t count(const std::string& metric) const;

  /// Total seconds recorded under a metric.
  double total_time(const std::string& metric) const {
    return time_stats(metric).sum();
  }

  /// Human-readable summary of all metrics.
  std::string report() const;

  /// Dump all metrics as CSV (metric,kind,count,total,mean,min,max).
  Status dump_csv(const std::string& path) const;

  /// RAII timing helper: records the scope's wall time under `metric`.
  /// Reads metrics::now_ns() -- the same swappable clock as the metrics
  /// registry -- so tests driving the fake clock see deterministic
  /// MonitorReport timings too.
  class ScopedTimer {
   public:
    ScopedTimer(PerfMonitor* monitor, std::string metric)
        : monitor_(monitor),
          metric_(std::move(metric)),
          start_ns_(metrics::now_ns()) {}
    ~ScopedTimer() {
      const std::uint64_t end_ns = metrics::now_ns();
      monitor_->record_time(
          metric_, static_cast<double>(end_ns - start_ns_) * 1e-9);
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    PerfMonitor* monitor_;
    std::string metric_;
    std::uint64_t start_ns_;
  };

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RunningStats> times_;
  std::map<std::string, std::uint64_t> counts_;
};

/// Fold the directory's aggregated cluster view into one wire::MonitorReport
/// covering every rank of `program` (all programs when empty): per-phase
/// flexio.step.* histogram sums land in the phase_ns fields, and the
/// handshake / bytes counters in their scalar slots. This is the advisor's
/// cross-rank context -- a writer-side close report describes one rank,
/// while this report describes the whole deployment as seen through the
/// heartbeat-piggyback aggregation path.
wire::MonitorReport cluster_phase_report(const evpath::ClusterSnapshot& cluster,
                                         const std::string& program = "");

}  // namespace flexio
