#include "harness/stress_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/strings.h"
#include "xml/config.h"

namespace flexio::torture {
namespace {

using adios::Box;
using adios::Dims;
using serial::DataType;

/// First-error sink shared by all rank threads.
class ErrorSink {
 public:
  void record(const Status& status) {
    if (status.is_ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_.is_ok()) first_ = status;
  }
  Status first() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }
  bool failed() const { return !first().is_ok(); }

 private:
  mutable std::mutex mutex_;
  Status first_;
};

Status expect(bool cond, const std::string& what) {
  if (cond) return Status::ok();
  return make_error(ErrorCode::kInternal, "stress check failed: " + what);
}

Status expect_value(double got, double want, const std::string& what) {
  if (got == want) return Status::ok();
  return make_error(ErrorCode::kInternal,
                    str_format("stress value mismatch at %s: got %.3f want "
                               "%.3f",
                               what.c_str(), got, want));
}

xml::MethodConfig make_method(const StressConfig& cfg) {
  xml::MethodConfig m;
  m.method = cfg.placement == PlacementMode::kFile ? "BP" : "FLEXIO";
  m.timeout_ms = cfg.timeout_ms;
  std::string params = "caching=" + cfg.caching;
  if (cfg.async_writes) params += "; async=yes";
  if (cfg.pack_threads > 1) {
    params += "; pack_threads=" + std::to_string(cfg.pack_threads);
  }
  if (cfg.read_threads > 1) {
    params += "; read_threads=" + std::to_string(cfg.read_threads);
  }
  if (cfg.shared_links || cfg.streams > 1) params += "; shared_links=yes";
  FLEXIO_CHECK(xml::apply_method_params(params, &m).is_ok());
  return m;
}

evpath::Location writer_location(const StressConfig&, int rank) {
  return evpath::Location{0, rank};
}

evpath::Location reader_location(const StressConfig& cfg, int rank) {
  // Same node => shm links; different node => simulated RDMA. File mode
  // never opens online links, placement is moot.
  const int node = cfg.placement == PlacementMode::kRdma ? 7 : 0;
  return evpath::Location{node, 100 + rank};
}

/// Membership runs: before entering `step`, block until every respawn the
/// plan schedules at this step is visible in the directory as a fresh alive
/// incarnation. This pins *which* step first covers the rejoiner, making
/// seeded runs replayable, and doubles as the liveness check that a respawn
/// can actually get back in.
Status wait_for_respawns(Runtime& rt, const StressConfig& cfg, int step) {
  if (!cfg.membership || cfg.faults == nullptr) return Status::ok();
  for (const RankAction& a : cfg.faults->rank_actions()) {
    if (a.op != RankOp::kRespawn || a.step != step) continue;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(cfg.timeout_ms);
    for (;;) {
      const evpath::MembershipView view = rt.directory().membership(cfg.stream);
      const evpath::Member* m = view.find(a.rank);
      if (m != nullptr && m->state == evpath::MemberState::kAlive &&
          m->incarnation >= 2) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return make_error(
            ErrorCode::kTimeout,
            str_format("respawn of reader rank %d not visible before step %d",
                       a.rank, step));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return Status::ok();
}

Status writer_rank(Runtime& rt, const StressConfig& cfg, Program& sim,
                   int rank, std::atomic<std::uint64_t>* max_step_ns) {
  StreamSpec spec;
  spec.stream = cfg.stream;
  spec.endpoint = EndpointSpec{&sim, rank, writer_location(cfg, rank)};
  spec.method = make_method(cfg);
  if (cfg.placement == PlacementMode::kFile) spec.file_dir = cfg.file_dir;
  auto writer = rt.open_writer(spec);
  FLEXIO_RETURN_IF_ERROR(writer.status());
  StreamWriter& w = *writer.value();

  const Dims global{cfg.rows, cfg.cols};
  const Box box = adios::block_decompose(global, cfg.writers, rank, 0);
  std::vector<double> field(box.elements());
  const std::uint64_t nparticles = golden_particle_count(rank);
  std::vector<double> particles(nparticles * 7);

  for (int step = 0; step < cfg.steps; ++step) {
    FLEXIO_RETURN_IF_ERROR(wait_for_respawns(rt, cfg, step));
    std::size_t i = 0;
    for (std::uint64_t r = 0; r < box.count[0]; ++r) {
      for (std::uint64_t c = 0; c < box.count[1]; ++c) {
        field[i++] = golden_field(step, box.offset[0] + r, box.offset[1] + c);
      }
    }
    for (std::uint64_t p = 0; p < particles.size(); ++p) {
      particles[p] = golden_particle(rank, step, p);
    }
    const auto t0 = std::chrono::steady_clock::now();
    FLEXIO_RETURN_IF_ERROR(w.begin_step(step));
    FLEXIO_RETURN_IF_ERROR(
        w.write(adios::global_array_var("field", DataType::kDouble, global,
                                        box),
                as_bytes_view(std::span<const double>(field))));
    FLEXIO_RETURN_IF_ERROR(
        w.write(adios::local_array_var("particles", DataType::kDouble,
                                       {nparticles, 7}),
                as_bytes_view(std::span<const double>(particles))));
    FLEXIO_RETURN_IF_ERROR(w.write_scalar("time", step * 0.5));
    FLEXIO_RETURN_IF_ERROR(w.end_step());
    if (max_step_ns != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      std::uint64_t cur = max_step_ns->load(std::memory_order_relaxed);
      while (ns > cur && !max_step_ns->compare_exchange_weak(
                             cur, ns, std::memory_order_relaxed)) {
      }
    }
    if (cfg.step_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.step_delay_ms));
    }
  }
  return w.close();
}

/// One reader rank's life, original or respawned (`late_join`). Under
/// membership (`outcome != nullptr` for original incarnations) the fault
/// plan's rank actions are polled at each step point; a fired kill/leave
/// ends the thread with ok. Golden checks key off the *announced* step id,
/// not a local counter, so a late joiner verifies mid-stream steps.
///
/// Thread-safety of `outcome`: the original incarnation writes ran / killed
/// / left / fenced / steps_seen; a late-join incarnation writes only
/// steps_after_respawn (its supervisor writes respawned after it returns).
/// The field sets are disjoint, so the two incarnations never race.
Status reader_body(Runtime& rt, const StressConfig& cfg, Program& viz,
                   int rank, bool late_join,
                   std::atomic<std::uint64_t>* verified,
                   std::optional<wire::MonitorReport>* report_out,
                   RankOutcome* outcome) {
  StreamSpec spec;
  spec.stream = cfg.stream;
  spec.endpoint = EndpointSpec{&viz, rank, reader_location(cfg, rank)};
  spec.method = make_method(cfg);
  spec.late_join = late_join;
  if (cfg.placement == PlacementMode::kFile) spec.file_dir = cfg.file_dir;
  auto reader = rt.open_reader(spec);
  FLEXIO_RETURN_IF_ERROR(reader.status());
  StreamReader& r = *reader.value();
  if (outcome != nullptr && !late_join) outcome->ran = true;
  FLEXIO_RETURN_IF_ERROR(expect(r.num_writers() == cfg.writers,
                                "num_writers mismatch"));

  const bool mem = cfg.membership && cfg.placement != PlacementMode::kFile;
  auto action_at = [&](int step, StepPoint point) -> const RankAction* {
    if (!mem || late_join || cfg.faults == nullptr) return nullptr;
    for (const RankAction& a : cfg.faults->rank_actions()) {
      if (a.op != RankOp::kRespawn && a.rank == rank && a.step == step &&
          a.point == point) {
        return &a;
      }
    }
    return nullptr;
  };
  // Fires `a` if non-null; true means the rank is gone and the thread is
  // done (successfully -- the torture assertions live in the caller).
  auto act = [&](const RankAction* a) -> StatusOr<bool> {
    if (a == nullptr) return false;
    cfg.faults->note_rank_action(*a, "fired");
    switch (a->op) {
      case RankOp::kKill:
        r.simulate_crash();
        if (outcome != nullptr) outcome->killed = true;
        return true;
      case RankOp::kLeave:
        FLEXIO_RETURN_IF_ERROR(r.leave());
        if (outcome != nullptr) outcome->left = true;
        return true;
      case RankOp::kDelayHeartbeat:
        r.pause_heartbeats_for(a->delay);
        return false;
      default:
        return false;
    }
  };
  // A paused/slow rank may get fenced (declared dead) at a step entry
  // point; that is a legitimate membership outcome, not a test failure.
  // The collectives can excise the rank (kUnavailable) before its own
  // heartbeat thread notices the rejection -- for a paused rank the latch
  // only trips on the first beat after the pause expires -- so give the
  // latch a grace window before treating the error as real.
  auto fenced_out = [&](const Status& s) {
    if (!mem || s.code() != ErrorCode::kUnavailable) return false;
    for (int i = 0; i < 1500 && !r.fenced(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!r.fenced()) return false;
    if (outcome != nullptr && !late_join) outcome->fenced = true;
    return true;
  };

  const Dims global{cfg.rows, cfg.cols};
  const Box sel = adios::block_decompose(global, cfg.readers, rank, 1);
  std::vector<double> out(sel.elements());
  std::uint64_t checked = 0;
  int steps_seen = 0;
  StepId last_step = -1;
  for (;;) {
    {
      // kBegin actions key on the step this rank would enter next.
      auto stop = act(action_at(steps_seen, StepPoint::kBegin));
      FLEXIO_RETURN_IF_ERROR(stop.status());
      if (stop.value()) return Status::ok();
    }
    auto step = r.begin_step();
    if (step.status().code() == ErrorCode::kEndOfStream) break;
    if (fenced_out(step.status())) return Status::ok();
    FLEXIO_RETURN_IF_ERROR(step.status());
    const int sid = static_cast<int>(step.value());
    if (last_step < 0) {
      FLEXIO_RETURN_IF_ERROR(
          expect(late_join ? sid >= 1 : sid == 0,
                 str_format("first step: got %d (late_join=%d)", sid,
                            late_join ? 1 : 0)));
    } else {
      FLEXIO_RETURN_IF_ERROR(
          expect(sid == static_cast<int>(last_step) + 1,
                 str_format("step order: got %d after %lld", sid,
                            static_cast<long long>(last_step))));
    }
    last_step = step.value();
    {
      auto stop = act(action_at(sid, StepPoint::kPreReads));
      FLEXIO_RETURN_IF_ERROR(stop.status());
      if (stop.value()) return Status::ok();
    }
    std::fill(out.begin(), out.end(), -1.0);
    FLEXIO_RETURN_IF_ERROR(r.schedule_read(
        "field", sel,
        MutableByteView(std::as_writable_bytes(std::span<double>(out)))));
    for (int w = rank; w < cfg.writers; w += cfg.readers) {
      FLEXIO_RETURN_IF_ERROR(r.schedule_read_pg(w));
    }
    {
      const Status reads = r.perform_reads();
      if (fenced_out(reads)) return Status::ok();
      FLEXIO_RETURN_IF_ERROR(reads);
    }

    // Field selection against the golden model, keyed by announced step id.
    std::size_t i = 0;
    for (std::uint64_t row = 0; row < sel.count[0]; ++row) {
      for (std::uint64_t col = 0; col < sel.count[1]; ++col) {
        FLEXIO_RETURN_IF_ERROR(expect_value(
            out[i++],
            golden_field(sid, sel.offset[0] + row, sel.offset[1] + col),
            str_format("field[%llu,%llu] step %d",
                       static_cast<unsigned long long>(sel.offset[0] + row),
                       static_cast<unsigned long long>(sel.offset[1] + col),
                       sid)));
        ++checked;
      }
    }
    // Whole process-group blocks.
    std::size_t expected_pgs = 0;
    for (int w = rank; w < cfg.writers; w += cfg.readers) ++expected_pgs;
    FLEXIO_RETURN_IF_ERROR(
        expect(r.pg_blocks().size() == expected_pgs, "pg block count"));
    for (const PgBlock& block : r.pg_blocks()) {
      const std::uint64_t n = golden_particle_count(block.writer_rank);
      FLEXIO_RETURN_IF_ERROR(
          expect(block.meta.block.count[0] == n, "pg block rows"));
      FLEXIO_RETURN_IF_ERROR(
          expect(block.payload.size() == n * 7 * sizeof(double),
                 "pg block payload size"));
      const auto* vals = reinterpret_cast<const double*>(block.payload.data());
      for (std::uint64_t p = 0; p < n * 7; ++p) {
        FLEXIO_RETURN_IF_ERROR(expect_value(
            vals[p], golden_particle(block.writer_rank, sid, p),
            str_format("particles[%llu] writer %d step %d",
                       static_cast<unsigned long long>(p), block.writer_rank,
                       sid)));
        ++checked;
      }
    }
    auto time = r.scalar_double("time");
    FLEXIO_RETURN_IF_ERROR(time.status());
    {
      auto stop = act(action_at(sid, StepPoint::kPostReads));
      FLEXIO_RETURN_IF_ERROR(stop.status());
      if (stop.value()) return Status::ok();
    }
    FLEXIO_RETURN_IF_ERROR(r.end_step());
    ++steps_seen;
    if (outcome != nullptr) {
      if (late_join) {
        outcome->steps_after_respawn = steps_seen;
      } else {
        outcome->steps_seen = steps_seen;
      }
    }
    {
      auto stop = act(action_at(sid, StepPoint::kEnd));
      FLEXIO_RETURN_IF_ERROR(stop.status());
      if (stop.value()) return Status::ok();
    }
  }
  FLEXIO_RETURN_IF_ERROR(expect(
      late_join || steps_seen == cfg.steps,
      str_format("steps seen: got %d want %d", steps_seen, cfg.steps)));
  verified->fetch_add(checked, std::memory_order_relaxed);
  if (!late_join && rank == 0 && report_out != nullptr) {
    *report_out = r.writer_report();
  }
  return Status::ok();
}

}  // namespace

std::string_view placement_name(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kShm: return "shm";
    case PlacementMode::kRdma: return "rdma";
    case PlacementMode::kFile: return "file";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const StressConfig& cfg) {
  return os << cfg.label() << " writers=" << cfg.writers
            << " readers=" << cfg.readers << " steps=" << cfg.steps;
}

std::string StressConfig::label() const {
  std::string label = str_format("%s_%s_%s", caching.c_str(),
                                 async_writes ? "async" : "sync",
                                 std::string(placement_name(placement)).c_str());
  if (pack_threads > 1) label += str_format("_pack%d", pack_threads);
  if (read_threads > 1) label += str_format("_read%d", read_threads);
  if (streams > 1) {
    label += str_format("_mux%d", streams);
  } else if (shared_links) {
    label += "_shared";
  }
  return label;
}

std::uint64_t expected_handshakes_performed(const StressConfig& cfg) {
  return cfg.caching == "all" ? 1u : static_cast<std::uint64_t>(cfg.steps);
}

std::uint64_t expected_handshakes_skipped(const StressConfig& cfg) {
  return cfg.caching == "all" ? static_cast<std::uint64_t>(cfg.steps) - 1 : 0u;
}

Status check_handshake_invariant(const StressConfig& cfg,
                                 const wire::MonitorReport& report) {
  const std::uint64_t want_performed = expected_handshakes_performed(cfg);
  const std::uint64_t want_skipped = expected_handshakes_skipped(cfg);
  if (report.steps != static_cast<std::uint64_t>(cfg.steps)) {
    return make_error(ErrorCode::kInternal,
                      str_format("monitor steps: got %llu want %d",
                                 static_cast<unsigned long long>(report.steps),
                                 cfg.steps));
  }
  if (report.handshakes_performed != want_performed ||
      report.handshakes_skipped != want_skipped) {
    return make_error(
        ErrorCode::kInternal,
        str_format("handshake invariant (caching=%s): performed %llu/%llu "
                   "skipped %llu/%llu (got/want)",
                   cfg.caching.c_str(),
                   static_cast<unsigned long long>(report.handshakes_performed),
                   static_cast<unsigned long long>(want_performed),
                   static_cast<unsigned long long>(report.handshakes_skipped),
                   static_cast<unsigned long long>(want_skipped)));
  }
  return Status::ok();
}

StressResult run_stress(const StressConfig& cfg) {
  StressResult result;
  Runtime rt;
  if (cfg.faults != nullptr) cfg.faults->install(&rt.bus().fabric());
  const bool mem = cfg.membership && cfg.placement != PlacementMode::kFile;
  if (mem) {
    evpath::MembershipOptions opts;
    opts.enabled = true;
    opts.ttl = std::chrono::milliseconds(cfg.membership_ttl_ms);
    rt.directory().set_membership_options(opts);
    result.reader_outcomes.resize(cfg.readers);
  }
  Program sim("sim", cfg.writers);
  Program viz("viz", cfg.readers);
  ErrorSink errors;
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> max_step_ns{0};

  if (cfg.placement == PlacementMode::kFile) {
    FLEXIO_CHECK(!cfg.file_dir.empty());
    std::filesystem::create_directories(cfg.file_dir);
    // Offline semantics: all writers complete before any reader opens.
    std::vector<std::thread> writers;
    for (int w = 0; w < cfg.writers; ++w) {
      writers.emplace_back(
          [&, w] { errors.record(writer_rank(rt, cfg, sim, w, nullptr)); });
    }
    for (auto& t : writers) t.join();
    if (!errors.failed()) {
      std::vector<std::thread> readers;
      for (int r = 0; r < cfg.readers; ++r) {
        readers.emplace_back([&, r] {
          errors.record(reader_body(rt, cfg, viz, r, /*late_join=*/false,
                                    &verified, &result.report, nullptr));
        });
      }
      for (auto& t : readers) t.join();
    }
  } else {
    const int nstreams = std::max(1, cfg.streams);
    // Per-stream configs and program pairs. Extra streams (s > 0) reuse
    // stream 0's program names, so under shared_links (implied by
    // streams > 1) their channels multiplex over the same registry
    // endpoints; they drop the fault plan's rank actions -- stream 0 takes
    // the membership churn -- but still feel fabric-level faults, and must
    // finish clean regardless of what happens to their link-mate.
    std::vector<StressConfig> scfgs(static_cast<std::size_t>(nstreams), cfg);
    std::vector<std::unique_ptr<Program>> programs;
    std::vector<std::thread> threads;
    for (int s = 0; s < nstreams; ++s) {
      StressConfig* scfg = &scfgs[static_cast<std::size_t>(s)];
      Program* ssim = &sim;
      Program* sviz = &viz;
      if (nstreams > 1) scfg->stream = cfg.stream + "_m" + std::to_string(s);
      if (s > 0) {
        scfg->faults = nullptr;
        programs.push_back(std::make_unique<Program>("sim", cfg.writers));
        ssim = programs.back().get();
        programs.push_back(std::make_unique<Program>("viz", cfg.readers));
        sviz = programs.back().get();
      }
      for (int w = 0; w < cfg.writers; ++w) {
        threads.emplace_back([&, scfg, ssim, s, w] {
          errors.record(writer_rank(rt, *scfg, *ssim, w,
                                    s == 0 ? &max_step_ns : nullptr));
        });
      }
      for (int r = 0; r < cfg.readers; ++r) {
        RankOutcome* outcome =
            (mem && s == 0) ? &result.reader_outcomes[r] : nullptr;
        threads.emplace_back([&, scfg, sviz, s, r, outcome] {
          errors.record(reader_body(rt, *scfg, *sviz, r, /*late_join=*/false,
                                    &verified,
                                    s == 0 ? &result.report : nullptr,
                                    outcome));
        });
      }
    }
    if (mem && cfg.faults != nullptr) {
      // One supervisor per respawn: wait for the prior incarnation's death
      // or departure to land in the directory, then rejoin the same rank as
      // a late-join incarnation and run it to end-of-stream.
      // Rank actions ride on stream 0's config (the only one carrying the
      // fault plan under multiplexing).
      const StressConfig& scfg0 = scfgs[0];
      for (const RankAction& a : cfg.faults->rank_actions()) {
        if (a.op != RankOp::kRespawn) continue;
        threads.emplace_back([&, a] {
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(scfg0.timeout_ms);
          for (;;) {
            const evpath::MembershipView view =
                rt.directory().membership(scfg0.stream);
            const evpath::Member* m = view.find(a.rank);
            if (m != nullptr && m->state != evpath::MemberState::kAlive) break;
            if (std::chrono::steady_clock::now() >= deadline) {
              errors.record(make_error(
                  ErrorCode::kTimeout,
                  str_format("respawn supervisor: rank %d never declared "
                             "dead or left",
                             a.rank)));
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          scfg0.faults->note_rank_action(a, "respawning");
          RankOutcome* outcome = &result.reader_outcomes[a.rank];
          const Status s = reader_body(rt, scfg0, viz, a.rank,
                                       /*late_join=*/true, &verified, nullptr,
                                       outcome);
          errors.record(s);
          if (s.is_ok()) outcome->respawned = true;
        });
      }
    }
    for (auto& t : threads) t.join();
  }

  result.status = errors.first();
  result.elements_verified = verified.load(std::memory_order_relaxed);
  result.max_writer_step_seconds =
      static_cast<double>(max_step_ns.load(std::memory_order_relaxed)) * 1e-9;
  // The group survives stream close as a tombstone, so this final read
  // (which also sweeps any straggler the TTL has expired) sees every
  // join/leave/death the run produced. Under multiplexing the membership
  // churn (and thus the epoch of record) lives on stream 0.
  if (mem) {
    const std::string stream0 =
        cfg.streams > 1 ? cfg.stream + "_m0" : cfg.stream;
    result.final_epoch = rt.directory().membership_epoch(stream0);
  }
  if (result.status.is_ok() && cfg.placement != PlacementMode::kFile) {
    if (!result.report.has_value()) {
      result.status =
          make_error(ErrorCode::kInternal, "missing writer monitor report");
    } else if (!mem) {
      // Membership runs re-plan on epoch changes, so the static handshake
      // count invariant only holds for frozen-membership runs.
      result.status = check_handshake_invariant(cfg, *result.report);
    }
  }
  return result;
}

}  // namespace flexio::torture
