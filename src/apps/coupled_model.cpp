#include "apps/coupled_model.h"

#include "sim/topology.h"

#include <algorithm>
#include <cmath>

namespace flexio::apps {

std::string_view analytics_placement_name(AnalyticsPlacement p) {
  switch (p) {
    case AnalyticsPlacement::kInline: return "inline";
    case AnalyticsPlacement::kHelperCore: return "helper-core";
    case AnalyticsPlacement::kStaging: return "staging";
    case AnalyticsPlacement::kHybrid: return "hybrid";
    case AnalyticsPlacement::kNone: return "solo";
  }
  return "?";
}

namespace {

/// Amdahl compute time for one interval.
double compute_time(const CoupledConfig& c) {
  const double w = c.interval_compute_1t;
  return c.serial_fraction * w +
         (1.0 - c.serial_fraction) * w / c.threads_per_rank;
}

/// Movement makespan for staging/hybrid placements: every simulation node
/// pushes its aggregated output to the analytics nodes across the machine's
/// actual interconnect (3-D torus on Titan-like machines, fat tree on
/// Smoky-like ones); receiver NICs and shared hops contend under max-min
/// fairness, capturing the incast.
double staging_movement_seconds(const CoupledConfig& c, int sim_nodes,
                                int analytics_nodes, double bytes_per_node) {
  sim::EventEngine engine;
  sim::FlowNetwork net(&engine);
  const auto topology =
      sim::make_topology(&net, c.machine, sim_nodes + analytics_nodes);
  double last = 0;
  for (int s = 0; s < sim_nodes; ++s) {
    // Each sim node's volume is spread across receivers round-robin; the
    // analytics nodes occupy ids [sim_nodes, sim_nodes + analytics_nodes).
    const double per_receiver = bytes_per_node / analytics_nodes;
    for (int r = 0; r < analytics_nodes; ++r) {
      topology->transfer(&net, s, sim_nodes + r, per_receiver,
                         [&last](sim::SimTime t) { last = std::max(last, t); });
    }
  }
  engine.run();
  return last + c.machine.nic_latency;
}

/// Shared-file-system write time for `bytes` written by `writer_nodes`
/// nodes concurrently (the non-scaling Lustre model).
double fs_write_seconds(const CoupledConfig& c, double bytes,
                        int writer_nodes) {
  if (bytes <= 0) return 0;
  const double bw = std::min(c.machine.fs_aggregate_bw,
                             c.machine.fs_per_node_bw * writer_nodes);
  return c.machine.fs_open_latency + bytes / bw;
}

}  // namespace

StatusOr<CoupledResult> simulate_coupled(const CoupledConfig& c) {
  if (c.sim_ranks <= 0 || c.threads_per_rank <= 0 || c.intervals <= 0) {
    return make_error(ErrorCode::kInvalidArgument, "bad coupled config");
  }
  const int cores = c.machine.cores_per_node();
  const bool helper = c.placement == AnalyticsPlacement::kHelperCore;
  const bool inline_run = c.placement == AnalyticsPlacement::kInline;
  const bool solo = c.placement == AnalyticsPlacement::kNone;
  const bool staging = c.placement == AnalyticsPlacement::kStaging;
  const bool hybrid = c.placement == AnalyticsPlacement::kHybrid;

  CoupledResult r;

  // ---- resource geometry --------------------------------------------------
  // Simulation nodes host ranks x threads cores; helper-core placements
  // additionally host the analytics on the same nodes.
  const int sim_cores_needed =
      c.sim_ranks * c.threads_per_rank + (helper ? c.analytics_ranks : 0);
  r.sim_nodes = (sim_cores_needed + cores - 1) / cores;
  r.analytics_nodes = 0;
  if (staging) {
    r.analytics_nodes = std::max(1, (c.analytics_ranks + cores - 1) / cores);
  } else if (hybrid) {
    // Data-aware S3D: analytics squeeze onto sim nodes *and* spill, which
    // also spreads the simulation across extra nodes.
    r.analytics_nodes = std::max(1, (c.analytics_ranks + cores - 1) / cores);
  }
  r.nodes_used = r.sim_nodes + r.analytics_nodes;
  if (r.nodes_used > c.machine.num_nodes) {
    return make_error(ErrorCode::kResourceExhausted, "machine too small");
  }

  // ---- cache interference (Figure 8) --------------------------------------
  const double l3 = c.machine.l3_bytes_per_socket;
  r.l3_mpki_solo = sim::inflated_mpki(
      c.sim_cache, sim::effective_l3(l3, c.sim_cache.working_set_bytes, 0));
  if (helper || inline_run || hybrid) {
    // Analytics share the socket's L3 with the simulation threads.
    r.l3_mpki_corun = sim::inflated_mpki(
        c.sim_cache, sim::effective_l3(l3, c.sim_cache.working_set_bytes,
                                       c.analytics_ws_bytes));
  } else {
    r.l3_mpki_corun = r.l3_mpki_solo;
  }
  r.cache_slowdown = sim::slowdown_factor(c.sim_cache, r.l3_mpki_corun) /
                     sim::slowdown_factor(c.sim_cache, r.l3_mpki_solo);

  // ---- simulation phases ---------------------------------------------------
  double t_compute = compute_time(c) * r.cache_slowdown;
  if (!c.numa_aligned_threads) {
    // OpenMP threads straddling NUMA domains (holistic / data-aware on a
    // Figure-5 style node): remote-domain memory traffic on the parallel
    // region.
    const double numa_penalty =
        1.0 + 0.07 * (1.0 - c.machine.mem_bw_remote / c.machine.mem_bw_local) /
                  0.5 * (1.0 - c.serial_fraction) * 2.0;
    t_compute *= numa_penalty;
  }
  double t_mpi = c.sim_mpi_seconds * c.mpi_spread_penalty;

  // ---- analytics time -------------------------------------------------------
  const double total_analytics_work =
      c.analytics_work_per_sim_rank * c.sim_ranks;
  double t_analytics = 0;
  if (inline_run) {
    // Runs inside every simulation rank: scalable part parallelizes over
    // the sim ranks; the merge/output path grows with the rank count.
    t_analytics = total_analytics_work / c.sim_ranks + c.nonscalable_base +
                  c.nonscalable_log * std::log2(double(c.sim_ranks) + 1) +
                  fs_write_seconds(c, c.analytics_file_bytes, r.sim_nodes);
  } else if (!solo) {
    t_analytics =
        total_analytics_work / std::max(1, c.analytics_ranks) +
        c.nonscalable_base +
        c.nonscalable_log * std::log2(double(c.analytics_ranks) + 1) +
        fs_write_seconds(c, c.analytics_file_bytes,
                         std::max(1, r.analytics_nodes));
  }

  // ---- data movement ---------------------------------------------------------
  double t_io_visible = 0;   // simulation-visible
  double movement = 0;       // wherever it runs
  const double total_output = c.output_bytes_per_rank * c.sim_ranks;
  const double handshake =
      c.handshake_cached ? 100e-6 : 3e-3;  // control-message cost
  if (helper) {
    // FastForward shm: two copies per message on the async pool path; the
    // copy bandwidth depends on where the queues/pools are pinned.
    const double copy_bw = c.numa_aligned_buffers ? c.machine.mem_bw_local
                                                  : c.machine.mem_bw_remote;
    movement = 2.0 * c.output_bytes_per_rank / copy_bw;
    t_io_visible = handshake + movement;  // producer-side copy is visible
    r.inter_node_bytes = 0;
  } else if (staging || hybrid) {
    const double bytes_per_node =
        total_output / r.sim_nodes *
        (hybrid ? 0.5 : 1.0);  // hybrid keeps roughly half on-node
    movement = staging_movement_seconds(c, r.sim_nodes,
                                        std::max(1, r.analytics_nodes),
                                        bytes_per_node);
    r.inter_node_bytes =
        bytes_per_node * r.sim_nodes * c.intervals;
    if (c.async_movement) {
      // Async bulk movement overlaps compute but contends with the
      // simulation's MPI traffic on the NICs; the scheduling policy keeps
      // the slowdown bounded (paper: "under 15%").
      const double interval_estimate = t_compute + t_mpi;
      const double utilization =
          std::min(1.0, movement / std::max(interval_estimate, 1e-9));
      t_io_visible = handshake;
      t_mpi *= 1.0 + 0.12 * utilization;
      // Bulk RDMA steals memory and NIC bandwidth from the application;
      // the Get scheduling policy caps the damage (paper: "under 15%").
      t_compute *= 1.0 + std::min(0.15, 0.18 * utilization);
    } else {
      t_io_visible = handshake + movement;
    }
  }

  // ---- pipeline assembly -------------------------------------------------------
  PhaseBreakdown& ph = r.interval;
  ph.sim_compute = t_compute;
  ph.sim_mpi = t_mpi;
  ph.sim_io = t_io_visible;
  const double stage_sim =
      t_compute + t_mpi + t_io_visible + (inline_run ? t_analytics : 0.0);
  double stage_analytics = 0;
  if (!inline_run && !solo) {
    // The consumer stage: finish receiving (async movement tail) + compute.
    stage_analytics = t_analytics + (c.async_movement ? 0.0 : 0.0);
    if (c.async_movement && (staging || hybrid)) {
      stage_analytics = std::max(stage_analytics, movement);
    }
  }
  ph.analytics = inline_run ? t_analytics : stage_analytics;
  ph.analytics_idle =
      (inline_run || solo) ? 0.0 : std::max(0.0, stage_sim - stage_analytics);

  const double steady = std::max(stage_sim, stage_analytics);
  const double fill = (inline_run || solo) ? 0.0 : stage_analytics;
  r.total_seconds = c.intervals * steady + fill;
  r.movement_seconds = movement;
  r.node_hours = r.nodes_used * r.total_seconds / 3600.0;
  return r;
}

}  // namespace flexio::apps
