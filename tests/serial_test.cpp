// Unit + property tests for the serialization substrate.
#include <gtest/gtest.h>

#include "serial/buffer.h"
#include "serial/schema.h"
#include "util/rng.h"

namespace flexio::serial {
namespace {

TEST(BufferTest, PrimitivesRoundTrip) {
  BufWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_string("hello");

  BufReader r(w.view());
  std::uint8_t u8; std::uint16_t u16; std::uint32_t u32; std::uint64_t u64;
  std::int64_t i64; double f64; std::string s;
  ASSERT_TRUE(r.get_u8(&u8).is_ok());
  ASSERT_TRUE(r.get_u16(&u16).is_ok());
  ASSERT_TRUE(r.get_u32(&u32).is_ok());
  ASSERT_TRUE(r.get_u64(&u64).is_ok());
  ASSERT_TRUE(r.get_i64(&i64).is_ok());
  ASSERT_TRUE(r.get_f64(&f64).is_ok());
  ASSERT_TRUE(r.get_string(&s).is_ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(BufferTest, UnderrunIsReported) {
  BufWriter w;
  w.put_u16(7);
  BufReader r(w.view());
  std::uint32_t v = 0;
  EXPECT_EQ(r.get_u32(&v).code(), ErrorCode::kOutOfRange);
}

TEST(BufferTest, VarintBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 0xffffffffffffffffULL}) {
    BufWriter w;
    w.put_varint(v);
    BufReader r(w.view());
    std::uint64_t out = 0;
    ASSERT_TRUE(r.get_varint(&out).is_ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(BufferTest, VarintOverflowRejected) {
  // Eleven continuation bytes encode >64 bits.
  std::vector<std::byte> bad(11, std::byte{0xff});
  bad.back() = std::byte{0x7f};
  BufReader r{ByteView(bad)};
  std::uint64_t v = 0;
  EXPECT_FALSE(r.get_varint(&v).is_ok());
}

TEST(BufferTest, BytesViewIsZeroCopy) {
  BufWriter w;
  const std::byte payload[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(ByteView(payload));
  const auto owned = w.take();
  BufReader r{ByteView(owned)};
  ByteView view;
  ASSERT_TRUE(r.get_bytes(&view).is_ok());
  ASSERT_EQ(view.size(), 3u);
  EXPECT_GE(view.data(), owned.data());
  EXPECT_LT(view.data(), owned.data() + owned.size());
  EXPECT_EQ(view[2], std::byte{3});
}

TEST(BufferTest, SeekAndPosition) {
  BufWriter w;
  w.put_u32(1);
  w.put_u32(2);
  BufReader r(w.view());
  std::uint32_t v = 0;
  ASSERT_TRUE(r.get_u32(&v).is_ok());
  EXPECT_EQ(r.position(), 4u);
  ASSERT_TRUE(r.seek(0).is_ok());
  ASSERT_TRUE(r.get_u32(&v).is_ok());
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(r.seek(100).is_ok());
}

TEST(BufferTest, VarintRandomRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    BufWriter w;
    w.put_varint(v);
    BufReader r(w.view());
    std::uint64_t out = 0;
    ASSERT_TRUE(r.get_varint(&out).is_ok());
    ASSERT_EQ(out, v);
  }
}

TEST(BufferTest, TrailerSkipPrimitives) {
  // The wire layer's versioned-trailer contract (core/wire.cpp) leans on
  // three buffer behaviors: at_end() distinguishes "old frame, no trailer
  // bytes" from "trailer present"; get_view(remaining()) swallows an
  // unknown tail in one step; and a truncated trailer surfaces as an
  // explicit underrun rather than garbage.
  BufWriter w;
  w.put_u64(7);         // "body"
  w.put_u8(200);        // unknown trailer tag
  w.put_varint(12345);  // opaque future payload
  BufReader r(w.view());
  std::uint64_t body = 0;
  ASSERT_TRUE(r.get_u64(&body).is_ok());
  EXPECT_FALSE(r.at_end());  // trailer bytes present
  std::uint8_t tag = 0;
  ASSERT_TRUE(r.get_u8(&tag).is_ok());
  EXPECT_EQ(tag, 200);
  ByteView rest;
  ASSERT_TRUE(r.get_view(r.remaining(), &rest).is_ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);

  // Old-format frame: body only, reader lands exactly at end.
  BufWriter old;
  old.put_u64(7);
  BufReader r_old(old.view());
  ASSERT_TRUE(r_old.get_u64(&body).is_ok());
  EXPECT_TRUE(r_old.at_end());

  // Trailer tag present but its payload truncated: underrun, not garbage.
  BufWriter cut;
  cut.put_u64(7);
  cut.put_u8(1);  // tag announcing a payload that never comes
  BufReader r_cut(cut.view());
  ASSERT_TRUE(r_cut.get_u64(&body).is_ok());
  ASSERT_TRUE(r_cut.get_u8(&tag).is_ok());
  std::uint64_t missing = 0;
  EXPECT_FALSE(r_cut.get_varint(&missing).is_ok());
}

Schema particle_schema() {
  return Schema("particle_meta",
                {{"name", DataType::kString, false},
                 {"step", DataType::kInt64, false},
                 {"count", DataType::kUInt32, false},
                 {"weight", DataType::kDouble, false},
                 {"dims", DataType::kInt64, true},
                 {"payload", DataType::kBytes, false}});
}

TEST(SchemaTest, FingerprintStableAndDiscriminating) {
  EXPECT_EQ(particle_schema().fingerprint(), particle_schema().fingerprint());
  Schema other("particle_meta", {{"name", DataType::kString, false}});
  EXPECT_NE(other.fingerprint(), particle_schema().fingerprint());
  // Array-ness participates in the fingerprint.
  Schema a("s", {{"f", DataType::kInt64, false}});
  Schema b("s", {{"f", DataType::kInt64, true}});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(SchemaTest, SchemaSelfDescribes) {
  const Schema s = particle_schema();
  BufWriter w;
  s.encode(&w);
  BufReader r(w.view());
  auto decoded = Schema::decode(&r);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), s);
  EXPECT_EQ(decoded.value().fingerprint(), s.fingerprint());
}

TEST(SchemaTest, FieldIndex) {
  const Schema s = particle_schema();
  EXPECT_EQ(s.field_index("name"), 0);
  EXPECT_EQ(s.field_index("payload"), 5);
  EXPECT_EQ(s.field_index("nope"), -1);
}

TEST(RecordTest, RoundTripAllFieldKinds) {
  const Schema s = particle_schema();
  Record rec(&s);
  ASSERT_TRUE(rec.set("name", std::string("zion")).is_ok());
  ASSERT_TRUE(rec.set("step", std::int64_t{12}).is_ok());
  ASSERT_TRUE(rec.set("count", std::uint64_t{77}).is_ok());
  ASSERT_TRUE(rec.set("weight", 0.25).is_ok());
  ASSERT_TRUE(rec.set("dims", std::vector<std::int64_t>{10, 7}).is_ok());
  ASSERT_TRUE(
      rec.set("payload", std::vector<std::byte>{std::byte{9}}).is_ok());

  BufWriter w;
  rec.encode(&w);
  BufReader r(w.view());
  auto out = Record::decode(s, &r);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().get_string("name").value(), "zion");
  EXPECT_EQ(out.value().get_int("step").value(), 12);
  EXPECT_EQ(out.value().get_int("count").value(), 77);
  EXPECT_DOUBLE_EQ(out.value().get_double("weight").value(), 0.25);
  const auto& dims =
      std::get<std::vector<std::int64_t>>(out.value().get("dims"));
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[1], 7);
}

TEST(RecordTest, TypeMismatchRejected) {
  const Schema s = particle_schema();
  Record rec(&s);
  EXPECT_FALSE(rec.set("name", 3.0).is_ok());
  EXPECT_FALSE(rec.set("weight", std::string("x")).is_ok());
  EXPECT_FALSE(rec.set("dims", 1.5).is_ok());
}

TEST(RecordTest, FingerprintMismatchDetected) {
  const Schema s = particle_schema();
  Record rec(&s);
  BufWriter w;
  rec.encode(&w);
  const Schema other("other", {{"x", DataType::kInt64, false}});
  BufReader r(w.view());
  auto out = Record::decode(other, &r);
  EXPECT_FALSE(out.is_ok());
}

TEST(RecordTest, NegativeNarrowIntsRoundTrip) {
  const Schema s("narrow", {{"a", DataType::kInt8, false},
                            {"b", DataType::kInt16, false},
                            {"c", DataType::kInt32, false}});
  Record rec(&s);
  ASSERT_TRUE(rec.set("a", std::int64_t{-5}).is_ok());
  ASSERT_TRUE(rec.set("b", std::int64_t{-3000}).is_ok());
  ASSERT_TRUE(rec.set("c", std::int64_t{-2000000000}).is_ok());
  BufWriter w;
  rec.encode(&w);
  BufReader r(w.view());
  auto out = Record::decode(s, &r);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().get_int("a").value(), -5);
  EXPECT_EQ(out.value().get_int("b").value(), -3000);
  EXPECT_EQ(out.value().get_int("c").value(), -2000000000);
}

TEST(RecordTest, FloatArrayRoundTripsViaDouble) {
  const Schema s("fa", {{"vals", DataType::kFloat, true}});
  Record rec(&s);
  ASSERT_TRUE(rec.set("vals", std::vector<double>{1.5, -2.5, 0.0}).is_ok());
  BufWriter w;
  rec.encode(&w);
  BufReader r(w.view());
  auto out = Record::decode(s, &r);
  ASSERT_TRUE(out.is_ok());
  const auto& vals = std::get<std::vector<double>>(out.value().get("vals"));
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[1], -2.5);
}

TEST(DataTypeTest, ParseNamesRoundTrip) {
  for (int t = 0; t <= static_cast<int>(DataType::kBytes); ++t) {
    const auto dt = static_cast<DataType>(t);
    auto parsed = parse_datatype(datatype_name(dt));
    ASSERT_TRUE(parsed.is_ok()) << datatype_name(dt);
    EXPECT_EQ(parsed.value(), dt);
  }
  EXPECT_FALSE(parse_datatype("quaternion").is_ok());
}

TEST(DataTypeTest, Sizes) {
  EXPECT_EQ(size_of(DataType::kInt8), 1u);
  EXPECT_EQ(size_of(DataType::kFloat), 4u);
  EXPECT_EQ(size_of(DataType::kDouble), 8u);
  EXPECT_EQ(size_of(DataType::kString), 0u);
}

// Property: a randomly-built record always round-trips bit-exactly.
class RecordPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RecordPropertyTest, RandomRecordsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Schema s("prop", {{"i", DataType::kInt64, false},
                          {"u", DataType::kUInt32, false},
                          {"d", DataType::kDouble, false},
                          {"name", DataType::kString, false},
                          {"di", DataType::kInt32, true},
                          {"dd", DataType::kDouble, true}});
  Record rec(&s);
  const auto i = static_cast<std::int64_t>(rng.next_u64());
  const auto u = static_cast<std::uint64_t>(rng.next_below(1u << 31));
  const double d = rng.next_gaussian() * 1e6;
  std::string name;
  for (std::uint64_t k = 0; k < rng.next_below(32); ++k) {
    name.push_back(static_cast<char>('a' + rng.next_below(26)));
  }
  std::vector<std::int64_t> di;
  for (std::uint64_t k = 0; k < rng.next_below(20); ++k) {
    di.push_back(static_cast<std::int32_t>(rng.next_u64()));
  }
  std::vector<double> dd;
  for (std::uint64_t k = 0; k < rng.next_below(20); ++k) {
    dd.push_back(rng.next_gaussian());
  }
  ASSERT_TRUE(rec.set("i", i).is_ok());
  ASSERT_TRUE(rec.set("u", u).is_ok());
  ASSERT_TRUE(rec.set("d", d).is_ok());
  ASSERT_TRUE(rec.set("name", name).is_ok());
  ASSERT_TRUE(rec.set("di", di).is_ok());
  ASSERT_TRUE(rec.set("dd", dd).is_ok());

  BufWriter w;
  rec.encode(&w);
  BufReader r(w.view());
  auto out = Record::decode(s, &r);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().get_int("i").value(), i);
  EXPECT_EQ(static_cast<std::uint64_t>(out.value().get_int("u").value()), u);
  EXPECT_DOUBLE_EQ(out.value().get_double("d").value(), d);
  EXPECT_EQ(out.value().get_string("name").value(), name);
  EXPECT_EQ(std::get<std::vector<std::int64_t>>(out.value().get("di")), di);
  EXPECT_EQ(std::get<std::vector<double>>(out.value().get("dd")), dd);
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace flexio::serial
