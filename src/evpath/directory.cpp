#include "evpath/directory.h"

#include <algorithm>

#include "util/metrics.h"

namespace flexio::evpath {

namespace {

metrics::Counter& joins_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.joins");
  return c;
}
metrics::Counter& leaves_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.leaves");
  return c;
}
metrics::Counter& deaths_counter() {
  static metrics::Counter& c = metrics::counter("flexio.membership.deaths");
  return c;
}
metrics::Gauge& epoch_gauge() {
  static metrics::Gauge& g = metrics::gauge("flexio.membership.epoch");
  return g;
}

}  // namespace

std::string_view member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kLeft:
      return "left";
    case MemberState::kDead:
      return "dead";
  }
  return "?";
}

const Member* MembershipView::find(int rank) const {
  for (const Member& m : members) {
    if (m.rank == rank) return &m;
  }
  return nullptr;
}

int MembershipView::alive_count() const {
  int n = 0;
  for (const Member& m : members) {
    if (m.state == MemberState::kAlive) ++n;
  }
  return n;
}

Status DirectoryServer::register_stream(const std::string& stream_name,
                                        const std::string& coordinator_contact,
                                        std::vector<std::byte> open_info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = streams_.emplace(stream_name, coordinator_contact);
  if (!inserted) {
    return make_error(ErrorCode::kAlreadyExists,
                      "stream already registered: " + stream_name);
  }
  stream_info_[stream_name] = std::move(open_info);
  // A previous stream of the same name leaves a closed tombstone group;
  // this is a fresh stream, so its membership starts from scratch.
  auto git = groups_.find(stream_name);
  if (git != groups_.end() && git->second.closed) groups_.erase(git);
  ++stats_.registrations;
  cv_.notify_all();
  return Status::ok();
}

Status DirectoryServer::unregister_stream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.erase(stream_name) == 0) {
    return make_error(ErrorCode::kNotFound,
                      "stream not registered: " + stream_name);
  }
  stream_info_.erase(stream_name);
  // Keep the membership group as a closed tombstone rather than erasing
  // it: readers drain steps the writer buffered before closing, and their
  // liveness sweeps must still see (and declare) deaths in that window --
  // dropping the group here would leave a crashed straggler alive forever
  // and wedge the survivors' collectives.
  auto git = groups_.find(stream_name);
  if (git != groups_.end()) git->second.closed = true;
  cv_.notify_all();
  return Status::ok();
}

StatusOr<std::string> DirectoryServer::lookup(const std::string& stream_name,
                                              std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    ++stats_.lookup_waits;
    if (!cv_.wait_for(lock, timeout, [&] {
          it = streams_.find(stream_name);
          return it != streams_.end();
        })) {
      return make_error(ErrorCode::kNotFound,
                        "stream never registered: " + stream_name);
    }
  }
  return it->second;
}

StatusOr<std::vector<std::byte>> DirectoryServer::lookup_info(
    const std::string& stream_name, std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = stream_info_.find(stream_name);
  if (it == stream_info_.end()) {
    if (!cv_.wait_for(lock, timeout, [&] {
          it = stream_info_.find(stream_name);
          return it != stream_info_.end();
        })) {
      return make_error(ErrorCode::kNotFound,
                        "stream never registered: " + stream_name);
    }
  }
  return it->second;
}

DirectoryStats DirectoryServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DirectoryServer::set_membership_options(const MembershipOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  membership_options_ = options;
}

MembershipOptions DirectoryServer::membership_options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_options_;
}

bool DirectoryServer::membership_enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_options_.enabled;
}

void DirectoryServer::sweep_locked(Group& group) {
  const std::uint64_t now = metrics::now_ns();
  const std::uint64_t ttl =
      static_cast<std::uint64_t>(membership_options_.ttl.count());
  bool changed = false;
  for (auto& [rank, member] : group.members) {
    if (member.state != MemberState::kAlive) continue;
    if (now >= member.last_beat_ns && now - member.last_beat_ns > ttl) {
      member.state = MemberState::kDead;
      ++group.epoch;
      deaths_counter().inc();
      epoch_gauge().add(1);
      changed = true;
    }
  }
  if (changed) cv_.notify_all();
}

StatusOr<Member> DirectoryServer::join_member(const std::string& stream_name,
                                              int rank,
                                              const std::string& contact) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!membership_options_.enabled) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "directory membership disabled");
  }
  Group& group = groups_[stream_name];
  if (group.closed) {
    return make_error(ErrorCode::kNotFound,
                      "stream closed: " + stream_name);
  }
  sweep_locked(group);
  auto it = group.members.find(rank);
  std::uint64_t incarnation = 1;
  if (it != group.members.end()) {
    if (it->second.state == MemberState::kAlive) {
      return make_error(ErrorCode::kAlreadyExists,
                        "member still alive: " + stream_name + " rank " +
                            std::to_string(rank));
    }
    incarnation = it->second.incarnation + 1;
  }
  Member member;
  member.rank = rank;
  member.contact = contact;
  member.incarnation = incarnation;
  member.state = MemberState::kAlive;
  member.join_epoch = ++group.epoch;
  member.last_beat_ns = metrics::now_ns();
  group.members[rank] = member;
  joins_counter().inc();
  epoch_gauge().add(1);
  cv_.notify_all();
  return member;
}

Status DirectoryServer::leave_member(const std::string& stream_name, int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no membership group: " + stream_name);
  }
  auto it = git->second.members.find(rank);
  if (it == git->second.members.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown member: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  if (it->second.state != MemberState::kAlive) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "member not alive: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  it->second.state = MemberState::kLeft;
  ++git->second.epoch;
  leaves_counter().inc();
  epoch_gauge().add(1);
  cv_.notify_all();
  return Status::ok();
}

Status DirectoryServer::heartbeat(const std::string& stream_name, int rank,
                                  std::uint64_t incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no membership group: " + stream_name);
  }
  sweep_locked(git->second);
  auto it = git->second.members.find(rank);
  if (it == git->second.members.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown member: " + stream_name + " rank " +
                          std::to_string(rank));
  }
  // Fencing: a dead or superseded incarnation may not beat itself back to
  // life; the rank must rejoin under a fresh incarnation.
  if (it->second.state != MemberState::kAlive ||
      it->second.incarnation != incarnation) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "member fenced: " + stream_name + " rank " +
                          std::to_string(rank) + " incarnation " +
                          std::to_string(incarnation));
  }
  it->second.last_beat_ns = metrics::now_ns();
  return Status::ok();
}

MembershipView DirectoryServer::membership(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  MembershipView view;
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) return view;
  sweep_locked(git->second);
  view.epoch = git->second.epoch;
  view.members.reserve(git->second.members.size());
  for (const auto& [rank, member] : git->second.members) {
    view.members.push_back(member);
  }
  return view;
}

std::uint64_t DirectoryServer::membership_epoch(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto git = groups_.find(stream_name);
  if (git == groups_.end()) return 0;
  sweep_locked(git->second);
  return git->second.epoch;
}

StatusOr<std::uint64_t> DirectoryServer::wait_for_epoch_change(
    const std::string& stream_name, std::uint64_t last_seen,
    std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto git = groups_.find(stream_name);
    if (git != groups_.end()) {
      sweep_locked(git->second);
      if (git->second.epoch != last_seen) return git->second.epoch;
    }
    // Wake periodically even without joins/leaves so TTL expiry is noticed
    // (the fake clock can advance without any cv activity).
    const auto slice = std::min(
        deadline, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
    if (std::chrono::steady_clock::now() >= deadline) {
      return make_error(ErrorCode::kTimeout,
                        "membership epoch unchanged: " + stream_name);
    }
    cv_.wait_until(lock, slice);
  }
}

}  // namespace flexio::evpath
