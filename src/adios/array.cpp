#include "adios/array.h"

#include <algorithm>
#include <cstring>

#include "util/metrics.h"

namespace flexio::adios {

namespace {
metrics::Counter& pack_bytes_counter() {
  static metrics::Counter& c = metrics::counter("flexio.pack.bytes");
  return c;
}
metrics::Counter& pack_runs_counter() {
  static metrics::Counter& c = metrics::counter("flexio.pack.memcpy_runs");
  return c;
}
}  // namespace

std::uint64_t volume(const Dims& d) {
  std::uint64_t v = 1;
  for (std::uint64_t x : d) v *= x;
  return v;
}

std::string dims_to_string(const Dims& d) {
  std::string out = "[";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(d[i]);
  }
  out += "]";
  return out;
}

bool intersect(const Box& a, const Box& b, Box* out) {
  FLEXIO_CHECK(a.valid() && b.valid());
  FLEXIO_CHECK(a.ndim() == b.ndim());
  const std::size_t n = a.ndim();
  out->offset.resize(n);
  out->count.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t lo = std::max(a.offset[i], b.offset[i]);
    const std::uint64_t hi =
        std::min(a.offset[i] + a.count[i], b.offset[i] + b.count[i]);
    if (hi <= lo) return false;
    out->offset[i] = lo;
    out->count[i] = hi - lo;
  }
  return true;
}

bool contains(const Box& outer, const Box& inner) {
  FLEXIO_CHECK(outer.ndim() == inner.ndim());
  for (std::size_t i = 0; i < outer.ndim(); ++i) {
    if (inner.offset[i] < outer.offset[i]) return false;
    if (inner.offset[i] + inner.count[i] > outer.offset[i] + outer.count[i]) {
      return false;
    }
  }
  return true;
}

std::uint64_t flat_index(const Box& box, const Dims& coord) {
  FLEXIO_CHECK(coord.size() == box.ndim());
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < box.ndim(); ++i) {
    FLEXIO_CHECK(coord[i] >= box.offset[i]);
    FLEXIO_CHECK(coord[i] < box.offset[i] + box.count[i]);
    idx = idx * box.count[i] + (coord[i] - box.offset[i]);
  }
  return idx;
}

void copy_region(const Box& src_box, const std::byte* src, const Box& dst_box,
                 std::byte* dst, const Box& region, std::size_t elem_size) {
  // All validity checks happen once, up front; the copy loop below runs
  // unchecked.
  FLEXIO_CHECK(contains(src_box, region));
  FLEXIO_CHECK(contains(dst_box, region));
  FLEXIO_CHECK(elem_size > 0);
  const std::uint64_t total = region.elements();
  if (total == 0) return;
  const std::size_t n = region.ndim();

  // Per-dimension element strides of both boxes plus the odometer counters,
  // in one allocation-free block for the common ranks.
  constexpr std::size_t kStackDims = 12;
  std::uint64_t stack_store[kStackDims * 3];
  std::vector<std::uint64_t> heap_store;
  std::uint64_t* store = stack_store;
  if (n > kStackDims) {
    heap_store.assign(n * 3, 0);
    store = heap_store.data();
  }
  std::uint64_t* src_stride = store;
  std::uint64_t* dst_stride = store + n;
  std::uint64_t* odo = store + 2 * n;

  std::uint64_t ss = 1, ds = 1;
  for (std::size_t i = n; i-- > 0;) {
    src_stride[i] = ss;
    ss *= src_box.count[i];
    dst_stride[i] = ds;
    ds *= dst_box.count[i];
  }

  // Element offsets of the region's origin inside each box (the only place
  // the old kernel needed flat_index -- here it is computed exactly once).
  std::uint64_t src_off = 0, dst_off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    src_off += (region.offset[i] - src_box.offset[i]) * src_stride[i];
    dst_off += (region.offset[i] - dst_box.offset[i]) * dst_stride[i];
  }

  // Coalesce trailing dimensions that are dense in BOTH boxes into one
  // contiguous run: dim d joins when everything inside it already forms a
  // contiguous block of both layouts (run == stride[d] on each side). A
  // region covering its boxes entirely collapses to a single memcpy.
  std::size_t outer = n;  // dims the odometer still iterates: [0, outer)
  std::uint64_t run = 1;  // elements per memcpy
  while (outer > 0) {
    const std::size_t d = outer - 1;
    if (run != src_stride[d] || run != dst_stride[d]) break;
    run *= region.count[d];
    --outer;
  }

  const std::size_t run_bytes = static_cast<std::size_t>(run) * elem_size;
  const std::uint64_t nruns = total / run;
  src += src_off * elem_size;
  dst += dst_off * elem_size;
  if (outer == 0) {
    std::memcpy(dst, src, run_bytes);
  } else {
    for (std::size_t i = 0; i < outer; ++i) odo[i] = 0;
    std::uint64_t s = 0, d = 0;  // element offsets relative to the origin
    for (std::uint64_t r = 0; r < nruns; ++r) {
      std::memcpy(dst + d * elem_size, src + s * elem_size, run_bytes);
      for (std::size_t dim = outer; dim-- > 0;) {
        s += src_stride[dim];
        d += dst_stride[dim];
        if (++odo[dim] < region.count[dim]) break;
        odo[dim] = 0;
        s -= src_stride[dim] * region.count[dim];
        d -= dst_stride[dim] * region.count[dim];
      }
    }
  }
  if (metrics::enabled()) {
    pack_bytes_counter().add(total * elem_size);
    pack_runs_counter().add(nruns);
  }
}

Box block_decompose(const Dims& global, int parts, int part, int dim) {
  FLEXIO_CHECK(parts > 0);
  FLEXIO_CHECK(part >= 0 && part < parts);
  FLEXIO_CHECK(static_cast<std::size_t>(dim) < global.size());
  Box box;
  box.offset.assign(global.size(), 0);
  box.count = global;
  const std::uint64_t total = global[static_cast<std::size_t>(dim)];
  const std::uint64_t base = total / static_cast<std::uint64_t>(parts);
  const std::uint64_t extra = total % static_cast<std::uint64_t>(parts);
  const auto p = static_cast<std::uint64_t>(part);
  const std::uint64_t begin = p * base + std::min(p, extra);
  const std::uint64_t size = base + (p < extra ? 1 : 0);
  box.offset[static_cast<std::size_t>(dim)] = begin;
  box.count[static_cast<std::size_t>(dim)] = size;
  return box;
}

}  // namespace flexio::adios
