// Unit tests for the XML parser and the FlexIO/ADIOS config schema.
#include <gtest/gtest.h>

#include "xml/config.h"
#include "xml/xml.h"

namespace flexio::xml {
namespace {

TEST(XmlTest, ParsesSimpleElement) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().root().name, "root");
}

TEST(XmlTest, ParsesAttributes) {
  auto doc = parse(R"(<var name="zion" type="double" dimensions="n,7"/>)");
  ASSERT_TRUE(doc.is_ok());
  const Element& e = doc.value().root();
  EXPECT_EQ(e.attr("name"), "zion");
  EXPECT_EQ(e.attr("type"), "double");
  EXPECT_EQ(e.attr("dimensions"), "n,7");
  EXPECT_TRUE(e.has_attr("name"));
  EXPECT_FALSE(e.has_attr("missing"));
  EXPECT_EQ(e.attr("missing"), "");
}

TEST(XmlTest, ParsesNestedChildren) {
  auto doc = parse(R"(
    <adios-config>
      <adios-group name="particles">
        <var name="zion" type="double"/>
        <var name="electron" type="double"/>
      </adios-group>
      <method group="particles" method="FLEXIO">caching=all</method>
    </adios-config>)");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const Element& root = doc.value().root();
  ASSERT_NE(root.child("adios-group"), nullptr);
  EXPECT_EQ(root.child("adios-group")->children_named("var").size(), 2u);
  EXPECT_EQ(root.child("method")->text, "caching=all");
  EXPECT_EQ(root.child("nope"), nullptr);
}

TEST(XmlTest, SkipsDeclarationAndComments) {
  auto doc = parse(
      "<?xml version=\"1.0\"?>\n<!-- top -->\n<a><!-- in -->"
      "<b/><!-- between --><c/></a><!-- after -->");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().root().children.size(), 2u);
}

TEST(XmlTest, DecodesEntities) {
  auto doc = parse(R"(<m note="a&lt;b &amp; c&gt;d">x &quot;y&apos;</m>)");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().root().attr("note"), "a<b & c>d");
  EXPECT_EQ(doc.value().root().text, "x \"y'");
}

TEST(XmlTest, SingleQuotedAttributes) {
  auto doc = parse("<m a='hi there'/>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().root().attr("a"), "hi there");
}

TEST(XmlTest, RejectsMismatchedClose) {
  auto doc = parse("<a><b></a></b>");
  EXPECT_FALSE(doc.is_ok());
  EXPECT_EQ(doc.status().code(), ErrorCode::kInvalidArgument);
}

TEST(XmlTest, RejectsTrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>").is_ok());
}

TEST(XmlTest, RejectsUnterminated) {
  EXPECT_FALSE(parse("<a><b>").is_ok());
  EXPECT_FALSE(parse("<a attr=\"x").is_ok());
  EXPECT_FALSE(parse("<a attr=x/>").is_ok());
}

TEST(XmlTest, ErrorsCarryLineNumbers) {
  auto doc = parse("<a>\n\n<b></c>\n</a>");
  ASSERT_FALSE(doc.is_ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status().to_string();
}

constexpr const char* kGtsConfig = R"(
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="double" dimensions="nz,7"/>
    <var name="electron" type="double" dimensions="ne,7"/>
    <var name="nz" type="int64"/>
    <var name="ne" type="int64"/>
  </adios-group>
  <method group="particles" method="FLEXIO">
    caching=local; batching=yes; async=no; pool=64M; timeout_ms=500; max_retries=2
  </method>
  <buffer size-MB="100"/>
</adios-config>)";

TEST(ConfigTest, ParsesFullGtsStyleConfig) {
  auto cfg = parse_config(kGtsConfig);
  ASSERT_TRUE(cfg.is_ok()) << cfg.status().to_string();
  const Config& c = cfg.value();
  ASSERT_EQ(c.groups.size(), 1u);
  EXPECT_EQ(c.groups[0].name, "particles");
  ASSERT_EQ(c.groups[0].vars.size(), 4u);
  EXPECT_EQ(c.groups[0].vars[0].name, "zion");
  ASSERT_EQ(c.groups[0].vars[0].dimensions.size(), 2u);
  EXPECT_EQ(c.groups[0].vars[0].dimensions[1], "7");
  EXPECT_EQ(c.buffer_mb, 100u);

  const MethodConfig* m = c.method_for("particles");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->method, "FLEXIO");
  EXPECT_EQ(m->caching, CachingLevel::kLocal);
  EXPECT_TRUE(m->batching);
  EXPECT_FALSE(m->async_writes);
  EXPECT_EQ(m->pool_bytes, 64u << 20);
  EXPECT_DOUBLE_EQ(m->timeout_ms, 500.0);
  EXPECT_EQ(m->max_retries, 2);
}

TEST(ConfigTest, MethodLookupMissReturnsNull) {
  auto cfg = parse_config(kGtsConfig);
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().method_for("nonexistent"), nullptr);
  EXPECT_EQ(cfg.value().group("nonexistent"), nullptr);
}

TEST(ConfigTest, RejectsWrongRoot) {
  EXPECT_FALSE(parse_config("<wrong/>").is_ok());
}

TEST(ConfigTest, RejectsMethodForUnknownGroup) {
  auto cfg = parse_config(R"(
    <adios-config>
      <method group="ghost" method="FLEXIO"/>
    </adios-config>)");
  ASSERT_FALSE(cfg.is_ok());
  EXPECT_EQ(cfg.status().code(), ErrorCode::kNotFound);
}

TEST(ConfigTest, RejectsBadCachingLevel) {
  MethodConfig m;
  EXPECT_FALSE(apply_method_params("caching=sometimes", &m).is_ok());
}

TEST(ConfigTest, RejectsMalformedParam) {
  MethodConfig m;
  EXPECT_FALSE(apply_method_params("caching", &m).is_ok());
  EXPECT_FALSE(apply_method_params("queue_entries=0", &m).is_ok());
  EXPECT_FALSE(apply_method_params("timeout_ms=-1", &m).is_ok());
}

TEST(ConfigTest, UnknownParamsPreservedAsHints) {
  MethodConfig m;
  ASSERT_TRUE(apply_method_params("custom_hint=abc; async=yes", &m).is_ok());
  EXPECT_TRUE(m.async_writes);
  ASSERT_EQ(m.extra.count("custom_hint"), 1u);
  EXPECT_EQ(m.extra.at("custom_hint"), "abc");
}

TEST(ConfigTest, EmptyParamsKeepDefaults) {
  MethodConfig m;
  ASSERT_TRUE(apply_method_params("  ;  ; ", &m).is_ok());
  EXPECT_EQ(m.caching, CachingLevel::kNone);
  EXPECT_FALSE(m.batching);
}

TEST(ConfigTest, OneLineSwitchFileToStream) {
  // The paper's headline usability claim: switching a group between file
  // I/O and online streaming is a one-line change of the method element.
  auto file_cfg = parse_config(R"(
    <adios-config>
      <adios-group name="g"><var name="x" type="double"/></adios-group>
      <method group="g" method="BP"/>
    </adios-config>)");
  auto stream_cfg = parse_config(R"(
    <adios-config>
      <adios-group name="g"><var name="x" type="double"/></adios-group>
      <method group="g" method="FLEXIO"/>
    </adios-config>)");
  ASSERT_TRUE(file_cfg.is_ok());
  ASSERT_TRUE(stream_cfg.is_ok());
  EXPECT_EQ(file_cfg.value().method_for("g")->method, "BP");
  EXPECT_EQ(stream_cfg.value().method_for("g")->method, "FLEXIO");
}

}  // namespace
}  // namespace flexio::xml
