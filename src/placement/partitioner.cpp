#include "placement/partitioner.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace flexio::placement {

namespace {

/// Compact weighted graph used internally (vertex weights track how many
/// original vertices a coarse vertex represents).
struct WGraph {
  std::vector<std::vector<std::pair<int, double>>> adj;
  std::vector<int> vweight;

  int size() const { return static_cast<int>(adj.size()); }
};

WGraph subgraph_of(const CommGraph& graph, const std::vector<int>& vertices) {
  std::vector<int> local(static_cast<std::size_t>(graph.size()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<std::size_t>(vertices[i])] = static_cast<int>(i);
  }
  WGraph out;
  out.adj.resize(vertices.size());
  out.vweight.assign(vertices.size(), 1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const auto& [v, w] : graph.neighbors(vertices[i])) {
      const int lv = local[static_cast<std::size_t>(v)];
      if (lv >= 0 && lv != static_cast<int>(i)) {
        out.adj[i].emplace_back(lv, w);
      }
    }
  }
  return out;
}

/// Heavy-edge matching coarsening: returns the coarse graph and the map
/// fine-vertex -> coarse-vertex.
std::pair<WGraph, std::vector<int>> coarsen(const WGraph& g) {
  const int n = g.size();
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  // Visit vertices in order of decreasing total weight for better matches.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> degree(static_cast<std::size_t>(n), 0.0);
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) degree[static_cast<std::size_t>(u)] += w;
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return degree[static_cast<std::size_t>(a)] >
           degree[static_cast<std::size_t>(b)];
  });
  for (int u : order) {
    if (match[static_cast<std::size_t>(u)] >= 0) continue;
    int best = -1;
    double best_w = -1;
    for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) {
      if (match[static_cast<std::size_t>(v)] < 0 && v != u && w > best_w) {
        best = v;
        best_w = w;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // unmatched stays alone
    }
  }
  std::vector<int> coarse_of(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int u = 0; u < n; ++u) {
    if (coarse_of[static_cast<std::size_t>(u)] >= 0) continue;
    const int m = match[static_cast<std::size_t>(u)];
    coarse_of[static_cast<std::size_t>(u)] = next;
    coarse_of[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  WGraph coarse;
  coarse.adj.resize(static_cast<std::size_t>(next));
  coarse.vweight.assign(static_cast<std::size_t>(next), 0);
  for (int u = 0; u < n; ++u) {
    coarse.vweight[static_cast<std::size_t>(
        coarse_of[static_cast<std::size_t>(u)])] +=
        g.vweight[static_cast<std::size_t>(u)];
  }
  // Accumulate coarse edges through a map per coarse vertex.
  std::vector<std::map<int, double>> acc(static_cast<std::size_t>(next));
  for (int u = 0; u < n; ++u) {
    const int cu = coarse_of[static_cast<std::size_t>(u)];
    for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) {
      const int cv = coarse_of[static_cast<std::size_t>(v)];
      if (cu != cv) acc[static_cast<std::size_t>(cu)][cv] += w;
    }
  }
  for (int c = 0; c < next; ++c) {
    for (const auto& [v, w] : acc[static_cast<std::size_t>(c)]) {
      coarse.adj[static_cast<std::size_t>(c)].emplace_back(v, w);
    }
  }
  return {std::move(coarse), std::move(coarse_of)};
}

/// Greedy region growing on the (coarsest) graph: grow side 0 from the
/// heaviest vertex until its vertex weight reaches `target0`.
std::vector<int> grow_bisection(const WGraph& g, int target0) {
  const int n = g.size();
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  if (target0 <= 0) return side;
  std::vector<double> attraction(static_cast<std::size_t>(n), 0.0);
  // Seed: heaviest-degree vertex.
  int seed = 0;
  double best = -1;
  for (int u = 0; u < n; ++u) {
    double d = 0;
    for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) d += w;
    if (d > best) {
      best = d;
      seed = u;
    }
  }
  int weight0 = 0;
  auto add = [&](int u) {
    side[static_cast<std::size_t>(u)] = 0;
    weight0 += g.vweight[static_cast<std::size_t>(u)];
    for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) {
      attraction[static_cast<std::size_t>(v)] += w;
    }
  };
  add(seed);
  while (weight0 < target0) {
    int pick = -1;
    double pick_attr = -1;
    for (int u = 0; u < n; ++u) {
      if (side[static_cast<std::size_t>(u)] == 0) continue;
      if (attraction[static_cast<std::size_t>(u)] > pick_attr) {
        pick_attr = attraction[static_cast<std::size_t>(u)];
        pick = u;
      }
    }
    if (pick < 0) break;
    add(pick);
  }
  return side;
}

/// Gain of flipping u to the other side (positive = cut shrinks).
double flip_gain(const WGraph& g, const std::vector<int>& side, int u) {
  double gain = 0;
  for (const auto& [v, w] : g.adj[static_cast<std::size_t>(u)]) {
    gain += side[static_cast<std::size_t>(v)] ==
                    side[static_cast<std::size_t>(u)]
                ? -w
                : w;
  }
  return gain;
}

/// Exact-balance fixup: move lowest-cost vertices until side 0 holds
/// exactly `target0` weight (only meaningful at the finest level where all
/// vertex weights are 1).
void rebalance(const WGraph& g, std::vector<int>* side, int target0) {
  int weight0 = 0;
  for (int u = 0; u < g.size(); ++u) {
    if ((*side)[static_cast<std::size_t>(u)] == 0) {
      weight0 += g.vweight[static_cast<std::size_t>(u)];
    }
  }
  while (weight0 != target0) {
    const int from = weight0 > target0 ? 0 : 1;
    const int imbalance = std::abs(weight0 - target0);
    int pick = -1;
    double pick_gain = -1e300;
    for (int u = 0; u < g.size(); ++u) {
      if ((*side)[static_cast<std::size_t>(u)] != from) continue;
      // Only moves that strictly reduce the imbalance are candidates; at
      // coarse levels (vertex weights > 1) an exact fixup may be
      // impossible and is deferred to the finest level.
      const int vw = g.vweight[static_cast<std::size_t>(u)];
      if (std::abs(weight0 + (from == 0 ? -vw : vw) - target0) >= imbalance) {
        continue;
      }
      const double gain = flip_gain(g, *side, u);
      if (gain > pick_gain) {
        pick_gain = gain;
        pick = u;
      }
    }
    if (pick < 0) break;  // best effort at coarse levels
    const int vw = g.vweight[static_cast<std::size_t>(pick)];
    (*side)[static_cast<std::size_t>(pick)] = 1 - from;
    weight0 += from == 0 ? -vw : vw;
  }
}

/// Kernighan-Lin style refinement: best positive-gain swaps across the cut,
/// keeping sizes intact. A few passes suffice in practice.
void refine(const WGraph& g, std::vector<int>* side) {
  constexpr int kPasses = 4;
  for (int pass = 0; pass < kPasses; ++pass) {
    bool improved = false;
    for (int u = 0; u < g.size(); ++u) {
      if ((*side)[static_cast<std::size_t>(u)] != 0) continue;
      const double gain_u = flip_gain(g, *side, u);
      if (gain_u <= 0) continue;
      // Find the best partner on side 1.
      int best_v = -1;
      double best_total = 0;
      for (int v = 0; v < g.size(); ++v) {
        if ((*side)[static_cast<std::size_t>(v)] != 1) continue;
        if (g.vweight[static_cast<std::size_t>(u)] !=
            g.vweight[static_cast<std::size_t>(v)]) {
          continue;
        }
        const double total =
            gain_u + flip_gain(g, *side, v) - 2 * [&] {
              for (const auto& [n2, w] : g.adj[static_cast<std::size_t>(u)]) {
                if (n2 == v) return w;
              }
              return 0.0;
            }();
        if (total > best_total) {
          best_total = total;
          best_v = v;
        }
      }
      if (best_v >= 0) {
        (*side)[static_cast<std::size_t>(u)] = 1;
        (*side)[static_cast<std::size_t>(best_v)] = 0;
        improved = true;
      }
    }
    if (!improved) break;
  }
}

/// Multilevel bisection of a WGraph into exact (target0, rest).
std::vector<int> bisect(const WGraph& g, int target0) {
  constexpr int kCoarsestSize = 48;
  if (g.size() > kCoarsestSize) {
    auto [coarse, coarse_of] = coarsen(g);
    if (coarse.size() < g.size()) {
      std::vector<int> coarse_side = bisect(coarse, target0);
      std::vector<int> side(static_cast<std::size_t>(g.size()));
      for (int u = 0; u < g.size(); ++u) {
        side[static_cast<std::size_t>(u)] =
            coarse_side[static_cast<std::size_t>(
                coarse_of[static_cast<std::size_t>(u)])];
      }
      rebalance(g, &side, target0);
      refine(g, &side);
      return side;
    }
  }
  std::vector<int> side = grow_bisection(g, target0);
  rebalance(g, &side, target0);
  refine(g, &side);
  return side;
}

/// Recursive k-way over a vertex subset of the original graph.
void kway(const CommGraph& graph, const std::vector<int>& vertices,
          const std::vector<int>& targets, int first_part,
          std::vector<int>* out) {
  if (targets.size() == 1) {
    for (int v : vertices) (*out)[static_cast<std::size_t>(v)] = first_part;
    return;
  }
  const std::size_t half = targets.size() / 2;
  int target0 = 0;
  for (std::size_t i = 0; i < half; ++i) target0 += targets[i];
  const WGraph sub = subgraph_of(graph, vertices);
  const std::vector<int> side = bisect(sub, target0);
  std::vector<int> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(vertices[i]);
  }
  kway(graph, left, {targets.begin(), targets.begin() + static_cast<std::ptrdiff_t>(half)},
       first_part, out);
  kway(graph, right,
       {targets.begin() + static_cast<std::ptrdiff_t>(half), targets.end()},
       first_part + static_cast<int>(half), out);
}

}  // namespace

StatusOr<std::vector<int>> partition_sizes(const CommGraph& graph,
                                           const std::vector<int>& targets) {
  int total = 0;
  for (int t : targets) {
    if (t < 0) {
      return make_error(ErrorCode::kInvalidArgument, "negative part size");
    }
    total += t;
  }
  if (total != graph.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "part sizes must sum to the vertex count");
  }
  if (targets.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no parts requested");
  }
  std::vector<int> out(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> all(static_cast<std::size_t>(graph.size()));
  std::iota(all.begin(), all.end(), 0);
  kway(graph, all, targets, 0, &out);
  return out;
}

StatusOr<std::vector<int>> partition_subset(const CommGraph& graph,
                                            const std::vector<int>& vertices,
                                            const std::vector<int>& targets) {
  int total = 0;
  for (int t : targets) {
    if (t < 0) {
      return make_error(ErrorCode::kInvalidArgument, "negative part size");
    }
    total += t;
  }
  if (total != static_cast<int>(vertices.size()) || targets.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "part sizes must sum to the subset size");
  }
  std::vector<int> global(static_cast<std::size_t>(graph.size()), -1);
  kway(graph, vertices, targets, 0, &global);
  std::vector<int> out(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    out[i] = global[static_cast<std::size_t>(vertices[i])];
  }
  return out;
}

StatusOr<std::vector<int>> partition(const CommGraph& graph, int parts) {
  if (parts <= 0) {
    return make_error(ErrorCode::kInvalidArgument, "parts must be positive");
  }
  const int n = graph.size();
  std::vector<int> targets(static_cast<std::size_t>(parts), n / parts);
  for (int i = 0; i < n % parts; ++i) ++targets[static_cast<std::size_t>(i)];
  return partition_sizes(graph, targets);
}

}  // namespace flexio::placement
