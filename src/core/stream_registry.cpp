#include "core/stream_registry.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <set>
#include <utility>

#include "core/wire.h"

namespace flexio {

namespace {

using Clock = std::chrono::steady_clock;

// Per-stream series beyond this collapse into flexio.stream.*.other
// (metrics::Family rollover) so a 1k-stream process keeps a bounded
// registry. docs/OBSERVABILITY.md lists the names.
constexpr std::size_t kMaxStreamMetricLabels = 32;

metrics::GaugeFamily& queued_bytes_family() {
  static auto* f = new metrics::GaugeFamily("flexio.stream.queued_bytes",
                                            kMaxStreamMetricLabels);
  return *f;
}

metrics::GaugeFamily& credits_family() {
  static auto* f =
      new metrics::GaugeFamily("flexio.stream.credits", kMaxStreamMetricLabels);
  return *f;
}

metrics::CounterFamily& stalls_family() {
  static auto* f =
      new metrics::CounterFamily("flexio.stream.stalls", kMaxStreamMetricLabels);
  return *f;
}

metrics::Counter& orphan_counter() {
  static metrics::Counter& c = metrics::counter("flexio.stream.orphan_frames");
  return c;
}

}  // namespace

/// Per-stream outbound flow control, shared between the channel and every
/// frame it queued: frames release credit on send completion even if their
/// channel detached mid-flight (crash teardown must not strand credits).
struct CreditState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t cap = 0;
  std::size_t queued = 0;       // bytes in DRR sub-queues, all destinations
  Status async_error;           // first kAsync send failure, latched
  metrics::Gauge* queued_gauge = nullptr;
  metrics::Gauge* credits_gauge = nullptr;
};

/// Completion latch for a synchronous mux send (the caller blocks until the
/// drainer has pushed the frame through the underlying link).
struct MuxWaiter {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  Status st;
};

/// One shared Endpoint plus the demux and scheduling state multiplexing
/// every attached stream over it. Created and keyed by the registry; kept
/// alive by the channels attached to it.
class SharedEndpoint : public std::enable_shared_from_this<SharedEndpoint> {
 public:
  SharedEndpoint(StreamRegistry* registry,
                 std::shared_ptr<evpath::Endpoint> ep, std::size_t quantum)
      : registry_(registry), ep_(std::move(ep)), quantum_(quantum) {}

  const std::string& name() const { return ep_->name(); }
  const evpath::Location& location() const { return ep_->location(); }

  Status attach_stream(std::uint64_t sid) {
    std::lock_guard<std::mutex> lock(mux_mutex_);
    if (!inboxes_.try_emplace(sid).second) {
      return make_error(ErrorCode::kAlreadyExists,
                        "stream already attached to " + ep_->name());
    }
    return Status::ok();
  }

  void detach_stream(std::uint64_t sid) {
    {
      std::lock_guard<std::mutex> lock(mux_mutex_);
      inboxes_.erase(sid);  // pending undelivered frames drop with it
    }
    mux_cv_.notify_all();
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    for (auto& [dest, users] : dest_users_) users.erase(sid);
  }

  /// Queue one framed message for `dest` under the stream's credit. Blocks
  /// (bounded by `deadline`) while the stream is over its credit cap; a
  /// frame bigger than the whole cap is admitted alone, queue-empty.
  Status enqueue(std::uint64_t sid, const std::string& dest,
                 std::vector<std::byte> bytes, evpath::SendMode mode,
                 std::shared_ptr<CreditState> credit,
                 std::shared_ptr<MuxWaiter> waiter,
                 metrics::Counter* stalls, Clock::time_point deadline) {
    const std::size_t size = bytes.size();
    {
      std::unique_lock<std::mutex> lock(credit->mutex);
      const bool oversize = size > credit->cap;
      bool stalled = false;
      while (credit->queued + size > credit->cap &&
             !(oversize && credit->queued == 0)) {
        if (!stalled && stalls != nullptr) {
          stalls->inc();
          stalled = true;
        }
        if (credit->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
            credit->queued + size > credit->cap &&
            !(oversize && credit->queued == 0)) {
          return make_error(ErrorCode::kTimeout,
                            "stream credit exhausted sending to " + dest);
        }
      }
      credit->queued += size;
      if (credit->queued_gauge != nullptr) {
        credit->queued_gauge->add(static_cast<std::int64_t>(size));
      }
      if (credit->credits_gauge != nullptr) {
        credit->credits_gauge->sub(static_cast<std::int64_t>(size));
      }
    }

    std::shared_ptr<Lane> lane;
    {
      std::lock_guard<std::mutex> lock(lanes_mutex_);
      auto& slot = lanes_[dest];
      if (slot == nullptr) slot = std::make_shared<Lane>();
      lane = slot;
      dest_users_[dest].insert(sid);
    }
    bool start_drainer = false;
    {
      std::lock_guard<std::mutex> lock(lane->mutex);
      SubQueue& sq = lane->subs[sid];
      sq.q.push_back(PendingFrame{std::move(bytes), mode, std::move(waiter),
                                  std::move(credit), size});
      if (!sq.in_active) {
        sq.in_active = true;
        lane->active.push_back(sid);
      }
      if (!lane->draining) {
        lane->draining = true;
        start_drainer = true;
      }
    }
    if (start_drainer) {
      auto self = shared_from_this();
      registry_->drain_pool().submit(
          [self, lane, dest] { self->drain_lane(dest, lane); });
    }
    return Status::ok();
  }

  /// Logical close: bookkeeping only. The underlying link must outlive any
  /// one stream -- closing it would EOS every link-mate (the demux fans EOS
  /// out to all inboxes) and leave the closed channel cached in the
  /// endpoint's link table, failing the next link-mate send with "channel
  /// closed". The peer stream learns about this stream's close from the
  /// protocol's explicit Close frame; the link itself closes when the last
  /// channel detaches and the shared endpoint is destroyed.
  Status close_to(std::uint64_t sid, const std::string& dest) {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    auto it = dest_users_.find(dest);
    if (it == dest_users_.end() || it->second.erase(sid) == 0) {
      return make_error(ErrorCode::kNotFound, "no link to " + dest);
    }
    if (it->second.empty()) dest_users_.erase(it);
    return Status::ok();
  }

  void drop_link(const std::string& to) { ep_->drop_link(to); }

  StatusOr<evpath::TransportKind> transport_to(const std::string& to) const {
    return ep_->transport_to(to);
  }

  /// Cooperative demux pump. The first receiver to find its inbox empty
  /// becomes the pump: it drains the underlying endpoint for everyone,
  /// routing each raw frame to its stream's inbox by mux prefix, until its
  /// own message shows up or its deadline passes. Other receivers park on
  /// the condvar and are woken per routed frame. Exactly one pump runs at
  /// a time, so routing happens on one thread and an inbox can only gain
  /// messages while its owner is awake to check it (no lost wakeups).
  Status recv(std::uint64_t sid, const std::string& from, evpath::Message* out,
              std::chrono::nanoseconds timeout) {
    const Clock::time_point deadline = Clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mux_mutex_);
    for (;;) {
      auto it = inboxes_.find(sid);
      if (it == inboxes_.end()) {
        return make_error(ErrorCode::kInternal,
                          "stream detached from " + ep_->name());
      }
      if (take(&it->second, from, out)) return Status::ok();
      const Clock::time_point now = Clock::now();
      if (now >= deadline) {
        return make_error(ErrorCode::kTimeout,
                          "recv timed out on " + ep_->name() +
                              (from.empty() ? "" : " waiting for " + from));
      }
      if (!pumping_) {
        pumping_ = true;
        lock.unlock();
        evpath::Message raw;
        const Status st = ep_->recv(&raw, deadline - now);
        lock.lock();
        pumping_ = false;
        if (st.is_ok()) route(std::move(raw));
        mux_cv_.notify_all();
        if (!st.is_ok() && st.code() != ErrorCode::kTimeout) return st;
        continue;
      }
      mux_cv_.wait_until(lock, deadline);
    }
  }

 private:
  struct PendingFrame {
    std::vector<std::byte> bytes;  // mux prefix + wire frame, owned
    evpath::SendMode mode;
    std::shared_ptr<MuxWaiter> waiter;  // non-null for sync sends
    std::shared_ptr<CreditState> credit;
    std::size_t size = 0;
  };
  struct SubQueue {
    std::deque<PendingFrame> q;
    std::size_t deficit = 0;
    bool in_active = false;
  };
  /// Per-destination send lane: sub-queues per stream, drained one frame
  /// at a time under deficit round-robin by a single drainer task, so
  /// frames of one (stream, dest) pair stay FIFO and a fat stream yields
  /// the link after each quantum's worth of bytes.
  struct Lane {
    std::mutex mutex;
    std::map<std::uint64_t, SubQueue> subs;
    std::deque<std::uint64_t> active;
    bool draining = false;
  };

  static bool take(std::deque<evpath::Message>* box, const std::string& from,
                   evpath::Message* out) {
    for (auto it = box->begin(); it != box->end(); ++it) {
      if (from.empty() || it->from == from) {
        *out = std::move(*it);
        box->erase(it);
        return true;
      }
    }
    return false;
  }

  /// Route one raw frame under mux_mutex_. EOS is a link-level event and
  /// fans out to every attached stream; data frames without a routable
  /// prefix (legacy format, or a stream nobody here attached) are counted
  /// and dropped -- a crashed stream's in-flight data must not wedge its
  /// neighbours.
  void route(evpath::Message raw) {
    if (raw.eos) {
      for (auto& [sid, box] : inboxes_) box.push_back(raw);
      return;
    }
    const auto mux = wire::decode_mux(ByteView(raw.payload));
    if (!mux.is_ok() || mux.value().stream_id == 0) {
      orphan_counter().inc();
      return;
    }
    const auto it = inboxes_.find(mux.value().stream_id);
    if (it == inboxes_.end()) {
      orphan_counter().inc();
      return;
    }
    const std::size_t prefix_len = raw.payload.size() - mux.value().inner.size();
    raw.payload.erase(raw.payload.begin(),
                      raw.payload.begin() + static_cast<std::ptrdiff_t>(prefix_len));
    it->second.push_back(std::move(raw));
  }

  void drain_lane(const std::string& dest, std::shared_ptr<Lane> lane) {
    std::unique_lock<std::mutex> lock(lane->mutex);
    for (;;) {
      if (lane->active.empty()) {
        lane->draining = false;
        return;
      }
      const std::uint64_t sid = lane->active.front();
      SubQueue& sq = lane->subs[sid];
      if (sq.q.empty()) {
        lane->active.pop_front();
        sq.in_active = false;
        sq.deficit = 0;
        continue;
      }
      if (sq.deficit < sq.q.front().size) {
        sq.deficit += quantum_;
        lane->active.push_back(sid);
        lane->active.pop_front();
        continue;
      }
      PendingFrame frame = std::move(sq.q.front());
      sq.q.pop_front();
      sq.deficit -= frame.size;
      if (sq.q.empty()) {
        lane->active.pop_front();
        sq.in_active = false;
        sq.deficit = 0;
      }
      lock.unlock();
      const Status st = ep_->send(dest, ByteView(frame.bytes), frame.mode);
      complete(frame, st);
      lock.lock();
    }
  }

  static void complete(PendingFrame& frame, const Status& st) {
    {
      std::lock_guard<std::mutex> lock(frame.credit->mutex);
      frame.credit->queued -= frame.size;
      if (!st.is_ok() && frame.waiter == nullptr &&
          frame.credit->async_error.is_ok()) {
        frame.credit->async_error = st;
      }
      if (frame.credit->queued_gauge != nullptr) {
        frame.credit->queued_gauge->sub(static_cast<std::int64_t>(frame.size));
      }
      if (frame.credit->credits_gauge != nullptr) {
        frame.credit->credits_gauge->add(static_cast<std::int64_t>(frame.size));
      }
    }
    frame.credit->cv.notify_all();
    if (frame.waiter != nullptr) {
      std::lock_guard<std::mutex> lock(frame.waiter->mutex);
      frame.waiter->st = st;
      frame.waiter->done = true;
      frame.waiter->cv.notify_all();
    }
  }

  StreamRegistry* registry_;
  std::shared_ptr<evpath::Endpoint> ep_;
  const std::size_t quantum_;

  // Demux side: per-stream inboxes plus the single-pump protocol state.
  // Inbox growth is bounded by the stream protocol's own pacing (a writer
  // sends data only against a step's ReadRequest), not by a local cap.
  std::mutex mux_mutex_;
  std::condition_variable mux_cv_;
  bool pumping_ = false;
  std::map<std::uint64_t, std::deque<evpath::Message>> inboxes_;

  // Send side: lanes keyed by destination, plus which streams ever sent to
  // each destination (close_to refcounting).
  std::mutex lanes_mutex_;
  std::map<std::string, std::shared_ptr<Lane>> lanes_;
  std::map<std::string, std::set<std::uint64_t>> dest_users_;
};

// ---------------------------------------------------------------------------
// StreamChannel

StreamChannel::~StreamChannel() {
  if (shared_ != nullptr) {
    shared_->detach_stream(stream_id_);
    // Return credits before detach_shared: the last detach retires the
    // stream's metric families, and the accounting should land on the
    // live series, not on a retired (leaked) object.
    if (credits_gauge_ != nullptr) {
      credits_gauge_->sub(static_cast<std::int64_t>(opts_.credit_bytes));
    }
    if (registry_ != nullptr) registry_->detach_shared(stream_id_);
    shared_.reset();
  }
  own_.reset();
}

std::string StreamChannel::peer_name(const std::string& stream,
                                     const std::string& program,
                                     int rank) const {
  if (shared()) return StreamRegistry::shared_endpoint_name(program, rank);
  return StreamRegistry::dedicated_endpoint_name(stream, program, rank);
}

Status StreamChannel::send(const std::string& to, ByteView msg,
                           evpath::SendMode mode) {
  if (own_ != nullptr) return own_->send(to, msg, mode);
  std::vector<std::byte> bytes;
  bytes.reserve(prefix_.size() + msg.size());
  bytes.insert(bytes.end(), prefix_.begin(), prefix_.end());
  bytes.insert(bytes.end(), msg.begin(), msg.end());
  return send_mux(to, std::move(bytes), mode);
}

Status StreamChannel::send_iov(const std::string& to,
                               std::span<const ByteView> frags,
                               evpath::SendMode mode) {
  if (own_ != nullptr) return own_->send_iov(to, frags, mode);
  // The shared path coalesces into an owned frame: queued frames outlive
  // the call, so borrowed fragment buffers cannot back them. One copy is
  // the price of the shared link table (DESIGN.md "Stream multiplexing").
  std::size_t total = prefix_.size();
  for (const ByteView f : frags) total += f.size();
  std::vector<std::byte> bytes;
  bytes.reserve(total);
  bytes.insert(bytes.end(), prefix_.begin(), prefix_.end());
  for (const ByteView f : frags) bytes.insert(bytes.end(), f.begin(), f.end());
  return send_mux(to, std::move(bytes), mode);
}

Status StreamChannel::send_mux(const std::string& to,
                               std::vector<std::byte> frame,
                               evpath::SendMode mode) {
  const Clock::time_point deadline = Clock::now() + opts_.timeout;
  if (mode == evpath::SendMode::kAsync) {
    {
      // Surface (and clear) the first failure of an earlier async send;
      // fire-and-forget callers otherwise never see their stream die.
      std::lock_guard<std::mutex> lock(credit_->mutex);
      if (!credit_->async_error.is_ok()) {
        return std::exchange(credit_->async_error, Status::ok());
      }
    }
    return shared_->enqueue(stream_id_, to, std::move(frame), mode, credit_,
                            nullptr, stalls_counter_, deadline);
  }
  auto waiter = std::make_shared<MuxWaiter>();
  FLEXIO_RETURN_IF_ERROR(shared_->enqueue(stream_id_, to, std::move(frame),
                                          mode, credit_, waiter,
                                          stalls_counter_, deadline));
  std::unique_lock<std::mutex> lock(waiter->mutex);
  if (!waiter->cv.wait_until(lock, deadline, [&] { return waiter->done; })) {
    return make_error(ErrorCode::kTimeout, "mux send to " + to + " timed out");
  }
  return waiter->st;
}

Status StreamChannel::close_to(const std::string& to) {
  if (own_ != nullptr) return own_->close_to(to);
  FLEXIO_RETURN_IF_ERROR(flush(opts_.timeout));
  return shared_->close_to(stream_id_, to);
}

void StreamChannel::drop_link(const std::string& to) {
  if (own_ != nullptr) {
    own_->drop_link(to);
    return;
  }
  shared_->drop_link(to);
}

Status StreamChannel::recv(evpath::Message* out,
                           std::chrono::nanoseconds timeout) {
  if (own_ != nullptr) return own_->recv(out, timeout);
  return shared_->recv(stream_id_, std::string(), out, timeout);
}

Status StreamChannel::recv_from(const std::string& from, evpath::Message* out,
                                std::chrono::nanoseconds timeout) {
  if (own_ != nullptr) return own_->recv_from(from, out, timeout);
  return shared_->recv(stream_id_, from, out, timeout);
}

StatusOr<evpath::TransportKind> StreamChannel::transport_to(
    const std::string& to) const {
  if (own_ != nullptr) return own_->transport_to(to);
  return shared_->transport_to(to);
}

Status StreamChannel::flush(std::chrono::nanoseconds timeout) {
  if (own_ != nullptr) return Status::ok();
  std::unique_lock<std::mutex> lock(credit_->mutex);
  if (!credit_->cv.wait_for(lock, timeout,
                            [&] { return credit_->queued == 0; })) {
    return make_error(ErrorCode::kTimeout,
                      "flush timed out with " +
                          std::to_string(credit_->queued) + " bytes queued");
  }
  return std::exchange(credit_->async_error, Status::ok());
}

std::size_t StreamChannel::queued_bytes() const {
  if (own_ != nullptr) return 0;
  std::lock_guard<std::mutex> lock(credit_->mutex);
  return credit_->queued;
}

// ---------------------------------------------------------------------------
// StreamRegistry

StreamRegistry::~StreamRegistry() = default;

StatusOr<std::shared_ptr<StreamChannel>> StreamRegistry::attach(
    const std::string& stream, const std::string& program, int rank,
    evpath::Location location, evpath::LinkOptions link_options,
    const MuxOptions& opts) {
  auto ch = std::shared_ptr<StreamChannel>(new StreamChannel());
  ch->stream_ = stream;
  ch->stream_id_ = wire::stream_id_hash(stream);
  ch->opts_ = opts;
  ch->registry_ = this;

  if (!opts.shared_links) {
    auto ep = bus_->create_endpoint(
        dedicated_endpoint_name(stream, program, rank), location, link_options);
    if (!ep.is_ok()) return ep.status();
    ch->own_ = std::move(ep).value();
    ch->name_ = ch->own_->name();
    return ch;
  }

  const std::string key = shared_endpoint_name(program, rank);
  std::shared_ptr<SharedEndpoint> se;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [sid_it, inserted] = stream_ids_.try_emplace(ch->stream_id_, stream, 0);
    if (!inserted && sid_it->second.first != stream) {
      return make_error(ErrorCode::kAlreadyExists,
                        "stream id collision: '" + stream + "' vs '" +
                            sid_it->second.first + "'");
    }
    auto cleanup_sid = [&] {
      if (sid_it->second.second == 0) stream_ids_.erase(sid_it);
    };
    if (auto it = endpoints_.find(key); it != endpoints_.end()) {
      se = it->second.lock();
    }
    if (se == nullptr) {
      auto ep = bus_->create_endpoint(key, location, link_options);
      if (!ep.is_ok()) {
        cleanup_sid();
        return ep.status();
      }
      se = std::make_shared<SharedEndpoint>(this, std::move(ep).value(),
                                            opts.drr_quantum_bytes);
      endpoints_[key] = se;
    } else if (!(se->location() == location)) {
      cleanup_sid();
      return make_error(ErrorCode::kInvalidArgument,
                        "shared endpoint " + key +
                            " already exists at a different location");
    }
    const Status st = se->attach_stream(ch->stream_id_);
    if (!st.is_ok()) {
      cleanup_sid();
      return st;
    }
    sid_it->second.second += 1;
    ++attached_streams_;
  }

  ch->shared_ = std::move(se);
  ch->name_ = key;
  ch->prefix_ = wire::encode_mux_prefix(ch->stream_id_);
  ch->queued_gauge_ = &queued_bytes_family().with(stream);
  ch->credits_gauge_ = &credits_family().with(stream);
  ch->stalls_counter_ = &stalls_family().with(stream);
  auto credit = std::make_shared<CreditState>();
  credit->cap = opts.credit_bytes;
  credit->queued_gauge = ch->queued_gauge_;
  credit->credits_gauge = ch->credits_gauge_;
  ch->credits_gauge_->add(static_cast<std::int64_t>(opts.credit_bytes));
  ch->credit_ = std::move(credit);
  return ch;
}

std::size_t StreamRegistry::shared_endpoint_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& [name, weak] : endpoints_) {
    if (!weak.expired()) ++live;
  }
  return live;
}

std::size_t StreamRegistry::attached_stream_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attached_streams_;
}

util::WorkPool& StreamRegistry::drain_pool() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) pool_ = std::make_unique<util::WorkPool>(2);
  return *pool_;
}

void StreamRegistry::detach_shared(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = stream_ids_.find(stream_id);
  if (it != stream_ids_.end() && --it->second.second <= 0) {
    // Last channel of this stream in the process: retire its per-stream
    // series so scrapes stop showing the closed stream as live, and its
    // cardinality slots free up for future streams. Cached references
    // (CreditState, in-flight sends) stay valid -- retire leaks the
    // metric objects by design.
    const std::string& stream = it->second.first;
    queued_bytes_family().retire(stream);
    credits_family().retire(stream);
    stalls_family().retire(stream);
    stream_ids_.erase(it);
  }
  if (attached_streams_ > 0) --attached_streams_;
}

}  // namespace flexio
