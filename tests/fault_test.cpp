// Fault-injection tests: scripted faults from the torture harness driven
// through the endpoint layer and the full stream runtime. Covers the
// timeout-and-retry contract (paper Section II.E), clean Status surfacing
// for lost handshake steps, handshake-cache invalidation across a peer
// restart, and End-of-Stream delivery via wire::Close's final step id.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "harness/fault_plan.h"
#include "harness/stress_driver.h"

namespace flexio::torture {
namespace {

using namespace std::chrono_literals;
using adios::Box;
using serial::DataType;

std::vector<std::byte> make_payload(std::size_t n) {
  std::vector<std::byte> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::byte>(i * 7 + 3);
  }
  return payload;
}

/// Two endpoints on different nodes => the bus builds an RDMA link pair.
struct RdmaPair {
  std::shared_ptr<evpath::Endpoint> tx;
  std::shared_ptr<evpath::Endpoint> rx;
};

RdmaPair make_rdma_pair(evpath::MessageBus* bus) {
  auto tx = bus->create_endpoint("fault.tx", evpath::Location{0, 0});
  auto rx = bus->create_endpoint("fault.rx", evpath::Location{1, 0});
  FLEXIO_CHECK(tx.is_ok() && rx.is_ok());
  return RdmaPair{tx.value(), rx.value()};
}

TEST(FaultTest, PutMessageFailsOnceIsRetriedAndSucceeds) {
  evpath::MessageBus bus;
  RdmaPair pair = make_rdma_pair(&bus);
  auto plan = FaultPlan::parse("fail putmsg nth=1 code=unavailable\n");
  ASSERT_TRUE(plan.is_ok());
  plan.value().install(&bus.fabric());

  const auto payload = make_payload(64);  // eager path
  ASSERT_TRUE(pair.tx->send("fault.rx", ByteView(payload)).is_ok());
  ASSERT_EQ(pair.tx->transport_to("fault.rx").value(),
            evpath::TransportKind::kRdma);

  evpath::Message msg;
  ASSERT_TRUE(pair.rx->recv(&msg, 5s).is_ok());
  EXPECT_EQ(msg.payload, payload);
  // The injected kUnavailable was absorbed by timeout-and-retry, visibly.
  EXPECT_GE(pair.tx->outbound_stats("fault.rx").retries, 1u);
  EXPECT_EQ(plan.value().faults_fired(), 1u);

  // Exactly one delivery: nothing further is pending.
  EXPECT_EQ(pair.rx->recv(&msg, 50ms).code(), ErrorCode::kTimeout);
}

TEST(FaultTest, RendezvousGetFailsOnceIsRetried) {
  evpath::MessageBus bus;
  RdmaPair pair = make_rdma_pair(&bus);
  // Fail the receiver-directed Get that fetches the rendezvous payload.
  auto plan = FaultPlan::parse("fail get nth=1 code=timeout\n");
  ASSERT_TRUE(plan.is_ok());
  plan.value().install(&bus.fabric());

  const auto payload = make_payload(16384);  // > eager threshold
  ASSERT_TRUE(pair.tx->send("fault.rx", ByteView(payload)).is_ok());
  evpath::Message msg;
  ASSERT_TRUE(pair.rx->recv(&msg, 5s).is_ok());
  EXPECT_EQ(msg.payload, payload);
  EXPECT_EQ(plan.value().faults_fired(), 1u);
}

TEST(FaultTest, DuplicatedFramesAreDeduplicated) {
  evpath::MessageBus bus;
  RdmaPair pair = make_rdma_pair(&bus);
  // Duplicate every eager frame; the receive link's sequence dedup must
  // deliver each message exactly once, in order.
  auto plan = FaultPlan::parse("dup putmsg nth=1 times=1000\n");
  ASSERT_TRUE(plan.is_ok());
  plan.value().install(&bus.fabric());

  for (int i = 0; i < 20; ++i) {
    std::vector<std::byte> payload{std::byte{static_cast<unsigned char>(i)}};
    ASSERT_TRUE(pair.tx->send("fault.rx", ByteView(payload)).is_ok());
  }
  for (int i = 0; i < 20; ++i) {
    evpath::Message msg;
    ASSERT_TRUE(pair.rx->recv(&msg, 5s).is_ok());
    ASSERT_EQ(msg.payload.size(), 1u);
    EXPECT_EQ(msg.payload[0], std::byte{static_cast<unsigned char>(i)});
  }
  evpath::Message extra;
  EXPECT_EQ(pair.rx->recv(&extra, 50ms).code(), ErrorCode::kTimeout);
}

TEST(FaultTest, DroppedHandshakeStepSurfacesTimeoutNotHang) {
  // Silently drop the writer's first StepAnnounce (occurrence 2 on the
  // writer->reader pair; occurrence 1 is the OpenReply). Both sides must
  // fail with a clean kTimeout within their configured timeout instead of
  // hanging.
  auto plan = FaultPlan::parse("drop putmsg nth=2 from=*sim.0>*\n");
  ASSERT_TRUE(plan.is_ok());
  StressConfig cfg;
  cfg.writers = 1;
  cfg.readers = 1;
  cfg.steps = 2;
  cfg.caching = "none";
  cfg.placement = PlacementMode::kRdma;
  cfg.stream = "dropped_announce";
  cfg.timeout_ms = 2000;
  cfg.faults = &plan.value();
  const auto start = std::chrono::steady_clock::now();
  const StressResult result = run_stress(cfg);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.code(), ErrorCode::kTimeout)
      << result.status.to_string();
  EXPECT_GE(plan.value().faults_fired(), 1u);
  // "Not hang": everything unwound within a few timeout periods.
  EXPECT_LT(elapsed, 15s);
}

xml::MethodConfig caching_method(const std::string& params) {
  xml::MethodConfig m;
  m.method = "FLEXIO";
  m.timeout_ms = 20000;
  FLEXIO_CHECK(xml::apply_method_params(params, &m).is_ok());
  return m;
}

/// One caching=all writer/reader session on `rt`; returns the writer
/// coordinator's monitor report as delivered to the reader at close.
std::optional<wire::MonitorReport> run_caching_session(Runtime& rt,
                                                       const std::string& stream,
                                                       int steps) {
  Program sim("sim", 1);
  Program viz("viz", 1);
  std::optional<wire::MonitorReport> report;
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = stream;
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = caching_method("caching=all");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok()) << w.status().to_string();
    std::vector<double> data(8, 1.0);
    for (int s = 0; s < steps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("v", DataType::kDouble,
                                                      {8}, Box{{0}, {8}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = stream;
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{1, 0}};
    spec.method = caching_method("caching=all");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    std::vector<double> out(8);
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      ASSERT_TRUE(r.value()
                      ->schedule_read("v", Box{{0}, {8}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(out))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      ASSERT_TRUE(r.value()->end_step().is_ok());
    }
    report = r.value()->writer_report();
  });
  writer.join();
  reader.join();
  return report;
}

TEST(FaultTest, CachingAllRehandshakesAfterPeerRestart) {
  // Session 1 establishes and caches the handshake; "restarting" both peers
  // (new stream objects, same runtime, same stream name) must not reuse the
  // stale cache: the new session performs its own single handshake.
  Runtime rt;
  const int kSteps = 4;
  for (int session = 0; session < 2; ++session) {
    auto report = run_caching_session(rt, "restart", kSteps);
    ASSERT_TRUE(report.has_value()) << "session " << session;
    EXPECT_EQ(report->handshakes_performed, 1u) << "session " << session;
    EXPECT_EQ(report->handshakes_skipped,
              static_cast<std::uint64_t>(kSteps - 1))
        << "session " << session;
  }
}

// wire::Close carries the final step id, so the reader knows the stream end
// even when cached handshakes skip the per-step announce exchange. EOS must
// surface exactly once per begin_step sequence -- after the last data step,
// and sticky on every later call.
class EosTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EosTest, CloseDeliversEosExactlyOnce) {
  const std::string caching = GetParam();
  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  const int kSteps = 3;
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "eos_" + caching;
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    // async writes: Close can race the final data step's delivery.
    spec.method = caching_method("caching=" + caching + "; async=yes");
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok()) << w.status().to_string();
    std::vector<double> data(8);
    for (int s = 0; s < kSteps; ++s) {
      std::fill(data.begin(), data.end(), static_cast<double>(s));
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("v", DataType::kDouble,
                                                      {8}, Box{{0}, {8}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "eos_" + caching;
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{1, 0}};
    spec.method = caching_method("caching=" + caching + "; async=yes");
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    std::vector<double> out(8);
    int steps_seen = 0;
    int eos_seen = 0;
    for (int attempt = 0; attempt < kSteps + 3; ++attempt) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) {
        ++eos_seen;
        continue;  // EOS must be sticky, not followed by more steps
      }
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      ASSERT_EQ(eos_seen, 0) << "data step delivered after End-of-Stream";
      ASSERT_EQ(step.value(), steps_seen);
      ASSERT_TRUE(r.value()
                      ->schedule_read("v", Box{{0}, {8}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(out))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      EXPECT_DOUBLE_EQ(out[0], static_cast<double>(steps_seen));
      ASSERT_TRUE(r.value()->end_step().is_ok());
      ++steps_seen;
    }
    // Every announced step arrived before EOS, exactly once each, and every
    // later begin_step kept returning kEndOfStream.
    EXPECT_EQ(steps_seen, kSteps);
    EXPECT_EQ(eos_seen, 3);
  });
  writer.join();
  reader.join();
}

INSTANTIATE_TEST_SUITE_P(AllCachingModes, EosTest,
                         ::testing::Values("none", "local", "all"),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

}  // namespace
}  // namespace flexio::torture
