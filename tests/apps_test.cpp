// Tests for the application workloads, analytics kernels, the volume
// renderer, and the coupled performance model (including the paper-shape
// assertions that anchor Figures 6-9).
#include <gtest/gtest.h>

#include <filesystem>
#include <cmath>
#include <fstream>
#include <set>

#include "apps/coupled_model.h"
#include "apps/gts.h"
#include "apps/gts_analytics.h"
#include "apps/s3d.h"
#include "apps/scenarios.h"
#include "apps/volume_renderer.h"

namespace flexio::apps {
namespace {

TEST(GtsRankTest, DeterministicInit) {
  GtsRank a(3, 100), b(3, 100), c(4, 100);
  EXPECT_EQ(a.zion(), b.zion());
  EXPECT_NE(a.zion(), c.zion());
  EXPECT_EQ(a.zion_count(), 100u);
  EXPECT_EQ(a.electron_count(), 100u);
}

TEST(GtsRankTest, ParticleCountChangesAcrossSteps) {
  GtsRank rank(0, 1000);
  std::set<std::uint64_t> counts;
  for (int s = 0; s < 10; ++s) {
    rank.advance();
    counts.insert(rank.zion_count());
  }
  // Migration must actually change the output size (the Figure 4 property).
  EXPECT_GT(counts.size(), 1u);
  // But stay in a sane band.
  for (std::uint64_t n : counts) {
    EXPECT_GT(n, 800u);
    EXPECT_LT(n, 1200u);
  }
}

TEST(GtsRankTest, MetadataTracksCounts) {
  GtsRank rank(0, 50);
  const auto meta = rank.zion_meta();
  EXPECT_EQ(meta.name, "zion");
  EXPECT_EQ(meta.block.count[0], rank.zion_count());
  EXPECT_EQ(meta.block.count[1], kGtsAttrs);
  EXPECT_TRUE(meta.validate().is_ok());
  EXPECT_EQ(meta.payload_bytes(), rank.zion().size() * sizeof(double));
}

TEST(GtsRankTest, ParticleIdsUnique) {
  GtsRank a(0, 200);
  GtsRank b(1, 200);
  std::set<double> ids;
  for (std::uint64_t p = 0; p < a.zion_count(); ++p) {
    ids.insert(a.zion()[p * kGtsAttrs + kId]);
  }
  for (std::uint64_t p = 0; p < b.zion_count(); ++p) {
    ids.insert(b.zion()[p * kGtsAttrs + kId]);
  }
  EXPECT_EQ(ids.size(), a.zion_count() + b.zion_count());
}

TEST(GtsAnalyticsTest, QueryKeepsConfiguredFraction) {
  GtsRank rank(0, 5000);
  const auto result = analyze_particles(
      std::span<const double>(rank.zion()));
  EXPECT_EQ(result.input_particles, 5000u);
  // Paper: "the query result is ~20% of the original output particles".
  EXPECT_NEAR(static_cast<double>(result.selected_particles) / 5000.0, 0.2,
              0.02);
  EXPECT_EQ(result.distribution.total(), 5000u);
  EXPECT_EQ(result.vpar_hist.total(), result.selected_particles);
  EXPECT_EQ(result.vspace_hist.total(), result.selected_particles);
}

TEST(GtsAnalyticsTest, QuerySelectsFastestParticles) {
  GtsRank rank(1, 2000);
  const auto result = analyze_particles(std::span<const double>(rank.zion()));
  const double threshold =
      query_threshold(std::span<const double>(rank.zion()), 0.2);
  for (std::size_t p = 0; p < result.selected_particles; ++p) {
    const double* row = result.query.data() + p * kGtsAttrs;
    const double v =
        std::sqrt(row[kVPar] * row[kVPar] + row[kVPerp] * row[kVPerp]);
    EXPECT_GE(v, threshold - 1e-12);
  }
}

TEST(GtsAnalyticsTest, HistogramMerge) {
  Histogram1D a{0, 1, {1, 2, 3}};
  Histogram1D b{0, 1, {10, 20, 30}};
  ASSERT_TRUE(a.merge(b).is_ok());
  EXPECT_EQ(a.bins, (std::vector<std::uint64_t>{11, 22, 33}));
  Histogram1D wrong{0, 2, {1, 2, 3}};
  EXPECT_FALSE(a.merge(wrong).is_ok());
  Histogram2D h2{0, 1, 0, 1, 2, 2, {1, 2, 3, 4}};
  Histogram2D g2{0, 1, 0, 1, 2, 2, {1, 1, 1, 1}};
  ASSERT_TRUE(h2.merge(g2).is_ok());
  EXPECT_EQ(h2.total(), 14u);
}

TEST(GtsAnalyticsTest, WritesHistogramFiles) {
  GtsRank rank(0, 500);
  const auto result = analyze_particles(std::span<const double>(rank.zion()));
  const std::string prefix = ::testing::TempDir() + "/gts_hist";
  ASSERT_TRUE(write_histograms(result, prefix).is_ok());
  for (const char* suffix : {".dist.csv", ".v1d.csv", ".v2d.csv"}) {
    std::ifstream in(prefix + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::string header;
    std::getline(in, header);
    EXPECT_FALSE(header.empty());
  }
}

TEST(S3dRankTest, DecompositionCoversGlobal) {
  const adios::Dims global{12, 10, 8};
  const auto dims = s3d_decompose(8);
  EXPECT_EQ(dims[0] * dims[1] * dims[2], 8);
  std::uint64_t covered = 0;
  for (int r = 0; r < 8; ++r) {
    S3dRank rank(global, dims, r);
    covered += rank.block().elements();
    EXPECT_TRUE(rank.species_meta(0).validate().is_ok());
  }
  EXPECT_EQ(covered, adios::volume(global));
}

TEST(S3dRankTest, OutputsMatchPaperProfile) {
  // 22 species, ~1.7 MB per process: with a 28^3/rank grid the paper's
  // size falls out of 22 x 28^3... choose block so bytes ~ 1.7 MB.
  const adios::Dims global{22, 22, 20};  // one rank: 9680 points
  S3dRank rank(global, {1, 1, 1}, 0);
  std::uint64_t bytes = 0;
  for (int s = 0; s < kS3dSpecies; ++s) {
    bytes += rank.species_meta(s).payload_bytes();
  }
  EXPECT_NEAR(static_cast<double>(bytes), 1.7e6, 0.1e6);
}

TEST(S3dRankTest, AdvanceKeepsFieldsBounded) {
  S3dRank rank({8, 8, 8}, {1, 1, 1}, 0);
  for (int i = 0; i < 5; ++i) rank.advance();
  for (double v : rank.species(3)) {
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_EQ(S3dRank::species_name(0), "H2");
  EXPECT_EQ(S3dRank::species_name(kS3dSpecies - 1), "N2");
}

TEST(VolumeRendererTest, SlabCompositingMatchesSingleRender) {
  // Rendering the whole volume must equal rendering two z-slabs and
  // compositing them (the parallel-rendering invariant).
  const adios::Dims global{6, 5, 8};
  S3dRank whole(global, {1, 1, 1}, 0);
  const adios::Box full{{0, 0, 0}, global};
  const auto reference =
      composite({render_slab(full, std::span<const double>(whole.species(0)))});
  ASSERT_TRUE(reference.is_ok());

  // Split along z at 3.
  std::vector<ImageFragment> fragments;
  for (int part = 0; part < 2; ++part) {
    const adios::Box slab = part == 0 ? adios::Box{{0, 0, 0}, {6, 5, 3}}
                                      : adios::Box{{0, 0, 3}, {6, 5, 5}};
    std::vector<double> data(slab.elements());
    adios::copy_region(full,
                       reinterpret_cast<const std::byte*>(whole.species(0).data()),
                       slab, reinterpret_cast<std::byte*>(data.data()), slab,
                       sizeof(double));
    fragments.push_back(render_slab(slab, std::span<const double>(data)));
  }
  // Composite in scrambled order: z sorting must fix it.
  std::swap(fragments[0], fragments[1]);
  const auto combined = composite(std::move(fragments));
  ASSERT_TRUE(combined.is_ok());
  ASSERT_EQ(combined.value().size(), reference.value().size());
  for (std::size_t i = 0; i < combined.value().size(); ++i) {
    EXPECT_NEAR(static_cast<int>(combined.value()[i]),
                static_cast<int>(reference.value()[i]), 1)
        << "pixel byte " << i;
  }
}

TEST(VolumeRendererTest, MismatchedFragmentsRejected) {
  ImageFragment a;
  a.width = 2; a.height = 2;
  a.rgb.assign(12, 0); a.transmittance.assign(4, 1);
  ImageFragment b;
  b.width = 3; b.height = 2;
  b.rgb.assign(18, 0); b.transmittance.assign(6, 1);
  EXPECT_FALSE(composite({std::move(a), std::move(b)}).is_ok());
  EXPECT_FALSE(composite({}).is_ok());
}

TEST(VolumeRendererTest, WritesValidPpm) {
  const std::string path = ::testing::TempDir() + "/render.ppm";
  std::vector<std::uint8_t> rgb(4 * 3 * 3, 128);
  ASSERT_TRUE(write_ppm(path, 4, 3, rgb).is_ok());
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w = 0, h = 0, maxv = 0;
  in >> w >> h >> maxv;
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxv, 255);
  EXPECT_FALSE(write_ppm(path, 5, 3, rgb).is_ok());  // size mismatch
}

// ------------------------------------------------- model shape assertions --

struct MachineCase {
  const char* name;
  sim::MachineDesc (*machine)();
  int gts_cores;
  int s3d_cores;
  double gts_bound_ratio;  // paper: best within 8.4% (Smoky) / 7.9% (Titan)
  double s3d_improvement;  // staging-vs-inline: ~19% (Smoky) / ~30% (Titan)
};

class ModelShapeTest : public ::testing::TestWithParam<MachineCase> {};

double total(const CoupledConfig& config) {
  auto result = simulate_coupled(config);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.value().total_seconds;
}

TEST_P(ModelShapeTest, Figure6GtsOrdering) {
  const MachineCase& mc = GetParam();
  const sim::MachineDesc m = mc.machine();
  const double inline_t = total(gts_scenario(m, mc.gts_cores, GtsVariant::kInline));
  const double data_aware =
      total(gts_scenario(m, mc.gts_cores, GtsVariant::kHelperDataAware));
  const double holistic =
      total(gts_scenario(m, mc.gts_cores, GtsVariant::kHelperHolistic));
  const double topo =
      total(gts_scenario(m, mc.gts_cores, GtsVariant::kHelperTopoAware));
  const double staging = total(gts_scenario(m, mc.gts_cores, GtsVariant::kStaging));
  const double solo = total(gts_scenario(m, mc.gts_cores, GtsVariant::kSolo));

  // Paper Figure 6: helper-core placements win; topology-aware leads;
  // staging burns interconnect without beating helper cores; inline worst.
  EXPECT_LT(topo, holistic);
  EXPECT_LT(holistic, data_aware);
  EXPECT_LT(data_aware, inline_t);
  EXPECT_GT(staging, topo * 1.01);
  EXPECT_LT(staging, inline_t);
  // Within the published distance of the solo lower bound.
  EXPECT_GT(topo, solo);
  EXPECT_LT(topo, solo * mc.gts_bound_ratio);
}

TEST_P(ModelShapeTest, Figure6InlinePenaltyGrowsWithScale) {
  const MachineCase& mc = GetParam();
  const sim::MachineDesc m = mc.machine();
  double prev_gap = 0;
  for (int cores = 128; cores <= mc.gts_cores; cores *= 2) {
    const double inline_t = total(gts_scenario(m, cores, GtsVariant::kInline));
    const double topo =
        total(gts_scenario(m, cores, GtsVariant::kHelperTopoAware));
    const double gap = inline_t - topo;
    EXPECT_GT(gap, prev_gap);  // "benefit more evident at larger scales"
    prev_gap = gap;
  }
}

TEST_P(ModelShapeTest, Figure9S3dOrdering) {
  const MachineCase& mc = GetParam();
  const sim::MachineDesc m = mc.machine();
  const double inline_t = total(s3d_scenario(m, mc.s3d_cores, S3dVariant::kInline));
  const double hybrid =
      total(s3d_scenario(m, mc.s3d_cores, S3dVariant::kHybridDataAware));
  const double holistic =
      total(s3d_scenario(m, mc.s3d_cores, S3dVariant::kStagingHolistic));
  const double topo =
      total(s3d_scenario(m, mc.s3d_cores, S3dVariant::kStagingTopoAware));
  const double solo = total(s3d_scenario(m, mc.s3d_cores, S3dVariant::kSolo));

  // Paper Figure 9: staging wins (topology-aware slightly ahead), hybrid
  // pays for stretched MPI, inline pays the non-scaling I/O path.
  EXPECT_LT(topo, holistic);
  EXPECT_LT(holistic, hybrid);
  EXPECT_LT(hybrid, inline_t);
  const double improvement = (inline_t - topo) / inline_t;
  EXPECT_NEAR(improvement, mc.s3d_improvement, 0.06);
  // Paper: staging within 3.6% (Titan) / 5.1% (Smoky) of the lower bound
  // -- a loose band here because our interval count differs.
  EXPECT_LT(topo, solo * 1.18);
}

TEST_P(ModelShapeTest, CpuHoursFavorHelperOverStaging) {
  const MachineCase& mc = GetParam();
  const sim::MachineDesc m = mc.machine();
  auto helper =
      simulate_coupled(gts_scenario(m, mc.gts_cores, GtsVariant::kHelperTopoAware));
  auto staging =
      simulate_coupled(gts_scenario(m, mc.gts_cores, GtsVariant::kStaging));
  auto inline_r =
      simulate_coupled(gts_scenario(m, mc.gts_cores, GtsVariant::kInline));
  ASSERT_TRUE(helper.is_ok());
  ASSERT_TRUE(staging.is_ok());
  ASSERT_TRUE(inline_r.is_ok());
  // Paper Section IV.A: inline costs the most CPU hours; staging allocates
  // extra nodes without finishing faster; helper wins both metrics.
  EXPECT_LT(helper.value().node_hours, staging.value().node_hours);
  EXPECT_LT(helper.value().node_hours, inline_r.value().node_hours);
  // Helper-core placement avoids the interconnect entirely (the "~90%
  // reduction" claim compares query-reduced traffic; raw movement is 0).
  EXPECT_DOUBLE_EQ(helper.value().inter_node_bytes, 0);
  EXPECT_GT(staging.value().inter_node_bytes, 0);
  EXPECT_GT(staging.value().analytics_nodes, 0);
  EXPECT_EQ(helper.value().analytics_nodes, 0);
}

TEST_P(ModelShapeTest, Figure7PhaseShape) {
  const MachineCase& mc = GetParam();
  const sim::MachineDesc m = mc.machine();
  auto helper = simulate_coupled(
      gts_scenario(m, mc.gts_cores, GtsVariant::kHelperTopoAware));
  auto inline_r =
      simulate_coupled(gts_scenario(m, mc.gts_cores, GtsVariant::kInline));
  ASSERT_TRUE(helper.is_ok());
  ASSERT_TRUE(inline_r.is_ok());
  const PhaseBreakdown& ph = helper.value().interval;
  // "Analytics processes are idle for 67% of time" (Smoky case).
  const double idle_frac = ph.analytics_idle / (ph.analytics + ph.analytics_idle);
  EXPECT_GT(idle_frac, 0.5);
  EXPECT_LT(idle_frac, 0.8);
  // "Nearly invisible I/O overhead thanks to the shared memory transport."
  EXPECT_LT(ph.sim_io, 0.05 * ph.sim_compute);
  // Inline analytics weigh ~23.6% of GTS runtime.
  const PhaseBreakdown& pi = inline_r.value().interval;
  const double frac = pi.analytics / (pi.sim_compute + pi.sim_mpi + pi.analytics);
  EXPECT_NEAR(frac, 0.236, 0.04);
}

TEST_P(ModelShapeTest, Figure8CacheInterference) {
  const MachineCase& mc = GetParam();
  auto helper = simulate_coupled(
      gts_scenario(mc.machine(), mc.gts_cores, GtsVariant::kHelperTopoAware));
  ASSERT_TRUE(helper.is_ok());
  const double increase =
      helper.value().l3_mpki_corun / helper.value().l3_mpki_solo - 1.0;
  if (std::string(mc.name) == "smoky") {
    // Paper: 47% more L3 misses, simulation time +4.1%.
    EXPECT_NEAR(increase, 0.47, 0.08);
    EXPECT_NEAR(helper.value().cache_slowdown, 1.041, 0.01);
  } else {
    // Titan's 8 MB L3 takes a smaller hit.
    EXPECT_GT(increase, 0.1);
    EXPECT_LT(increase, 0.47);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, ModelShapeTest,
    ::testing::Values(MachineCase{"smoky", &sim::smoky, 1024, 1024, 1.10,
                                  0.19},
                      MachineCase{"titan", &sim::titan, 1024, 4096, 1.09,
                                  0.26}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

TEST(ModelTest, S3dTuningTableShape) {
  // Section IV.B.1: CACHING_ALL + batching + async cut the simulation-
  // visible movement time by ~20x. The model's handshake knob reproduces
  // the visible-cost collapse.
  CoupledConfig tuned = s3d_scenario(sim::titan(), 1024,
                                     S3dVariant::kStagingTopoAware);
  CoupledConfig untuned = tuned;
  untuned.handshake_cached = false;
  untuned.async_movement = false;
  auto tuned_r = simulate_coupled(tuned);
  auto untuned_r = simulate_coupled(untuned);
  ASSERT_TRUE(tuned_r.is_ok());
  ASSERT_TRUE(untuned_r.is_ok());
  EXPECT_GT(untuned_r.value().interval.sim_io,
            10 * tuned_r.value().interval.sim_io);
}

TEST(ModelTest, InvalidConfigsRejected) {
  CoupledConfig c;
  c.sim_ranks = 0;
  EXPECT_FALSE(simulate_coupled(c).is_ok());
  CoupledConfig big = gts_scenario(sim::smoky(), 1024, GtsVariant::kInline);
  big.sim_ranks = 100000;
  EXPECT_FALSE(simulate_coupled(big).is_ok());
}

TEST(ModelTest, Deterministic) {
  const CoupledConfig c =
      gts_scenario(sim::smoky(), 512, GtsVariant::kStaging);
  const auto a = simulate_coupled(c);
  const auto b = simulate_coupled(c);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().total_seconds, b.value().total_seconds);
}

}  // namespace
}  // namespace flexio::apps
