// GTS pipeline: the paper's fusion use case end to end (Section IV.A).
//
// Four GTS ranks push zion/electron particle tables (7 attributes each)
// through a FlexIO stream in the process-group pattern. Two analytics
// ranks each consume their assigned process groups and run the paper's
// chain: particle distribution function, range query on the velocity
// attributes (~20% selected), and 1-D/2-D histograms written as CSV for
// parallel-coordinates visualization. A Data Conditioning plug-in --
// mobile CoD source compiled inside the writers -- drops obviously
// thermal particles before they ever cross the transport.
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/gts.h"
#include "apps/gts_analytics.h"
#include "cod/plugin.h"
#include "core/config_glue.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"

using namespace flexio;

namespace {
constexpr int kSimRanks = 4;
constexpr int kVizRanks = 2;
constexpr int kSteps = 3;
constexpr std::uint64_t kParticles = 4000;

// The external XML configuration (paper Section II.B): the group schema
// and the I/O method live here, never in application code. Changing
// method="FLEXIO" to method="BP" reruns this pipeline offline.
constexpr const char* kConfigXml = R"(
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="double" dimensions="nzions,7"/>
    <var name="electron" type="double" dimensions="nelectrons,7"/>
  </adios-group>
  <method group="particles" method="FLEXIO">
    caching=none; batching=yes; async=yes
  </method>
</adios-config>)";
}  // namespace

int main() {
  Runtime runtime;
  runtime.set_plugin_compiler(cod::make_plugin_compiler());
  Program sim("gts", kSimRanks);
  Program viz("analysis", kVizRanks);

  auto config = xml::parse_config(kConfigXml);
  FLEXIO_CHECK(config.is_ok());

  auto gts_rank = [&](int rank) {
    auto spec = spec_from_config(
        config.value(), "particles",
        EndpointSpec{&sim, rank, evpath::Location{rank / 2, rank}});
    FLEXIO_CHECK(spec.is_ok());
    auto writer = runtime.open_writer(spec.value());
    FLEXIO_CHECK(writer.is_ok());
    const xml::GroupConfig& group = *config.value().group("particles");
    apps::GtsRank gts(rank, kParticles);
    for (int step = 0; step < kSteps; ++step) {
      gts.advance();  // two simulation cycles per output in the paper
      gts.advance();
      // Validate against the declared schema before writing.
      FLEXIO_CHECK(validate_against_group(group, gts.zion_meta()).is_ok());
      FLEXIO_CHECK(validate_against_group(group, gts.electron_meta()).is_ok());
      FLEXIO_CHECK(writer.value()->begin_step(step).is_ok());
      FLEXIO_CHECK(writer.value()
                       ->write(gts.zion_meta(),
                               as_bytes_view(std::span<const double>(gts.zion())))
                       .is_ok());
      FLEXIO_CHECK(
          writer.value()
              ->write(gts.electron_meta(),
                      as_bytes_view(std::span<const double>(gts.electron())))
              .is_ok());
      FLEXIO_CHECK(writer.value()->end_step().is_ok());
    }
    FLEXIO_CHECK(writer.value()->close().is_ok());
    if (rank == 0) {
      std::printf("[gts] plug-in executions inside the simulation: %llu\n",
                  static_cast<unsigned long long>(
                      writer.value()->monitor().count("plugin.pieces")));
    }
  };

  auto analysis_rank = [&](int rank) {
    auto spec = spec_from_config(
        config.value(), "particles",
        EndpointSpec{&viz, rank, evpath::Location{3, rank}});
    FLEXIO_CHECK(spec.is_ok());
    auto reader = runtime.open_reader(spec.value());
    FLEXIO_CHECK(reader.is_ok());

    if (rank == 0) {
      // DC plug-in (CoD source string): pre-filter slow zions inside the
      // simulation's address space before the data moves.
      FLEXIO_CHECK(reader.value()
                       ->install_plugin("zion", R"(
                         void transform() {
                           int r;
                           for (r = 0; r < rows; r = r + 1) {
                             double vpar = input[r * cols + 3];
                             double vperp = input[r * cols + 4];
                             if (sqrt(vpar*vpar + vperp*vperp) > 0.4)
                               keep_row(r);
                           }
                         })",
                                        /*run_at_writer=*/true)
                       .is_ok());
    }

    apps::Histogram1D merged_vpar;
    bool merged_init = false;
    std::uint64_t particles_in = 0, particles_selected = 0;
    for (;;) {
      auto step = reader.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      FLEXIO_CHECK(step.is_ok());
      // Round-robin assignment of process groups to analysis ranks.
      for (int w = rank; w < kSimRanks; w += kVizRanks) {
        FLEXIO_CHECK(reader.value()->schedule_read_pg(w).is_ok());
      }
      FLEXIO_CHECK(reader.value()->perform_reads().is_ok());
      for (const PgBlock& block : reader.value()->pg_blocks()) {
        if (block.meta.name != "zion") continue;
        const auto result = apps::analyze_particles(std::span<const double>(
            reinterpret_cast<const double*>(block.payload.data()),
            block.payload.size() / sizeof(double)));
        particles_in += result.input_particles;
        particles_selected += result.selected_particles;
        if (!merged_init) {
          merged_vpar = result.vpar_hist;
          merged_init = true;
        }
        // Histograms from different writers merge pairwise when shapes
        // line up; in production the reader program reduces them via MPI.
      }
      FLEXIO_CHECK(reader.value()->end_step().is_ok());
    }
    std::printf(
        "[analysis %d] %llu particles in, %llu selected (%.1f%% after the "
        "plug-in pre-filter + range query)\n",
        rank, static_cast<unsigned long long>(particles_in),
        static_cast<unsigned long long>(particles_selected),
        100.0 * static_cast<double>(particles_selected) /
            static_cast<double>(particles_in));
    if (rank == 0 && merged_init) {
      apps::GtsAnalysisResult out;
      out.vpar_hist = merged_vpar;
      FLEXIO_CHECK(apps::write_histograms(out, "gts_pipeline").is_ok());
      std::printf("[analysis 0] histograms written to gts_pipeline.*.csv\n");
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kSimRanks; ++r) {
    threads.emplace_back([&, r] { gts_rank(r); });
  }
  for (int r = 0; r < kVizRanks; ++r) {
    threads.emplace_back([&, r] { analysis_rank(r); });
  }
  for (auto& t : threads) t.join();
  return 0;
}
