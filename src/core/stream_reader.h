// Reader side of a FlexIO stream.
//
// Analytics open the stream by name (directory lookup behind the scenes),
// then loop: begin_step -> schedule reads (global-array selections and/or
// whole process groups) -> perform_reads -> end_step, until begin_step
// returns End-of-Stream. The same API runs against BP files for offline
// placement. All ranks of the reader program call collectively.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "adios/bp_file.h"
#include "core/redistribution.h"
#include "core/runtime.h"
#include "util/stats_delta.h"
#include "util/work_pool.h"

namespace flexio {

/// One process-group block delivered by perform_reads.
struct PgBlock {
  int writer_rank = 0;
  adios::VarMeta meta;
  std::vector<std::byte> payload;
};

class StreamReader {
 public:
  ~StreamReader();
  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  /// Advance to the next step. Returns its id, or kEndOfStream once the
  /// writer closed the stream.
  StatusOr<StepId> begin_step();

  /// Schedule a read of `selection` of global array `var` into `dst`
  /// (dense row-major buffer of the selection; must stay alive through
  /// perform_reads).
  Status schedule_read(const std::string& var, const adios::Box& selection,
                       MutableByteView dst);

  /// Schedule a read of one writer rank's whole process group.
  Status schedule_read_pg(int writer_rank);

  /// Deploy a Data Conditioning plug-in against `var`. Writer-side
  /// plug-ins are shipped with the next read request and compiled inside
  /// the simulation's address space; reader-side ones run here after
  /// receive. Coordinator-rank call (plug-ins are program-wide).
  Status install_plugin(const std::string& var, const std::string& source,
                        bool run_at_writer);

  /// Remove a previously installed plug-in from one side (effective at the
  /// next handshake exchange).
  Status remove_plugin(const std::string& var, bool from_writer);

  /// Migrate a plug-in between address spaces at runtime (paper Section
  /// II.F: "they can be migrated across address spaces at runtime"):
  /// removes it from one side and installs the same source on the other,
  /// atomically within one handshake.
  Status migrate_plugin(const std::string& var, const std::string& source,
                        bool to_writer);

  /// Execute the data movement for everything scheduled this step. Must be
  /// called once per step in stream mode even when nothing is scheduled:
  /// the writer's end_step rendezvouses with this call's read request
  /// (except under CACHING_ALL, where the handshake is skipped).
  Status perform_reads();

  /// Process-group blocks delivered to this rank by the last perform_reads.
  const std::vector<PgBlock>& pg_blocks() const { return pg_blocks_; }

  /// Read a scalar announced this step (valid after begin_step). Scalars
  /// travel with the step metadata; with handshake caching enabled they
  /// refresh only on the first step.
  StatusOr<double> scalar_double(const std::string& name) const;
  StatusOr<std::int64_t> scalar_int(const std::string& name) const;

  /// Variable metadata visible this step (all writer blocks of `var`).
  StatusOr<std::vector<adios::VarMeta>> inquire(const std::string& var) const;

  Status end_step();
  Status close();

  // --- elastic membership (stream mode with directory liveness on) ------

  /// Gracefully depart the stream at a step boundary: the current step must
  /// be drained (no step open). Announces the leave to the directory,
  /// removes this rank from the program's collectives, and tears the
  /// endpoint down. Non-coordinator ranks only. The reader is closed after.
  Status leave();

  /// Test hook: die abruptly. Heartbeats stop, the endpoint (and with it
  /// every inbound link) is destroyed, but the directory is *not* told --
  /// the failure detector has to notice via TTL expiry, exactly as with a
  /// real crash.
  void simulate_crash();

  /// Test hook: suppress heartbeats for `d` from now, simulating a stalled
  /// or partitioned rank without killing it.
  void pause_heartbeats_for(std::chrono::nanoseconds d);

  /// True once the directory fenced this rank (declared it dead while it
  /// was merely slow). A fenced rank must stop participating; step entry
  /// points return kUnavailable.
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }

  /// This rank's membership incarnation (0 when membership is off).
  std::uint64_t incarnation() const { return incarnation_; }

  bool file_mode() const { return bp_ != nullptr; }
  int num_writers() const { return writer_size_; }

  /// Reader-side monitoring.
  const PerfMonitor& monitor() const { return monitor_; }

  /// Unpack concurrency this reader resolved at open (config > env > 1).
  int read_threads() const { return read_threads_; }

  /// Test/bench hook: replace the unpack pool (mirrors the writer's
  /// set_pack_pool_for_testing). A zero-worker pool prices the dispatch
  /// machinery at concurrency 1; nullptr restores the plain serial loop.
  void set_read_pool_for_testing(std::shared_ptr<util::WorkPool> pool) {
    read_pool_ = std::move(pool);
    read_threads_ = read_pool_ ? read_pool_->workers() + 1 : 1;
  }

  /// Writer-side monitoring shipped at stream close (stream mode only;
  /// valid after begin_step returned kEndOfStream).
  const std::optional<wire::MonitorReport>& writer_report() const {
    return writer_report_;
  }

 private:
  friend class Runtime;
  StreamReader() = default;

  Status open(Runtime* rt, const StreamSpec& spec);
  Status open_late_join(Runtime* rt);
  StatusOr<StepId> begin_step_stream();
  StatusOr<StepId> begin_step_file();
  void start_heartbeats();
  void stop_heartbeats();
  /// Coordinator, before broadcasting an epoch-stamped announce: admit
  /// joiners whose join_epoch the announce covers and excise the departed,
  /// from the writer's shipped view (pending_membership_) or, failing
  /// that, the directory's.
  void apply_membership(std::uint64_t announce_epoch);
  Status perform_reads_stream();
  Status perform_reads_file();
  /// Coordinator helper: receive the next control message from the writer
  /// coordinator, stashing any early data messages.
  Status next_control(std::vector<std::byte>* out);
  /// Takes the piece by value: local-array payloads move straight into the
  /// delivered PgBlock instead of being copied. Runs the reader-side
  /// plug-in, then routes the payload: local arrays append to *pg_out,
  /// global arrays copy_region into the scheduled dst buffers. Safe to run
  /// concurrently for distinct pieces (DESIGN.md "Parallel unpack"):
  /// expected pieces cover disjoint regions, pending_reads_ /
  /// reader_plugins_ are read-only while a step's batch is in flight, and
  /// each task gets its own pg_out slot.
  Status place_piece(wire::DataPiece piece, int writer_rank,
                     std::vector<PgBlock>* pg_out);
  /// Record a just-decoded data message's trace context: a clock sample
  /// for offset estimation plus its transfer latency, accumulated per step
  /// (a message may be decoded and stashed before its step opens).
  void observe_data_msg(const wire::DataMsg& m);

  Runtime* rt_ = nullptr;
  StreamSpec spec_;
  Program* program_ = nullptr;
  int rank_ = 0;
  std::chrono::nanoseconds timeout_{};

  // Stream mode. The channel is the reader's only path to the transport:
  // dedicated per-stream endpoint by default, shared multiplexed endpoint
  // under method shared_links (core/stream_registry.h).
  std::shared_ptr<StreamChannel> channel_;
  std::string writer_program_;
  int writer_size_ = 0;
  std::string writer_coord_;
  xml::CachingLevel caching_ = xml::CachingLevel::kNone;
  bool batching_ = false;

  // Step state.
  bool in_step_ = false;
  bool closed_ = false;
  bool eos_ = false;            // coordinator saw the writer's Close frame
  bool eos_delivered_ = false;  // EOS was collectively broadcast to this rank
  StepId close_last_step_ = -1;  // last step id announced by the Close frame
  StepId step_ = -1;
  std::uint64_t steps_completed_ = 0;
  std::vector<wire::BlockInfo> step_blocks_;  // writer distributions
  // Step telemetry: stream hash, the writer's trace context from this
  // step's announce (parents reader spans under the writer's end_step
  // span), and per-step transfer-latency accumulation keyed by step id
  // because data messages can arrive before their step opens.
  std::uint64_t stream_id_ = 0;
  wire::TraceContext announce_ctx_{};
  bool have_announce_ctx_ = false;
  std::map<StepId, std::uint64_t> transfer_accum_;
  struct PendingRead {
    std::string var;
    adios::Box selection;
    MutableByteView dst;
  };
  std::vector<PendingRead> pending_reads_;
  std::vector<int> pending_pg_;
  std::vector<wire::PluginInstall> pending_plugins_;  // coordinator only
  std::vector<PgBlock> pg_blocks_;
  std::map<std::string, PluginFn> reader_plugins_;

  // Parallel unpack (DESIGN.md "Parallel unpack"): per-step piece placement
  // runs as pool tasks. read_threads_ is the total concurrency including
  // the caller; the pool holds read_threads_ - 1 workers and is absent when
  // the reader unpacks serially (read_threads_ == 1).
  int read_threads_ = 1;
  std::shared_ptr<util::WorkPool> read_pool_;

  // Handshake caches.
  wire::ReadRequest cached_request_;
  bool have_cached_request_ = false;
  std::vector<TransferPiece> cached_expected_;  // pieces destined to me

  // Elastic membership. cached_epoch_ is the epoch the cached handshake
  // was exchanged under; an announce stamped with a different epoch forces
  // the exchange even under CACHING_ALL. The heartbeat thread beats at
  // TTL/4 and latches fenced_ if the directory rejects a beat (this rank
  // was declared dead while merely slow).
  bool membership_ = false;
  std::uint64_t incarnation_ = 0;
  std::uint64_t join_epoch_ = 0;
  std::uint64_t cached_epoch_ = 0;
  std::uint64_t announce_epoch_ = 0;
  bool have_announce_epoch_ = false;
  bool left_ = false;
  bool crashed_ = false;
  std::atomic<bool> fenced_{false};
  std::optional<wire::MembershipUpdate> pending_membership_;  // coordinator
  /// Coordinator only, shared with the liveness hook (which runs on any
  /// blocked rank's thread): the incarnation of each rank the collective
  /// rounds were last formed with. A directory incarnation newer than the
  /// applied one means the old participant is gone even though the rank
  /// reads as alive -- its respawn landed inside one sweep window -- and
  /// must be excised until the joiner is admitted.
  struct AppliedIncarnations {
    std::mutex mutex;
    std::map<int, std::uint64_t> inc;
  };
  std::shared_ptr<AppliedIncarnations> applied_inc_;
  std::thread hb_thread_;
  std::atomic<bool> hb_stop_{false};
  std::atomic<std::uint64_t> hb_pause_until_ns_{0};
  /// Telemetry piggyback (owned by the heartbeat thread): deltas since
  /// the previous beat, attached as the stats trailer when publishing is
  /// enabled (telemetry::publish_enabled()).
  telemetry::DeltaEncoder hb_stats_;
  std::uint64_t hb_stats_seq_ = 0;

  // Early-arrival stashes: data messages for future steps, and control
  // frames (the next StepAnnounce can overtake the tail of the current
  // step's data on other links -- writers run ahead).
  std::vector<wire::DataMsg> stash_;
  std::deque<std::vector<std::byte>> control_stash_;
  std::optional<wire::MonitorReport> writer_report_;

  // File mode.
  std::unique_ptr<adios::BpReader> bp_;
  std::vector<StepId> bp_steps_;
  std::size_t bp_cursor_ = 0;

  PerfMonitor monitor_;
};

}  // namespace flexio
