// Directory server for stream discovery.
//
// Before any data moves, simulation and analytics find each other through
// an external directory server (paper Section II.C.1): the writer's
// coordinator registers a file name with its contact information; the
// reader's coordinator looks the name up and connects. The server is only
// involved in discovery -- it never sits on the data path -- which the
// monitoring counters here make checkable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/status.h"

namespace flexio::evpath {

struct DirectoryStats {
  std::uint64_t registrations = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_waits = 0;  // lookups that had to block for a writer
};

class DirectoryServer {
 public:
  /// Register a stream name with the writer coordinator's contact (its
  /// endpoint name). Re-registering a live name fails.
  Status register_stream(const std::string& stream_name,
                         const std::string& coordinator_contact);

  /// Remove a registration (stream closed).
  Status unregister_stream(const std::string& stream_name);

  /// Look up a stream's coordinator contact, waiting up to `timeout` for a
  /// writer to register it (readers may open before writers create).
  StatusOr<std::string> lookup(const std::string& stream_name,
                               std::chrono::nanoseconds timeout);

  DirectoryStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::string> streams_;
  DirectoryStats stats_;
};

}  // namespace flexio::evpath
