#include "harness/stress_driver.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/strings.h"
#include "xml/config.h"

namespace flexio::torture {
namespace {

using adios::Box;
using adios::Dims;
using serial::DataType;

/// First-error sink shared by all rank threads.
class ErrorSink {
 public:
  void record(const Status& status) {
    if (status.is_ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_.is_ok()) first_ = status;
  }
  Status first() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }
  bool failed() const { return !first().is_ok(); }

 private:
  mutable std::mutex mutex_;
  Status first_;
};

Status expect(bool cond, const std::string& what) {
  if (cond) return Status::ok();
  return make_error(ErrorCode::kInternal, "stress check failed: " + what);
}

Status expect_value(double got, double want, const std::string& what) {
  if (got == want) return Status::ok();
  return make_error(ErrorCode::kInternal,
                    str_format("stress value mismatch at %s: got %.3f want "
                               "%.3f",
                               what.c_str(), got, want));
}

xml::MethodConfig make_method(const StressConfig& cfg) {
  xml::MethodConfig m;
  m.method = cfg.placement == PlacementMode::kFile ? "BP" : "FLEXIO";
  m.timeout_ms = cfg.timeout_ms;
  std::string params = "caching=" + cfg.caching;
  if (cfg.async_writes) params += "; async=yes";
  FLEXIO_CHECK(xml::apply_method_params(params, &m).is_ok());
  return m;
}

evpath::Location writer_location(const StressConfig&, int rank) {
  return evpath::Location{0, rank};
}

evpath::Location reader_location(const StressConfig& cfg, int rank) {
  // Same node => shm links; different node => simulated RDMA. File mode
  // never opens online links, placement is moot.
  const int node = cfg.placement == PlacementMode::kRdma ? 7 : 0;
  return evpath::Location{node, 100 + rank};
}

Status writer_rank(Runtime& rt, const StressConfig& cfg, Program& sim,
                   int rank) {
  StreamSpec spec;
  spec.stream = cfg.stream;
  spec.endpoint = EndpointSpec{&sim, rank, writer_location(cfg, rank)};
  spec.method = make_method(cfg);
  if (cfg.placement == PlacementMode::kFile) spec.file_dir = cfg.file_dir;
  auto writer = rt.open_writer(spec);
  FLEXIO_RETURN_IF_ERROR(writer.status());
  StreamWriter& w = *writer.value();

  const Dims global{cfg.rows, cfg.cols};
  const Box box = adios::block_decompose(global, cfg.writers, rank, 0);
  std::vector<double> field(box.elements());
  const std::uint64_t nparticles = golden_particle_count(rank);
  std::vector<double> particles(nparticles * 7);

  for (int step = 0; step < cfg.steps; ++step) {
    std::size_t i = 0;
    for (std::uint64_t r = 0; r < box.count[0]; ++r) {
      for (std::uint64_t c = 0; c < box.count[1]; ++c) {
        field[i++] = golden_field(step, box.offset[0] + r, box.offset[1] + c);
      }
    }
    for (std::uint64_t p = 0; p < particles.size(); ++p) {
      particles[p] = golden_particle(rank, step, p);
    }
    FLEXIO_RETURN_IF_ERROR(w.begin_step(step));
    FLEXIO_RETURN_IF_ERROR(
        w.write(adios::global_array_var("field", DataType::kDouble, global,
                                        box),
                as_bytes_view(std::span<const double>(field))));
    FLEXIO_RETURN_IF_ERROR(
        w.write(adios::local_array_var("particles", DataType::kDouble,
                                       {nparticles, 7}),
                as_bytes_view(std::span<const double>(particles))));
    FLEXIO_RETURN_IF_ERROR(w.write_scalar("time", step * 0.5));
    FLEXIO_RETURN_IF_ERROR(w.end_step());
  }
  return w.close();
}

Status reader_rank(Runtime& rt, const StressConfig& cfg, Program& viz,
                   int rank, std::atomic<std::uint64_t>* verified,
                   std::optional<wire::MonitorReport>* report_out) {
  StreamSpec spec;
  spec.stream = cfg.stream;
  spec.endpoint = EndpointSpec{&viz, rank, reader_location(cfg, rank)};
  spec.method = make_method(cfg);
  if (cfg.placement == PlacementMode::kFile) spec.file_dir = cfg.file_dir;
  auto reader = rt.open_reader(spec);
  FLEXIO_RETURN_IF_ERROR(reader.status());
  StreamReader& r = *reader.value();
  FLEXIO_RETURN_IF_ERROR(expect(r.num_writers() == cfg.writers,
                                "num_writers mismatch"));

  const Dims global{cfg.rows, cfg.cols};
  const Box sel = adios::block_decompose(global, cfg.readers, rank, 1);
  std::vector<double> out(sel.elements());
  std::uint64_t checked = 0;
  int steps_seen = 0;
  for (;;) {
    auto step = r.begin_step();
    if (step.status().code() == ErrorCode::kEndOfStream) break;
    FLEXIO_RETURN_IF_ERROR(step.status());
    FLEXIO_RETURN_IF_ERROR(expect(step.value() == steps_seen,
                                  str_format("step order: got %lld want %d",
                                             static_cast<long long>(
                                                 step.value()),
                                             steps_seen)));
    std::fill(out.begin(), out.end(), -1.0);
    FLEXIO_RETURN_IF_ERROR(r.schedule_read(
        "field", sel,
        MutableByteView(std::as_writable_bytes(std::span<double>(out)))));
    for (int w = rank; w < cfg.writers; w += cfg.readers) {
      FLEXIO_RETURN_IF_ERROR(r.schedule_read_pg(w));
    }
    FLEXIO_RETURN_IF_ERROR(r.perform_reads());

    // Field selection against the golden model.
    std::size_t i = 0;
    for (std::uint64_t row = 0; row < sel.count[0]; ++row) {
      for (std::uint64_t col = 0; col < sel.count[1]; ++col) {
        FLEXIO_RETURN_IF_ERROR(expect_value(
            out[i++],
            golden_field(steps_seen, sel.offset[0] + row, sel.offset[1] + col),
            str_format("field[%llu,%llu] step %d",
                       static_cast<unsigned long long>(sel.offset[0] + row),
                       static_cast<unsigned long long>(sel.offset[1] + col),
                       steps_seen)));
        ++checked;
      }
    }
    // Whole process-group blocks.
    std::size_t expected_pgs = 0;
    for (int w = rank; w < cfg.writers; w += cfg.readers) ++expected_pgs;
    FLEXIO_RETURN_IF_ERROR(
        expect(r.pg_blocks().size() == expected_pgs, "pg block count"));
    for (const PgBlock& block : r.pg_blocks()) {
      const std::uint64_t n = golden_particle_count(block.writer_rank);
      FLEXIO_RETURN_IF_ERROR(
          expect(block.meta.block.count[0] == n, "pg block rows"));
      FLEXIO_RETURN_IF_ERROR(
          expect(block.payload.size() == n * 7 * sizeof(double),
                 "pg block payload size"));
      const auto* vals = reinterpret_cast<const double*>(block.payload.data());
      for (std::uint64_t p = 0; p < n * 7; ++p) {
        FLEXIO_RETURN_IF_ERROR(expect_value(
            vals[p], golden_particle(block.writer_rank, steps_seen, p),
            str_format("particles[%llu] writer %d step %d",
                       static_cast<unsigned long long>(p), block.writer_rank,
                       steps_seen)));
        ++checked;
      }
    }
    auto time = r.scalar_double("time");
    FLEXIO_RETURN_IF_ERROR(time.status());
    FLEXIO_RETURN_IF_ERROR(r.end_step());
    ++steps_seen;
  }
  FLEXIO_RETURN_IF_ERROR(expect(
      steps_seen == cfg.steps,
      str_format("steps seen: got %d want %d", steps_seen, cfg.steps)));
  verified->fetch_add(checked, std::memory_order_relaxed);
  if (rank == 0 && report_out != nullptr) *report_out = r.writer_report();
  return Status::ok();
}

}  // namespace

std::string_view placement_name(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kShm: return "shm";
    case PlacementMode::kRdma: return "rdma";
    case PlacementMode::kFile: return "file";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const StressConfig& cfg) {
  return os << cfg.label() << " writers=" << cfg.writers
            << " readers=" << cfg.readers << " steps=" << cfg.steps;
}

std::string StressConfig::label() const {
  return str_format("%s_%s_%s", caching.c_str(),
                    async_writes ? "async" : "sync",
                    std::string(placement_name(placement)).c_str());
}

std::uint64_t expected_handshakes_performed(const StressConfig& cfg) {
  return cfg.caching == "all" ? 1u : static_cast<std::uint64_t>(cfg.steps);
}

std::uint64_t expected_handshakes_skipped(const StressConfig& cfg) {
  return cfg.caching == "all" ? static_cast<std::uint64_t>(cfg.steps) - 1 : 0u;
}

Status check_handshake_invariant(const StressConfig& cfg,
                                 const wire::MonitorReport& report) {
  const std::uint64_t want_performed = expected_handshakes_performed(cfg);
  const std::uint64_t want_skipped = expected_handshakes_skipped(cfg);
  if (report.steps != static_cast<std::uint64_t>(cfg.steps)) {
    return make_error(ErrorCode::kInternal,
                      str_format("monitor steps: got %llu want %d",
                                 static_cast<unsigned long long>(report.steps),
                                 cfg.steps));
  }
  if (report.handshakes_performed != want_performed ||
      report.handshakes_skipped != want_skipped) {
    return make_error(
        ErrorCode::kInternal,
        str_format("handshake invariant (caching=%s): performed %llu/%llu "
                   "skipped %llu/%llu (got/want)",
                   cfg.caching.c_str(),
                   static_cast<unsigned long long>(report.handshakes_performed),
                   static_cast<unsigned long long>(want_performed),
                   static_cast<unsigned long long>(report.handshakes_skipped),
                   static_cast<unsigned long long>(want_skipped)));
  }
  return Status::ok();
}

StressResult run_stress(const StressConfig& cfg) {
  StressResult result;
  Runtime rt;
  if (cfg.faults != nullptr) cfg.faults->install(&rt.bus().fabric());
  Program sim("sim", cfg.writers);
  Program viz("viz", cfg.readers);
  ErrorSink errors;
  std::atomic<std::uint64_t> verified{0};

  if (cfg.placement == PlacementMode::kFile) {
    FLEXIO_CHECK(!cfg.file_dir.empty());
    std::filesystem::create_directories(cfg.file_dir);
    // Offline semantics: all writers complete before any reader opens.
    std::vector<std::thread> writers;
    for (int w = 0; w < cfg.writers; ++w) {
      writers.emplace_back(
          [&, w] { errors.record(writer_rank(rt, cfg, sim, w)); });
    }
    for (auto& t : writers) t.join();
    if (!errors.failed()) {
      std::vector<std::thread> readers;
      for (int r = 0; r < cfg.readers; ++r) {
        readers.emplace_back([&, r] {
          errors.record(
              reader_rank(rt, cfg, viz, r, &verified, &result.report));
        });
      }
      for (auto& t : readers) t.join();
    }
  } else {
    std::vector<std::thread> threads;
    for (int w = 0; w < cfg.writers; ++w) {
      threads.emplace_back(
          [&, w] { errors.record(writer_rank(rt, cfg, sim, w)); });
    }
    for (int r = 0; r < cfg.readers; ++r) {
      threads.emplace_back([&, r] {
        errors.record(reader_rank(rt, cfg, viz, r, &verified, &result.report));
      });
    }
    for (auto& t : threads) t.join();
  }

  result.status = errors.first();
  result.elements_verified = verified.load(std::memory_order_relaxed);
  if (result.status.is_ok() && cfg.placement != PlacementMode::kFile) {
    if (!result.report.has_value()) {
      result.status =
          make_error(ErrorCode::kInternal, "missing writer monitor report");
    } else {
      result.status = check_handshake_invariant(cfg, *result.report);
    }
  }
  return result;
}

}  // namespace flexio::torture
