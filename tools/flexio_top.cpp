// flexio_top: live terminal view of a running FlexIO deployment.
//
// Scrapes a telemetry::StatsServer (started in any FlexIO process via
// FLEXIO_STATS_ADDR or the xml stats_addr knob) and renders, per refresh:
//
//   * cluster ranks from /cluster (the directory's flexio-cluster-v1
//     aggregation of every rank's heartbeat-piggybacked deltas): per-phase
//     step histograms with p50/p99, byte counters with rates computed
//     between refreshes;
//   * the local process's per-stream gauges from /metrics (queued bytes,
//     credits, stall counts);
//   * active health events from /health (flexio-health-v1 lines).
//
// Usage:
//   flexio_top <host:port>             refresh loop (1 s period), clears
//                                      the screen between frames like top
//   flexio_top --once <host:port>      render one frame, no screen clear
//                                      (CI and scripting)
//   flexio_top --interval-ms N ...     custom refresh period
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/stats_server.h"
#include "util/status.h"

namespace {

using namespace flexio;

struct RateTracker {
  std::map<std::string, double> prev;
  std::chrono::steady_clock::time_point prev_at;
  bool primed = false;

  /// Per-second rate of a monotone counter between refreshes.
  double rate(const std::string& key, double now_value,
              std::chrono::steady_clock::time_point now) {
    if (!primed) return 0.0;
    const double dt =
        std::chrono::duration<double>(now - prev_at).count();
    const auto it = prev.find(key);
    if (it == prev.end() || dt <= 0) return 0.0;
    return (now_value - it->second) / dt;
  }
};

int fail(const std::string& msg) {
  std::fprintf(stderr, "flexio_top: %s\n", msg.c_str());
  return 1;
}

void render_cluster(const std::string& body, RateTracker* rates,
                    std::chrono::steady_clock::time_point now) {
  auto doc = json::parse(body);
  if (!doc.is_ok()) {
    std::printf("cluster: unparseable (%s)\n",
                doc.status().to_string().c_str());
    return;
  }
  const json::Value* ranks = doc.value().find("ranks");
  if (ranks == nullptr || ranks->kind() != json::Value::Kind::kArray ||
      ranks->as_array().empty()) {
    std::printf("cluster: no ranks reporting yet\n");
    return;
  }
  std::printf("%-10s %4s %10s %12s  %s\n", "program", "rank", "frames",
              "bytes/s", "step phases p50/p99 (us)");
  std::map<std::string, double> next_prev;
  for (const json::Value& r : ranks->as_array()) {
    const json::Value* program = r.find("program");
    const json::Value* rank = r.find("rank");
    const json::Value* frames = r.find("frames");
    const std::string prog =
        program != nullptr ? program->as_string() : "?";
    const int rk = rank != nullptr ? static_cast<int>(rank->as_number()) : 0;
    double bytes = 0;
    if (const json::Value* counters = r.find("counters")) {
      const json::Value* b = counters->find("flexio.bytes.sent");
      if (b == nullptr) b = counters->find("flexio.bytes.received");
      if (b != nullptr) bytes = b->as_number();
    }
    const std::string key = prog + "/" + std::to_string(rk);
    next_prev[key] = bytes;
    std::string phases;
    if (const json::Value* hists = r.find("histograms")) {
      for (const char* phase :
           {"pack", "enqueue", "transfer", "unpack", "total"}) {
        const json::Value* h =
            hists->find(std::string("flexio.step.") + phase + ".ns");
        if (h == nullptr) continue;
        const json::Value* p50 = h->find("p50");
        const json::Value* p99 = h->find("p99");
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s%s %.0f/%.0f",
                      phases.empty() ? "" : "  ", phase,
                      (p50 != nullptr ? p50->as_number() : 0) / 1e3,
                      (p99 != nullptr ? p99->as_number() : 0) / 1e3);
        phases += buf;
      }
    }
    std::printf("%-10s %4d %10.0f %12.0f  %s\n", prog.c_str(), rk,
                frames != nullptr ? frames->as_number() : 0,
                rates->rate(key, bytes, now), phases.c_str());
  }
  rates->prev = std::move(next_prev);
  rates->prev_at = now;
  rates->primed = true;
}

void render_streams(const std::string& metrics_body) {
  // Pull flexio_stream_* sample lines out of the Prometheus text.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < metrics_body.size()) {
    const std::size_t nl = metrics_body.find('\n', pos);
    const std::string line = metrics_body.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? metrics_body.size() : nl + 1;
    if (line.rfind("flexio_stream_", 0) == 0) lines.push_back(line);
  }
  if (lines.empty()) return;
  std::printf("\nlocal streams:\n");
  for (const std::string& line : lines) {
    std::printf("  %s\n", line.c_str());
  }
}

void render_health(const std::string& body) {
  if (body.empty()) {
    std::printf("\nhealth: ok (no events)\n");
    return;
  }
  std::printf("\nhealth events:\n");
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t nl = body.find('\n', pos);
    const std::string line =
        body.substr(pos, nl == std::string::npos ? std::string::npos
                                                 : nl - pos);
    pos = nl == std::string::npos ? body.size() : nl + 1;
    if (line.empty()) continue;
    auto doc = json::parse(line);
    if (!doc.is_ok()) continue;
    const json::Value* rule = doc.value().find("rule");
    const json::Value* subject = doc.value().find("subject");
    const json::Value* detail = doc.value().find("detail");
    std::printf("  [%s] %s: %s\n",
                rule != nullptr ? rule->as_string().c_str() : "?",
                subject != nullptr ? subject->as_string().c_str() : "?",
                detail != nullptr ? detail->as_string().c_str() : "");
  }
}

int frame(const std::string& addr, RateTracker* rates) {
  std::string cluster, metrics_body, health;
  const Status cs = telemetry::scrape(addr, "/cluster", &cluster);
  const Status ms = telemetry::scrape(addr, "/metrics", &metrics_body);
  const Status hs = telemetry::scrape(addr, "/health", &health);
  if (!ms.is_ok()) return fail("scrape " + addr + ": " + ms.to_string());
  std::printf("flexio_top -- %s\n\n", addr.c_str());
  if (cs.is_ok()) {
    render_cluster(cluster, rates, std::chrono::steady_clock::now());
  } else {
    std::printf("cluster: %s\n", cs.to_string().c_str());
  }
  render_streams(metrics_body);
  if (hs.is_ok()) render_health(health);
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  long interval_ms = 1000;
  std::string addr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) interval_ms = 1000;
    } else if (!arg.empty() && arg[0] != '-') {
      addr = arg;
    } else {
      addr.clear();
      break;
    }
  }
  if (addr.empty()) {
    std::fprintf(stderr,
                 "usage: flexio_top [--once] [--interval-ms N] <host:port>\n");
    return 2;
  }
  RateTracker rates;
  if (once) return frame(addr, &rates);
  for (;;) {
    std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
    if (const int rc = frame(addr, &rates); rc != 0) return rc;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
