// FastForward-style single-producer/single-consumer lock-free queue.
//
// Reproduces the paper's intra-node data queue (Section II.D):
//  * circular FIFO of fixed-size entries,
//  * producer and consumer keep *private* cursors (no shared head/tail),
//    so the only shared state is each entry's full/empty flag,
//  * entries are aligned and padded so no two entries share a cache line
//    (kills false sharing), and the flag protocol gives the ordering:
//    producer release-stores "full" after filling the payload, consumer
//    acquire-loads it before reading, then release-stores "empty".
// On weakly-ordered machines those acquire/release pairs are exactly the
// "additional memory fences" the paper mentions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "util/cacheline.h"
#include "util/common.h"
#include "util/status.h"

namespace flexio::shm {

/// Counters exported to the performance-monitoring layer.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t enqueue_full_spins = 0;  // producer found entry occupied
  std::uint64_t dequeue_empty_spins = 0; // consumer found entry empty
};

class SpscQueue {
 public:
  /// `entries` must be >= 2; `payload_bytes` is the fixed per-entry message
  /// capacity. Both are rounded so entries never straddle cache lines.
  SpscQueue(std::size_t entries, std::size_t payload_bytes);
  ~SpscQueue();

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return entries_; }
  std::size_t payload_capacity() const { return payload_bytes_; }

  /// Non-blocking enqueue. Returns false when the next entry is still full.
  /// Aborts if msg exceeds payload_capacity() (programmer error; large
  /// messages must go through the buffer pool path instead).
  bool try_enqueue(ByteView msg);

  /// Non-blocking dequeue into `out` (resized to the message length).
  /// Returns false when the next entry is empty.
  bool try_dequeue(std::vector<std::byte>* out);

  /// Blocking enqueue with deadline; spins with yields (the consumer is a
  /// sibling core in the real system, so latency matters more than sleep).
  Status enqueue(ByteView msg, std::chrono::nanoseconds timeout);

  /// Blocking dequeue with deadline.
  Status dequeue(std::vector<std::byte>* out, std::chrono::nanoseconds timeout);

  /// Snapshot of the producer+consumer counters (relaxed reads; monitoring
  /// tolerates slight skew).
  QueueStats stats() const;

 private:
  // Entry layout: [flag | size | payload...], padded to a multiple of the
  // cache line so consecutive entries never share a line.
  struct EntryHeader {
    std::atomic<std::uint32_t> state;  // 0 = empty, 1 = full
    std::uint32_t size;
  };

  std::byte* aligned_base() { return storage_.get() + aligned_offset_; }
  EntryHeader* header(std::size_t idx) {
    return reinterpret_cast<EntryHeader*>(aligned_base() + idx * stride_);
  }
  std::byte* payload(std::size_t idx) {
    return aligned_base() + idx * stride_ + sizeof(EntryHeader);
  }

  std::size_t entries_;
  std::size_t payload_bytes_;
  std::size_t stride_;
  std::size_t storage_raw_size_ = 0;
  std::size_t aligned_offset_ = 0;
  std::unique_ptr<std::byte[]> storage_;

  // Producer-private state on its own cache line; counters are relaxed
  // atomics only so stats() may read them from a third thread.
  struct alignas(kCacheLineSize) ProducerSide {
    std::size_t head = 0;
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> full_spins{0};
  } producer_;

  struct alignas(kCacheLineSize) ConsumerSide {
    std::size_t tail = 0;
    std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> empty_spins{0};
  } consumer_;
};

}  // namespace flexio::shm
