// Unit battery for util::WorkPool, the writer-side parallel-pack pool:
// inline (zero-worker) ordering, deterministic first-error-wins across
// interleavings, exception capture + lowest-index rethrow, the
// shutdown-while-busy contract (destruction blocks until an in-flight
// batch finishes; tasks are never abandoned), the cooperative
// flight-recorder hook on worker threads, the flexio.pool.* metrics, and
// the trace TaskContext/TaskScope plumbing that nests pool-task spans
// under the submitting span. Runs under TSan via the concurrency label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unistd.h>
#include <vector>

#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"
#include "util/work_pool.h"

namespace flexio::util {
namespace {

using namespace std::chrono_literals;

TEST(WorkPoolTest, ZeroWorkersRunsInlineInSubmissionOrder) {
  WorkPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> order;
  std::vector<WorkPool::Task> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&order, i] {
      order.push_back(i);  // no synchronization: inline means this thread
      return Status::ok();
    });
  }
  ASSERT_TRUE(pool.run_batch(std::move(tasks)).is_ok());
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkPoolTest, EveryTaskRunsExactlyOnceAcrossThreads) {
  WorkPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  for (int round = 0; round < 5; ++round) {
    std::vector<WorkPool::Task> tasks;
    for (int i = 0; i < kTasks; ++i) {
      tasks.push_back([&runs, i] {
        runs[i].fetch_add(1, std::memory_order_relaxed);
        return Status::ok();
      });
    }
    ASSERT_TRUE(pool.run_batch(std::move(tasks)).is_ok());
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(runs[i].load(), round + 1) << "task " << i;
    }
  }
}

TEST(WorkPoolTest, FirstErrorWinsByIndexNotByTiming) {
  WorkPool pool(4);
  // The higher-indexed failure finishes long before the lower-indexed one,
  // but aggregation is positional: index 3 must win every time.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::vector<WorkPool::Task> tasks;
    for (int i = 0; i < 12; ++i) {
      tasks.push_back([&ran, i]() -> Status {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 3) {
          std::this_thread::sleep_for(2ms);
          return make_error(ErrorCode::kInternal, "slow low-index failure");
        }
        if (i == 9) {
          return make_error(ErrorCode::kUnavailable, "fast high-index failure");
        }
        return Status::ok();
      });
    }
    const Status st = pool.run_batch(std::move(tasks));
    EXPECT_EQ(st.code(), ErrorCode::kInternal) << st.to_string();
    // All-run semantics: a failure never suppresses sibling tasks.
    EXPECT_EQ(ran.load(), 12);
  }
}

TEST(WorkPoolTest, InlineErrorsAlsoRunEveryTask) {
  WorkPool pool(0);
  int ran = 0;
  std::vector<WorkPool::Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&ran, i]() -> Status {
      ++ran;
      return i == 1 ? make_error(ErrorCode::kTimeout, "boom")
                    : Status::ok();
    });
  }
  EXPECT_EQ(pool.run_batch(std::move(tasks)).code(), ErrorCode::kTimeout);
  EXPECT_EQ(ran, 6);
}

TEST(WorkPoolTest, LowestIndexedExceptionRethrownOnCaller) {
  for (const int workers : {0, 3}) {
    WorkPool pool(workers);
    std::vector<WorkPool::Task> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([i]() -> Status {
        if (i == 2) {
          std::this_thread::sleep_for(1ms);
          throw std::runtime_error("low");
        }
        if (i == 6) throw std::runtime_error("high");
        return Status::ok();
      });
    }
    try {
      (void)pool.run_batch(std::move(tasks));
      FAIL() << "expected rethrow (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low") << "workers=" << workers;
    }
  }
}

TEST(WorkPoolTest, ShutdownWhileBusyFinishesTheBatch) {
  auto pool = std::make_unique<WorkPool>(2);
  std::atomic<int> done{0};
  std::atomic<bool> batch_ok{false};
  // Capture the raw pool, not the unique_ptr: reset() below writes the
  // smart pointer concurrently with the submitter's use of it. The pool
  // *object* outliving its in-flight batch is exactly the contract under
  // test; the handle is not part of it.
  WorkPool* raw = pool.get();
  std::thread submitter([&done, &batch_ok, raw] {
    std::vector<WorkPool::Task> tasks;
    for (int i = 0; i < 24; ++i) {
      tasks.push_back([&done] {
        std::this_thread::sleep_for(1ms);
        done.fetch_add(1, std::memory_order_relaxed);
        return Status::ok();
      });
    }
    batch_ok.store(raw->run_batch(std::move(tasks)).is_ok());
  });
  // Destroy the pool while the batch is (very likely) mid-flight. The
  // destructor must block until the caller finishes draining -- no task
  // abandoned, no use-after-free, no deadlock.
  while (done.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  pool.reset();
  submitter.join();
  EXPECT_TRUE(batch_ok.load());
  EXPECT_EQ(done.load(), 24);
}

TEST(WorkPoolTest, EmptyBatchIsANoOp) {
  WorkPool pool(2);
  EXPECT_TRUE(pool.run_batch({}).is_ok());
}

TEST(WorkPoolTest, PoolMetricsCountTasks) {
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  const auto tasks_before = metrics::counter("flexio.pool.tasks").value();
  const auto exec_before =
      metrics::histogram("flexio.pool.exec_ns").snapshot().count;
  const auto queue_before =
      metrics::histogram("flexio.pool.queue_ns").snapshot().count;
  WorkPool pool(2);
  std::vector<WorkPool::Task> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([] { return Status::ok(); });
  }
  ASSERT_TRUE(pool.run_batch(std::move(tasks)).is_ok());
  EXPECT_EQ(metrics::counter("flexio.pool.tasks").value() - tasks_before, 10u);
  EXPECT_EQ(
      metrics::histogram("flexio.pool.exec_ns").snapshot().count - exec_before,
      10u);
  EXPECT_EQ(metrics::histogram("flexio.pool.queue_ns").snapshot().count -
                queue_before,
            10u);
  metrics::set_enabled(was);
}

TEST(WorkPoolTest, WorkersServeTheCooperativeFlightSampler) {
  // The pool is the flight recorder's cooperative thread family: a worker
  // finishing a task takes the sample marked due, so a recorder with no
  // background thread still samples while batches run.
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("flexio_pool_flight." + std::to_string(::getpid()) + ".jsonl"))
          .string();
  flight::Options opt;
  opt.path = path;
  opt.background = false;
  ASSERT_TRUE(flight::start(opt).is_ok());
  const std::uint64_t lines_before = flight::samples_taken();

  WorkPool pool(2);
  metrics::counter("workpool.test.flight").add(1);  // give the delta content
  flight::request_sample();
  std::vector<WorkPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([] {
      std::this_thread::sleep_for(1ms);
      return Status::ok();
    });
  }
  ASSERT_TRUE(pool.run_batch(std::move(tasks)).is_ok());
  EXPECT_GT(flight::samples_taken(), lines_before);
  flight::stop();
  std::remove(path.c_str());
  metrics::set_enabled(was);
}

TEST(WorkPoolTest, TaskScopeNestsPoolSpansUnderSubmitter) {
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  trace::set_enabled(true);
  trace::reset();
  trace::set_thread_pid(7);
  std::uint64_t parent_id = 0;
  {
    trace::Span submit_span("pool.submit");
    parent_id = submit_span.id();
    const trace::TaskContext ctx = trace::TaskContext::capture();
    EXPECT_EQ(ctx.parent_span, parent_id);
    EXPECT_EQ(ctx.pid, 7u);
    WorkPool pool(2);
    std::vector<WorkPool::Task> tasks;
    for (int i = 0; i < 6; ++i) {
      tasks.push_back([ctx] {
        trace::TaskScope scope(ctx);
        trace::Span span("pool.task");
        return Status::ok();
      });
    }
    EXPECT_TRUE(pool.run_batch(std::move(tasks)).is_ok());
  }
  trace::set_thread_pid(0);
  int task_spans = 0;
  for (const trace::SpanRecord& rec : trace::snapshot()) {
    if (std::string_view(rec.name) != "pool.task") continue;
    ++task_spans;
    // Parented (and pid-tagged) as if it ran inline under the submitting
    // span, wherever it executed. Depth stays per-thread: 0 on a worker
    // (root + parent hint), 1 when the caller drained it under its own
    // open submit span.
    EXPECT_EQ(rec.parent, parent_id);
    EXPECT_EQ(rec.pid, 7u);
    EXPECT_LE(rec.depth, 1u);
  }
  EXPECT_EQ(task_spans, 6);
  trace::set_enabled(false);
  trace::reset();
  metrics::set_enabled(was);
}

TEST(WorkPoolTest, SubmitRunsDetachedTasksExactlyOnce) {
  // Detached tasks execute without the caller waiting; a latch proves all
  // of them ran, and the counter that they ran exactly once each.
  WorkPool pool(3);
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (ran.fetch_add(1, std::memory_order_relaxed) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 10s, [&] {
    return ran.load(std::memory_order_relaxed) == kTasks;
  }));
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(WorkPoolTest, SubmitOnZeroWorkerPoolRunsInline) {
  WorkPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // inline: done before submit returned
}

TEST(WorkPoolTest, DestructorExecutesQueuedDetachedTasks) {
  // "Submitted implies executed" must hold through shutdown: tasks still
  // queued when the destructor runs are drained by it, including tasks a
  // drained task re-submits.
  std::atomic<int> ran{0};
  {
    WorkPool pool(1);
    // Park the single worker so later submissions stack up in the queue.
    std::atomic<bool> release{false};
    pool.submit([&] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran, &pool, i] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 0) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    release.store(true, std::memory_order_release);
  }
  EXPECT_EQ(ran.load(), 9);
}

TEST(WorkPoolTest, EnvPackThreadsParsesAndRejectsGarbage) {
  ASSERT_EQ(::unsetenv("FLEXIO_PACK_THREADS"), 0);
  EXPECT_EQ(WorkPool::env_pack_threads(1), 1);
  ASSERT_EQ(::setenv("FLEXIO_PACK_THREADS", "4", 1), 0);
  EXPECT_EQ(WorkPool::env_pack_threads(1), 4);
  ASSERT_EQ(::setenv("FLEXIO_PACK_THREADS", "0", 1), 0);
  EXPECT_EQ(WorkPool::env_pack_threads(3), 3);
  ASSERT_EQ(::setenv("FLEXIO_PACK_THREADS", "banana", 1), 0);
  EXPECT_EQ(WorkPool::env_pack_threads(2), 2);
  ASSERT_EQ(::setenv("FLEXIO_PACK_THREADS", "-2", 1), 0);
  EXPECT_EQ(WorkPool::env_pack_threads(1), 1);
  ASSERT_EQ(::unsetenv("FLEXIO_PACK_THREADS"), 0);
}

}  // namespace
}  // namespace flexio::util
