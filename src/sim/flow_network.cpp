#include "sim/flow_network.h"

#include <algorithm>
#include <limits>

namespace flexio::sim {

namespace {
// Completion slop: fluid-model arithmetic leaves sub-byte residues.
constexpr double kEpsilonBytes = 1e-6;
}

LinkId FlowNetwork::add_link(double capacity_bps, std::string name) {
  FLEXIO_CHECK(capacity_bps > 0);
  links_.push_back(Link{capacity_bps, std::move(name), {}, 0, 0});
  return static_cast<LinkId>(links_.size() - 1);
}

void FlowNetwork::start_flow(std::vector<LinkId> path, double bytes,
                             std::function<void(SimTime)> on_done) {
  FLEXIO_CHECK(bytes >= 0);
  progress_to(engine_->now());
  if (bytes <= kEpsilonBytes || path.empty()) {
    // Degenerate flows complete "immediately" but still asynchronously so
    // callers can rely on callback ordering.
    engine_->schedule_after(0.0, [cb = std::move(on_done), this] {
      cb(engine_->now());
    });
    return;
  }
  for (LinkId l : path) {
    Link& link = links_[static_cast<std::size_t>(l)];
    if (link.active == 0) link.last_busy_start = engine_->now();
    ++link.active;
    link.stats.bytes_carried += bytes;
  }
  flows_.push_back(Flow{std::move(path), bytes, 0.0, std::move(on_done)});
  replan();
}

void FlowNetwork::progress_to(SimTime now) {
  const double dt = now - last_progress_;
  if (dt > 0) {
    for (Flow& f : flows_) f.remaining -= f.rate * dt;
  }
  last_progress_ = now;
}

void FlowNetwork::replan() {
  // Progressive filling: repeatedly saturate the tightest link, freezing
  // the rates of flows that cross it.
  const std::size_t nf = flows_.size();
  std::vector<bool> fixed(nf, false);
  std::vector<double> residual(links_.size());
  std::vector<int> unfixed_count(links_.size(), 0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].capacity;
  }
  for (std::size_t i = 0; i < nf; ++i) {
    for (LinkId l : flows_[i].path) {
      ++unfixed_count[static_cast<std::size_t>(l)];
    }
  }
  std::size_t fixed_flows = 0;
  while (fixed_flows < nf) {
    // Find the bottleneck link: smallest per-flow fair share.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = links_.size();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (unfixed_count[l] == 0) continue;
      // Clamp: floating-point residue can drive residual slightly negative.
      const double share = std::max(residual[l], 0.0) / unfixed_count[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    if (best_link == links_.size()) break;  // no constrained flows remain
    for (std::size_t i = 0; i < nf; ++i) {
      if (fixed[i]) continue;
      const auto& path = flows_[i].path;
      if (std::find(path.begin(), path.end(),
                    static_cast<LinkId>(best_link)) == path.end()) {
        continue;
      }
      // Floor keeps completion times finite even in pathological cases.
      flows_[i].rate = std::max(best_share, 1.0);
      fixed[i] = true;
      ++fixed_flows;
      for (LinkId l : path) {
        const auto lu = static_cast<std::size_t>(l);
        residual[lu] -= best_share;
        --unfixed_count[lu];
      }
    }
    residual[best_link] = 0;
    unfixed_count[best_link] = 0;
  }

  // Schedule the next completion.
  if (pending_event_ != 0) {
    engine_->cancel(pending_event_);
    pending_event_ = 0;
  }
  if (flows_.empty()) return;
  double earliest = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    FLEXIO_CHECK(f.rate > 0);
    earliest = std::min(earliest, f.remaining / f.rate);
  }
  pending_event_ = engine_->schedule_after(std::max(earliest, 0.0),
                                           [this] { on_completion_event(); });
}

void FlowNetwork::on_completion_event() {
  pending_event_ = 0;
  progress_to(engine_->now());
  // Collect finished flows first: their callbacks may start new flows.
  std::vector<std::function<void(SimTime)>> done;
  for (std::size_t i = 0; i < flows_.size();) {
    if (flows_[i].remaining <= kEpsilonBytes) {
      for (LinkId l : flows_[i].path) {
        Link& link = links_[static_cast<std::size_t>(l)];
        --link.active;
        if (link.active == 0) {
          link.stats.busy_time += engine_->now() - link.last_busy_start;
        }
      }
      done.push_back(std::move(flows_[i].on_done));
      flows_[i] = std::move(flows_.back());
      flows_.pop_back();
    } else {
      ++i;
    }
  }
  replan();
  const SimTime now = engine_->now();
  for (auto& cb : done) cb(now);
}

}  // namespace flexio::sim
