// Graph-to-architecture-tree mapping (SCOTCH-style dual recursive
// bipartitioning).
//
// At each tree node the vertex set is partitioned among the children with
// sizes bounded by each child's core capacity; heavy edges therefore sink
// as deep into the hierarchy as possible (same socket before same node
// before same machine). The result assigns every process a distinct core.
#pragma once

#include "placement/arch_tree.h"
#include "placement/graph.h"
#include "util/status.h"

namespace flexio::placement {

/// Map every vertex of `graph` to a distinct core of `tree`. Requires
/// graph.size() <= tree.total_cores(). Children are filled first-fit, so
/// the mapping is compact (uses the fewest nodes the capacities allow).
StatusOr<std::vector<long>> map_graph(const CommGraph& graph,
                                      const ArchTree& tree);

/// Communication cost of a mapping: sum over edges of weight x
/// core_distance (the mapper's objective; exposed for tests/benches).
double mapping_cost(const CommGraph& graph, const ArchTree& tree,
                    const std::vector<long>& core_of);

}  // namespace flexio::placement
