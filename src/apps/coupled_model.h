// Performance model of a coupled simulation + analytics run.
//
// This is the performance plane of the reproduction (DESIGN.md section 2):
// given a machine description, an application profile, and a placement
// decision, compute the Total Execution Time, node-hours, per-phase
// breakdown, data-movement volume, and cache behaviour that the paper's
// evaluation section reports. Compute phases follow an Amdahl model
// ("there are code regions in GTS where only the main thread is active"),
// movement runs on the max-min flow network (incast onto staging nodes,
// non-scaling file system), co-located analytics interfere through the
// shared-L3 model, and the coupled run executes as a two-stage pipeline.
#pragma once

#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/flow_network.h"
#include "sim/machine.h"
#include "util/status.h"

namespace flexio::apps {

enum class AnalyticsPlacement {
  kInline,      // called from the simulation ranks, same address space
  kHelperCore,  // dedicated cores on the simulation's nodes, via shm
  kStaging,     // dedicated nodes, via RDMA
  kHybrid,      // analytics spread over sim + remote nodes (data-aware S3D)
  kNone,        // solo run: the lower-bound series of Figs. 6 and 9
};

std::string_view analytics_placement_name(AnalyticsPlacement p);

struct CoupledConfig {
  sim::MachineDesc machine;

  // --- simulation shape --------------------------------------------------
  int sim_ranks = 4;
  int threads_per_rank = 4;
  /// Compute work of one I/O interval at one thread, seconds per rank.
  double interval_compute_1t = 4.0;
  /// Fraction of that work that cannot use extra threads (Amdahl).
  double serial_fraction = 0.74;
  /// Internal MPI time per interval per rank, when unperturbed.
  double sim_mpi_seconds = 0.05;
  /// Extra multiplier on internal MPI when ranks spread across more nodes
  /// than the compact placement would use (hybrid placements).
  double mpi_spread_penalty = 1.0;
  /// Output volume per rank per I/O interval.
  double output_bytes_per_rank = 110e6;

  // --- analytics shape ---------------------------------------------------
  int analytics_ranks = 4;
  /// Scalable analytics work per simulation rank's data, core-seconds.
  double analytics_work_per_sim_rank = 1.0;
  /// Non-scalable per-interval cost (global merges, compositing, shared
  /// file-system output) as a function of participating processes P:
  /// nonscalable_base + nonscalable_log * log2(P)  (reduction-tree cost).
  double nonscalable_base = 0.0;
  double nonscalable_log = 0.0;
  /// Bytes of rendered/derived output the analytics write to the shared
  /// file system each interval (S3D images; 0 for GTS).
  double analytics_file_bytes = 0.0;

  // --- placement & transports --------------------------------------------
  AnalyticsPlacement placement = AnalyticsPlacement::kHelperCore;
  bool async_movement = true;
  /// Thread/process binding respects NUMA domains (false costs the
  /// cross-domain memory penalty -- the holistic-vs-topology gap).
  bool numa_aligned_threads = true;
  /// FlexIO shm queues/pools pinned in the producer's NUMA domain.
  bool numa_aligned_buffers = true;
  /// Handshake caching level reduces per-interval control cost.
  bool handshake_cached = true;

  // --- cache model ---------------------------------------------------------
  sim::CacheWorkload sim_cache{3.0 * (1 << 20), 8.0, 0.09};
  double analytics_ws_bytes = 3.5 * (1 << 20);

  int intervals = 10;
};

/// Per-interval phase times (Figure 7's bars).
struct PhaseBreakdown {
  double sim_compute = 0;     // cycle1 + cycle2
  double sim_mpi = 0;
  double sim_io = 0;          // simulation-visible data movement
  double analytics = 0;       // analytics busy time
  double analytics_idle = 0;  // per interval, when pipelined
};

struct CoupledResult {
  double total_seconds = 0;      // Total Execution Time (Section III.A)
  double node_hours = 0;         // Total CPU Hours metric: nodes x hours
  int nodes_used = 0;
  int sim_nodes = 0;
  int analytics_nodes = 0;       // extra staging nodes
  double inter_node_bytes = 0;   // per whole run, sim->analytics movement
  double movement_seconds = 0;   // per interval, wherever it runs
  PhaseBreakdown interval;
  // Figure 8 outputs.
  double l3_mpki_solo = 0;
  double l3_mpki_corun = 0;
  double cache_slowdown = 1.0;   // multiplier applied to sim compute
};

/// Evaluate the model. Deterministic.
StatusOr<CoupledResult> simulate_coupled(const CoupledConfig& config);

}  // namespace flexio::apps
