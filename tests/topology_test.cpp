// Tests for the torus and fat-tree interconnect models.
#include <gtest/gtest.h>

#include <set>

#include "sim/topology.h"

namespace flexio::sim {
namespace {

TEST(TorusTest, CoordsRoundTrip) {
  EventEngine eng;
  FlowNetwork net(&eng);
  TorusTopology torus(&net, {3, 4, 5}, 100, 200);
  EXPECT_EQ(torus.num_nodes(), 60);
  for (int node : {0, 1, 17, 42, 59}) {
    EXPECT_EQ(torus.node_at(torus.coords(node)), node);
  }
}

TEST(TorusTest, RoutesAreDimensionOrderedAndMinimal) {
  EventEngine eng;
  FlowNetwork net(&eng);
  TorusTopology torus(&net, {4, 4, 4}, 100, 200);
  // Neighbour: 1 hop; opposite corner: wrap-aware distance.
  EXPECT_EQ(torus.hop_count(0, torus.node_at({1, 0, 0})), 1);
  EXPECT_EQ(torus.hop_count(0, torus.node_at({0, 0, 3})), 1);  // wrap-around
  EXPECT_EQ(torus.hop_count(0, torus.node_at({2, 2, 2})), 6);  // 2+2+2
  EXPECT_EQ(torus.hop_count(5, 5), 0);
  // Path endpoints are the NICs; intermediate links are distinct.
  const auto path = torus.route(0, torus.node_at({2, 1, 3}));
  std::set<LinkId> uniq(path.begin(), path.end());
  EXPECT_EQ(uniq.size(), path.size());
}

TEST(TorusTest, LinkContentionSlowsSharedPaths) {
  // Two transfers sharing every torus hop take twice as long as one.
  auto run = [](int transfers) {
    EventEngine eng;
    FlowNetwork net(&eng);
    TorusTopology torus(&net, {4, 1, 1}, 1e9, 1e9);
    double last = 0;
    for (int i = 0; i < transfers; ++i) {
      // Same src/dst: identical path -> full contention. (Distinct flows.)
      torus.transfer(&net, 0, 2, 1e9,
                     [&last](SimTime t) { last = std::max(last, t); });
    }
    eng.run();
    return last;
  };
  const double one = run(1);
  const double two = run(2);
  EXPECT_NEAR(two, 2 * one, 1e-6);
}

TEST(TorusTest, DisjointPathsDontContend) {
  EventEngine eng;
  FlowNetwork net(&eng);
  TorusTopology torus(&net, {4, 4, 1}, 1e9, 1e9);
  double a = 0, b = 0;
  torus.transfer(&net, torus.node_at({0, 0, 0}), torus.node_at({1, 0, 0}),
                 1e9, [&a](SimTime t) { a = t; });
  torus.transfer(&net, torus.node_at({0, 2, 0}), torus.node_at({1, 2, 0}),
                 1e9, [&b](SimTime t) { b = t; });
  eng.run();
  EXPECT_NEAR(a, 1.0, 1e-6);  // full bandwidth each
  EXPECT_NEAR(b, 1.0, 1e-6);
}

TEST(FatTreeTest, IntraLeafSkipsTheCore) {
  EventEngine eng;
  FlowNetwork net(&eng);
  FatTreeTopology tree(&net, 32, 16, 1e9);
  EXPECT_EQ(tree.leaf_of(0), 0);
  EXPECT_EQ(tree.leaf_of(15), 0);
  EXPECT_EQ(tree.leaf_of(16), 1);
  EXPECT_EQ(tree.route(0, 5).size(), 2u);   // two NICs only
  EXPECT_EQ(tree.route(0, 20).size(), 4u);  // NICs + up + down trunks
  EXPECT_TRUE(tree.route(7, 7).empty());
}

TEST(FatTreeTest, OversubscriptionThrottlesCrossLeafTraffic) {
  // All 16 nodes of leaf 0 send to leaf 1 concurrently: with 2:1
  // oversubscription the trunk (8 GB/s) is the bottleneck, not the NICs.
  auto run = [](double oversub) {
    EventEngine eng;
    FlowNetwork net(&eng);
    FatTreeTopology tree(&net, 32, 16, 1e9, oversub);
    double last = 0;
    for (int n = 0; n < 16; ++n) {
      tree.transfer(&net, n, 16 + n, 1e9,
                    [&last](SimTime t) { last = std::max(last, t); });
    }
    eng.run();
    return last;
  };
  const double full_bisection = run(1.0);
  const double oversubscribed = run(2.0);
  EXPECT_NEAR(full_bisection, 1.0, 1e-6);   // NIC-bound
  EXPECT_NEAR(oversubscribed, 2.0, 1e-6);   // trunk-bound
}

TEST(MakeTopologyTest, PicksFamilyFromMachine) {
  EventEngine eng;
  FlowNetwork net(&eng);
  auto titan_topo = make_topology(&net, titan(), 64);
  EXPECT_GE(titan_topo->num_nodes(), 64);
  EXPECT_NE(dynamic_cast<TorusTopology*>(titan_topo.get()), nullptr);

  FlowNetwork net2(&eng);
  auto smoky_topo = make_topology(&net2, smoky(), 48);
  EXPECT_EQ(smoky_topo->num_nodes(), 48);
  EXPECT_NE(dynamic_cast<FatTreeTopology*>(smoky_topo.get()), nullptr);
}

TEST(MakeTopologyTest, IncastThroughRealTopology) {
  // The staging incast of the coupled model, now across torus hops: 8
  // senders into one receiver still serializes at the receiver NIC.
  EventEngine eng;
  FlowNetwork net(&eng);
  auto topo = make_topology(&net, titan(), 9);
  double last = 0;
  int done = 0;
  for (int s = 1; s < 9; ++s) {
    topo->transfer(&net, s, 0, 220e6, [&](SimTime t) {
      last = std::max(last, t);
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, 8);
  // Receiver NIC at 5 GB/s, 1.76 GB inbound: >= 0.352 s.
  EXPECT_GE(last, 8 * 220e6 / titan().nic_bw - 1e-9);
}

}  // namespace
}  // namespace flexio::sim
