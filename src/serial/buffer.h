// Low-level byte-buffer encode/decode primitives.
//
// Everything FlexIO puts on a wire or in a file funnels through these two
// classes: handshake/control messages (EVPath layer), the BP-like file
// format (adios layer), and DC plug-in deployment payloads. Layout is
// little-endian, varint-framed, and deliberately simple so it is easy to
// verify in tests.
#pragma once

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace flexio::serial {

/// Append-only encoder into an owned byte vector.
class BufWriter {
 public:
  /// Fixed-width little-endian primitives.
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { put_raw(&v, sizeof v); }

  /// LEB128 variable-length unsigned integer.
  void put_varint(std::uint64_t v);

  /// Length-prefixed string.
  void put_string(std::string_view s);

  /// Length-prefixed raw byte blob.
  void put_bytes(ByteView bytes);

  /// Raw bytes without a length prefix (caller knows the size).
  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::size_t size() const { return buf_.size(); }
  ByteView view() const { return ByteView(buf_); }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// One scatter-gather encoded message: `header` owns every byte the
/// encoder produced itself; `frags` lists the full wire order as views
/// alternating between slices of `header` and caller-owned payload
/// buffers. Concatenating the fragments yields exactly the bytes a flat
/// encode would have produced, so transports can either gather the views
/// directly into their own buffers (zero intermediate copy) or coalesce
/// as a fallback. Move-only: the header views in `frags` point into the
/// heap buffer, which travels with the vector on move but not on copy.
struct IovMessage {
  std::vector<std::byte> header;
  std::vector<ByteView> frags;
  std::size_t total_bytes = 0;

  IovMessage() = default;
  IovMessage(IovMessage&&) = default;
  IovMessage& operator=(IovMessage&&) = default;
  IovMessage(const IovMessage&) = delete;
  IovMessage& operator=(const IovMessage&) = delete;
};

/// Builds an IovMessage: header bytes stream through a normal BufWriter;
/// add_borrowed() splices a caller-owned payload into the wire order
/// without copying it. The caller's buffers must stay alive until the
/// finished message has been handed to a transport.
class IovBuilder {
 public:
  /// Encoder for the owned (header) portion of the message.
  BufWriter& header() { return w_; }

  /// Splice `payload` into the wire order at the current header position.
  void add_borrowed(ByteView payload) {
    splits_.push_back(Split{w_.size(), payload});
  }

  /// Assemble the fragment list. Consumes the builder.
  IovMessage finish() &&;

 private:
  struct Split {
    std::size_t header_end;  // header bytes preceding the payload
    ByteView payload;
  };
  BufWriter w_;
  std::vector<Split> splits_;
};

/// Cursor-based decoder over a borrowed byte view. All getters report
/// truncation through Status instead of reading out of bounds.
class BufReader {
 public:
  explicit BufReader(ByteView data) : data_(data) {}

  Status get_u8(std::uint8_t* v) { return get_raw(v, sizeof *v); }
  Status get_u16(std::uint16_t* v) { return get_raw(v, sizeof *v); }
  Status get_u32(std::uint32_t* v) { return get_raw(v, sizeof *v); }
  Status get_u64(std::uint64_t* v) { return get_raw(v, sizeof *v); }
  Status get_i64(std::int64_t* v) {
    std::uint64_t u = 0;
    FLEXIO_RETURN_IF_ERROR(get_u64(&u));
    *v = static_cast<std::int64_t>(u);
    return Status::ok();
  }
  Status get_f64(double* v) { return get_raw(v, sizeof *v); }

  Status get_varint(std::uint64_t* v);
  Status get_string(std::string* s);
  /// Returns a view into the underlying buffer (no copy).
  Status get_bytes(ByteView* bytes);

  Status get_raw(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) {
      return make_error(ErrorCode::kOutOfRange, "buffer underrun");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::ok();
  }

  /// Borrow `n` bytes without copying.
  Status get_view(std::size_t n, ByteView* out) {
    if (pos_ + n > data_.size()) {
      return make_error(ErrorCode::kOutOfRange, "buffer underrun");
    }
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::ok();
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }
  Status seek(std::size_t pos) {
    if (pos > data_.size()) {
      return make_error(ErrorCode::kOutOfRange, "seek past end");
    }
    pos_ = pos;
    return Status::ok();
  }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace flexio::serial
