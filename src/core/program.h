// In-process "parallel program" with coordinator collectives.
//
// The reproduction runs each MPI program (simulation, analytics) as a set
// of threads, one per rank. FlexIO's connection/handshake protocol needs
// exactly three program-local collectives (paper Section II.C): gather to
// the elected coordinator (Steps 1.s/1.a), broadcast from the coordinator
// (Step 3), and a barrier. Rank 0 is the coordinator, matching the paper's
// "elect a local coordinator".
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace flexio {

class Program {
 public:
  /// A program named `name` with `size` ranks.
  Program(std::string name, int size);

  const std::string& name() const { return name_; }
  int size() const { return size_; }
  static constexpr int kCoordinator = 0;

  /// Endpoint name for one rank, shared convention across the runtime.
  std::string endpoint_name(int rank) const {
    return name_ + "." + std::to_string(rank);
  }

  /// Gather: every rank contributes a byte blob; the coordinator's
  /// `all` receives them indexed by rank (others get an empty vector).
  /// All ranks must call; completes when everyone arrives.
  Status gather(int rank, ByteView contribution,
                std::vector<std::vector<std::byte>>* all,
                std::chrono::nanoseconds timeout);

  /// Broadcast: the coordinator's `data` is distributed to every rank.
  Status broadcast(int rank, std::vector<std::byte>* data,
                   std::chrono::nanoseconds timeout);

  /// Barrier across all ranks.
  Status barrier(int rank, std::chrono::nanoseconds timeout);

 private:
  /// One reusable collective slot with generation counting so back-to-back
  /// collectives do not bleed into each other.
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t generation = 0;
    int arrived = 0;
    int departed = 0;
    std::vector<std::vector<std::byte>> contributions;
    std::vector<std::byte> bcast_data;
  };

  std::string name_;
  int size_;
  Slot gather_slot_;
  Slot bcast_slot_;
  Slot barrier_slot_;
};

}  // namespace flexio
