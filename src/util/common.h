// Basic shared definitions for the FlexIO reproduction.
//
// Every module includes this header; keep it tiny and dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string_view>

namespace flexio {

/// Read-only view over raw bytes (wire payloads, array slabs, ...).
using ByteView = std::span<const std::byte>;
/// Mutable view over raw bytes.
using MutableByteView = std::span<std::byte>;

/// Process-global rank of a "process" in an in-process parallel program.
using Rank = int;

/// Logical simulation output step index (ADIOS timestep).
using StepId = std::int64_t;

/// Reinterpret a typed object span as bytes.
template <typename T>
inline ByteView as_bytes_view(std::span<const T> s) {
  return std::as_bytes(s);
}

/// Round `v` up to the next multiple of `align` (align must be a power of 2).
constexpr std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// True when `v` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[noreturn]] inline void fatal(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "FLEXIO FATAL %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace flexio

/// Always-on invariant check. Used for programmer errors, not data errors:
/// data errors travel through Status.
#define FLEXIO_CHECK(cond)                                   \
  do {                                                       \
    if (!(cond)) ::flexio::fatal(__FILE__, __LINE__, #cond); \
  } while (0)
