#include "shm/spsc_queue.h"

#include "util/metrics.h"

namespace flexio::shm {

namespace {
constexpr std::uint32_t kEmpty = 0;
constexpr std::uint32_t kFull = 1;

// Process-global observability for all queues (per-queue detail stays in
// QueueStats). Occupancy is a gauge: +1 per publish, -1 per consume, so a
// snapshot shows entries in flight across every live queue; the spin
// counters expose backpressure (producer blocked on a full ring) and
// starvation (consumer polling an empty one).
metrics::Gauge& occupancy_gauge() {
  static metrics::Gauge& g = metrics::gauge("shm.queue.occupancy");
  return g;
}
metrics::Counter& full_spin_counter() {
  static metrics::Counter& c = metrics::counter("shm.queue.full_spins");
  return c;
}
metrics::Counter& empty_spin_counter() {
  static metrics::Counter& c = metrics::counter("shm.queue.empty_spins");
  return c;
}
metrics::Counter& enqueued_counter() {
  static metrics::Counter& c = metrics::counter("shm.queue.enqueued");
  return c;
}
}  // namespace

SpscQueue::SpscQueue(std::size_t entries, std::size_t payload_bytes)
    : entries_(entries),
      payload_bytes_(payload_bytes),
      stride_(align_up(sizeof(EntryHeader) + payload_bytes, kCacheLineSize)) {
  FLEXIO_CHECK(entries >= 2);
  FLEXIO_CHECK(payload_bytes >= 1);
  // Over-allocate one cache line so we can align the base.
  storage_raw_size_ = entries_ * stride_ + kCacheLineSize;
  auto* raw = new std::byte[storage_raw_size_];
  storage_.reset(raw);
  const auto base = reinterpret_cast<std::uintptr_t>(raw);
  aligned_offset_ = align_up(base, kCacheLineSize) - base;
  for (std::size_t i = 0; i < entries_; ++i) {
    auto* h = header(i);
    new (&h->state) std::atomic<std::uint32_t>(kEmpty);
    h->size = 0;
  }
}

SpscQueue::~SpscQueue() = default;

bool SpscQueue::try_enqueue(ByteView msg) {
  FLEXIO_CHECK(msg.size() <= payload_bytes_);
  const std::size_t idx = producer_.head % entries_;
  EntryHeader* h = header(idx);
  if (h->state.load(std::memory_order_acquire) != kEmpty) {
    producer_.full_spins.fetch_add(1, std::memory_order_relaxed);
    if (metrics::enabled()) full_spin_counter().inc();
    return false;
  }
  h->size = static_cast<std::uint32_t>(msg.size());
  if (!msg.empty()) std::memcpy(payload(idx), msg.data(), msg.size());
  // Count before publishing: the release-store below orders the increment
  // ahead of the consumer's acquire of the flag, so a third-thread stats()
  // snapshot can never see dequeued > enqueued (found by
  // SpscStressTest.ThirdThreadStatsSnapshotsAreRaceFree).
  producer_.enqueued.fetch_add(1, std::memory_order_relaxed);
  h->state.store(kFull, std::memory_order_release);
  ++producer_.head;
  // One gate check for both metric touches: this is the hottest path in
  // the transport, so the disabled cost must stay a single load+branch.
  if (metrics::enabled()) {
    enqueued_counter().inc();
    occupancy_gauge().add(1);
  }
  return true;
}

bool SpscQueue::try_dequeue(std::vector<std::byte>* out) {
  const std::size_t idx = consumer_.tail % entries_;
  EntryHeader* h = header(idx);
  if (h->state.load(std::memory_order_acquire) != kFull) {
    consumer_.empty_spins.fetch_add(1, std::memory_order_relaxed);
    if (metrics::enabled()) empty_spin_counter().inc();
    return false;
  }
  out->resize(h->size);
  if (h->size > 0) std::memcpy(out->data(), payload(idx), h->size);
  h->state.store(kEmpty, std::memory_order_release);
  ++consumer_.tail;
  // Release so stats() can chain: enqueue-count -> flag release -> flag
  // acquire (above) -> this increment -> monitor's acquire load.
  consumer_.dequeued.fetch_add(1, std::memory_order_release);
  // Gate outside the accessor: the function-local static's init guard would
  // otherwise cost an extra load even with metrics off.
  if (metrics::enabled()) occupancy_gauge().sub(1);
  return true;
}

namespace {

/// Spin-with-yield until `fn` succeeds or the deadline passes.
template <typename Fn>
Status spin_until(Fn&& fn, std::chrono::nanoseconds timeout, const char* what) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int spins = 0;
  while (!fn()) {
    // Back off gently: pure spinning starves the peer on oversubscribed
    // hosts (the test machine has fewer cores than threads).
    if (++spins > 64) std::this_thread::yield();
    if (std::chrono::steady_clock::now() > deadline) {
      return make_error(ErrorCode::kTimeout, what);
    }
  }
  return Status::ok();
}

}  // namespace

Status SpscQueue::enqueue(ByteView msg, std::chrono::nanoseconds timeout) {
  return spin_until([&] { return try_enqueue(msg); }, timeout,
                    "shm queue enqueue timed out (consumer stalled)");
}

Status SpscQueue::dequeue(std::vector<std::byte>* out,
                          std::chrono::nanoseconds timeout) {
  return spin_until([&] { return try_dequeue(out); }, timeout,
                    "shm queue dequeue timed out (producer stalled)");
}

QueueStats SpscQueue::stats() const {
  QueueStats s;
  // Read dequeued first, with acquire: every counted dequeue was preceded
  // (in the happens-before order) by its enqueue's increment, so reading in
  // this order keeps the snapshot consistent (dequeued <= enqueued) even
  // while both sides are running.
  s.dequeued = consumer_.dequeued.load(std::memory_order_acquire);
  s.enqueued = producer_.enqueued.load(std::memory_order_relaxed);
  s.enqueue_full_spins = producer_.full_spins.load(std::memory_order_relaxed);
  s.dequeue_empty_spins = consumer_.empty_spins.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flexio::shm
