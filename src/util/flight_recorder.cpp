#include "util/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/stats_delta.h"
#include "util/strings.h"

namespace flexio::flight {

namespace detail {
std::atomic<bool> g_active{false};
std::atomic<bool> g_due{false};
}  // namespace detail

namespace {

/// Most recent lines kept in memory for telemetry::StatsServer /flight.
constexpr std::size_t kTailCapacity = 256;

/// Singleton recorder. All mutation happens under mutex_; the hot-path
/// gates (g_active / g_due) are plain relaxed flags mirrored from it.
class Recorder {
 public:
  static Recorder& instance() {
    static Recorder* r = new Recorder;  // leaked: sampled during shutdown
    return *r;
  }

  Status start(const Options& options) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "flight recorder already running");
    }
    options_ = options;
    out_.open(options_.path, std::ios::trunc);
    if (!out_) {
      return make_error(ErrorCode::kInternal,
                        "cannot open flight-recorder file: " + options_.path);
    }
    encoder_.prime();
    seq_ = 0;
    lines_ = 0;
    bytes_ = 0;
    running_ = true;
    stop_requested_ = false;
    detail::g_active.store(true, std::memory_order_relaxed);
    detail::g_due.store(false, std::memory_order_relaxed);
    write_line(str_format("{\"schema\":\"flexio-stats-v1\",\"seq\":0,"
                          "\"t_ns\":%llu,\"start\":true}",
                          static_cast<unsigned long long>(metrics::now_ns())));
    if (options_.background) {
      thread_ = std::thread([this] { run(); });
    }
    return Status::ok();
  }

  void stop() {
    std::thread to_join;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!running_) return;
      stop_requested_ = true;
      cv_.notify_all();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
    std::unique_lock<std::mutex> lock(mutex_);
    sample_locked();  // final sample catches anything since the last tick
    running_ = false;
    detail::g_active.store(false, std::memory_order_relaxed);
    detail::g_due.store(false, std::memory_order_relaxed);
    out_.close();
  }

  Status sample_now() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "flight recorder not running");
    }
    sample_locked();
    return Status::ok();
  }

  void request_sample() { detail::g_due.store(true, std::memory_order_relaxed); }

  void sample_due() {
    if (!detail::g_due.exchange(false, std::memory_order_relaxed)) return;
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) sample_locked();
  }

  std::uint64_t samples_taken() {
    std::unique_lock<std::mutex> lock(mutex_);
    return lines_;
  }

  void record_event(const std::string& line) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      write_line(line);
    } else {
      push_tail(line);  // tail keeps events even with no file open
    }
  }

  std::vector<std::string> tail(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t take = std::min(n, tail_.size());
    return std::vector<std::string>(tail_.end() - static_cast<long>(take),
                                    tail_.end());
  }

 private:
  Recorder() = default;

  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
      if (stop_requested_) break;
      sample_locked();
    }
  }

  void sample_locked() {
    const std::string line = encoder_.next_line(seq_ + 1, metrics::now_ns());
    if (line.empty()) return;
    ++seq_;
    write_line(line);
  }

  void write_line(const std::string& line) {
    if (bytes_ > 0 && bytes_ + line.size() + 1 > options_.max_bytes) {
      rotate();
    }
    out_ << line << "\n";
    out_.flush();
    bytes_ += line.size() + 1;
    ++lines_;
    push_tail(line);
  }

  void push_tail(const std::string& line) {
    tail_.push_back(line);
    if (tail_.size() > kTailCapacity) tail_.pop_front();
  }

  void rotate() {
    out_.close();
    for (int i = options_.max_rotations; i >= 1; --i) {
      const std::string from =
          i == 1 ? options_.path : options_.path + "." + std::to_string(i - 1);
      const std::string to = options_.path + "." + std::to_string(i);
      std::rename(from.c_str(), to.c_str());  // missing slots are fine
    }
    if (options_.max_rotations < 1) std::remove(options_.path.c_str());
    out_.open(options_.path, std::ios::trunc);
    bytes_ = 0;
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  Options options_;
  std::ofstream out_;
  telemetry::DeltaEncoder encoder_;
  std::deque<std::string> tail_;
  std::uint64_t seq_ = 0;
  std::uint64_t lines_ = 0;
  std::size_t bytes_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace

namespace detail {
void sample_due() { Recorder::instance().sample_due(); }
}  // namespace detail

void request_sample() { Recorder::instance().request_sample(); }

Status start(const Options& options) {
  return Recorder::instance().start(options);
}

void stop() { Recorder::instance().stop(); }

Status sample_now() { return Recorder::instance().sample_now(); }

std::uint64_t samples_taken() { return Recorder::instance().samples_taken(); }

void record_event(const std::string& line) {
  Recorder::instance().record_event(line);
}

std::vector<std::string> tail(std::size_t n) {
  return Recorder::instance().tail(n);
}

}  // namespace flexio::flight
