// Shared main() for the google-benchmark binaries: runs the registered
// benchmarks with the normal console output AND captures every
// per-repetition run into a bench::Report, so micro_* binaries emit the
// same BENCH_<name>.json artifact as the figure harnesses.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/report.h"

namespace flexio::bench {

/// Display reporter that forwards to the normal console reporter while
/// recording per-repetition adjusted real time (per iteration, in the
/// benchmark's time unit). Aggregate rows are skipped: Report computes its
/// own median/p99 from the raw repetitions. Wrapping the display reporter
/// (rather than acting as a file reporter) sidesteps the library's
/// file-reporter-requires---benchmark_out check.
class CaptureReporter : public ::benchmark::BenchmarkReporter {
 public:
  explicit CaptureReporter(::benchmark::BenchmarkReporter* inner)
      : inner_(inner) {}

  bool ReportContext(const Context& context) override {
    return inner_->ReportContext(context);
  }

  void Finalize() override { inner_->Finalize(); }

  void ReportRuns(const std::vector<Run>& runs) override {
    inner_->ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;
      Series& s = series_[run.benchmark_name()];
      s.unit = ::benchmark::GetTimeUnitString(run.time_unit);
      s.samples.push_back(run.GetAdjustedRealTime());
    }
  }

  void flush(Report* report) const {
    for (const auto& [name, s] : series_) {
      report->add_samples(name, s.unit, /*warmup=*/0,
                          static_cast<int>(s.samples.size()), s.samples);
    }
  }

 private:
  struct Series {
    std::string unit;
    std::vector<double> samples;
  };
  ::benchmark::BenchmarkReporter* inner_;
  std::map<std::string, Series> series_;
};

/// Drop-in replacement for BENCHMARK_MAIN(): unless the caller passed its
/// own --benchmark_repetitions, each benchmark runs `default_reps` times so
/// the report's median/p99 are over real repetitions.
inline int run_benchmarks_with_report(int argc, char** argv,
                                      const std::string& name,
                                      int default_reps = 5) {
  std::vector<char*> args(argv, argv + argc);
  std::string reps_flag =
      "--benchmark_repetitions=" + std::to_string(default_reps);
  bool has_reps = false;
  for (char* a : args) {
    if (std::strncmp(a, "--benchmark_repetitions", 23) == 0) has_reps = true;
  }
  if (!has_reps) args.push_back(reps_flag.data());
  int n = static_cast<int>(args.size());
  ::benchmark::Initialize(&n, args.data());
  if (::benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;

  Report report(name);
  CounterDelta delta;
  ::benchmark::ConsoleReporter console;
  CaptureReporter capture(&console);
  ::benchmark::RunSpecifiedBenchmarks(&capture);
  capture.flush(&report);
  delta.drain(&report);
  const Status st = report.write();
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace flexio::bench
