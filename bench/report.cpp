#include "bench/report.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "util/metrics.h"
#include "util/strings.h"

namespace flexio::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string format_double(double v) {
  // Bench numbers are nanoseconds and rates; fixed precision keeps the
  // files diffable without losing anything CI compares.
  return str_format("%.3f", v);
}

}  // namespace

double Report::quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::min(std::max(q, 0.0), 1.0);
  const std::size_t rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(samples.size()))));
  return samples[rank - 1];
}

void Report::add_samples(const std::string& label, const std::string& unit,
                         int warmup, int reps, std::vector<double> samples) {
  MetricSummary m;
  m.name = label;
  m.unit = unit;
  m.warmup = warmup;
  m.reps = reps;
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    m.min = samples.front();
    m.max = samples.back();
    m.median = quantile(samples, 0.5);
    m.p99 = quantile(samples, 0.99);
    double sum = 0;
    for (double s : samples) sum += s;
    m.mean = sum / static_cast<double>(samples.size());
  }
  metrics_.push_back(std::move(m));
}

std::string Report::json() const {
  std::string out = "{\n";
  out += str_format("  \"schema\": \"flexio-bench-v1\",\n");
  out += str_format("  \"name\": \"%s\",\n", json_escape(name_).c_str());
  out += "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const MetricSummary& m = metrics_[i];
    if (i) out += ",";
    out += "\n    {";
    out += str_format("\"name\": \"%s\", ", json_escape(m.name).c_str());
    out += str_format("\"unit\": \"%s\", ", json_escape(m.unit).c_str());
    out += str_format("\"warmup\": %d, \"reps\": %d, ", m.warmup, m.reps);
    out += str_format("\"median\": %s, ", format_double(m.median).c_str());
    out += str_format("\"p99\": %s, ", format_double(m.p99).c_str());
    out += str_format("\"mean\": %s, ", format_double(m.mean).c_str());
    out += str_format("\"min\": %s, ", format_double(m.min).c_str());
    out += str_format("\"max\": %s}", format_double(m.max).c_str());
  }
  out += metrics_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += str_format("\n    \"%s\": %llu", json_escape(name).c_str(),
                      static_cast<unsigned long long>(value));
  }
  out += counters_.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status Report::write() const {
  const char* dir = std::getenv("FLEXIO_BENCH_DIR");
  std::string path = dir && *dir ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open " + path);
  }
  out << json();
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "write failed: " + path);
}

CounterDelta::CounterDelta() {
  for (const auto& [name, m] : metrics::snapshot_all()) {
    if (m.kind == metrics::MetricSnapshot::Kind::kCounter) {
      base_[name] = m.counter;
    } else if (m.kind == metrics::MetricSnapshot::Kind::kHistogram) {
      hist_base_[name] = HistBase{m.hist.count, m.hist.sum};
    }
  }
}

void CounterDelta::drain(Report* report) const {
  for (const auto& [name, m] : metrics::snapshot_all()) {
    if (m.kind == metrics::MetricSnapshot::Kind::kCounter) {
      const auto it = base_.find(name);
      const std::uint64_t before = it == base_.end() ? 0 : it->second;
      if (m.counter > before) report->add_counter(name, m.counter - before);
    } else if (m.kind == metrics::MetricSnapshot::Kind::kHistogram) {
      const auto it = hist_base_.find(name);
      const HistBase before = it == hist_base_.end() ? HistBase{} : it->second;
      if (m.hist.count > before.count) {
        report->add_counter(name + ".count", m.hist.count - before.count);
        if (m.hist.sum > before.sum) {
          report->add_counter(name + ".sum", m.hist.sum - before.sum);
        }
      }
    }
  }
}

}  // namespace flexio::bench
