// Multi-threaded stress driver for the data-movement runtime.
//
// Runs real writer and reader rank threads through the full
// Runtime / StreamWriter / StreamReader path -- open handshake, step
// announces, redistribution, data movement, close -- and cross-checks every
// received element against a golden model. Unlike the gtest pipelines this
// driver reports failures as Status (threads record the first error instead
// of asserting), so torture tests can run it under injected faults, print
// the seed + fault plan, and decide per-run whether a failure is expected.
//
// Placement selects the transport the bus auto-picks:
//   kShm  -- readers on the writers' node (FastForward shm queues)
//   kRdma -- readers on another node (simulated NNTI RDMA; faults apply)
//   kFile -- method "BP": writers finish first, readers replay from files
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/wire.h"
#include "harness/fault_plan.h"
#include "util/status.h"

namespace flexio::torture {

enum class PlacementMode { kShm, kRdma, kFile };

std::string_view placement_name(PlacementMode mode);

struct StressConfig {
  int writers = 2;
  int readers = 2;
  int steps = 4;
  std::string caching = "none";  // none | local | all
  bool async_writes = false;
  PlacementMode placement = PlacementMode::kShm;
  std::string stream = "torture";
  int timeout_ms = 20000;
  std::string file_dir;  // required for kFile
  const FaultPlan* faults = nullptr;  // installed on the runtime's fabric
  /// Elastic membership: enables directory liveness (heartbeats + TTL) and
  /// honors the fault plan's rank actions (kill / leave / respawn /
  /// delay_hb) in the reader threads. Stream placements only.
  bool membership = false;
  int membership_ttl_ms = 250;
  /// Writer-side pacing: sleep this long after each end_step. Membership
  /// scenarios that depend on wall-clock TTL expiry (fencing a stalled
  /// rank) use it to keep the stream alive past the liveness deadline;
  /// everything else leaves it 0 and runs flat out.
  int step_delay_ms = 0;
  /// Writer-side packing concurrency (pack_threads method param): total
  /// threads packing + sending per-reader piece groups, including the
  /// caller. 1 = serial (the default and the baseline the parallel oracle
  /// compares against); stream placements only.
  int pack_threads = 1;
  /// Reader-side unpack concurrency (read_threads method param): total
  /// threads running plug-in + placement per delivered piece, including
  /// the caller. Same serial-default semantics as pack_threads; stream
  /// placements only.
  int read_threads = 1;
  /// Stream multiplexing (DESIGN.md "Stream multiplexing"): run this many
  /// identical writer/reader pipelines concurrently through ONE Runtime.
  /// streams > 1 forces shared_links, so every stream multiplexes over the
  /// shared per-(program, rank) endpoints of a single registry. Fault-plan
  /// rank actions and membership outcome checks apply to stream 0 only;
  /// the other streams share its links and must finish clean regardless of
  /// the churn (fabric-level faults still hit all of them). Stream
  /// placements only.
  int streams = 1;
  /// Multiplex even a single stream over shared endpoints (implied by
  /// streams > 1).
  bool shared_links = false;
  // Global 2-D field dimensions; must decompose evenly enough for
  // block_decompose on both sides.
  std::uint64_t rows = 24;
  std::uint64_t cols = 10;

  std::string label() const;
};

/// gtest-friendly printer (used by parameterized test listings).
std::ostream& operator<<(std::ostream& os, const StressConfig& cfg);

/// What actually happened to one reader rank under a membership run.
struct RankOutcome {
  bool ran = false;        // thread opened its reader successfully
  bool killed = false;     // simulate_crash fired
  bool left = false;       // graceful leave fired
  bool fenced = false;     // directory declared the rank dead while slow
  bool respawned = false;  // a late-join incarnation of this rank completed
  int steps_seen = 0;           // steps the original incarnation verified
  int steps_after_respawn = 0;  // steps the respawned incarnation verified
};

struct StressResult {
  Status status;  // first error observed by any rank thread
  /// Writer coordinator's close-time report as seen by reader rank 0
  /// (absent in file mode).
  std::optional<wire::MonitorReport> report;
  std::uint64_t elements_verified = 0;  // field + particle values checked
  /// Membership runs only: per-reader-rank outcome, the slowest single
  /// writer end_step (bounds the stall a dead reader may cause), and the
  /// directory's final membership epoch.
  std::vector<RankOutcome> reader_outcomes;
  double max_writer_step_seconds = 0.0;
  std::uint64_t final_epoch = 0;
};

/// Golden model: field value at (step, global row, global col).
inline double golden_field(int step, std::uint64_t row, std::uint64_t col) {
  return step * 1e6 + static_cast<double>(row) * 1e3 +
         static_cast<double>(col);
}

/// Golden model: particle attribute `idx` of writer `rank` at `step`.
inline double golden_particle(int rank, int step, std::uint64_t idx) {
  return rank * 1e4 + step * 1e2 + static_cast<double>(idx);
}

/// Particle count written by a rank (rank-dependent so redistribution of
/// unequal blocks is exercised).
inline std::uint64_t golden_particle_count(int rank) {
  return 5 + static_cast<std::uint64_t>(rank);
}

/// Handshake-count invariants from the paper's caching levels: caching=all
/// performs exactly one handshake and skips steps-1; none/local perform one
/// per step. Checked against the writer coordinator's MonitorReport.
std::uint64_t expected_handshakes_performed(const StressConfig& cfg);
std::uint64_t expected_handshakes_skipped(const StressConfig& cfg);
Status check_handshake_invariant(const StressConfig& cfg,
                                 const wire::MonitorReport& report);

/// Run one configuration to completion and verify all data; returns the
/// first failure (or ok) plus the writer report for invariant checks. Each
/// call uses a fresh Runtime.
StressResult run_stress(const StressConfig& cfg);

}  // namespace flexio::torture
