// Serial-vs-parallel oracle for the writer's parallel pack + send path.
//
// For every caching level, a seeded random geometry (writers, readers,
// field dims, steps, batching) runs the full stress pipeline serially
// (pack_threads=1) and again at 2 and 4 threads. The stress driver
// cross-checks every delivered element against the golden model, so two
// clean runs of the same config are byte-identical to the golden field --
// and therefore to each other -- regardless of thread count. On top of
// that, the flexio.pack.{bytes,memcpy_runs} counter deltas must be
// *identical* across thread counts: parallel pack must execute exactly
// the same strided copies as serial, just on more threads. Runs under
// TSan via the concurrency label (the acceptance gate for the full
// thread-count x caching matrix).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "harness/stress_driver.h"
#include "util/metrics.h"

namespace flexio::torture {
namespace {

std::uint64_t oracle_seed() {
  const char* env = std::getenv("FLEXIO_TORTURE_SEED");
  if (env == nullptr || *env == '\0') return 0x9ac40107ULL;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') {
    ADD_FAILURE() << "FLEXIO_TORTURE_SEED must be an integer, got \"" << env
                  << "\"";
    return 0x9ac40107ULL;
  }
  return seed;
}

struct PackCounters {
  std::uint64_t bytes = 0;
  std::uint64_t memcpy_runs = 0;
};

PackCounters pack_counters() {
  return PackCounters{metrics::counter("flexio.pack.bytes").value(),
                      metrics::counter("flexio.pack.memcpy_runs").value()};
}

class PackParallelOracleTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    was_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_); }

 private:
  bool was_ = false;
};

TEST_P(PackParallelOracleTest, ThreadCountNeverChangesBytesOrCopies) {
  const std::string caching = GetParam();
  const std::uint64_t seed = oracle_seed();
  // Derive the geometry from (seed, caching) so each caching level covers
  // a different random corner but a failing seed replays exactly.
  std::mt19937_64 rng(seed ^ std::hash<std::string>{}(caching));
  StressConfig base;
  base.caching = caching;
  base.placement = PlacementMode::kShm;
  base.writers = 1 + static_cast<int>(rng() % 3);       // 1..3
  base.readers = 2 + static_cast<int>(rng() % 3);       // 2..4
  base.steps = 2 + static_cast<int>(rng() % 3);         // 2..4
  base.rows = 12 * (1 + rng() % 4);                     // 12..48, /2 /3 /4
  base.cols = 8 + 2 * (rng() % 5);                      // 8..16
  base.async_writes = rng() % 2 == 0;
  SCOPED_TRACE("seed=" + std::to_string(seed) + " writers=" +
               std::to_string(base.writers) + " readers=" +
               std::to_string(base.readers) + " steps=" +
               std::to_string(base.steps) + " rows=" +
               std::to_string(base.rows) + " cols=" + std::to_string(base.cols) +
               (base.async_writes ? " async" : " sync") +
               "; replay with FLEXIO_TORTURE_SEED=" + std::to_string(seed));

  PackCounters serial_delta;
  std::uint64_t serial_verified = 0;
  for (const int pack : {1, 2, 4}) {
    StressConfig cfg = base;
    cfg.pack_threads = pack;
    cfg.stream = "pack_oracle_" + caching + "_" + std::to_string(pack);
    const PackCounters before = pack_counters();
    const StressResult result = run_stress(cfg);
    const PackCounters after = pack_counters();
    ASSERT_TRUE(result.status.is_ok())
        << "pack_threads=" << pack << ": " << result.status.to_string();
    // Every element verified against the golden model: any byte diverging
    // from the serial run fails inside run_stress before we get here.
    ASSERT_GT(result.elements_verified, 0u);
    const PackCounters delta{after.bytes - before.bytes,
                             after.memcpy_runs - before.memcpy_runs};
    if (pack == 1) {
      serial_delta = delta;
      serial_verified = result.elements_verified;
      continue;
    }
    EXPECT_EQ(delta.bytes, serial_delta.bytes) << "pack_threads=" << pack;
    EXPECT_EQ(delta.memcpy_runs, serial_delta.memcpy_runs)
        << "pack_threads=" << pack;
    EXPECT_EQ(result.elements_verified, serial_verified)
        << "pack_threads=" << pack;
  }
}

INSTANTIATE_TEST_SUITE_P(CachingMatrix, PackParallelOracleTest,
                         ::testing::Values("none", "local", "all"),
                         [](const auto& info) { return std::string(info.param); });

// ------------------------------------------------- reader unpack oracle --
//
// Mirror image of the pack oracle: for every caching level, the same
// seeded geometry runs serially (read_threads=1) and again at 2 and 4
// unpack threads. run_stress golden-verifies every delivered element, so a
// clean run is byte-identical to the serial one regardless of thread
// count. On top of that the deterministic unpack accounting must match
// exactly: the flexio.step.unpack.ns histogram gains one record per reader
// step whatever the thread count (the sum of per-task ns is attribution,
// not work done twice), flexio.bytes.received is identical, and the
// per-step critical path (max task) can never exceed the step's task sum.

struct UnpackCounters {
  std::uint64_t bytes_received = 0;
  std::uint64_t unpack_records = 0;
  std::uint64_t unpack_sum_ns = 0;
  std::uint64_t critical_records = 0;
  std::uint64_t critical_sum_ns = 0;
};

UnpackCounters unpack_counters() {
  const auto unpack = metrics::histogram("flexio.step.unpack.ns").snapshot();
  const auto critical =
      metrics::histogram("flexio.step.unpack.critical.ns").snapshot();
  return UnpackCounters{metrics::counter("flexio.bytes.received").value(),
                        unpack.count, unpack.sum, critical.count,
                        critical.sum};
}

class UnpackParallelOracleTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    was_ = metrics::enabled();
    metrics::set_enabled(true);
  }
  void TearDown() override { metrics::set_enabled(was_); }

 private:
  bool was_ = false;
};

TEST_P(UnpackParallelOracleTest, ThreadCountNeverChangesDeliveredBytes) {
  const std::string caching = GetParam();
  const std::uint64_t seed = oracle_seed();
  // Distinct rng stream from the pack oracle so the two cover different
  // random corners of the geometry space.
  std::mt19937_64 rng(seed ^ 0x5eadU ^ std::hash<std::string>{}(caching));
  StressConfig base;
  base.caching = caching;
  base.placement = PlacementMode::kShm;
  base.writers = 2 + static_cast<int>(rng() % 3);       // 2..4
  base.readers = 1 + static_cast<int>(rng() % 3);       // 1..3
  base.steps = 2 + static_cast<int>(rng() % 3);         // 2..4
  base.rows = 12 * (1 + rng() % 4);                     // 12..48, /2 /3 /4
  base.cols = 8 + 2 * (rng() % 5);                      // 8..16
  base.async_writes = rng() % 2 == 0;
  SCOPED_TRACE("seed=" + std::to_string(seed) + " writers=" +
               std::to_string(base.writers) + " readers=" +
               std::to_string(base.readers) + " steps=" +
               std::to_string(base.steps) + " rows=" +
               std::to_string(base.rows) + " cols=" + std::to_string(base.cols) +
               (base.async_writes ? " async" : " sync") +
               "; replay with FLEXIO_TORTURE_SEED=" + std::to_string(seed));

  std::uint64_t serial_bytes = 0;
  std::uint64_t serial_records = 0;
  std::uint64_t serial_verified = 0;
  for (const int read : {1, 2, 4}) {
    StressConfig cfg = base;
    cfg.read_threads = read;
    cfg.stream = "unpack_oracle_" + caching + "_" + std::to_string(read);
    const UnpackCounters before = unpack_counters();
    const StressResult result = run_stress(cfg);
    const UnpackCounters after = unpack_counters();
    ASSERT_TRUE(result.status.is_ok())
        << "read_threads=" << read << ": " << result.status.to_string();
    // Every element verified against the golden model: any byte diverging
    // from the serial run fails inside run_stress before we get here.
    ASSERT_GT(result.elements_verified, 0u);
    const std::uint64_t bytes = after.bytes_received - before.bytes_received;
    const std::uint64_t records = after.unpack_records - before.unpack_records;
    ASSERT_GT(bytes, 0u) << "read_threads=" << read;
    ASSERT_GT(records, 0u) << "read_threads=" << read;
    // One critical-path record lands with every unpack record, and a max
    // can never exceed its own sum.
    EXPECT_EQ(after.critical_records - before.critical_records, records)
        << "read_threads=" << read;
    EXPECT_LE(after.critical_sum_ns - before.critical_sum_ns,
              after.unpack_sum_ns - before.unpack_sum_ns)
        << "read_threads=" << read;
    if (read == 1) {
      serial_bytes = bytes;
      serial_records = records;
      serial_verified = result.elements_verified;
      continue;
    }
    EXPECT_EQ(bytes, serial_bytes) << "read_threads=" << read;
    EXPECT_EQ(records, serial_records) << "read_threads=" << read;
    EXPECT_EQ(result.elements_verified, serial_verified)
        << "read_threads=" << read;
  }
}

INSTANTIATE_TEST_SUITE_P(CachingMatrix, UnpackParallelOracleTest,
                         ::testing::Values("none", "local", "all"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace flexio::torture
