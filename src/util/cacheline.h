// Cache-line utilities for the shared-memory transport.
//
// The paper's FastForward-style queues require that producer and consumer
// cursors live on different cache lines and that queue entries are aligned
// and padded so entries never share a line (Section II.D).
#pragma once

#include <cstddef>
#include <new>

namespace flexio {

/// Assumed destructive interference size. GCC 12 defines
/// std::hardware_destructive_interference_size but warns that it is ABI
/// fragile; the paper's target machines (Interlagos, Barcelona) use 64 bytes.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that consecutive Padded<T> never share a cache line.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};
static_assert(sizeof(Padded<char>) == kCacheLineSize);
static_assert(alignof(Padded<char>) == kCacheLineSize);

}  // namespace flexio
