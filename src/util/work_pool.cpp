#include "util/work_pool.h"

#include <cstdlib>

#include "util/flight_recorder.h"
#include "util/log.h"
#include "util/metrics.h"

namespace flexio::util {

namespace {

metrics::Counter& pool_tasks_counter() {
  static metrics::Counter& c = metrics::counter("flexio.pool.tasks");
  return c;
}
metrics::Histogram& pool_queue_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.pool.queue_ns");
  return h;
}
metrics::Histogram& pool_exec_hist() {
  static metrics::Histogram& h = metrics::histogram("flexio.pool.exec_ns");
  return h;
}

}  // namespace

WorkPool::WorkPool(int workers) {
  threads_.reserve(workers > 0 ? static_cast<std::size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Stop wins over queued detached work in worker_loop, so tasks may still
  // be queued after the join; run them here -- "submitted implies executed"
  // holds through shutdown. A drained task that re-submits just appends to
  // the same queue and runs in this loop.
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (detached_.empty()) break;
      fn = std::move(detached_.front());
      detached_.pop_front();
    }
    fn();
  }
  // Shutdown-while-busy: a batch published from another thread keeps its
  // caller draining after the workers exit; wait for it to unpublish so
  // the mutex and condvars are never destroyed under a live run_batch.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return batch_ == nullptr; });
}

void WorkPool::submit(std::function<void()> fn) {
  bool inline_run = threads_.empty();
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      inline_run = true;  // racing shutdown: the destructor may already be
                          // past its queue drain, so do not enqueue
    } else {
      detached_.push_back(std::move(fn));
    }
  }
  if (inline_run) {
    fn();
    return;
  }
  work_cv_.notify_one();
}

void WorkPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || !detached_.empty() ||
             (batch_ != nullptr && generation_ != seen_generation);
    });
    // Stop wins: the batch's caller keeps draining (shutdown-while-busy
    // never deadlocks) and the destructor drains leftover detached tasks.
    if (stop_) return;
    if (!detached_.empty()) {
      std::function<void()> fn = std::move(detached_.front());
      detached_.pop_front();
      lock.unlock();
      const std::uint64_t claim_ns = metrics::now_ns();
      fn();
      pool_exec_hist().record(metrics::now_ns() - claim_ns);
      pool_tasks_counter().inc();
      flight::maybe_sample();
      lock.lock();
      continue;
    }
    Batch* batch = batch_;
    seen_generation = generation_;
    ++batch->active_workers;
    lock.unlock();
    drain(batch);
    flight::maybe_sample();
    lock.lock();
    if (--batch->active_workers == 0 && batch->remaining == 0) {
      done_cv_.notify_all();
    }
  }
}

void WorkPool::drain(Batch* batch) {
  const std::size_t count = batch->tasks->size();
  for (;;) {
    const std::size_t i =
        batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    const std::uint64_t claim_ns = metrics::now_ns();
    pool_queue_hist().record(claim_ns - batch->publish_ns);
    try {
      (*batch->statuses)[i] = (*batch->tasks)[i]();
    } catch (...) {
      (*batch->exceptions)[i] = std::current_exception();
    }
    pool_exec_hist().record(metrics::now_ns() - claim_ns);
    pool_tasks_counter().inc();
    std::lock_guard<std::mutex> lock(mutex_);
    if (--batch->remaining == 0 && batch->active_workers == 0) {
      done_cv_.notify_all();
    }
  }
}

Status WorkPool::run_batch(std::vector<Task> tasks) {
  if (tasks.empty()) return Status::ok();
  std::vector<Status> statuses(tasks.size(), Status::ok());
  std::vector<std::exception_ptr> exceptions(tasks.size());
  Batch batch;
  batch.tasks = &tasks;
  batch.statuses = &statuses;
  batch.exceptions = &exceptions;
  batch.remaining = tasks.size();
  batch.publish_ns = metrics::now_ns();

  if (threads_.empty()) {
    // Inline fallback: drain on the caller in submission order. remaining
    // is only touched by this thread, so the mutex traffic inside drain()
    // is uncontended.
    drain(&batch);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &batch;
      ++generation_;
    }
    work_cv_.notify_all();
    // The caller is a full participant: with W workers the batch runs at
    // concurrency W+1, and a pool whose workers are momentarily busy still
    // makes progress on the submitting thread.
    drain(&batch);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.remaining == 0 && batch.active_workers == 0;
    });
    // Unpublish before the stack-owned batch state goes away. Workers that
    // wake late see batch_ == nullptr (or an unchanged generation) and go
    // back to waiting; a destructor blocked on shutdown-while-busy wakes.
    batch_ = nullptr;
    done_cv_.notify_all();
  }

  for (std::size_t i = 0; i < exceptions.size(); ++i) {
    if (exceptions[i]) std::rethrow_exception(exceptions[i]);
  }
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].is_ok()) return statuses[i];
  }
  return Status::ok();
}

namespace {

int env_threads(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 1 || n > 256) {
    FLEXIO_LOG(kWarn) << "ignoring " << name << "=" << v
                      << " (must be an integer in [1, 256])";
    return fallback;
  }
  return static_cast<int>(n);
}

}  // namespace

int WorkPool::env_pack_threads(int fallback) {
  return env_threads("FLEXIO_PACK_THREADS", fallback);
}

int WorkPool::env_read_threads(int fallback) {
  return env_threads("FLEXIO_READ_THREADS", fallback);
}

}  // namespace flexio::util
