// Many-stream multiplexing (DESIGN.md "Stream multiplexing"): wire-prefix
// compatibility, registry endpoint sharing (O(links) not O(streams)),
// per-stream demux routing, credit backpressure isolation, DRR fairness of
// the shared drain path, mode-mismatch rejection at open, and plan-cache
// keying when two streams with identical variable names share one link.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>

#include "core/program.h"
#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/metrics.h"

namespace flexio {
namespace {

using namespace std::chrono_literals;
using adios::Box;
using adios::Dims;
using serial::DataType;

/// Seed for the randomized payload tests; override with FLEXIO_TEST_SEED to
/// replay a failure.
std::uint32_t test_seed() {
  if (const char* env = std::getenv("FLEXIO_TEST_SEED")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 0xF1E10;
}

// ---------------------------------------------------- wire compatibility --

TEST(WireMuxTest, PrefixRoundTrips) {
  const std::uint64_t sid = wire::stream_id_hash("temps");
  ASSERT_NE(sid, 0u);
  wire::OpenRequest req{"viz", 4};
  const auto inner = wire::encode(req);

  auto framed = wire::encode_mux_prefix(sid);
  framed.insert(framed.end(), inner.begin(), inner.end());

  auto mux = wire::decode_mux(ByteView(framed));
  ASSERT_TRUE(mux.is_ok()) << mux.status().to_string();
  EXPECT_EQ(mux.value().stream_id, sid);
  ASSERT_EQ(mux.value().inner.size(), inner.size());

  auto decoded = wire::decode_open_request(mux.value().inner);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().reader_program, "viz");
}

TEST(WireMuxTest, LegacyUnprefixedFramesStillParse) {
  // Wire-format versioning: a frame produced by a pre-multiplexing build
  // (no prefix) must pass through decode_mux untouched with stream_id 0.
  wire::StepAnnounce ann;
  ann.step = 3;
  const auto raw = wire::encode(ann);

  auto mux = wire::decode_mux(ByteView(raw));
  ASSERT_TRUE(mux.is_ok()) << mux.status().to_string();
  EXPECT_EQ(mux.value().stream_id, 0u);
  EXPECT_EQ(mux.value().inner.size(), raw.size());
  EXPECT_EQ(mux.value().inner.data(), ByteView(raw).data());

  auto decoded = wire::decode_step_announce(mux.value().inner);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().step, 3);
}

TEST(WireMuxTest, PrefixedFrameFailsLoudlyInLegacyPeek) {
  // The prefix tag sits outside the MsgType range, so a legacy decoder fed
  // a multiplexed frame errors instead of misparsing it as a protocol frame.
  auto framed = wire::encode_mux_prefix(wire::stream_id_hash("s"));
  const auto inner = wire::encode_close(5);
  framed.insert(framed.end(), inner.begin(), inner.end());
  EXPECT_FALSE(wire::peek_type(ByteView(framed)).is_ok());
}

TEST(WireMuxTest, NamingConventions) {
  // The dedicated form is the seed's endpoint_name convention, pinned so a
  // mixed-version deployment keeps rendezvousing.
  EXPECT_EQ(Runtime::endpoint_name("s", "p", 3), "s|p.3");
  EXPECT_EQ(StreamRegistry::dedicated_endpoint_name("s", "p", 3), "s|p.3");
  EXPECT_EQ(StreamRegistry::shared_endpoint_name("p", 3), "mux|p.3");
  EXPECT_TRUE(StreamRegistry::is_shared_name("mux|p.3"));
  EXPECT_FALSE(StreamRegistry::is_shared_name("s|p.3"));
  EXPECT_FALSE(StreamRegistry::is_shared_name("stream_mux|p.3"));
}

// ------------------------------------------------------- registry basics --

MuxOptions shared_opts() {
  MuxOptions m;
  m.shared_links = true;
  m.timeout = 20s;
  return m;
}

TEST(RegistryTest, SharedModeUsesOneEndpointPerProgramRank) {
  Runtime rt;
  auto& reg = rt.registry();
  evpath::LinkOptions lopts;

  std::vector<std::shared_ptr<StreamChannel>> channels;
  for (int i = 0; i < 6; ++i) {
    auto ch = reg.attach("str" + std::to_string(i), "progA", 0,
                         evpath::Location{0, 0}, lopts, shared_opts());
    ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
    EXPECT_TRUE(ch.value()->shared());
    EXPECT_EQ(ch.value()->name(), "mux|progA.0");
    channels.push_back(std::move(ch).value());
  }
  // O(links), not O(streams): six streams, one endpoint.
  EXPECT_EQ(reg.shared_endpoint_count(), 1u);
  EXPECT_EQ(reg.attached_stream_count(), 6u);

  // A second rank gets its own endpoint; stream count keeps climbing.
  auto other = reg.attach("str0", "progA", 1, evpath::Location{0, 1}, lopts,
                          shared_opts());
  ASSERT_TRUE(other.is_ok());
  EXPECT_EQ(reg.shared_endpoint_count(), 2u);
  EXPECT_EQ(reg.attached_stream_count(), 7u);

  // Detaching every stream of an endpoint releases it.
  channels.clear();
  EXPECT_EQ(reg.shared_endpoint_count(), 1u);
  EXPECT_EQ(reg.attached_stream_count(), 1u);
}

TEST(RegistryTest, DedicatedModeBypassesSharing) {
  Runtime rt;
  evpath::LinkOptions lopts;
  MuxOptions opts;  // shared_links = false
  auto ch = rt.registry().attach("solo", "progA", 0, evpath::Location{0, 0},
                                 lopts, opts);
  ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
  EXPECT_FALSE(ch.value()->shared());
  EXPECT_EQ(ch.value()->name(), "solo|progA.0");
  EXPECT_EQ(rt.registry().shared_endpoint_count(), 0u);
  EXPECT_EQ(rt.registry().attached_stream_count(), 0u);
}

TEST(RegistryTest, DuplicateAttachOfOneStreamSideFails) {
  Runtime rt;
  evpath::LinkOptions lopts;
  auto first = rt.registry().attach("dup", "progA", 0, evpath::Location{0, 0},
                                    lopts, shared_opts());
  ASSERT_TRUE(first.is_ok());
  auto second = rt.registry().attach("dup", "progA", 0, evpath::Location{0, 0},
                                     lopts, shared_opts());
  EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
}

TEST(RegistryTest, DemuxRoutesFramesToTheRightStream) {
  Runtime rt;
  auto& reg = rt.registry();
  evpath::LinkOptions lopts;

  // Two streams between the same pair of shared endpoints.
  auto a1 = reg.attach("route_one", "pw", 0, evpath::Location{0, 0}, lopts,
                       shared_opts());
  auto a2 = reg.attach("route_two", "pw", 0, evpath::Location{0, 0}, lopts,
                       shared_opts());
  auto b1 = reg.attach("route_one", "pr", 0, evpath::Location{0, 1}, lopts,
                       shared_opts());
  auto b2 = reg.attach("route_two", "pr", 0, evpath::Location{0, 1}, lopts,
                       shared_opts());
  ASSERT_TRUE(a1.is_ok() && a2.is_ok() && b1.is_ok() && b2.is_ok());
  EXPECT_EQ(reg.shared_endpoint_count(), 2u);

  const std::string dest = StreamRegistry::shared_endpoint_name("pr", 0);
  // Interleave frames from the two streams; use Close frames as a compact
  // valid payload carrying a distinguishing step id.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(a1.value()
                    ->send(dest, ByteView(wire::encode_close(100 + i)),
                           evpath::SendMode::kSync)
                    .is_ok());
    ASSERT_TRUE(a2.value()
                    ->send(dest, ByteView(wire::encode_close(200 + i)),
                           evpath::SendMode::kSync)
                    .is_ok());
  }
  // Each receiving channel sees only its own stream's frames, demuxed and
  // stripped of the prefix, in per-stream FIFO order.
  for (int i = 0; i < 8; ++i) {
    evpath::Message m1, m2;
    ASSERT_TRUE(b2.value()->recv(&m2, 10s).is_ok());
    ASSERT_TRUE(b1.value()->recv(&m1, 10s).is_ok());
    auto c1 = wire::decode_close(ByteView(m1.payload));
    auto c2 = wire::decode_close(ByteView(m2.payload));
    ASSERT_TRUE(c1.is_ok() && c2.is_ok());
    EXPECT_EQ(c1.value(), 100 + i);
    EXPECT_EQ(c2.value(), 200 + i);
  }
}

TEST(RegistryTest, SendIovCoalescesUnderThePrefix) {
  Runtime rt;
  auto& reg = rt.registry();
  evpath::LinkOptions lopts;
  auto tx = reg.attach("iov", "pw", 0, evpath::Location{0, 0}, lopts,
                       shared_opts());
  auto rx = reg.attach("iov", "pr", 0, evpath::Location{0, 1}, lopts,
                       shared_opts());
  ASSERT_TRUE(tx.is_ok() && rx.is_ok());

  const auto raw = wire::encode_close(42);
  const std::size_t half = raw.size() / 2;
  const ByteView frags[] = {ByteView(raw.data(), half),
                            ByteView(raw.data() + half, raw.size() - half)};
  ASSERT_TRUE(tx.value()
                  ->send_iov(StreamRegistry::shared_endpoint_name("pr", 0),
                             frags, evpath::SendMode::kSync)
                  .is_ok());
  evpath::Message msg;
  ASSERT_TRUE(rx.value()->recv(&msg, 10s).is_ok());
  auto close = wire::decode_close(ByteView(msg.payload));
  ASSERT_TRUE(close.is_ok());
  EXPECT_EQ(close.value(), 42);
}

TEST(RegistryTest, AsyncSendErrorSurfacesOnFlush) {
  Runtime rt;
  evpath::LinkOptions lopts;
  lopts.timeout = 200ms;  // fail the dial fast
  MuxOptions opts = shared_opts();
  opts.timeout = 5s;
  auto tx = rt.registry().attach("errs", "pw", 0, evpath::Location{0, 0},
                                 lopts, opts);
  ASSERT_TRUE(tx.is_ok());
  // No such destination endpoint: the drainer's send fails and the error is
  // latched, surfacing on flush (async sends themselves already returned).
  ASSERT_TRUE(tx.value()
                  ->send("mux|nowhere.0", ByteView(wire::encode_close(1)),
                         evpath::SendMode::kAsync)
                  .is_ok());
  Status st = tx.value()->flush(5s);
  EXPECT_FALSE(st.is_ok());
  // The latch is cleared: a second flush of the (now empty) queue is clean.
  EXPECT_TRUE(tx.value()->flush(5s).is_ok());
}

// ------------------------------------------- backpressure and fairness --

TEST(RegistryTest, CreditBackpressureStallsOnlyTheElephantStream) {
  metrics::set_enabled(true);
  {
    Runtime rt;
    auto& reg = rt.registry();
    // Tiny shm ring so the shared link itself backs up: two 512-byte slots.
    evpath::LinkOptions lopts;
    lopts.queue_entries = 2;

    MuxOptions opts = shared_opts();
    opts.credit_bytes = 1024;  // elephant stalls after ~3 queued frames
    auto elephant = reg.attach("bp_elephant", "pw", 0, evpath::Location{0, 0},
                               lopts, opts);
    auto mouse = reg.attach("bp_mouse", "pw", 0, evpath::Location{0, 0},
                            lopts, opts);
    auto rx_e = reg.attach("bp_elephant", "pr", 0, evpath::Location{0, 1},
                           lopts, opts);
    auto rx_m = reg.attach("bp_mouse", "pr", 0, evpath::Location{0, 1},
                           lopts, opts);
    ASSERT_TRUE(elephant.is_ok() && mouse.is_ok() && rx_e.is_ok() &&
                rx_m.is_ok());

    const std::string dest = StreamRegistry::shared_endpoint_name("pr", 0);
    const std::uint64_t stalls_before =
        metrics::counter("flexio.stream.stalls.bp_elephant").value();

    // Elephant floods 256-byte frames with no consumer pumping: the ring
    // fills, the drainer blocks, and the producer runs out of credit.
    constexpr int kFrames = 12;
    std::atomic<bool> elephant_done{false};
    std::thread flood([&] {
      std::vector<std::byte> payload(256, std::byte{0xEE});
      for (int i = 0; i < kFrames; ++i) {
        payload[0] = std::byte{static_cast<unsigned char>(i)};
        ASSERT_TRUE(elephant.value()
                        ->send(dest, ByteView(payload),
                               evpath::SendMode::kAsync)
                        .is_ok());
      }
      elephant_done.store(true);
    });

    // Wait until the elephant producer is observably stalled on credit.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (metrics::counter("flexio.stream.stalls.bp_elephant").value() ==
               stalls_before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_GT(metrics::counter("flexio.stream.stalls.bp_elephant").value(),
              stalls_before);
    EXPECT_FALSE(elephant_done.load());
    EXPECT_GT(elephant.value()->queued_bytes(), 0u);

    // The mouse's own credit is untouched: its async sends are admitted
    // immediately even though the elephant is stalled on the same link.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(mouse.value()
                      ->send(dest, ByteView(wire::encode_close(i)),
                             evpath::SendMode::kAsync)
                      .is_ok());
    }
    EXPECT_FALSE(elephant_done.load());

    // Start consuming: everything drains, per-stream FIFO order preserved.
    for (int i = 0; i < 3; ++i) {
      evpath::Message msg;
      ASSERT_TRUE(rx_m.value()->recv(&msg, 20s).is_ok());
      auto c = wire::decode_close(ByteView(msg.payload));
      ASSERT_TRUE(c.is_ok());
      EXPECT_EQ(c.value(), i);
    }
    for (int i = 0; i < kFrames; ++i) {
      evpath::Message msg;
      ASSERT_TRUE(rx_e.value()->recv(&msg, 20s).is_ok());
      ASSERT_EQ(msg.payload.size(), 256u);
      EXPECT_EQ(msg.payload[0], std::byte{static_cast<unsigned char>(i)});
    }
    flood.join();
    EXPECT_TRUE(elephant_done.load());
    ASSERT_TRUE(elephant.value()->flush(10s).is_ok());
    EXPECT_EQ(elephant.value()->queued_bytes(), 0u);
    EXPECT_EQ(metrics::counter("flexio.stream.stalls.bp_mouse").value(), 0u);
  }
  metrics::set_enabled(false);
}

// ------------------------------------------------- end-to-end pipelines --

xml::MethodConfig shared_method(const std::string& extra = "") {
  xml::MethodConfig m;
  m.method = "FLEXIO";
  m.timeout_ms = 20000;
  std::string params = "shared_links=yes";
  if (!extra.empty()) params += "; " + extra;
  FLEXIO_CHECK(xml::apply_method_params(params, &m).is_ok());
  return m;
}

/// One writer/reader pipeline over a named stream with seeded payloads; all
/// collectives are trivial (single-rank programs) so many pipelines can run
/// concurrently against one Runtime. `global` varies per stream so a plan
/// cached for one stream placed against another corrupts data detectably.
void run_shared_pipeline(Runtime& rt, Program& sim, Program& viz,
                         const std::string& stream, const Dims& global,
                         int steps, std::uint32_t seed,
                         const std::string& extra_params = "") {
  auto writer_fn = [&] {
    StreamSpec spec;
    spec.stream = stream;
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = shared_method(extra_params);
    auto writer = rt.open_writer(spec);
    ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
    StreamWriter& w = *writer.value();

    std::mt19937 rng(seed);
    const Box box{{0}, global};
    std::vector<double> field(box.elements());
    for (int step = 0; step < steps; ++step) {
      for (auto& v : field) v = static_cast<double>(rng());
      ASSERT_TRUE(w.begin_step(step).is_ok());
      ASSERT_TRUE(w.write(adios::global_array_var("field", DataType::kDouble,
                                                  global, box),
                          as_bytes_view(std::span<const double>(field)))
                      .is_ok());
      const Status st = w.end_step();
      ASSERT_TRUE(st.is_ok()) << st.to_string();
    }
    ASSERT_TRUE(w.close().is_ok());
  };

  auto reader_fn = [&] {
    StreamSpec spec;
    spec.stream = stream;
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = shared_method(extra_params);
    auto reader = rt.open_reader(spec);
    ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
    StreamReader& r = *reader.value();

    std::mt19937 rng(seed);  // same golden sequence as the writer
    const Box sel{{0}, global};
    std::vector<double> out(sel.elements());
    int steps_seen = 0;
    for (;;) {
      auto step = r.begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      std::fill(out.begin(), out.end(), -1.0);
      ASSERT_TRUE(r.schedule_read("field", sel,
                                  MutableByteView(std::as_writable_bytes(
                                      std::span<double>(out))))
                      .is_ok());
      const Status st = r.perform_reads();
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      for (double v : out) {
        ASSERT_DOUBLE_EQ(v, static_cast<double>(rng()))
            << "stream " << stream << " seed " << seed;
      }
      ASSERT_TRUE(r.end_step().is_ok());
      ++steps_seen;
    }
    EXPECT_EQ(steps_seen, steps);
  };

  std::thread wt(writer_fn), rt_thread(reader_fn);
  wt.join();
  rt_thread.join();
}

TEST(MultiplexPipelineTest, SharedLinksEndToEnd) {
  // The full stream protocol (handshake, announces, data, close) over one
  // shared endpoint pair instead of dedicated per-stream endpoints.
  Runtime rt;
  Program sim("sim", 1), viz("viz", 1);
  run_shared_pipeline(rt, sim, viz, "e2e", {48}, 3, test_seed());
  // Channels closed with the streams; nothing should leak.
  EXPECT_EQ(rt.registry().shared_endpoint_count(), 0u);
  EXPECT_EQ(rt.registry().attached_stream_count(), 0u);
}

TEST(MultiplexPipelineTest, ManyStreamsShareTwoEndpoints) {
  Runtime rt;
  Program sim("sim", 1), viz("viz", 1);
  constexpr int kStreams = 4;

  std::atomic<std::size_t> max_endpoints{0};
  std::atomic<std::size_t> max_streams{0};
  std::atomic<bool> stop_probe{false};
  std::thread probe([&] {
    // Sample the registry while the pipelines run: the O(links) evidence.
    while (!stop_probe.load()) {
      std::size_t e = rt.registry().shared_endpoint_count();
      std::size_t s = rt.registry().attached_stream_count();
      if (e > max_endpoints.load()) max_endpoints.store(e);
      if (s > max_streams.load()) max_streams.store(s);
      std::this_thread::sleep_for(1ms);
    }
  });

  std::vector<std::thread> pipelines;
  for (int i = 0; i < kStreams; ++i) {
    pipelines.emplace_back([&rt, &sim, &viz, i] {
      run_shared_pipeline(rt, sim, viz, "many" + std::to_string(i),
                          {16 + 8 * static_cast<std::uint64_t>(i)}, 3,
                          test_seed() + static_cast<std::uint32_t>(i));
    });
  }
  for (auto& t : pipelines) t.join();
  stop_probe.store(true);
  probe.join();

  // Four concurrent streams, two shared endpoints (one per program rank):
  // connection state scales with links, not streams.
  EXPECT_EQ(max_endpoints.load(), 2u);
  EXPECT_GT(max_streams.load(), 2u);
  EXPECT_LE(max_streams.load(), 2u * kStreams);
  EXPECT_EQ(rt.registry().attached_stream_count(), 0u);
}

TEST(MultiplexPipelineTest, ModeMismatchFailsLoudly) {
  // A shared-mode writer and a dedicated-mode reader must not silently
  // drop every frame at the demux: the reader rejects the writer's contact
  // name before sending anything.
  Runtime rt;
  Program sim("sim", 1), viz("viz", 1);

  Status writer_st, reader_st;
  std::thread wt([&] {
    StreamSpec spec;
    spec.stream = "mismatch";
    spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
    spec.method = shared_method();
    spec.method.timeout_ms = 1500;  // the open handshake never completes
    auto w = rt.open_writer(spec);
    writer_st = w.status();
  });
  std::thread rd([&] {
    StreamSpec spec;
    spec.stream = "mismatch";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 1}};
    spec.method = shared_method();
    spec.method.shared_links = false;  // dedicated side
    spec.method.timeout_ms = 1500;
    auto r = rt.open_reader(spec);
    reader_st = r.status();
  });
  wt.join();
  rd.join();
  EXPECT_EQ(reader_st.code(), ErrorCode::kInvalidArgument)
      << reader_st.to_string();
  EXPECT_NE(reader_st.to_string().find("mode mismatch"), std::string::npos);
  EXPECT_FALSE(writer_st.is_ok());
}

TEST(MultiplexPipelineTest, PlanCacheDoesNotCrossStreamsOnSharedLink) {
  // Two streams share one link pair, both announce a variable named
  // "field", both cache their transfer plans (caching=all) -- but with
  // different global geometries. A plan cached under one stream's key and
  // replayed for the other would misplace every element; the seeded data
  // verification catches that, and the cache counters pin that each stream
  // planned for itself exactly once.
  metrics::set_enabled(true);
  {
    Runtime rt;
    Program sim("sim", 1), viz("viz", 1);
    const std::uint64_t hits0 =
        metrics::counter("flexio.plan.cache_hits").value();
    const std::uint64_t misses0 =
        metrics::counter("flexio.plan.cache_misses").value();

    constexpr int kSteps = 4;
    std::thread t1([&] {
      run_shared_pipeline(rt, sim, viz, "plan_a", {16}, kSteps, test_seed(),
                          "caching=all");
    });
    std::thread t2([&] {
      run_shared_pipeline(rt, sim, viz, "plan_b", {32}, kSteps,
                          test_seed() + 1, "caching=all");
    });
    t1.join();
    t2.join();

    // Each side of each stream misses once (its own first step) and hits on
    // the cached plan afterwards. A cross-stream hit would show up as fewer
    // misses -- and as corrupted data above.
    EXPECT_EQ(metrics::counter("flexio.plan.cache_misses").value() - misses0,
              4u);
    EXPECT_EQ(metrics::counter("flexio.plan.cache_hits").value() - hits0,
              4u * (kSteps - 1));
  }
  metrics::set_enabled(false);
}

}  // namespace
}  // namespace flexio
