// Tests for span tracing (src/util/trace.h) -- nesting and ordering
// invariants, ring wraparound, Chrome JSON round-trip through the minimal
// util/json.h parser -- plus the observability counter invariants of the
// NNTI frame accounting, checked both on a bare fabric with a scripted
// FaultPlan and through full seeded stress-driver runs.
#include "util/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/fault_plan.h"
#include "harness/stress_driver.h"
#include "nnti/nnti.h"
#include "util/json.h"
#include "util/metrics.h"

namespace flexio {
namespace {

std::uint64_t fake_now = 0;
std::uint64_t fake_clock() { return fake_now; }

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fake_now = 1000;
    metrics::set_clock_for_testing(&fake_clock);
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::set_capacity(4096);  // restore the default, drops records
    metrics::set_clock_for_testing(nullptr);
  }
};

TEST_F(TraceTest, NestedSpansRecordParentAndDepth) {
  {
    trace::Span outer("test.outer");
    fake_now += 10;
    {
      trace::Span inner("test.inner");
      fake_now += 5;
      {
        trace::Span leaf("test.leaf");
        fake_now += 1;
      }
    }
    fake_now += 10;
  }
  const std::vector<trace::SpanRecord> spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: leaf, inner, outer.
  const trace::SpanRecord& leaf = spans[0];
  const trace::SpanRecord& inner = spans[1];
  const trace::SpanRecord& outer = spans[2];
  EXPECT_STREQ(leaf.name, "test.leaf");
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  // Parent chain and depths.
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(leaf.parent, inner.id);
  EXPECT_EQ(leaf.depth, 2u);
  // All on the same thread; ids assigned in open order.
  EXPECT_EQ(leaf.tid, outer.tid);
  EXPECT_LT(outer.id, inner.id);
  EXPECT_LT(inner.id, leaf.id);
  // Fake-clock times: children nest inside the parent interval.
  EXPECT_EQ(outer.start_ns, 1000u);
  EXPECT_EQ(outer.end_ns, 1026u);
  EXPECT_EQ(inner.start_ns, 1010u);
  EXPECT_EQ(inner.end_ns, 1016u);
  EXPECT_GE(leaf.start_ns, inner.start_ns);
  EXPECT_LE(leaf.end_ns, inner.end_ns);
}

TEST_F(TraceTest, SequentialSpansAreOrderedOldestFirst) {
  for (int i = 0; i < 5; ++i) {
    trace::Span s("test.seq");
    fake_now += 3;
  }
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].start_ns, spans[i].start_ns);
    EXPECT_LT(spans[i - 1].id, spans[i].id);
    EXPECT_EQ(spans[i].depth, 0u);
    EXPECT_EQ(spans[i].parent, 0u);
  }
}

TEST_F(TraceTest, RingWraparoundKeepsNewestSpans) {
  trace::set_capacity(4);
  std::vector<std::uint64_t> starts;
  for (int i = 0; i < 10; ++i) {
    starts.push_back(fake_now);
    trace::Span s("test.wrap");
    fake_now += 7;
  }
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The newest four survive, still oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].start_ns, starts[6 + i]) << "slot " << i;
  }
}

TEST_F(TraceTest, ThreadsGetDistinctStableTids) {
  {
    trace::Span main_span("test.thread");
    fake_now += 1;
  }
  std::thread other([] {
    trace::Span s1("test.thread");
    trace::Span s2("test.thread");
  });
  other.join();
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  EXPECT_EQ(spans[1].tid, spans[2].tid);  // stable within the other thread
  // The other thread's spans are roots of their own stack.
  EXPECT_EQ(spans[1].depth, 1u);  // s2 nested in s1
  EXPECT_EQ(spans[2].depth, 0u);
}

TEST_F(TraceTest, DisabledSpansRecordNothingAndEnableLatches) {
  trace::set_enabled(false);
  {
    trace::Span s("test.off");
    trace::set_enabled(true);  // mid-scope enable: span stays unarmed
  }
  EXPECT_TRUE(trace::snapshot().empty());
  {
    trace::Span s("test.on");
    trace::set_enabled(false);  // mid-scope disable: span still records
  }
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.on");
  trace::set_enabled(true);
}

TEST_F(TraceTest, ChromeJsonRoundTripsThroughParser) {
  {
    trace::Span outer("writer.open");
    fake_now += 2500;  // 2.5 us
    {
      trace::Span inner("writer.handshake \"q\"\\");  // exercise escaping
      fake_now += 1500;
    }
  }
  const std::vector<trace::SpanRecord> spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 2u);

  const std::string json = trace::chrome_json();
  auto doc = json::parse(json);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string() << "\n" << json;
  const json::Value* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), json::Value::Kind::kArray);
  ASSERT_EQ(events->as_array().size(), spans.size());

  for (std::size_t i = 0; i < spans.size(); ++i) {
    const trace::SpanRecord& rec = spans[i];
    const json::Value& ev = events->as_array()[i];
    ASSERT_EQ(ev.kind(), json::Value::Kind::kObject);
    EXPECT_EQ(ev.find("name")->as_string(), std::string(rec.name));
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_EQ(ev.find("cat")->as_string(), "flexio");
    // ts/dur are microseconds with 3 decimals: exact for ns inputs.
    EXPECT_DOUBLE_EQ(ev.find("ts")->as_number(),
                     static_cast<double>(rec.start_ns) / 1e3);
    EXPECT_DOUBLE_EQ(ev.find("dur")->as_number(),
                     static_cast<double>(rec.end_ns - rec.start_ns) / 1e3);
    EXPECT_EQ(static_cast<std::uint32_t>(ev.find("tid")->as_number()),
              rec.tid);
    const json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(args->find("id")->as_number()),
              rec.id);
    EXPECT_EQ(static_cast<std::uint64_t>(args->find("parent")->as_number()),
              rec.parent);
    EXPECT_EQ(static_cast<std::uint32_t>(args->find("depth")->as_number()),
              rec.depth);
  }
}

// ------------------------------------------- counter invariant checks --
//
// The NNTI layer maintains, by construction (src/nnti/nnti.cpp):
//   putmsg.delivered == putmsg.sent - putmsg.dropped + putmsg.duplicated
// and a consumer that drains every queue observes received == delivered.
// First pin this on a bare fabric against a scripted FaultPlan's decision
// log, then through full stress-driver runs.

std::uint64_t counter_value(const char* name) {
  const auto snap = metrics::snapshot_all();
  const auto it = snap.find(name);
  if (it == snap.end()) return 0;
  EXPECT_EQ(it->second.kind, metrics::MetricSnapshot::Kind::kCounter) << name;
  return it->second.counter;
}

std::uint64_t count_log_lines(const EventLog& log, std::string_view prefix) {
  std::uint64_t n = 0;
  for (const std::string& line : log.lines()) {
    if (line.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

struct FrameCounters {
  std::uint64_t sent, delivered, dropped, duplicated, received;
  static FrameCounters read() {
    return {counter_value("nnti.putmsg.sent"),
            counter_value("nnti.putmsg.delivered"),
            counter_value("nnti.putmsg.dropped"),
            counter_value("nnti.putmsg.duplicated"),
            counter_value("nnti.putmsg.received")};
  }
};

class CounterInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::reset_all();
  }
  void TearDown() override { metrics::set_enabled(false); }
};

TEST_F(CounterInvariantTest, ScriptedDropsAndDupsMatchPlanLog) {
  auto plan = torture::FaultPlan::parse(
      "drop putmsg nth=2\n"
      "dup putmsg nth=4\n");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  nnti::Fabric fabric;
  plan.value().install(&fabric);
  auto tx = fabric.create_nic("obs.tx");
  auto rx = fabric.create_nic("obs.rx");
  ASSERT_TRUE(tx.is_ok());
  ASSERT_TRUE(rx.is_ok());

  constexpr int kSends = 6;
  const std::vector<std::byte> payload(32, std::byte{0x5a});
  for (int i = 0; i < kSends; ++i) {
    // Drops are fire-and-forget: the caller sees ok even for the lost frame.
    ASSERT_TRUE(tx.value()->put_message("obs.rx", ByteView(payload)).is_ok());
  }

  int drained = 0;
  std::vector<std::byte> msg;
  while (rx.value()
             ->poll_message(&msg, std::chrono::milliseconds(50))
             .is_ok()) {
    ++drained;
  }

  const FrameCounters c = FrameCounters::read();
  EXPECT_EQ(c.sent, static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.duplicated, 1u);
  EXPECT_EQ(c.delivered, c.sent - c.dropped + c.duplicated);
  EXPECT_EQ(c.received, c.delivered) << "drained consumer must see all frames";
  EXPECT_EQ(static_cast<std::uint64_t>(drained), c.received);
  // Counters agree with the plan's own decision log.
  EXPECT_EQ(c.dropped, count_log_lines(plan.value().log(), "drop putmsg"));
  EXPECT_EQ(c.duplicated, count_log_lines(plan.value().log(), "dup putmsg"));
  torture::FaultPlan::uninstall(&fabric);
}

torture::StressConfig stress_config(const char* stream,
                                    const std::string& caching) {
  torture::StressConfig cfg;
  cfg.writers = 2;
  cfg.readers = 2;
  cfg.steps = 3;
  cfg.caching = caching;
  cfg.placement = torture::PlacementMode::kRdma;  // all traffic on the fabric
  cfg.stream = stream;
  return cfg;
}

TEST_F(CounterInvariantTest, CleanStressRunBalancesFrameCounters) {
  const torture::StressConfig cfg = stress_config("obs_clean", "none");
  const torture::StressResult result = torture::run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GT(result.elements_verified, 0u);

  const FrameCounters c = FrameCounters::read();
  EXPECT_GT(c.sent, 0u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.duplicated, 0u);
  EXPECT_EQ(c.delivered, c.sent);
  // Nearly all delivered frames are consumed. The residue is close-time
  // control traffic: once a side has seen the close frame it stops
  // polling, so a handful of frames (bounded by a couple per link pair)
  // may sit undequeued at teardown. Exact received == delivered drain is
  // pinned on a bare fabric in ScriptedDropsAndDupsMatchPlanLog.
  const auto links =
      static_cast<std::uint64_t>(cfg.writers) * cfg.readers;
  EXPECT_LE(c.received, c.delivered);
  EXPECT_GE(c.received + 2 * links, c.delivered);

  // Both StreamWriter and StreamReader ranks bump the shared handshake
  // counters, once per rank per exchanged step.
  const auto sides =
      static_cast<std::uint64_t>(cfg.writers) + cfg.readers;
  EXPECT_EQ(counter_value("flexio.handshake.performed"),
            sides * torture::expected_handshakes_performed(cfg));
  EXPECT_EQ(counter_value("flexio.handshake.skipped"),
            sides * torture::expected_handshakes_skipped(cfg));
  // The data path ran: redistribution planned and bytes moved.
  EXPECT_GT(counter_value("flexio.redistribution.plans"), 0u);
  EXPECT_GT(counter_value("flexio.bytes.sent"), 0u);
}

TEST_F(CounterInvariantTest, CachingAllStressRunMatchesHandshakeInvariant) {
  torture::StressConfig cfg = stress_config("obs_caching_all", "all");
  cfg.steps = 4;
  const torture::StressResult result = torture::run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();

  const auto sides =
      static_cast<std::uint64_t>(cfg.writers) + cfg.readers;
  // caching=all: one handshake total, steps-1 skipped, per rank per side.
  EXPECT_EQ(counter_value("flexio.handshake.performed"), sides * 1u);
  EXPECT_EQ(counter_value("flexio.handshake.skipped"),
            sides * static_cast<std::uint64_t>(cfg.steps - 1));
}

TEST_F(CounterInvariantTest, SeededFaultStressRunKeepsAccountingBalanced) {
  torture::RandomProfile profile;
  profile.fail_prob = 0.08;
  profile.drop_prob = 0.05;  // random drops hit only retryable get/put
  profile.delay_prob = 0.05;
  profile.dup_prob = 0.10;
  profile.delay_us = 100;
  const torture::FaultPlan plan = torture::FaultPlan::random(0x0b5e9, profile);

  torture::StressConfig cfg = stress_config("obs_faulted", "none");
  cfg.faults = &plan;
  const torture::StressResult result = torture::run_stress(cfg);
  ASSERT_TRUE(result.status.is_ok())
      << result.status.to_string() << "\n"
      << plan.banner() << "\nevent log:\n"
      << plan.log().canonical();

  const FrameCounters c = FrameCounters::read();
  // The books must balance exactly even under injected faults.
  EXPECT_EQ(c.delivered, c.sent - c.dropped + c.duplicated);
  // Every putmsg drop the fabric counted is one the plan decided on.
  EXPECT_EQ(c.dropped, count_log_lines(plan.log(), "drop putmsg"));
  // A dup decision only counts when the duplicate delivery fit the queue.
  EXPECT_LE(c.duplicated, count_log_lines(plan.log(), "dup putmsg"));
  // On a successful run the only frames that may go unconsumed are surplus
  // duplicates and close-time control frames on links that stopped polling
  // (same residue bound as the clean run above).
  const auto links = static_cast<std::uint64_t>(cfg.writers) * cfg.readers;
  EXPECT_LE(c.received, c.delivered);
  EXPECT_GE(c.received + 2 * links + c.duplicated, c.delivered);
}

}  // namespace
}  // namespace flexio
