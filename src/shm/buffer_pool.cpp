#include "shm/buffer_pool.h"

#include <bit>

#include "util/metrics.h"
#include "util/strings.h"

namespace flexio::shm {

namespace {
// Pool-wide observability across every BufferPool in the process: reuse
// hit rate and current memory footprint (gauge mirrors bytes_in_use).
metrics::Counter& acquire_counter() {
  static metrics::Counter& c = metrics::counter("shm.pool.acquisitions");
  return c;
}
metrics::Counter& reuse_counter() {
  static metrics::Counter& c = metrics::counter("shm.pool.reuses");
  return c;
}
metrics::Counter& reclaim_counter() {
  static metrics::Counter& c = metrics::counter("shm.pool.reclamations");
  return c;
}
metrics::Gauge& in_use_gauge() {
  static metrics::Gauge& g = metrics::gauge("shm.pool.bytes_in_use");
  return g;
}
}  // namespace

BufferPool::BufferPool(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  FLEXIO_CHECK(capacity_bytes >= kMinClassBytes);
}

BufferPool::~BufferPool() {
  for (auto& shelf : shelves_) {
    for (std::byte* p : shelf.free_buffers) delete[] p;
  }
}

std::uint32_t BufferPool::class_for(std::size_t size) {
  if (size <= kMinClassBytes) return 0;
  const auto rounded = std::bit_ceil(size);
  return static_cast<std::uint32_t>(std::countr_zero(rounded) -
                                    std::countr_zero(kMinClassBytes));
}

std::size_t BufferPool::class_capacity(std::uint32_t size_class) {
  return kMinClassBytes << size_class;
}

StatusOr<PoolBuffer> BufferPool::acquire(std::size_t size) {
  const std::uint32_t cls = class_for(size);
  const std::size_t cap = class_capacity(cls);

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquisitions;
  if (cls >= shelves_.size()) shelves_.resize(cls + 1);

  Shelf& shelf = shelves_[cls];
  PoolBuffer out;
  out.capacity = cap;
  out.size_class = cls;
  out.id = next_id_++;
  if (!shelf.free_buffers.empty()) {
    out.data = shelf.free_buffers.back();
    shelf.free_buffers.pop_back();
    ++stats_.reuses;
    stats_.bytes_in_use += cap;
    // One gate check for the whole reuse fast path.
    if (metrics::enabled()) {
      acquire_counter().inc();
      reuse_counter().inc();
      in_use_gauge().add(static_cast<std::int64_t>(cap));
    }
    return out;
  }

  // Nothing free in this class. Reclaim free buffers from other classes if
  // we are over the threshold, then allocate fresh memory. Allow in-use
  // overshoot up to 2x the threshold so a single oversized transfer cannot
  // deadlock the pipeline, but refuse beyond that.
  if (stats_.bytes_allocated + cap > capacity_bytes_) {
    for (auto& other : shelves_) {
      while (!other.free_buffers.empty() &&
             stats_.bytes_allocated + cap > capacity_bytes_) {
        delete[] other.free_buffers.back();
        other.free_buffers.pop_back();
        const std::size_t freed =
            class_capacity(static_cast<std::uint32_t>(&other - shelves_.data()));
        stats_.bytes_allocated -= freed;
        ++stats_.reclamations;
        reclaim_counter().inc();
      }
    }
  }
  if (stats_.bytes_allocated + cap > 2 * capacity_bytes_) {
    return make_error(
        ErrorCode::kResourceExhausted,
        str_format("buffer pool over budget: need %zu, allocated %zu, cap %zu",
                   cap, stats_.bytes_allocated, capacity_bytes_));
  }
  out.data = new std::byte[cap];
  ++stats_.allocations;
  stats_.bytes_allocated += cap;
  stats_.bytes_in_use += cap;
  if (metrics::enabled()) {
    acquire_counter().inc();
    in_use_gauge().add(static_cast<std::int64_t>(cap));
  }
  return out;
}

void BufferPool::release(PoolBuffer buffer) {
  if (!buffer) return;
  std::lock_guard<std::mutex> lock(mutex_);
  FLEXIO_CHECK(buffer.size_class < shelves_.size());
  FLEXIO_CHECK(stats_.bytes_in_use >= buffer.capacity);
  stats_.bytes_in_use -= buffer.capacity;
  if (metrics::enabled()) {
    in_use_gauge().sub(static_cast<std::int64_t>(buffer.capacity));
  }
  if (stats_.bytes_allocated > capacity_bytes_) {
    delete[] buffer.data;
    stats_.bytes_allocated -= buffer.capacity;
    ++stats_.reclamations;
    if (metrics::enabled()) reclaim_counter().inc();
    return;
  }
  shelves_[buffer.size_class].free_buffers.push_back(buffer.data);
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flexio::shm
