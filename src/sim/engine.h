// Discrete-event simulation engine.
//
// The performance plane of this reproduction: Titan and Smoky are not
// available, so the figure harnesses replay the coupled simulation+analytics
// pipelines on a deterministic event simulator (see DESIGN.md section 2).
// The engine is deliberately minimal: a time-ordered queue of closures with
// stable FIFO tie-breaking so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace flexio::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

class EventEngine {
 public:
  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Returns an id
  /// that cancel() accepts. Events at equal times run in scheduling order.
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after a delay relative to now.
  EventId schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false when it already ran or was
  /// cancelled (both benign: cancellation is used for re-planned transfers).
  bool cancel(EventId id);

  /// Run until no events remain. Returns the final time.
  SimTime run();

  /// Run until the given time; events scheduled at exactly `until` run.
  SimTime run_until(SimTime until);

  /// Number of events executed so far (for tests and sanity bounds).
  std::uint64_t executed() const { return executed_; }
  /// Number of events still pending.
  std::size_t pending() const { return live_pending_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;  // also the FIFO tie-breaker
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // id -> callback; erased on run/cancel. Cancelled ids simply vanish here,
  // and the matching queue entry is skipped lazily when popped.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace flexio::sim
