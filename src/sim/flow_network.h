// Flow-level network model with max-min fair bandwidth sharing.
//
// Data movements in the simulated cluster are modeled as fluid flows across
// capacitated links (NIC injection/ejection, network core, filesystem
// servers, NUMA memory channels). Whenever a flow starts or finishes, every
// active flow's rate is recomputed with progressive filling (true max-min
// fairness), which captures the contention effects the paper observes:
// N-to-1 incast onto staging nodes, async bulk movement interfering with
// simulation MPI traffic, and the non-scaling file system.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/common.h"

namespace flexio::sim {

/// Identifies a link within one FlowNetwork.
using LinkId = int;

/// Per-link accounting for the monitoring/metrics layer.
struct LinkStats {
  double bytes_carried = 0;
  double busy_time = 0;  // total time with >=1 active flow
};

class FlowNetwork {
 public:
  explicit FlowNetwork(EventEngine* engine) : engine_(engine) {
    FLEXIO_CHECK(engine != nullptr);
  }

  /// Create a link with the given capacity in bytes/second.
  LinkId add_link(double capacity_bps, std::string name);

  /// Start a flow of `bytes` across `path` (ordered list of links; order is
  /// irrelevant to the model). `on_done` runs at the simulated completion
  /// time. A zero-byte flow completes immediately (next event).
  void start_flow(std::vector<LinkId> path, double bytes,
                  std::function<void(SimTime)> on_done);

  std::size_t active_flows() const { return flows_.size(); }
  const LinkStats& link_stats(LinkId link) const {
    return links_[static_cast<std::size_t>(link)].stats;
  }
  const std::string& link_name(LinkId link) const {
    return links_[static_cast<std::size_t>(link)].name;
  }

 private:
  struct Link {
    double capacity;
    std::string name;
    LinkStats stats;
    int active = 0;          // flows currently crossing this link
    double last_busy_start = 0;
  };

  struct Flow {
    std::vector<LinkId> path;
    double remaining;
    double rate = 0;
    std::function<void(SimTime)> on_done;
  };

  /// Advance all flows to `now` at their current rates.
  void progress_to(SimTime now);
  /// Recompute all flow rates (max-min progressive filling) and reschedule
  /// the next completion event.
  void replan();
  void on_completion_event();

  EventEngine* engine_;
  std::vector<Link> links_;
  std::vector<Flow> flows_;
  SimTime last_progress_ = 0;
  EventId pending_event_ = 0;
};

}  // namespace flexio::sim
