// Extended core tests: XML-config glue, plug-in migration at runtime,
// stream-level fault injection (timeout-and-retry through the whole
// pipeline), and redistribution-plan properties.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/config_glue.h"
#include "core/redistribution.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "util/rng.h"

namespace flexio {
namespace {

using adios::Box;
using adios::Dims;
using serial::DataType;

constexpr const char* kConfigXml = R"(
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="double" dimensions="nparticles,7"/>
    <var name="count" type="int64"/>
  </adios-group>
  <adios-group name="restart">
    <var name="state" type="double" dimensions="100"/>
  </adios-group>
  <method group="particles" method="FLEXIO">
    caching=local; batching=yes; async=yes; timeout_ms=15000
  </method>
</adios-config>)";

TEST(ConfigGlueTest, SpecFromConfigResolvesMethod) {
  auto config = xml::parse_config(kConfigXml);
  ASSERT_TRUE(config.is_ok());
  Program prog("sim", 1);
  EndpointSpec endpoint{&prog, 0, evpath::Location{0, 0}};
  auto spec = spec_from_config(config.value(), "particles", endpoint, "/tmp");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().stream, "particles");
  EXPECT_EQ(spec.value().method.method, "FLEXIO");
  EXPECT_EQ(spec.value().method.caching, xml::CachingLevel::kLocal);
  EXPECT_TRUE(spec.value().method.batching);
  EXPECT_DOUBLE_EQ(spec.value().method.timeout_ms, 15000.0);
  EXPECT_EQ(spec.value().file_dir, "/tmp");
}

TEST(ConfigGlueTest, GroupWithoutMethodDefaultsToFiles) {
  auto config = xml::parse_config(kConfigXml);
  ASSERT_TRUE(config.is_ok());
  Program prog("sim", 1);
  auto spec = spec_from_config(config.value(), "restart",
                               EndpointSpec{&prog, 0, {}});
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec.value().method.method, "BP");
}

TEST(ConfigGlueTest, UnknownGroupRejected) {
  auto config = xml::parse_config(kConfigXml);
  ASSERT_TRUE(config.is_ok());
  Program prog("sim", 1);
  EXPECT_EQ(spec_from_config(config.value(), "ghost",
                             EndpointSpec{&prog, 0, {}})
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST(ConfigGlueTest, ValidationEnforcesDeclaredSchema) {
  auto config = xml::parse_config(kConfigXml);
  ASSERT_TRUE(config.is_ok());
  const xml::GroupConfig& group = *config.value().group("particles");

  // Symbolic dimension accepts any count; literal "7" is enforced.
  EXPECT_TRUE(validate_against_group(
                  group, adios::local_array_var("zion", DataType::kDouble,
                                                {123, 7}))
                  .is_ok());
  EXPECT_FALSE(validate_against_group(
                   group, adios::local_array_var("zion", DataType::kDouble,
                                                 {123, 8}))
                   .is_ok());
  // Declared type must match.
  EXPECT_FALSE(validate_against_group(
                   group, adios::local_array_var("zion", DataType::kFloat,
                                                 {123, 7}))
                   .is_ok());
  // Rank must match.
  EXPECT_FALSE(validate_against_group(
                   group, adios::local_array_var("zion", DataType::kDouble,
                                                 {123}))
                   .is_ok());
  // Scalars match zero-dimension declarations.
  EXPECT_TRUE(
      validate_against_group(group, adios::scalar_var("count",
                                                      DataType::kInt64))
          .is_ok());
  // Undeclared variable.
  EXPECT_EQ(validate_against_group(
                group, adios::scalar_var("mystery", DataType::kInt64))
                .code(),
            ErrorCode::kNotFound);
}

TEST(ConfigGlueTest, EndToEndFromXml) {
  // The paper's workflow: both sides resolve the same group from the same
  // config file; no transport choice appears in application code.
  auto config = xml::parse_config(kConfigXml);
  ASSERT_TRUE(config.is_ok());
  Runtime rt;
  Program sim("sim", 1), viz("viz", 1);
  std::thread writer([&] {
    auto spec = spec_from_config(config.value(), "particles",
                                 EndpointSpec{&sim, 0, {0, 0}});
    ASSERT_TRUE(spec.is_ok());
    auto w = rt.open_writer(spec.value());
    ASSERT_TRUE(w.is_ok());
    std::vector<double> zion(14, 1.0);
    const auto meta = adios::local_array_var("zion", DataType::kDouble, {2, 7});
    ASSERT_TRUE(
        validate_against_group(*config.value().group("particles"), meta)
            .is_ok());
    ASSERT_TRUE(w.value()->begin_step(0).is_ok());
    ASSERT_TRUE(w.value()
                    ->write(meta, as_bytes_view(std::span<const double>(zion)))
                    .is_ok());
    ASSERT_TRUE(w.value()->end_step().is_ok());
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    auto spec = spec_from_config(config.value(), "particles",
                                 EndpointSpec{&viz, 0, {1, 0}});
    ASSERT_TRUE(spec.is_ok());
    auto r = rt.open_reader(spec.value());
    ASSERT_TRUE(r.is_ok());
    auto step = r.value()->begin_step();
    ASSERT_TRUE(step.is_ok());
    ASSERT_TRUE(r.value()->schedule_read_pg(0).is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    EXPECT_EQ(r.value()->pg_blocks().size(), 1u);
    ASSERT_TRUE(r.value()->end_step().is_ok());
    while (r.value()->begin_step().status().code() != ErrorCode::kEndOfStream) {
    }
  });
  writer.join();
  reader.join();
}

// ------------------------------------------------------ plug-in mobility --

PluginCompiler doubling_compiler() {
  // Stand-in compiler: any source multiplies doubles by 2 and tags where it
  // ran by the source string ("writer"/"reader") -- enough to observe
  // migration without the cod module (which has its own e2e test).
  return [](const std::string& source) -> StatusOr<PluginFn> {
    return PluginFn(
        [source](const wire::DataPiece& in) -> StatusOr<wire::DataPiece> {
          wire::DataPiece out = in;
          auto* vals = reinterpret_cast<double*>(out.payload.data());
          for (std::size_t i = 0; i < out.payload.size() / 8; ++i) {
            vals[i] *= 2.0;
          }
          return out;
        });
  };
}

TEST(PluginMobilityTest, MigratesBetweenAddressSpacesAtRuntime) {
  Runtime rt;
  rt.set_plugin_compiler(doubling_compiler());
  Program sim("sim", 1), viz("viz", 1);
  constexpr int kSteps = 4;

  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "mig";
    spec.endpoint = EndpointSpec{&sim, 0, {0, 0}};
    spec.method.method = "FLEXIO";
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data{1.0, 2.0, 3.0, 4.0};
    for (int s = 0; s < kSteps; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("v", DataType::kDouble,
                                                      {4}, Box{{0}, {4}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
    // Ran at the writer for the middle two steps only.
    EXPECT_EQ(w.value()->monitor().count("plugin.pieces"), 2u);
    EXPECT_EQ(w.value()->monitor().count("plugin.removed"), 1u);
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "mig";
    spec.endpoint = EndpointSpec{&viz, 0, {2, 0}};
    spec.method.method = "FLEXIO";
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> out(4);
    for (int s = 0; s < kSteps; ++s) {
      // Step 1: deploy into the writer. Step 3: migrate to the reader.
      if (s == 1) {
        ASSERT_TRUE(r.value()->install_plugin("v", "writer", true).is_ok());
      } else if (s == 3) {
        ASSERT_TRUE(r.value()->migrate_plugin("v", "reader", false).is_ok());
      }
      auto step = r.value()->begin_step();
      ASSERT_TRUE(step.is_ok());
      ASSERT_TRUE(r.value()
                      ->schedule_read("v", Box{{0}, {4}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(out))))
                      .is_ok());
      ASSERT_TRUE(r.value()->perform_reads().is_ok());
      // Steps 0: untouched; 1,2: doubled at the writer; 3: doubled at the
      // reader (still doubled -- the *location* moved, not the effect).
      EXPECT_DOUBLE_EQ(out[0], s == 0 ? 1.0 : 2.0) << "step " << s;
      ASSERT_TRUE(r.value()->end_step().is_ok());
    }
    EXPECT_EQ(r.value()->begin_step().status().code(), ErrorCode::kEndOfStream);
  });
  writer.join();
  reader.join();
}

TEST(PluginMobilityTest, CachingAllRejectsLatePluginInstall) {
  Runtime rt;
  rt.set_plugin_compiler(doubling_compiler());
  Program sim("sim", 1), viz("viz", 1);
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "migall";
    spec.endpoint = EndpointSpec{&sim, 0, {0, 0}};
    spec.method.method = "FLEXIO";
    spec.method.caching = xml::CachingLevel::kAll;
    spec.method.timeout_ms = 3000;
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data{1.0};
    for (int s = 0; s < 2; ++s) {
      ASSERT_TRUE(w.value()->begin_step(s).is_ok());
      ASSERT_TRUE(w.value()
                      ->write(adios::global_array_var("v", DataType::kDouble,
                                                      {1}, Box{{0}, {1}}),
                              as_bytes_view(std::span<const double>(data)))
                      .is_ok());
      ASSERT_TRUE(w.value()->end_step().is_ok());
    }
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "migall";
    spec.endpoint = EndpointSpec{&viz, 0, {1, 0}};
    spec.method.method = "FLEXIO";
    spec.method.timeout_ms = 3000;
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    std::vector<double> out(1);
    auto dst = MutableByteView(std::as_writable_bytes(std::span<double>(out)));
    ASSERT_TRUE(r.value()->begin_step().is_ok());
    ASSERT_TRUE(r.value()->schedule_read("v", Box{{0}, {1}}, dst).is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    ASSERT_TRUE(r.value()->end_step().is_ok());
    // Second step: the handshake is cached away; installing now must fail
    // loudly instead of silently never deploying.
    ASSERT_TRUE(r.value()->install_plugin("v", "writer", true).is_ok());
    ASSERT_TRUE(r.value()->begin_step().is_ok());
    ASSERT_TRUE(r.value()->schedule_read("v", Box{{0}, {1}}, dst).is_ok());
    EXPECT_EQ(r.value()->perform_reads().code(),
              ErrorCode::kFailedPrecondition);
  });
  writer.join();
  reader.join();
}

// -------------------------------------------------- fault injection e2e --

TEST(StreamFaultTest, TransientFabricFlakesAreRetried) {
  // The paper's resiliency story: "simple timeout-and-retry schemes to
  // cope with errors and failures during data movement". Inject transient
  // RDMA failures under a cross-node stream and expect the pipeline to
  // complete regardless.
  Runtime rt;
  std::atomic<int> injected{0};
  rt.bus().fabric().set_fault_injector(
      [&injected](nnti::Op op, const std::string&, const std::string&) {
        // Fail every 7th message-queue put once.
        static std::atomic<int> counter{0};
        if (op == nnti::Op::kPutMessage &&
            counter.fetch_add(1) % 7 == 6) {
          injected.fetch_add(1);
          return make_error(ErrorCode::kUnavailable, "injected flake");
        }
        return Status::ok();
      });

  Program sim("sim", 2), viz("viz", 1);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      StreamSpec spec;
      spec.stream = "flaky";
      spec.endpoint = EndpointSpec{&sim, rank, {rank, rank}};
      spec.method.method = "FLEXIO";
      spec.method.max_retries = 5;
      auto w = rt.open_writer(spec);
      ASSERT_TRUE(w.is_ok()) << w.status().to_string();
      const Dims global{16};
      const Box box = adios::block_decompose(global, 2, rank, 0);
      std::vector<double> data(box.elements(), rank + 1.0);
      for (int s = 0; s < 5; ++s) {
        ASSERT_TRUE(w.value()->begin_step(s).is_ok());
        ASSERT_TRUE(
            w.value()
                ->write(adios::global_array_var("v", DataType::kDouble,
                                                global, box),
                        as_bytes_view(std::span<const double>(data)))
                .is_ok());
        const Status st = w.value()->end_step();
        ASSERT_TRUE(st.is_ok()) << st.to_string();
      }
      ASSERT_TRUE(w.value()->close().is_ok());
    });
  }
  threads.emplace_back([&] {
    StreamSpec spec;
    spec.stream = "flaky";
    spec.endpoint = EndpointSpec{&viz, 0, {9, 0}};
    spec.method.method = "FLEXIO";
    spec.method.max_retries = 5;
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    std::vector<double> out(16);
    int steps = 0;
    for (;;) {
      auto step = r.value()->begin_step();
      if (step.status().code() == ErrorCode::kEndOfStream) break;
      ASSERT_TRUE(step.is_ok()) << step.status().to_string();
      ASSERT_TRUE(r.value()
                      ->schedule_read("v", Box{{0}, {16}},
                                      MutableByteView(std::as_writable_bytes(
                                          std::span<double>(out))))
                      .is_ok());
      const Status st = r.value()->perform_reads();
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      EXPECT_DOUBLE_EQ(out[0], 1.0);
      EXPECT_DOUBLE_EQ(out[15], 2.0);
      ASSERT_TRUE(r.value()->end_step().is_ok());
      ++steps;
    }
    EXPECT_EQ(steps, 5);
  });
  for (auto& t : threads) t.join();
  EXPECT_GT(injected.load(), 0);  // the flakes really happened
}

// ------------------------------------------------ API hardening checks --

TEST(StreamValidationTest, OutOfBoundsSelectionAndDuplicateWrites) {
  Runtime rt;
  Program sim("sim", 1), viz("viz", 1);
  std::thread writer([&] {
    StreamSpec spec;
    spec.stream = "valid";
    spec.endpoint = EndpointSpec{&sim, 0, {0, 0}};
    spec.method.method = "FLEXIO";
    auto w = rt.open_writer(spec);
    ASSERT_TRUE(w.is_ok());
    std::vector<double> data(8, 1.0);
    const auto meta =
        adios::global_array_var("v", DataType::kDouble, {8}, Box{{0}, {8}});
    ASSERT_TRUE(w.value()->begin_step(0).is_ok());
    ASSERT_TRUE(w.value()
                    ->write(meta, as_bytes_view(std::span<const double>(data)))
                    .is_ok());
    // Same variable twice in one step is a caller bug.
    EXPECT_EQ(w.value()
                  ->write(meta, as_bytes_view(std::span<const double>(data)))
                  .code(),
              ErrorCode::kAlreadyExists);
    ASSERT_TRUE(w.value()->end_step().is_ok());
    ASSERT_TRUE(w.value()->close().is_ok());
  });
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "valid";
    spec.endpoint = EndpointSpec{&viz, 0, {1, 0}};
    spec.method.method = "FLEXIO";
    auto r = rt.open_reader(spec);
    ASSERT_TRUE(r.is_ok());
    ASSERT_TRUE(r.value()->begin_step().is_ok());
    std::vector<double> out(8);
    auto dst = MutableByteView(std::as_writable_bytes(std::span<double>(out)));
    // Selection past the array's end would stall silently without the check.
    EXPECT_EQ(r.value()->schedule_read("v", Box{{4}, {8}}, dst).code(),
              ErrorCode::kOutOfRange);
    // Wrong rank too.
    EXPECT_EQ(r.value()->schedule_read("v", Box{{0, 0}, {2, 4}}, dst).code(),
              ErrorCode::kOutOfRange);
    ASSERT_TRUE(r.value()->schedule_read("v", Box{{0}, {8}}, dst).is_ok());
    ASSERT_TRUE(r.value()->perform_reads().is_ok());
    ASSERT_TRUE(r.value()->end_step().is_ok());
    while (r.value()->begin_step().status().code() != ErrorCode::kEndOfStream) {
    }
  });
  writer.join();
  reader.join();
}

// --------------------------------------------------- scale stress test --

TEST(StreamScaleTest, EightByFourGlobalArrayPipeline) {
  // A denser MxN than the parameterized pipeline tests: 8 writers x 4
  // readers, 2-D array, RDMA everywhere, local caching + batching, 4 steps.
  Runtime rt;
  constexpr int kWriters = 8;
  constexpr int kReaders = 4;
  constexpr int kSteps = 4;
  Program sim("sim", kWriters);
  Program viz("viz", kReaders);
  const Dims global{64, 48};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      StreamSpec spec;
      spec.stream = "scale";
      spec.endpoint = EndpointSpec{&sim, w, {w, w}};
      spec.method.method = "FLEXIO";
      spec.method.caching = xml::CachingLevel::kLocal;
      spec.method.batching = true;
      auto writer = rt.open_writer(spec);
      ASSERT_TRUE(writer.is_ok());
      const Box box = adios::block_decompose(global, kWriters, w, 0);
      std::vector<double> data(box.elements());
      for (int s = 0; s < kSteps; ++s) {
        std::size_t i = 0;
        for (std::uint64_t r = 0; r < box.count[0]; ++r) {
          for (std::uint64_t c2 = 0; c2 < box.count[1]; ++c2) {
            data[i++] = s * 1e6 + (box.offset[0] + r) * 1e3 + c2;
          }
        }
        ASSERT_TRUE(writer.value()->begin_step(s).is_ok());
        ASSERT_TRUE(
            writer.value()
                ->write(adios::global_array_var("field", DataType::kDouble,
                                                global, box),
                        as_bytes_view(std::span<const double>(data)))
                .is_ok());
        ASSERT_TRUE(writer.value()->end_step().is_ok());
      }
      ASSERT_TRUE(writer.value()->close().is_ok());
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      StreamSpec spec;
      spec.stream = "scale";
      spec.endpoint = EndpointSpec{&viz, r, {100 + r, r}};
      spec.method.method = "FLEXIO";
      spec.method.caching = xml::CachingLevel::kLocal;
      spec.method.batching = true;
      auto reader = rt.open_reader(spec);
      ASSERT_TRUE(reader.is_ok());
      // Column-strip selection: touches every writer's block.
      const Box sel = adios::block_decompose(global, kReaders, r, 1);
      std::vector<double> out(sel.elements());
      int steps = 0;
      for (;;) {
        auto step = reader.value()->begin_step();
        if (step.status().code() == ErrorCode::kEndOfStream) break;
        ASSERT_TRUE(step.is_ok());
        ASSERT_TRUE(reader.value()
                        ->schedule_read("field", sel,
                                        MutableByteView(std::as_writable_bytes(
                                            std::span<double>(out))))
                        .is_ok());
        ASSERT_TRUE(reader.value()->perform_reads().is_ok());
        std::size_t i = 0;
        for (std::uint64_t row = 0; row < sel.count[0]; ++row) {
          for (std::uint64_t col = 0; col < sel.count[1]; ++col) {
            ASSERT_DOUBLE_EQ(out[i++],
                             step.value() * 1e6 + (sel.offset[0] + row) * 1e3 +
                                 (sel.offset[1] + col));
          }
        }
        ASSERT_TRUE(reader.value()->end_step().is_ok());
        ++steps;
      }
      EXPECT_EQ(steps, kSteps);
    });
  }
  for (auto& t : threads) t.join();
}

// -------------------------------------------------- protocol fuzz test --

// Property: a pipeline with randomized shape (writers, readers, steps,
// caching level, batching, async, transports, variable mix) always
// delivers every element correctly and terminates cleanly.
class PipelineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzzTest, RandomizedPipelineIsCorrect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176 + 3);
  const int writers = 1 + static_cast<int>(rng.next_below(4));
  const int readers = 1 + static_cast<int>(rng.next_below(3));
  const int steps = 1 + static_cast<int>(rng.next_below(5));
  const auto caching = static_cast<xml::CachingLevel>(rng.next_below(3));
  const bool batching = rng.next_below(2) != 0;
  const bool async = rng.next_below(2) != 0;
  const bool cross_node = rng.next_below(2) != 0;
  const Dims global{4 + rng.next_below(40), 1 + rng.next_below(6)};
  const bool with_pg = rng.next_below(2) != 0;

  Runtime rt;
  Program sim("sim", writers);
  Program viz("viz", readers);
  const std::string stream = "fuzz" + std::to_string(GetParam());

  auto value_at = [](int step, std::uint64_t r, std::uint64_t c) {
    return step * 1e6 + static_cast<double>(r) * 1e3 + static_cast<double>(c);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&sim, w, {cross_node ? w : 0, w}};
      spec.method.method = "FLEXIO";
      spec.method.caching = caching;
      spec.method.batching = batching;
      spec.method.async_writes = async;
      auto writer = rt.open_writer(spec);
      ASSERT_TRUE(writer.is_ok());
      const Box box = adios::block_decompose(global, writers, w, 0);
      std::vector<double> field(box.elements());
      // PG payload must keep a constant shape under CACHING_ALL. Derive
      // per-writer sizes without touching the shared test Rng (threads!).
      const std::uint64_t pg_rows =
          caching == xml::CachingLevel::kAll
              ? 7
              : 5 + static_cast<std::uint64_t>((GetParam() * 31 + w * 7) % 6);
      std::vector<double> particles(pg_rows * 2);
      for (int s = 0; s < steps; ++s) {
        std::size_t i = 0;
        for (std::uint64_t r = 0; r < box.count[0]; ++r) {
          for (std::uint64_t c = 0; c < box.count[1]; ++c) {
            field[i++] = value_at(s, box.offset[0] + r, box.offset[1] + c);
          }
        }
        for (std::size_t p = 0; p < particles.size(); ++p) {
          particles[p] = w * 1e4 + s * 1e2 + static_cast<double>(p);
        }
        ASSERT_TRUE(writer.value()->begin_step(s).is_ok());
        ASSERT_TRUE(
            writer.value()
                ->write(adios::global_array_var("f", DataType::kDouble,
                                                global, box),
                        as_bytes_view(std::span<const double>(field)))
                .is_ok());
        if (with_pg) {
          ASSERT_TRUE(
              writer.value()
                  ->write(adios::local_array_var("p", DataType::kDouble,
                                                 {pg_rows, 2}),
                          as_bytes_view(std::span<const double>(particles)))
                  .is_ok());
        }
        const Status st = writer.value()->end_step();
        ASSERT_TRUE(st.is_ok()) << st.to_string();
      }
      ASSERT_TRUE(writer.value()->close().is_ok());
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&viz, r, {cross_node ? 50 + r : 0, 100 + r}};
      spec.method.method = "FLEXIO";
      spec.method.caching = caching;
      auto reader = rt.open_reader(spec);
      ASSERT_TRUE(reader.is_ok());
      const Box sel = adios::block_decompose(global, readers, r, 0);
      std::vector<double> out(sel.elements());
      int seen = 0;
      for (;;) {
        auto step = reader.value()->begin_step();
        if (step.status().code() == ErrorCode::kEndOfStream) break;
        ASSERT_TRUE(step.is_ok()) << step.status().to_string();
        ASSERT_TRUE(reader.value()
                        ->schedule_read("f", sel,
                                        MutableByteView(std::as_writable_bytes(
                                            std::span<double>(out))))
                        .is_ok());
        if (with_pg) {
          for (int w = r; w < writers; w += readers) {
            ASSERT_TRUE(reader.value()->schedule_read_pg(w).is_ok());
          }
        }
        const Status st = reader.value()->perform_reads();
        ASSERT_TRUE(st.is_ok()) << st.to_string();
        std::size_t i = 0;
        for (std::uint64_t row = 0; row < sel.count[0]; ++row) {
          for (std::uint64_t col = 0; col < sel.count[1]; ++col) {
            ASSERT_DOUBLE_EQ(out[i++],
                             value_at(static_cast<int>(step.value()),
                                      sel.offset[0] + row,
                                      sel.offset[1] + col));
          }
        }
        if (with_pg) {
          for (const PgBlock& block : reader.value()->pg_blocks()) {
            const auto* vals =
                reinterpret_cast<const double*>(block.payload.data());
            const std::size_t n = block.payload.size() / sizeof(double);
            for (std::size_t p = 0; p < n; ++p) {
              ASSERT_DOUBLE_EQ(vals[p], block.writer_rank * 1e4 +
                                            step.value() * 1e2 +
                                            static_cast<double>(p));
            }
          }
        }
        ASSERT_TRUE(reader.value()->end_step().is_ok());
        ++seen;
      }
      EXPECT_EQ(seen, steps);
    });
  }
  for (auto& t : threads) t.join();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest, ::testing::Range(0, 20));

// ------------------------------------------------ plan property testing --

class PlanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanPropertyTest, PiecesTileSelectionsExactly) {
  // Property: for random writer decompositions and random reader
  // selections, the planned pieces (a) stay inside both the block and the
  // selection, (b) are pairwise disjoint per (reader, var), and (c) cover
  // exactly selection ∩ written-space, element for element.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const Dims global{4 + rng.next_below(40), 2 + rng.next_below(12)};
  const int writers = 1 + static_cast<int>(rng.next_below(6));
  const int readers = 1 + static_cast<int>(rng.next_below(4));

  const int split_dim = static_cast<int>(rng.next_below(2));
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < writers; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::global_array_var(
        "A", DataType::kDouble, global,
        adios::block_decompose(global, writers, w, split_dim));
    blocks.push_back(std::move(b));
  }
  wire::ReadRequest req;
  for (int r = 0; r < readers; ++r) {
    Box sel;
    sel.offset.resize(2);
    sel.count.resize(2);
    for (int d = 0; d < 2; ++d) {
      const auto du = static_cast<std::size_t>(d);
      sel.offset[du] = rng.next_below(global[du]);
      sel.count[du] = 1 + rng.next_below(global[du] - sel.offset[du]);
    }
    req.selections.push_back(wire::SelectionInfo{r, "A", sel});
  }
  const auto plan = plan_transfers(blocks, req);

  for (int r = 0; r < readers; ++r) {
    const Box& sel = req.selections[static_cast<std::size_t>(r)].box;
    std::vector<int> covered(sel.elements(), 0);
    for (const TransferPiece& p : pieces_to_reader(plan, r)) {
      ASSERT_TRUE(contains(sel, p.region));
      ASSERT_TRUE(contains(p.meta.block, p.region));
      // Mark covered elements; disjointness means no element marked twice.
      Dims coord(2);
      for (std::uint64_t i = 0; i < p.region.count[0]; ++i) {
        for (std::uint64_t j = 0; j < p.region.count[1]; ++j) {
          coord[0] = p.region.offset[0] + i;
          coord[1] = p.region.offset[1] + j;
          ++covered[adios::flat_index(sel, coord)];
        }
      }
    }
    // Writers' blocks tile the global array, so the whole selection must
    // be covered exactly once.
    for (int c : covered) ASSERT_EQ(c, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace flexio
