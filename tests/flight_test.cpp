// Unit tests for the cross-process telemetry layer: the flight-recorder
// sampler (deterministic under the fake clock, delta encoding, rotation),
// the trace-ring step annotations that feed the wire TraceContext, and the
// two-file trace merge with NTP-style clock-offset estimation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/trace_merge.h"

namespace flexio {
namespace {

std::atomic<std::uint64_t> g_fake_ns{0};
std::uint64_t fake_clock() {
  return g_fake_ns.load(std::memory_order_relaxed);
}

/// Temp-file path unique to this test process; removed on destruction
/// together with any rotation siblings.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + ".jsonl"))
                .string();
  }
  ~TempFile() {
    std::remove(path_.c_str());
    for (int i = 1; i <= 8; ++i) {
      std::remove((path_ + "." + std::to_string(i)).c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// RAII: metrics + fake clock on, everything restored on destruction.
class TelemetryFixture {
 public:
  TelemetryFixture() {
    was_metrics_ = metrics::enabled();
    metrics::set_enabled(true);
    g_fake_ns.store(1000, std::memory_order_relaxed);
    metrics::set_clock_for_testing(&fake_clock);
  }
  ~TelemetryFixture() {
    flight::stop();
    metrics::set_clock_for_testing(nullptr);
    metrics::set_enabled(was_metrics_);
  }

 private:
  bool was_metrics_ = false;
};

TEST(FlightRecorderTest, DeterministicDeltasUnderFakeClock) {
  TelemetryFixture fix;
  TempFile file("flexio_flight_deltas");
  flight::Options opts;
  opts.path = file.path();
  opts.background = false;
  ASSERT_TRUE(flight::start(opts).is_ok());
  EXPECT_TRUE(flight::active());

  metrics::Counter& c = metrics::counter("flighttest.deltas.counter");
  metrics::Gauge& g = metrics::gauge("flighttest.deltas.gauge");
  metrics::Histogram& h = metrics::histogram("flighttest.deltas.hist");

  c.add(7);
  g.add(3);
  h.record(40);
  g_fake_ns.store(2000, std::memory_order_relaxed);
  ASSERT_TRUE(flight::sample_now().is_ok());

  c.add(5);
  g.sub(1);
  g_fake_ns.store(3000, std::memory_order_relaxed);
  ASSERT_TRUE(flight::sample_now().is_ok());

  // Nothing moved: this sample must be skipped entirely.
  ASSERT_TRUE(flight::sample_now().is_ok());

  flight::stop();
  EXPECT_FALSE(flight::active());

  const auto lines = read_lines(file.path());
  ASSERT_EQ(lines.size(), 3u);  // start marker + two delta samples

  // Every line is valid JSON carrying the schema tag.
  for (const std::string& line : lines) {
    auto doc = json::parse(line);
    ASSERT_TRUE(doc.is_ok()) << line;
    ASSERT_NE(doc.value().find("schema"), nullptr);
    EXPECT_EQ(doc.value().find("schema")->as_string(), "flexio-stats-v1");
  }

  auto start = json::parse(lines[0]).value();
  EXPECT_EQ(start.find("seq")->as_number(), 0);
  EXPECT_EQ(start.find("t_ns")->as_number(), 1000);
  EXPECT_TRUE(start.find("start") != nullptr);

  auto first = json::parse(lines[1]).value();
  EXPECT_EQ(first.find("seq")->as_number(), 1);
  EXPECT_EQ(first.find("t_ns")->as_number(), 2000);
  const json::Value* counters = first.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("flighttest.deltas.counter")->as_number(), 7);
  const json::Value* gauges = first.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("flighttest.deltas.gauge")->as_number(), 3);
  const json::Value* hists = first.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hist = hists->find("flighttest.deltas.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 1);
  EXPECT_EQ(hist->find("sum")->as_number(), 40);

  auto second = json::parse(lines[2]).value();
  EXPECT_EQ(second.find("seq")->as_number(), 2);
  EXPECT_EQ(second.find("t_ns")->as_number(), 3000);
  EXPECT_EQ(second.find("counters")->find("flighttest.deltas.counter")
                ->as_number(),
            5);  // delta, not cumulative
  // Gauge went 3 -> 2: reported as its new value.
  EXPECT_EQ(second.find("gauges")->find("flighttest.deltas.gauge")
                ->as_number(),
            2);
  // Histogram did not move: absent from the second sample.
  EXPECT_EQ(second.find("histograms"), nullptr);
}

TEST(FlightRecorderTest, CooperativeHookSamplesOnlyWhenDue) {
  TelemetryFixture fix;
  TempFile file("flexio_flight_coop");
  flight::Options opts;
  opts.path = file.path();
  opts.background = false;
  ASSERT_TRUE(flight::start(opts).is_ok());

  metrics::Counter& c = metrics::counter("flighttest.coop.counter");
  c.inc();
  const std::uint64_t before = flight::samples_taken();
  flight::maybe_sample();  // active but not due: no line
  EXPECT_EQ(flight::samples_taken(), before);

  flight::request_sample();
  flight::maybe_sample();
  EXPECT_EQ(flight::samples_taken(), before + 1);

  flight::maybe_sample();  // due flag was consumed
  EXPECT_EQ(flight::samples_taken(), before + 1);
  flight::stop();
}

TEST(FlightRecorderTest, RotationBoundsFileSize) {
  TelemetryFixture fix;
  TempFile file("flexio_flight_rotate");
  flight::Options opts;
  opts.path = file.path();
  opts.background = false;
  opts.max_bytes = 256;  // tiny: a handful of lines per file
  opts.max_rotations = 2;
  ASSERT_TRUE(flight::start(opts).is_ok());

  metrics::Counter& c = metrics::counter("flighttest.rotate.counter");
  for (int i = 0; i < 64; ++i) {
    c.add(static_cast<std::uint64_t>(i + 1));
    g_fake_ns.fetch_add(100, std::memory_order_relaxed);
    ASSERT_TRUE(flight::sample_now().is_ok());
  }
  flight::stop();

  EXPECT_LE(std::filesystem::file_size(file.path()), 256u + 128u);
  EXPECT_TRUE(std::filesystem::exists(file.path() + ".1"));
  EXPECT_TRUE(std::filesystem::exists(file.path() + ".2"));
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".3"));
  // Rotated files still hold valid JSON lines.
  for (const std::string& line : read_lines(file.path() + ".1")) {
    EXPECT_TRUE(json::parse(line).is_ok()) << line;
  }
}

TEST(FlightRecorderTest, DoubleStartRejectedAndStopIdempotent) {
  TelemetryFixture fix;
  TempFile file("flexio_flight_double");
  flight::Options opts;
  opts.path = file.path();
  opts.background = false;
  ASSERT_TRUE(flight::start(opts).is_ok());
  EXPECT_EQ(flight::start(opts).code(), ErrorCode::kFailedPrecondition);
  flight::stop();
  flight::stop();  // no-op
  EXPECT_EQ(flight::sample_now().code(), ErrorCode::kFailedPrecondition);
}

// ------------------------------------------------------ trace annotations --

TEST(TraceStepTest, StepScopeStampsSpansAndClockSamples) {
  trace::set_enabled(true);
  trace::reset();
  trace::set_thread_pid(7);
  {
    trace::StepScope scope(/*stream_id=*/99, /*step=*/3, /*peer_span=*/42);
    trace::Span span("flighttest.step_span");
    trace::clock_sample(123456);
  }
  {
    trace::Span unannotated("flighttest.plain_span");
  }
  trace::set_thread_pid(0);
  trace::set_enabled(false);

  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Records land in end order: clock sample first (zero-duration), then
  // the annotated span, then the unannotated one.
  EXPECT_STREQ(spans[0].name, trace::kClockSampleName);
  EXPECT_EQ(spans[0].remote_ns, 123456u);
  EXPECT_EQ(spans[0].pid, 7u);
  EXPECT_EQ(spans[0].step, 3);

  EXPECT_STREQ(spans[1].name, "flighttest.step_span");
  EXPECT_EQ(spans[1].pid, 7u);
  EXPECT_EQ(spans[1].stream_id, 99u);
  EXPECT_EQ(spans[1].step, 3);
  EXPECT_EQ(spans[1].peer_span, 42u);

  EXPECT_STREQ(spans[2].name, "flighttest.plain_span");
  EXPECT_EQ(spans[2].step, -1);
  EXPECT_EQ(spans[2].peer_span, 0u);
}

TEST(TraceStepTest, RingCapacityValidation) {
  const std::size_t original = trace::ring_capacity();
  trace::set_ring_capacity(128);
  EXPECT_EQ(trace::ring_capacity(), 128u);
  trace::set_ring_capacity(10);  // below the minimum: rejected, logged
  EXPECT_EQ(trace::ring_capacity(), 128u);
  trace::set_ring_capacity(original >= 64 ? original : 4096);
}

// ------------------------------------------------------------ trace merge --

/// The writer-side (file A) fixture: one end_step span plus one clock
/// sample pairing A's receive clock with B's send clock.
std::string make_a_json() {
  return R"({"traceEvents": [
    {"name": "writer.end_step", "ph": "X", "ts": 1000.0, "dur": 500.0,
     "pid": 1, "tid": 0,
     "args": {"id": 10, "parent": 0, "depth": 0, "stream": 99, "step": 2}},
    {"name": "flexio.clock_sample", "ph": "X", "ts": 2000.0, "dur": 0.0,
     "pid": 1, "tid": 0,
     "args": {"id": 11, "parent": 0, "depth": 0, "remote_ns": 11900000}}
  ]})";
}

/// The reader-side (file B) fixture, on a clock 10 ms ahead of A's: a
/// perform_reads span peered to A's end_step, plus the reverse clock
/// sample.
std::string make_b_json(std::int64_t reader_step = 2) {
  std::ostringstream out;
  out << R"({"traceEvents": [
    {"name": "reader.perform_reads", "ph": "X", "ts": 11200.0, "dur": 300.0,
     "pid": 2, "tid": 1,
     "args": {"id": 20, "parent": 0, "depth": 0, "stream": 99, "step": )"
      << reader_step << R"(, "peer": 10}},
    {"name": "flexio.clock_sample", "ph": "X", "ts": 12050.0, "dur": 0.0,
     "pid": 2, "tid": 1,
     "args": {"id": 21, "parent": 0, "depth": 0, "remote_ns": 2000000}}
  ]})";
  return out.str();
}

TEST(TraceMergeTest, OffsetEstimateFromBothDirections) {
  // True offset (a_clock - b_clock) is -10 ms. A's sample sees delta
  // offset + 100us delay = -9.9 ms; B's sees -offset + 50us = 10.05 ms.
  // The symmetric estimate is (da - db) / 2 = -9.975 ms, 25 us off --
  // half the delay asymmetry, the NTP bound.
  auto merged = trace::merge_traces(make_a_json(), make_b_json());
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().clock_pairs_a, 1u);
  EXPECT_EQ(merged.value().clock_pairs_b, 1u);
  EXPECT_NEAR(merged.value().offset_us, -9975.0, 1e-6);
  EXPECT_TRUE(merged.value().validate(0.0).is_ok());

  // The reader span moved onto A's clock and inside the writer span.
  const trace::MergedEvent* reader = nullptr;
  const trace::MergedEvent* writer = nullptr;
  for (const trace::MergedEvent& e : merged.value().events) {
    if (e.name == "reader.perform_reads") reader = &e;
    if (e.name == "writer.end_step") writer = &e;
  }
  ASSERT_NE(reader, nullptr);
  ASSERT_NE(writer, nullptr);
  EXPECT_NEAR(reader->ts_us, 11200.0 - 9975.0, 1e-6);
  EXPECT_GE(reader->ts_us, writer->ts_us);
  // B ids were remapped into the disjoint range; the peer reference (an A
  // id) was not, and stitching parented the reader span under it.
  EXPECT_EQ(reader->id, 20u + (1ull << 32));
  EXPECT_EQ(reader->peer, 10u);
  EXPECT_EQ(reader->parent, 10u);
  EXPECT_EQ(writer->id, 10u);
}

TEST(TraceMergeTest, SingleDirectionFallback) {
  // Strip B's clock sample: the offset comes from A's sample alone and is
  // biased by the one-way delay (estimate -9.9 ms vs true -10 ms).
  const std::string b = R"({"traceEvents": [
    {"name": "reader.perform_reads", "ph": "X", "ts": 11200.0, "dur": 300.0,
     "pid": 2, "tid": 1,
     "args": {"id": 20, "parent": 0, "depth": 0, "step": 2, "peer": 10}}
  ]})";
  auto merged = trace::merge_traces(make_a_json(), b);
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().clock_pairs_b, 0u);
  EXPECT_NEAR(merged.value().offset_us, -9900.0, 1e-6);
  EXPECT_TRUE(merged.value().validate(0.0).is_ok());
}

TEST(TraceMergeTest, ValidateCatchesStepMismatch) {
  // The reader claims step 5 under a writer span annotated step 2: the
  // merged timeline must fail validation.
  auto merged = trace::merge_traces(make_a_json(), make_b_json(5));
  ASSERT_TRUE(merged.is_ok());
  EXPECT_FALSE(merged.value().validate(0.0).is_ok());
}

TEST(TraceMergeTest, ValidateCatchesMissingPeer) {
  const std::string b = R"({"traceEvents": [
    {"name": "reader.perform_reads", "ph": "X", "ts": 11200.0, "dur": 300.0,
     "pid": 2, "tid": 1,
     "args": {"id": 20, "parent": 0, "depth": 0, "step": 2, "peer": 777}}
  ]})";
  auto merged = trace::merge_traces(make_a_json(), b);
  ASSERT_TRUE(merged.is_ok());
  EXPECT_FALSE(merged.value().validate(0.0).is_ok());
}

TEST(TraceMergeTest, NoClockSamplesMeansZeroOffset) {
  const std::string a = R"({"traceEvents": [
    {"name": "writer.end_step", "ph": "X", "ts": 1000.0, "dur": 500.0,
     "pid": 1, "tid": 0, "args": {"id": 10, "parent": 0, "depth": 0}}
  ]})";
  const std::string b = R"({"traceEvents": [
    {"name": "reader.end_step", "ph": "X", "ts": 1400.0, "dur": 100.0,
     "pid": 2, "tid": 1, "args": {"id": 20, "parent": 0, "depth": 0}}
  ]})";
  auto merged = trace::merge_traces(a, b);
  ASSERT_TRUE(merged.is_ok());
  EXPECT_EQ(merged.value().offset_us, 0.0);
  EXPECT_EQ(merged.value().events.size(), 2u);
  EXPECT_TRUE(merged.value().validate(0.0).is_ok());
}

TEST(TraceMergeTest, MergedJsonRoundTripsThroughParser) {
  auto merged = trace::merge_traces(make_a_json(), make_b_json());
  ASSERT_TRUE(merged.is_ok());
  const std::string out = merged.value().to_json();
  auto doc = json::parse(out);
  ASSERT_TRUE(doc.is_ok());
  const json::Value* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->as_array().size(), merged.value().events.size());
}

TEST(TraceMergeTest, RejectsMalformedInput) {
  EXPECT_FALSE(trace::merge_traces("{}", make_b_json()).is_ok());
  EXPECT_FALSE(trace::merge_traces("not json", make_b_json()).is_ok());
}

}  // namespace
}  // namespace flexio
