// Machine descriptions for the simulated clusters.
//
// The paper evaluates on two ORNL machines; their topology drives every
// placement experiment:
//  * Titan (Cray XK6): 18,688 nodes, one 16-core AMD Opteron 6274
//    "Interlagos" @2.2 GHz per node organized as 2 NUMA domains x 8 cores,
//    8 MB shared L3 per domain, 32 GB RAM, Gemini 3-D torus interconnect.
//  * Smoky: 80 nodes, four quad-core AMD Opteron "Barcelona" @2.0 GHz per
//    node (4 NUMA domains, 2 MB shared L3 each, Figure 5), 32 GB RAM,
//    DDR InfiniBand.
// Bandwidth/latency values are calibrated to public specs of the era; the
// figure harnesses depend on their *ratios* (NIC vs. memory vs. file
// system), not absolute values.
#pragma once

#include <string>

#include "util/common.h"

namespace flexio::sim {

/// Where a core sits in the node/socket hierarchy.
struct CoreLocation {
  int node = 0;
  int socket = 0;        // NUMA domain within the node
  int core_in_socket = 0;

  friend bool operator==(const CoreLocation&, const CoreLocation&) = default;
};

struct MachineDesc {
  std::string name;
  int num_nodes = 1;
  int sockets_per_node = 1;   // == NUMA domains per node
  int cores_per_socket = 1;
  double core_ghz = 2.0;

  // Per-socket shared last-level cache.
  double l3_bytes_per_socket = 2.0 * (1 << 20);

  // Memory-copy bandwidth for the shared-memory transport (bytes/s).
  double mem_bw_local = 6e9;    // producer and consumer in one NUMA domain
  double mem_bw_remote = 3e9;   // copy crosses NUMA domains

  // Interconnect (per-node NIC injection/ejection, bytes/s) and latency.
  double nic_bw = 1.5e9;
  double nic_latency = 5e-6;

  // RDMA dynamic allocation+registration cost model: extra time for a
  // dynamically-registered transfer = reg_base + bytes * reg_per_byte
  // (page pinning walks the buffer). Static registration avoids it.
  double rdma_reg_base = 100e-6;
  double rdma_reg_per_byte = 1.0 / 40e9;

  // Center-wide shared parallel file system (Lustre-like). The aggregate
  // cap is what makes file I/O non-scaling in Figure 9.
  double fs_aggregate_bw = 20e9;
  double fs_per_node_bw = 1.0e9;
  double fs_open_latency = 5e-3;

  int cores_per_node() const { return sockets_per_node * cores_per_socket; }
  long total_cores() const {
    return static_cast<long>(num_nodes) * cores_per_node();
  }

  /// Decompose a global core id (0 .. total_cores-1) into its location.
  CoreLocation locate(long core_id) const {
    FLEXIO_CHECK(core_id >= 0 && core_id < total_cores());
    CoreLocation loc;
    loc.node = static_cast<int>(core_id / cores_per_node());
    const int within = static_cast<int>(core_id % cores_per_node());
    loc.socket = within / cores_per_socket;
    loc.core_in_socket = within % cores_per_socket;
    return loc;
  }

  /// Inverse of locate().
  long core_id(const CoreLocation& loc) const {
    return static_cast<long>(loc.node) * cores_per_node() +
           loc.socket * cores_per_socket + loc.core_in_socket;
  }

  /// Memory-copy bandwidth between two cores on the same node.
  double copy_bw(const CoreLocation& a, const CoreLocation& b) const {
    FLEXIO_CHECK(a.node == b.node);
    return a.socket == b.socket ? mem_bw_local : mem_bw_remote;
  }
};

/// ORNL Titan (Cray XK6, Gemini).
MachineDesc titan();

/// ORNL Smoky (80-node InfiniBand cluster, Figure 5 node architecture).
MachineDesc smoky();

}  // namespace flexio::sim
