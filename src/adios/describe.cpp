#include "adios/describe.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <set>

#include "util/strings.h"

namespace flexio::adios {

namespace {

/// Fold a payload's numeric values into [min, max]. Strings/bytes skipped.
void fold_min_max(const VarMeta& meta, ByteView payload, double* min_v,
                  double* max_v) {
  const std::size_t elem = serial::size_of(meta.type);
  if (elem == 0) return;
  const std::size_t n = payload.size() / elem;
  for (std::size_t i = 0; i < n; ++i) {
    const std::byte* p = payload.data() + i * elem;
    double v = 0;
    switch (meta.type) {
      case serial::DataType::kDouble: {
        double x;
        std::memcpy(&x, p, 8);
        v = x;
        break;
      }
      case serial::DataType::kFloat: {
        float x;
        std::memcpy(&x, p, 4);
        v = x;
        break;
      }
      case serial::DataType::kInt64: {
        std::int64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kInt32: {
        std::int32_t x;
        std::memcpy(&x, p, 4);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kInt16: {
        std::int16_t x;
        std::memcpy(&x, p, 2);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kInt8: {
        std::int8_t x;
        std::memcpy(&x, p, 1);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kUInt64: {
        std::uint64_t x;
        std::memcpy(&x, p, 8);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kUInt32: {
        std::uint32_t x;
        std::memcpy(&x, p, 4);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kUInt16: {
        std::uint16_t x;
        std::memcpy(&x, p, 2);
        v = static_cast<double>(x);
        break;
      }
      case serial::DataType::kUInt8: {
        std::uint8_t x;
        std::memcpy(&x, p, 1);
        v = static_cast<double>(x);
        break;
      }
      default:
        return;
    }
    *min_v = std::min(*min_v, v);
    *max_v = std::max(*max_v, v);
  }
}

std::string shape_string(const VarMeta& meta) {
  switch (meta.shape) {
    case ShapeKind::kScalar:
      return "scalar";
    case ShapeKind::kLocalArray:
      return "local " + dims_to_string(meta.block.count);
    case ShapeKind::kGlobalArray:
      return "global " + dims_to_string(meta.global_dims);
  }
  return "?";
}

}  // namespace

StatusOr<std::vector<VarSummary>> summarize_step(BpReader* reader,
                                                 StepId step) {
  FLEXIO_CHECK(reader != nullptr);
  // Variable names at this step: walk every writer's blocks.
  std::set<std::string> names;
  for (int w = 0; w < reader->num_writers(); ++w) {
    for (const BpBlockRef& ref : reader->blocks_for_writer(step, w)) {
      names.insert(ref.meta.name);
    }
  }
  std::vector<VarSummary> out;
  std::vector<std::byte> payload;
  for (const std::string& name : names) {
    auto blocks = reader->inquire(step, name);
    if (!blocks.is_ok()) return blocks.status();
    VarSummary summary;
    summary.representative = blocks.value()[0].meta;
    summary.min = std::numeric_limits<double>::infinity();
    summary.max = -std::numeric_limits<double>::infinity();
    for (const BpBlockRef& ref : blocks.value()) {
      ++summary.blocks;
      summary.elements += ref.meta.block_elements();
      payload.resize(ref.payload_bytes);
      FLEXIO_RETURN_IF_ERROR(
          reader->read_block(ref, MutableByteView(payload)));
      fold_min_max(ref.meta, ByteView(payload), &summary.min, &summary.max);
    }
    out.push_back(std::move(summary));
  }
  return out;
}

StatusOr<std::string> describe(const std::string& dir,
                               const std::string& stream) {
  auto reader = BpReader::open(dir, stream);
  if (!reader.is_ok()) return reader.status();
  std::string out = str_format("stream '%s': %d writer(s), %zu step(s)\n",
                               stream.c_str(), reader.value()->num_writers(),
                               reader.value()->steps().size());
  for (StepId step : reader.value()->steps()) {
    out += str_format("step %lld:\n", static_cast<long long>(step));
    auto summaries = summarize_step(reader.value().get(), step);
    if (!summaries.is_ok()) return summaries.status();
    for (const VarSummary& s : summaries.value()) {
      out += str_format(
          "  %-16s %-8s %-20s blocks=%-3d elements=%-10llu min=%g max=%g\n",
          s.representative.name.c_str(),
          std::string(serial::datatype_name(s.representative.type)).c_str(),
          shape_string(s.representative).c_str(), s.blocks,
          static_cast<unsigned long long>(s.elements), s.min, s.max);
    }
  }
  return out;
}

}  // namespace flexio::adios
