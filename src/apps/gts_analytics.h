// The GTS analysis chain (paper Section IV.A).
//
// "The particle data is processed by a series of analysis steps, including
// the calculation of particle distribution function and a range query on
// the velocity attributes of all particles. The query result is ~20% of
// the original output particles. 1D and 2D histograms are generated from
// the query results and written to files which can then be used for
// parallel coordinates visualization."
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace flexio::apps {

/// Fixed-bin 1-D histogram.
struct Histogram1D {
  double lo = 0, hi = 1;
  std::vector<std::uint64_t> bins;

  std::uint64_t total() const;
  /// Merge a peer's histogram (same shape) -- the parallel reduction.
  Status merge(const Histogram1D& other);
};

/// Fixed-bin 2-D histogram (row-major bins[y * nx + x]).
struct Histogram2D {
  double xlo = 0, xhi = 1, ylo = 0, yhi = 1;
  int nx = 0, ny = 0;
  std::vector<std::uint64_t> bins;

  std::uint64_t total() const;
  Status merge(const Histogram2D& other);
};

struct GtsAnalysisResult {
  Histogram1D distribution;   // particle distribution over |v|
  std::vector<double> query;  // particles passing the velocity range query
  Histogram1D vpar_hist;      // 1-D histogram of the query results
  Histogram2D vspace_hist;    // 2-D (vpar, vperp) histogram of the results
  std::uint64_t input_particles = 0;
  std::uint64_t selected_particles = 0;
};

struct GtsAnalysisConfig {
  int distribution_bins = 64;
  int hist1d_bins = 64;
  int hist2d_bins = 32;        // per axis
  double query_keep_fraction = 0.2;  // paper: result is ~20% of particles
};

/// Run the full chain on one particle table ([count x 7] doubles).
GtsAnalysisResult analyze_particles(std::span<const double> particles,
                                    const GtsAnalysisConfig& config = {});

/// Velocity-magnitude threshold so that `keep_fraction` of particles pass
/// (|v| above the (1-f) quantile). Exposed for tests.
double query_threshold(std::span<const double> particles,
                       double keep_fraction);

/// Write the histograms as CSV for the downstream parallel-coordinates
/// visualization (one file per histogram, suffixes .dist/.v1d/.v2d).
Status write_histograms(const GtsAnalysisResult& result,
                        const std::string& path_prefix);

}  // namespace flexio::apps
