// Bounded exponential backoff for retry loops.
//
// Retry loops used to sleep a fixed interval between attempts, which
// either hammers the contended resource (interval too small) or wastes
// most of the deadline (too large). Backoff grows the delay geometrically
// from `initial` up to the hard `max` cap, so early retries are cheap and
// a long outage settles into a bounded polling rate. Deterministic: no
// jitter (retry loops here are per-thread against in-process services),
// and the sleep itself is routed through a process-wide test hook in the
// style of metrics::set_clock_for_testing, so tests can capture the exact
// delay sequence without real waiting.
#pragma once

#include <chrono>
#include <cstdint>

namespace flexio::util {

struct BackoffPolicy {
  std::chrono::nanoseconds initial = std::chrono::milliseconds(1);
  std::chrono::nanoseconds max = std::chrono::milliseconds(100);
  double multiplier = 2.0;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {});

  /// The delay for the next attempt (initial, initial*multiplier, ...,
  /// capped at max), advancing the sequence.
  std::chrono::nanoseconds next_delay();

  /// next_delay(), slept through the sleep hook.
  void sleep();

  /// Restart the sequence from `initial` (e.g. after a success).
  void reset();

  /// Attempts consumed since construction/reset().
  int attempts() const { return attempts_; }

  /// Process-wide sleep hook. nullptr restores the real
  /// std::this_thread::sleep_for. Tests install a recorder to make backoff
  /// sequences deterministic (no wall-clock waits).
  using SleepFn = void (*)(std::chrono::nanoseconds);
  static void set_sleep_for_testing(SleepFn fn);

  /// Sleep an explicit delay through the same hook. For callers that hold
  /// persistent backoff state under a lock: compute next_delay() inside the
  /// critical section, sleep outside it.
  static void sleep_for(std::chrono::nanoseconds delay);

 private:
  BackoffPolicy policy_;
  std::chrono::nanoseconds next_;
  int attempts_ = 0;
};

}  // namespace flexio::util
