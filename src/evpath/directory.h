// Directory server for stream discovery and reader-group membership.
//
// Before any data moves, simulation and analytics find each other through
// an external directory server (paper Section II.C.1): the writer's
// coordinator registers a file name with its contact information; the
// reader's coordinator looks the name up and connects. The server is only
// involved in discovery -- it never sits on the data path -- which the
// monitoring counters here make checkable.
//
// On top of discovery the directory now tracks *liveness* for each
// stream's reader group. Every reader rank joins the group and heartbeats
// on a fixed interval; the directory lazily sweeps the group on access and
// declares any member whose last beat is older than the TTL dead. Every
// join, graceful leave, or declared death bumps the group's monotonically
// increasing MembershipEpoch -- the single value the stream endpoints
// compare to decide whether the MxN handshake must be re-exchanged and
// the redistribution plan rebuilt (see DESIGN.md "Elastic membership").
// A member that has been declared dead is *fenced*: its further
// heartbeats are rejected, so a zombie rank cannot resurrect itself; a
// respawned rank rejoins under a new incarnation number instead.
//
// Liveness uses metrics::now_ns(), so tests drive TTL expiry with the
// fake-clock hook (metrics::set_clock_for_testing). Membership is off by
// default -- streams opened against a directory that never enabled it
// behave exactly as before.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace flexio::evpath {

struct DirectoryStats {
  std::uint64_t registrations = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_waits = 0;  // lookups that had to block for a writer
};

/// Liveness configuration for all groups served by one directory.
struct MembershipOptions {
  /// Master switch. Disabled directories accept no joins or heartbeats and
  /// streams run with the frozen reader set from the open handshake.
  bool enabled = false;
  /// A member whose last heartbeat is older than this is declared dead at
  /// the next sweep. Readers should beat at ttl/4 or faster.
  std::chrono::nanoseconds ttl = std::chrono::milliseconds(500);
};

enum class MemberState : std::uint8_t {
  kAlive = 0,
  kLeft = 1,  // graceful departure at a step boundary
  kDead = 2,  // TTL expired; member is fenced
};

std::string_view member_state_name(MemberState state);

/// One reader rank's record in a stream's membership group. Dead and left
/// members stay in the view as tombstones so writers can distinguish "never
/// existed" from "gone" and so respawns get a fresh incarnation.
struct Member {
  int rank = 0;
  std::string contact;  // endpoint name data should be sent to
  /// Bumped every time this rank rejoins; senders drop cached links when
  /// the incarnation behind a contact changes.
  std::uint64_t incarnation = 0;
  MemberState state = MemberState::kAlive;
  /// Epoch at which this incarnation joined. A joiner only participates in
  /// handshakes stamped with an epoch >= join_epoch.
  std::uint64_t join_epoch = 0;
  std::uint64_t last_beat_ns = 0;
};

/// Atomic snapshot of a group: the epoch plus every member record sorted by
/// rank. The epoch counts joins + leaves + deaths since the group formed.
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<Member> members;

  const Member* find(int rank) const;
  int alive_count() const;
};

/// One rank's aggregated telemetry in the directory's cluster view:
/// the fold of every "flexio-stats-v1" delta frame the rank piggybacked
/// on its heartbeats. Counters and histogram count/sum accumulate the
/// deltas; gauges and histogram p50/p99 keep the latest value.
struct RankStats {
  std::string program;  // logical program name (e.g. "sim", "viz")
  int rank = 0;
  std::uint64_t last_ns = 0;  // t_ns of the newest folded frame
  std::uint64_t frames = 0;   // frames folded so far
  struct Hist {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0;
    double p99 = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Hist> histograms;
};

/// Every rank's RankStats, ordered by (program, rank).
using ClusterSnapshot = std::vector<RankStats>;

class DirectoryServer {
 public:
  /// Register a stream name with the writer coordinator's contact (its
  /// endpoint name). Re-registering a live name fails. `open_info` is an
  /// opaque blob (the encoded open reply) a late joiner can bootstrap its
  /// handshake state from without a live OpenRequest exchange.
  Status register_stream(const std::string& stream_name,
                         const std::string& coordinator_contact,
                         std::vector<std::byte> open_info = {});

  /// Remove a registration (stream closed). Also retires the stream's
  /// membership group.
  Status unregister_stream(const std::string& stream_name);

  /// Look up a stream's coordinator contact, waiting up to `timeout` for a
  /// writer to register it (readers may open before writers create).
  StatusOr<std::string> lookup(const std::string& stream_name,
                               std::chrono::nanoseconds timeout);

  /// Look up the open-info blob stored at registration (empty if the writer
  /// registered none). Waits like lookup().
  StatusOr<std::vector<std::byte>> lookup_info(const std::string& stream_name,
                                               std::chrono::nanoseconds timeout);

  DirectoryStats stats() const;

  // --- membership -------------------------------------------------------

  void set_membership_options(const MembershipOptions& options);
  MembershipOptions membership_options() const;
  bool membership_enabled() const;

  /// Join (or rejoin) stream's reader group as `rank`. Bumps the epoch and
  /// returns the new record (carrying incarnation and join_epoch). Joining
  /// while a previous incarnation of the rank is still alive fails with
  /// kAlreadyExists -- a respawner retries until the old incarnation is
  /// swept dead or leaves.
  StatusOr<Member> join_member(const std::string& stream_name, int rank,
                               const std::string& contact);

  /// Graceful departure; the caller must have drained its current step.
  /// Bumps the epoch.
  Status leave_member(const std::string& stream_name, int rank);

  /// Record a heartbeat for (rank, incarnation). kNotFound if the member is
  /// unknown; kFailedPrecondition if it was declared dead or superseded
  /// (fenced) -- the caller must stop participating.
  Status heartbeat(const std::string& stream_name, int rank,
                   std::uint64_t incarnation);

  /// Sweep the group for TTL expiries, then snapshot it.
  MembershipView membership(const std::string& stream_name);

  /// Sweep + return just the epoch (0 if the group does not exist).
  std::uint64_t membership_epoch(const std::string& stream_name);

  /// Block until the group's epoch differs from `last_seen` (sweeping on
  /// each wakeup so TTL deaths are declared even with no other activity).
  StatusOr<std::uint64_t> wait_for_epoch_change(const std::string& stream_name,
                                                std::uint64_t last_seen,
                                                std::chrono::nanoseconds timeout);

  // --- telemetry aggregation ---------------------------------------------

  /// Fold one "flexio-stats-v1" delta line from (program, rank) into the
  /// cluster view. Malformed lines are rejected (the cluster view never
  /// holds partial folds). Called by the runtime's heartbeat delivery
  /// adapter for frames carrying the stats trailer.
  Status fold_stats(const std::string& program, int rank,
                    const std::string& stats_line);

  /// Snapshot of every rank's folded telemetry.
  ClusterSnapshot cluster() const;

  /// The snapshot rendered as one "flexio-cluster-v1" JSON document --
  /// what the stats server serves at /cluster:
  ///   {"schema":"flexio-cluster-v1","ranks":[
  ///     {"program":"viz","rank":0,"t_ns":...,"frames":2,
  ///      "counters":{...},"gauges":{...},
  ///      "histograms":{"flexio.step.total.ns":
  ///          {"count":4,"sum":812345,"p50":180224.0,"p99":229376.0}}}]}
  std::string cluster_json() const;

  /// Sweep every group and list members currently declared dead, as
  /// "stream/rank" descriptors. Feeds the watchdog's rank-dead rule.
  std::vector<std::string> dead_members();

 private:
  struct Group {
    std::uint64_t epoch = 0;
    std::map<int, Member> members;
    /// Stream unregistered. The group persists as a tombstone: readers
    /// drain buffered steps after the writer closes, and their failure
    /// detector must still observe deaths/fencing in that window. A
    /// re-registration under the same name starts a fresh group.
    bool closed = false;
  };

  /// Declare TTL-expired members dead. Caller holds mutex_.
  void sweep_locked(Group& group);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::string> streams_;
  std::map<std::string, std::vector<std::byte>> stream_info_;
  std::map<std::string, Group> groups_;
  MembershipOptions membership_options_;
  DirectoryStats stats_;
  /// Cluster telemetry keyed by (program, rank).
  std::map<std::pair<std::string, int>, RankStats> rank_stats_;
};

}  // namespace flexio::evpath
