#include "apps/gts.h"

#include <cmath>

namespace flexio::apps {

GtsRank::GtsRank(int rank, std::uint64_t particles_per_rank,
                 std::uint64_t seed)
    : rank_(rank),
      rng_(seed * 1000003ULL + static_cast<std::uint64_t>(rank)),
      next_id_(static_cast<std::uint64_t>(rank) << 40) {
  init_table(&zion_, particles_per_rank);
  init_table(&electron_, particles_per_rank);
}

void GtsRank::init_table(std::vector<double>* table, std::uint64_t count) {
  table->resize(count * kGtsAttrs);
  for (std::uint64_t p = 0; p < count; ++p) {
    double* row = table->data() + p * kGtsAttrs;
    row[kX] = rng_.next_in(0.0, 2.0 * 3.14159265358979);   // toroidal angle
    row[kY] = rng_.next_in(0.0, 2.0 * 3.14159265358979);   // poloidal angle
    row[kZ] = rng_.next_in(0.2, 1.0);                      // radial position
    row[kVPar] = rng_.next_gaussian() * 1.0;
    row[kVPerp] = std::fabs(rng_.next_gaussian()) * 0.8;
    row[kWeight] = rng_.next_in(0.5, 1.5);
    row[kId] = static_cast<double>(next_id_++);
  }
}

void GtsRank::advance_table(std::vector<double>* table) {
  const std::uint64_t count = table->size() / kGtsAttrs;
  for (std::uint64_t p = 0; p < count; ++p) {
    double* row = table->data() + p * kGtsAttrs;
    // Gyro-drift along the field line plus small stochastic scattering.
    row[kX] = std::fmod(row[kX] + 0.01 * row[kVPar] + 6.28318530718,
                        6.28318530718);
    row[kY] = std::fmod(row[kY] + 0.02 * row[kVPerp] + 6.28318530718,
                        6.28318530718);
    row[kZ] += 0.001 * row[kVPar] * std::sin(row[kY]);
    row[kVPar] += 0.05 * rng_.next_gaussian();
    row[kVPerp] = std::fabs(row[kVPerp] + 0.03 * rng_.next_gaussian());
  }
  // Particle migration: ~1% leave, a comparable number arrive. This keeps
  // per-step output sizes changing like the production code's.
  const std::uint64_t leave = count / 100;
  for (std::uint64_t i = 0; i < leave; ++i) {
    const std::uint64_t victim = rng_.next_below(table->size() / kGtsAttrs);
    // Swap-remove the victim row.
    const std::uint64_t last = table->size() / kGtsAttrs - 1;
    for (std::uint64_t a = 0; a < kGtsAttrs; ++a) {
      (*table)[victim * kGtsAttrs + a] = (*table)[last * kGtsAttrs + a];
    }
    table->resize(last * kGtsAttrs);
  }
  const std::uint64_t arrive = rng_.next_below(2 * leave + 1);
  std::vector<double> fresh;
  init_table(&fresh, arrive);
  table->insert(table->end(), fresh.begin(), fresh.end());
}

void GtsRank::advance() {
  advance_table(&zion_);
  advance_table(&electron_);
}

adios::VarMeta GtsRank::zion_meta() const {
  return adios::local_array_var("zion", serial::DataType::kDouble,
                                {zion_count(), kGtsAttrs});
}

adios::VarMeta GtsRank::electron_meta() const {
  return adios::local_array_var("electron", serial::DataType::kDouble,
                                {electron_count(), kGtsAttrs});
}

}  // namespace flexio::apps
