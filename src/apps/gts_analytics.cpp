#include "apps/gts_analytics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "apps/gts.h"

namespace flexio::apps {

std::uint64_t Histogram1D::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t b : bins) t += b;
  return t;
}

Status Histogram1D::merge(const Histogram1D& other) {
  if (other.bins.size() != bins.size() || other.lo != lo || other.hi != hi) {
    return make_error(ErrorCode::kInvalidArgument,
                      "histogram shapes differ; cannot merge");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += other.bins[i];
  return Status::ok();
}

std::uint64_t Histogram2D::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t b : bins) t += b;
  return t;
}

Status Histogram2D::merge(const Histogram2D& other) {
  if (other.nx != nx || other.ny != ny || other.xlo != xlo ||
      other.xhi != xhi || other.ylo != ylo || other.yhi != yhi) {
    return make_error(ErrorCode::kInvalidArgument,
                      "histogram shapes differ; cannot merge");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += other.bins[i];
  return Status::ok();
}

namespace {

double vmag(const double* row) {
  return std::sqrt(row[kVPar] * row[kVPar] + row[kVPerp] * row[kVPerp]);
}

int bin_of(double v, double lo, double hi, int bins) {
  if (v <= lo) return 0;
  if (v >= hi) return bins - 1;
  return static_cast<int>((v - lo) / (hi - lo) * bins);
}

}  // namespace

double query_threshold(std::span<const double> particles,
                       double keep_fraction) {
  const std::size_t count = particles.size() / kGtsAttrs;
  if (count == 0) return 0.0;
  std::vector<double> mags(count);
  for (std::size_t p = 0; p < count; ++p) {
    mags[p] = vmag(particles.data() + p * kGtsAttrs);
  }
  const auto kth = static_cast<std::size_t>(
      static_cast<double>(count) * std::clamp(1.0 - keep_fraction, 0.0, 1.0));
  const std::size_t idx = std::min(kth, count - 1);
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(idx),
                   mags.end());
  return mags[idx];
}

GtsAnalysisResult analyze_particles(std::span<const double> particles,
                                    const GtsAnalysisConfig& config) {
  GtsAnalysisResult result;
  const std::size_t count = particles.size() / kGtsAttrs;
  result.input_particles = count;

  // Pass 1: velocity extents + distribution function over |v|.
  double max_v = 1e-9;
  for (std::size_t p = 0; p < count; ++p) {
    max_v = std::max(max_v, vmag(particles.data() + p * kGtsAttrs));
  }
  result.distribution.lo = 0;
  result.distribution.hi = max_v;
  result.distribution.bins.assign(
      static_cast<std::size_t>(config.distribution_bins), 0);
  for (std::size_t p = 0; p < count; ++p) {
    const double v = vmag(particles.data() + p * kGtsAttrs);
    ++result.distribution.bins[static_cast<std::size_t>(
        bin_of(v, 0, max_v, config.distribution_bins))];
  }

  // Range query on the velocity attributes: keep the fastest ~20%.
  const double threshold =
      query_threshold(particles, config.query_keep_fraction);
  double max_vpar = 1e-9, max_vperp = 1e-9, min_vpar = -1e-9;
  for (std::size_t p = 0; p < count; ++p) {
    const double* row = particles.data() + p * kGtsAttrs;
    if (vmag(row) >= threshold) {
      result.query.insert(result.query.end(), row, row + kGtsAttrs);
      max_vpar = std::max(max_vpar, row[kVPar]);
      min_vpar = std::min(min_vpar, row[kVPar]);
      max_vperp = std::max(max_vperp, row[kVPerp]);
    }
  }
  result.selected_particles = result.query.size() / kGtsAttrs;

  // 1-D histogram of v_parallel over the query results.
  result.vpar_hist.lo = min_vpar;
  result.vpar_hist.hi = max_vpar;
  result.vpar_hist.bins.assign(static_cast<std::size_t>(config.hist1d_bins),
                               0);
  // 2-D (v_par, v_perp) histogram.
  result.vspace_hist.xlo = min_vpar;
  result.vspace_hist.xhi = max_vpar;
  result.vspace_hist.ylo = 0;
  result.vspace_hist.yhi = max_vperp;
  result.vspace_hist.nx = config.hist2d_bins;
  result.vspace_hist.ny = config.hist2d_bins;
  result.vspace_hist.bins.assign(
      static_cast<std::size_t>(config.hist2d_bins) *
          static_cast<std::size_t>(config.hist2d_bins),
      0);
  for (std::size_t p = 0; p < result.selected_particles; ++p) {
    const double* row = result.query.data() + p * kGtsAttrs;
    ++result.vpar_hist.bins[static_cast<std::size_t>(
        bin_of(row[kVPar], min_vpar, max_vpar, config.hist1d_bins))];
    const int bx =
        bin_of(row[kVPar], min_vpar, max_vpar, config.hist2d_bins);
    const int by = bin_of(row[kVPerp], 0, max_vperp, config.hist2d_bins);
    ++result.vspace_hist.bins[static_cast<std::size_t>(by) *
                                  static_cast<std::size_t>(config.hist2d_bins) +
                              static_cast<std::size_t>(bx)];
  }
  return result;
}

Status write_histograms(const GtsAnalysisResult& result,
                        const std::string& path_prefix) {
  {
    std::ofstream out(path_prefix + ".dist.csv");
    if (!out) {
      return make_error(ErrorCode::kInternal, "cannot write histogram file");
    }
    out << "bin_lo,count\n";
    const double width = (result.distribution.hi - result.distribution.lo) /
                         static_cast<double>(result.distribution.bins.size());
    for (std::size_t i = 0; i < result.distribution.bins.size(); ++i) {
      out << result.distribution.lo + width * static_cast<double>(i) << ","
          << result.distribution.bins[i] << "\n";
    }
  }
  {
    std::ofstream out(path_prefix + ".v1d.csv");
    if (!out) {
      return make_error(ErrorCode::kInternal, "cannot write histogram file");
    }
    out << "bin_lo,count\n";
    const double width = (result.vpar_hist.hi - result.vpar_hist.lo) /
                         static_cast<double>(result.vpar_hist.bins.size());
    for (std::size_t i = 0; i < result.vpar_hist.bins.size(); ++i) {
      out << result.vpar_hist.lo + width * static_cast<double>(i) << ","
          << result.vpar_hist.bins[i] << "\n";
    }
  }
  {
    std::ofstream out(path_prefix + ".v2d.csv");
    if (!out) {
      return make_error(ErrorCode::kInternal, "cannot write histogram file");
    }
    out << "x_bin,y_bin,count\n";
    for (int y = 0; y < result.vspace_hist.ny; ++y) {
      for (int x = 0; x < result.vspace_hist.nx; ++x) {
        out << x << "," << y << ","
            << result.vspace_hist.bins[static_cast<std::size_t>(y) *
                                           static_cast<std::size_t>(
                                               result.vspace_hist.nx) +
                                       static_cast<std::size_t>(x)]
            << "\n";
      }
    }
  }
  return Status::ok();
}

}  // namespace flexio::apps
