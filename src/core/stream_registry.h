// Many-stream multiplexing: shared endpoints, per-stream demux inboxes,
// and fair credit-gated outbound scheduling (DESIGN.md "Stream
// multiplexing").
//
// Every stream side talks to the transport through a StreamChannel. In the
// default (dedicated) mode the channel is an exact passthrough to a
// per-stream Endpoint named by the `stream|program.rank` convention -- the
// seed behaviour, byte-for-byte. With `shared_links=yes` in the method
// config, all streams of one (program, rank) attach to a single shared
// Endpoint owned by the process-wide StreamRegistry: O(links) connections
// instead of O(streams), which is what lets one runtime host thousands of
// streams without dialing thousands of link pairs.
//
// On the shared path:
//  * every outbound frame is prefixed with wire::kMuxPrefixTag + varint
//    stream_id (wire.h; versioned -- unprefixed legacy frames still parse),
//  * inbound frames are demultiplexed by that prefix into per-stream
//    inboxes; recv is a cooperative pump (one blocked receiver drains the
//    endpoint for everyone and routes by stream id),
//  * outbound frames queue per (destination, stream) and are drained by a
//    registry-wide util::WorkPool under deficit round-robin, so one
//    elephant stream cannot starve mice sharing its link,
//  * each stream holds at most credit_bytes of queued outbound data; a
//    producer that outruns its consumer stalls on its *own* credit, never
//    on another stream's (flexio.stream.{queued_bytes,credits,stalls}).
//
// Lifetime: the registry must outlive every channel it handed out (the
// same contract MessageBus has with its endpoints); Runtime owns one of
// each and destroys the registry first.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "evpath/bus.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/work_pool.h"

namespace flexio {

class SharedEndpoint;
class StreamRegistry;
struct CreditState;

/// Multiplexing knobs, lifted from xml::MethodConfig by the stream classes.
struct MuxOptions {
  bool shared_links = false;
  std::size_t credit_bytes = 4ull << 20;        // per-stream outbound cap
  std::size_t drr_quantum_bytes = 64ull << 10;  // DRR deficit refill
  std::chrono::nanoseconds timeout = std::chrono::seconds(30);
};

/// One stream's handle on the transport. Mirrors the Endpoint surface the
/// stream classes use, so StreamWriter/StreamReader are mode-blind: they
/// compute peer names through peer_name() and never touch the bus directly.
class StreamChannel {
 public:
  ~StreamChannel();
  StreamChannel(const StreamChannel&) = delete;
  StreamChannel& operator=(const StreamChannel&) = delete;

  /// This side's endpoint name (what peers and the directory see).
  const std::string& name() const { return name_; }
  std::uint64_t stream_id() const { return stream_id_; }
  bool shared() const { return shared_ != nullptr; }

  /// The peer endpoint name for (stream, program, rank) under this
  /// channel's mode: `stream|program.rank` dedicated (the
  /// Runtime::endpoint_name convention), `mux|program.rank` shared. Both
  /// sides of a stream must run the same mode; the open handshake checks.
  std::string peer_name(const std::string& stream, const std::string& program,
                        int rank) const;

  Status send(const std::string& to, ByteView msg,
              evpath::SendMode mode = evpath::SendMode::kAsync);
  Status send_iov(const std::string& to, std::span<const ByteView> frags,
                  evpath::SendMode mode = evpath::SendMode::kAsync);

  /// Close the outbound link to a peer. Shared mode flushes this stream's
  /// queued frames and then only records the logical close: the underlying
  /// link belongs to every attached stream (closing it would EOS the
  /// link-mates), so it stays open until the shared endpoint itself winds
  /// down. The peer stream observes the close through the protocol's Close
  /// frame, not a transport EOS.
  Status close_to(const std::string& to);

  /// Forget the cached outbound link (respawned peer). Shared mode passes
  /// through: the old link points at dead transport state for every stream.
  void drop_link(const std::string& to);

  Status recv(evpath::Message* out, std::chrono::nanoseconds timeout);
  Status recv_from(const std::string& from, evpath::Message* out,
                   std::chrono::nanoseconds timeout);

  StatusOr<evpath::TransportKind> transport_to(const std::string& to) const;

  /// Wait until this stream's outbound queue is empty, then surface (and
  /// clear) the first asynchronous send failure, if any. Dedicated mode is
  /// a no-op: sends there never queue in the channel.
  Status flush(std::chrono::nanoseconds timeout);

  /// Outbound bytes currently queued in this stream's DRR sub-queues.
  std::size_t queued_bytes() const;

 private:
  friend class StreamRegistry;
  friend class SharedEndpoint;
  StreamChannel() = default;

  /// Shared-mode send path: frame already carries the mux prefix. Sync
  /// sends block on the drainer's completion; async sends return once the
  /// frame is queued under credit.
  Status send_mux(const std::string& to, std::vector<std::byte> frame,
                  evpath::SendMode mode);

  std::string name_;
  std::string stream_;
  std::uint64_t stream_id_ = 0;
  MuxOptions opts_;
  StreamRegistry* registry_ = nullptr;
  std::shared_ptr<evpath::Endpoint> own_;   // dedicated mode
  std::shared_ptr<SharedEndpoint> shared_;  // shared mode
  std::vector<std::byte> prefix_;           // encoded mux routing prefix
  std::shared_ptr<CreditState> credit_;
  // Per-stream metric series, resolved once through the bounded-cardinality
  // families (metrics::Family) so 1k streams collapse into *.other.
  metrics::Gauge* queued_gauge_ = nullptr;
  metrics::Gauge* credits_gauge_ = nullptr;
  metrics::Counter* stalls_counter_ = nullptr;
};

/// Process-wide owner of the shared endpoints, their demux state, and the
/// drain pool. One per Runtime.
class StreamRegistry {
 public:
  explicit StreamRegistry(evpath::MessageBus* bus) : bus_(bus) {}
  ~StreamRegistry();
  StreamRegistry(const StreamRegistry&) = delete;
  StreamRegistry& operator=(const StreamRegistry&) = delete;

  /// Attach one stream side. Dedicated mode creates the per-stream
  /// endpoint; shared mode get-or-creates the (program, rank) shared
  /// endpoint (first attach's location and link options win) and registers
  /// the stream's demux inbox. Fails with kAlreadyExists when two distinct
  /// stream names collide on one stream_id_hash (the routing key must be
  /// injective within a process).
  StatusOr<std::shared_ptr<StreamChannel>> attach(
      const std::string& stream, const std::string& program, int rank,
      evpath::Location location, evpath::LinkOptions link_options,
      const MuxOptions& opts);

  /// Live shared endpoints / attached shared streams -- the O(links) vs
  /// O(streams) evidence the many-stream bench gates on.
  std::size_t shared_endpoint_count() const;
  std::size_t attached_stream_count() const;

  /// Naming conventions. The dedicated form must match
  /// Runtime::endpoint_name (pinned by tests/multiplex_test.cpp).
  static std::string dedicated_endpoint_name(const std::string& stream,
                                             const std::string& program,
                                             int rank) {
    return stream + "|" + program + "." + std::to_string(rank);
  }
  static std::string shared_endpoint_name(const std::string& program,
                                          int rank) {
    return "mux|" + program + "." + std::to_string(rank);
  }
  /// Does an endpoint/contact name belong to a shared endpoint? The open
  /// handshake uses this to reject a mode mismatch between the two sides.
  static bool is_shared_name(std::string_view name) {
    return name.rfind("mux|", 0) == 0;
  }

 private:
  friend class StreamChannel;
  friend class SharedEndpoint;

  /// Lazily-created pool whose workers drain the DRR lanes. Never created
  /// in dedicated-only processes.
  util::WorkPool& drain_pool();
  void detach_shared(std::uint64_t stream_id);

  evpath::MessageBus* bus_;
  mutable std::mutex mutex_;
  std::map<std::string, std::weak_ptr<SharedEndpoint>> endpoints_;
  // stream_id -> (stream name, attach refcount): collision detection.
  std::map<std::uint64_t, std::pair<std::string, int>> stream_ids_;
  std::size_t attached_streams_ = 0;
  std::unique_ptr<util::WorkPool> pool_;
};

}  // namespace flexio
