// GTS-like particle-in-cell workload generator.
//
// GTS (Gyrokinetic Tokamak Simulation) outputs two 2-D particle arrays,
// zions and electrons, with seven attributes per particle -- coordinates,
// velocity components, weight, and particle id (paper Section IV.A). This
// skeleton reproduces that output profile with deterministic synthetic
// physics: particles drift and scatter each cycle, and the per-rank
// particle count varies across steps (the property that stresses the RDMA
// registration cache in Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "adios/var.h"
#include "util/rng.h"

namespace flexio::apps {

/// Attribute order within a particle row.
enum GtsAttr : int {
  kX = 0, kY = 1, kZ = 2,
  kVPar = 3, kVPerp = 4,
  kWeight = 5, kId = 6,
};
inline constexpr std::uint64_t kGtsAttrs = 7;

class GtsRank {
 public:
  /// One simulation rank holding ~`particles_per_rank` particles of each
  /// species. Deterministic in (seed, rank).
  GtsRank(int rank, std::uint64_t particles_per_rank, std::uint64_t seed = 42);

  int rank() const { return rank_; }

  /// Advance one simulation cycle: drift positions, jitter velocities, and
  /// migrate a small fraction of particles in/out (count changes).
  void advance();

  /// Current particle tables, row-major [count x 7].
  const std::vector<double>& zion() const { return zion_; }
  const std::vector<double>& electron() const { return electron_; }
  std::uint64_t zion_count() const { return zion_.size() / kGtsAttrs; }
  std::uint64_t electron_count() const { return electron_.size() / kGtsAttrs; }

  /// ADIOS metadata for the current tables (process-group pattern).
  adios::VarMeta zion_meta() const;
  adios::VarMeta electron_meta() const;

 private:
  void init_table(std::vector<double>* table, std::uint64_t count);
  void advance_table(std::vector<double>* table);

  int rank_;
  Rng rng_;
  std::uint64_t next_id_;
  std::vector<double> zion_;
  std::vector<double> electron_;
};

}  // namespace flexio::apps
