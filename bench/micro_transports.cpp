// Micro-benchmarks of the real data plane (google-benchmark).
//
// Ablations for the design choices DESIGN.md calls out: the FastForward
// SPSC queue, the shm channel's three send paths (inline / pool / xpmem),
// the buffer pool, the RDMA registration cache (persistent vs dynamic
// registration -- the functional analog of Figure 4), MxN re-distribution
// planning, and the hyperslab copy kernel.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "adios/array.h"
#include "adios/var.h"
#include "bench/gbench_main.h"
#include "core/redistribution.h"
#include "core/runtime.h"
#include "core/stream_reader.h"
#include "core/stream_writer.h"
#include "evpath/bus.h"
#include "nnti/nnti.h"
#include "nnti/registration_cache.h"
#include "shm/buffer_pool.h"
#include "shm/channel.h"
#include "shm/spsc_queue.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/watchdog.h"
#include "util/work_pool.h"

namespace {

using namespace flexio;

void BM_SpscQueueRoundTrip(benchmark::State& state) {
  shm::SpscQueue queue(64, 256);
  std::vector<std::byte> msg(static_cast<std::size_t>(state.range(0)),
                             std::byte{42});
  std::vector<std::byte> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_enqueue(ByteView(msg)));
    benchmark::DoNotOptimize(queue.try_dequeue(&out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SpscQueueRoundTrip)->Arg(16)->Arg(64)->Arg(192);

void BM_SpscQueueCrossThread(benchmark::State& state) {
  shm::SpscQueue queue(256, 128);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    std::vector<std::byte> out;
    while (!stop.load(std::memory_order_relaxed)) {
      queue.try_dequeue(&out);
    }
  });
  std::vector<std::byte> msg(64, std::byte{1});
  for (auto _ : state) {
    while (!queue.try_enqueue(ByteView(msg))) {
    }
  }
  stop.store(true);
  consumer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscQueueCrossThread);

void BM_ShmChannelSend(benchmark::State& state) {
  shm::ChannelOptions options;
  options.pool_bytes = 256u << 20;
  shm::Channel channel(options);
  const bool sync = state.range(1) != 0;
  std::vector<std::byte> msg(static_cast<std::size_t>(state.range(0)),
                             std::byte{7});
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    std::vector<std::byte> out;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::byte> tmp;
      (void)channel.receive_for(&tmp, std::chrono::milliseconds(1));
    }
  });
  for (auto _ : state) {
    const Status st =
        sync ? channel.send_sync(ByteView(msg)) : channel.send(ByteView(msg));
    if (!st.is_ok()) state.SkipWithError(st.to_string().c_str());
  }
  stop.store(true);
  consumer.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
// {message size, sync?}: inline path, pool path (async 2-copy), xpmem path
// (sync 1-copy).
BENCHMARK(BM_ShmChannelSend)
    ->Args({128, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_BufferPoolAcquireRelease(benchmark::State& state) {
  shm::BufferPool pool(1u << 30);
  for (auto _ : state) {
    auto buf = pool.acquire(static_cast<std::size_t>(state.range(0)));
    if (!buf.is_ok()) state.SkipWithError("acquire failed");
    pool.release(buf.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferPoolAcquireRelease)->Arg(4096)->Arg(1 << 20);

void BM_RegistrationPersistent(benchmark::State& state) {
  // Figure 4's point, functionally: reusing a registered buffer vs paying
  // allocation + registration every transfer.
  nnti::Fabric fabric;
  auto nic = fabric.create_nic("bench").value();
  nnti::RegistrationCache cache(nic.get(), 1u << 30);
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto buf = cache.acquire(size);
    if (!buf.is_ok()) state.SkipWithError("acquire failed");
    benchmark::DoNotOptimize(buf.value().data);
    cache.release(buf.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistrationPersistent)->Arg(1 << 20);

void BM_RegistrationDynamic(benchmark::State& state) {
  nnti::Fabric fabric;
  auto nic = fabric.create_nic("bench").value();
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto* data = new std::byte[size];
    auto region = nic->register_memory(data, size);
    if (!region.is_ok()) state.SkipWithError("register failed");
    benchmark::DoNotOptimize(data);
    (void)nic->unregister_memory(region.value());
    delete[] data;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistrationDynamic)->Arg(1 << 20);

void BM_PlanTransfers(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int readers = writers / 4 + 1;
  const adios::Dims global{static_cast<std::uint64_t>(writers) * 16, 64};
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < writers; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::global_array_var(
        "field", serial::DataType::kDouble, global,
        adios::block_decompose(global, writers, w, 0));
    blocks.push_back(std::move(b));
  }
  wire::ReadRequest req;
  for (int r = 0; r < readers; ++r) {
    req.selections.push_back(wire::SelectionInfo{
        r, "field", adios::block_decompose(global, readers, r, 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_transfers(blocks, req));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          writers);
}
BENCHMARK(BM_PlanTransfers)->Arg(16)->Arg(64)->Arg(256);

void BM_CopyRegion(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const adios::Box src{{0, 0}, {n, n}};
  const adios::Box dst{{n / 4, n / 4}, {n, n}};
  adios::Box overlap;
  FLEXIO_CHECK(intersect(src, dst, &overlap));
  std::vector<double> a(src.elements()), b(dst.elements());
  for (auto _ : state) {
    adios::copy_region(src, reinterpret_cast<const std::byte*>(a.data()), dst,
                       reinterpret_cast<std::byte*>(b.data()), overlap,
                       sizeof(double));
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(overlap.elements() * sizeof(double)));
}
BENCHMARK(BM_CopyRegion)->Arg(64)->Arg(512);

void BM_StreamStepCachedPlan(benchmark::State& state) {
  // Full 1x1 coupled pipeline with caching=all + batching: after step 0 the
  // handshake is skipped and the writer reuses its cached send plan, so the
  // steady-state step cost is pack + send only. The report's counter block
  // records flexio.plan.cache_hits (> 0 is CI's cache-effectiveness gate).
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  Runtime rt;
  Program sim("sim", 1);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;
  if (!xml::apply_method_params("caching=all; batching=yes", &method)
           .is_ok()) {
    state.SkipWithError("bad method params");
    return;
  }
  constexpr std::uint64_t kN = 4096;  // 32 KiB payload per step
  std::thread reader([&] {
    StreamSpec spec;
    spec.stream = "bench_cached_plan";
    spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 0}};
    spec.method = method;
    auto r = rt.open_reader(spec);
    if (!r.is_ok()) return;
    std::vector<double> out(kN);
    for (;;) {
      auto step = r.value()->begin_step();
      if (!step.is_ok()) break;
      (void)r.value()->schedule_read(
          "field", adios::Box{{0}, {kN}},
          MutableByteView(std::as_writable_bytes(std::span<double>(out))));
      if (!r.value()->perform_reads().is_ok()) break;
      if (!r.value()->end_step().is_ok()) break;
    }
  });
  StreamSpec spec;
  spec.stream = "bench_cached_plan";
  spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
  spec.method = method;
  auto w = rt.open_writer(spec);
  if (!w.is_ok()) {
    reader.join();
    state.SkipWithError("open_writer failed");
    return;
  }
  std::vector<double> data(kN, 1.0);
  const auto meta = adios::global_array_var(
      "field", serial::DataType::kDouble, {kN}, adios::Box{{0}, {kN}});
  StepId step = 0;
  for (auto _ : state) {
    Status st = w.value()->begin_step(step++);
    if (st.is_ok()) {
      st = w.value()->write(
          meta, as_bytes_view(std::span<const double>(data)));
    }
    if (st.is_ok()) st = w.value()->end_step();
    if (!st.is_ok()) {
      state.SkipWithError(st.to_string().c_str());
      break;
    }
  }
  (void)w.value()->close();
  reader.join();
  metrics::set_enabled(was);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN * sizeof(double)));
}
BENCHMARK(BM_StreamStepCachedPlan);

// Ship the machine's core count in the report's counter block exactly
// once: the scaling gates only bind where 4 worker threads can actually
// run in parallel (check_bench_overhead.py skips them below 4 cores).
// Shared by both scaling benches -- a static per bench would double-count.
void note_hw_concurrency() {
  [[maybe_unused]] static const bool once = [] {
    metrics::counter("bench.hw_concurrency")
        .add(std::thread::hardware_concurrency());
    return true;
  }();
}

void BM_StreamStepParallelPack(benchmark::State& state) {
  // High fan-out pack + send: 1 writer -> 16 readers, each reading a
  // narrow column band of a 2-D field so every piece takes the strided
  // copy_region path (2048 runs of 32 B per reader; no whole-block
  // borrows). Manual time covers end_step only -- with caching=all the
  // steady-state step is exactly the pack + send phase the worker pool
  // parallelizes. The arg is pack_threads; arg 0 installs a zero-worker
  // pool so CI can price the pool machinery itself at concurrency 1
  // against the plain serial path (/1). tools/check_bench_overhead.py
  // gates /1 vs /4 (scaling) and /0 vs /1 (dispatch overhead).
  const int arg = static_cast<int>(state.range(0));
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  note_hw_concurrency();
  Runtime rt;
  constexpr int kReaders = 16;
  constexpr std::uint64_t kRows = 2048;
  constexpr std::uint64_t kCols = 64;             // 1 MiB of doubles
  constexpr std::uint64_t kBand = kCols / kReaders;  // 4 columns per reader
  Program sim("sim", 1);
  Program viz("viz", kReaders);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;
  const std::string params =
      "caching=all; batching=yes; async=yes; pack_threads=" +
      std::to_string(arg == 0 ? 1 : arg);
  if (!xml::apply_method_params(params, &method).is_ok()) {
    state.SkipWithError("bad method params");
    return;
  }
  const std::string stream = "bench_parallel_pack_" + std::to_string(arg);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&viz, r, evpath::Location{0, 0}};
      spec.method = method;
      auto rd = rt.open_reader(spec);
      if (!rd.is_ok()) return;
      std::vector<double> out(kRows * kBand);
      for (;;) {
        auto step = rd.value()->begin_step();
        if (!step.is_ok()) break;
        (void)rd.value()->schedule_read(
            "field",
            adios::Box{{0, static_cast<std::uint64_t>(r) * kBand},
                       {kRows, kBand}},
            MutableByteView(std::as_writable_bytes(std::span<double>(out))));
        if (!rd.value()->perform_reads().is_ok()) break;
        if (!rd.value()->end_step().is_ok()) break;
      }
    });
  }
  StreamSpec spec;
  spec.stream = stream;
  spec.endpoint = EndpointSpec{&sim, 0, evpath::Location{0, 0}};
  spec.method = method;
  auto w = rt.open_writer(spec);
  if (!w.is_ok()) {
    for (auto& t : readers) t.join();
    state.SkipWithError("open_writer failed");
    return;
  }
  if (arg == 0) {
    w.value()->set_pack_pool_for_testing(
        std::make_shared<util::WorkPool>(0));
  }
  std::vector<double> data(kRows * kCols, 1.0);
  const auto meta = adios::global_array_var(
      "field", serial::DataType::kDouble, {kRows, kCols},
      adios::Box{{0, 0}, {kRows, kCols}});
  const auto run_step = [&](StepId step) -> Status {
    Status st = w.value()->begin_step(step);
    if (st.is_ok()) {
      st = w.value()->write(meta, as_bytes_view(std::span<const double>(data)));
    }
    return st.is_ok() ? w.value()->end_step() : st;
  };
  // Warm-up step: pays the open handshake, the transfer plan, and the 16
  // link connects, so every timed iteration is a steady-state cache-hit
  // step and the /1-vs-/4 ratio compares pack + send alone.
  StepId step = 0;
  if (const Status st = run_step(step++); !st.is_ok()) {
    state.SkipWithError(st.to_string().c_str());
  } else {
    for (auto _ : state) {
      Status s = w.value()->begin_step(step++);
      if (s.is_ok()) {
        s = w.value()->write(meta,
                             as_bytes_view(std::span<const double>(data)));
      }
      const auto t0 = std::chrono::steady_clock::now();
      if (s.is_ok()) s = w.value()->end_step();
      const auto t1 = std::chrono::steady_clock::now();
      if (!s.is_ok()) {
        state.SkipWithError(s.to_string().c_str());
        break;
      }
      state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    }
  }
  (void)w.value()->close();
  for (auto& t : readers) t.join();
  metrics::set_enabled(was);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows * kCols *
                                                    sizeof(double)));
}
// Fixed iteration count: the median must average the same steady-state
// step population for every thread count (min_time-driven iteration counts
// would weight the warm cache differently per variant).
BENCHMARK(BM_StreamStepParallelPack)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(48);

void BM_StreamStepParallelUnpack(benchmark::State& state) {
  // Mirror image of BM_StreamStepParallelPack: 16 writers -> 1 reader,
  // each writer producing a narrow column band of a 2-D field so every
  // delivered piece lands through the strided copy_region path (2048 runs
  // of 32 B per piece). Manual time covers perform_reads only -- the recv
  // drain plus the plug-in + placement work the reader's worker pool
  // parallelizes. The arg is read_threads; arg 0 installs a zero-worker
  // pool so CI can price the unpack-batch machinery itself at concurrency
  // 1 against the plain serial path (/1). tools/check_bench_overhead.py
  // gates /1 vs /4 (scaling) and /0 vs /1 (dispatch overhead).
  const int arg = static_cast<int>(state.range(0));
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  note_hw_concurrency();
  Runtime rt;
  constexpr int kWriters = 16;
  constexpr std::uint64_t kRows = 2048;
  constexpr std::uint64_t kCols = 64;                // 1 MiB of doubles
  constexpr std::uint64_t kBand = kCols / kWriters;  // 4 columns per writer
  // Warm-up step + the timed Iterations(48) below; writers produce exactly
  // this many steps and close, which ends the reader's final drain loop.
  constexpr int kSteps = 49;
  Program sim("sim", kWriters);
  Program viz("viz", 1);
  xml::MethodConfig method;
  method.method = "FLEXIO";
  method.timeout_ms = 20000;
  const std::string params =
      "caching=all; batching=yes; async=yes; read_threads=" +
      std::to_string(arg == 0 ? 1 : arg);
  if (!xml::apply_method_params(params, &method).is_ok()) {
    state.SkipWithError("bad method params");
    return;
  }
  const std::string stream = "bench_parallel_unpack_" + std::to_string(arg);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      StreamSpec spec;
      spec.stream = stream;
      spec.endpoint = EndpointSpec{&sim, w, evpath::Location{0, 0}};
      spec.method = method;
      auto wr = rt.open_writer(spec);
      if (!wr.is_ok()) return;
      const adios::Box band{{0, static_cast<std::uint64_t>(w) * kBand},
                            {kRows, kBand}};
      std::vector<double> data(kRows * kBand, 1.0);
      const auto meta = adios::global_array_var(
          "field", serial::DataType::kDouble, {kRows, kCols}, band);
      for (int step = 0; step < kSteps; ++step) {
        Status st = wr.value()->begin_step(step);
        if (st.is_ok()) {
          st = wr.value()->write(meta,
                                 as_bytes_view(std::span<const double>(data)));
        }
        if (st.is_ok()) st = wr.value()->end_step();
        if (!st.is_ok()) return;
      }
      (void)wr.value()->close();
    });
  }
  StreamSpec spec;
  spec.stream = stream;
  spec.endpoint = EndpointSpec{&viz, 0, evpath::Location{0, 0}};
  spec.method = method;
  auto r = rt.open_reader(spec);
  if (!r.is_ok()) {
    for (auto& t : writers) t.join();
    state.SkipWithError("open_reader failed");
    return;
  }
  if (arg == 0) {
    r.value()->set_read_pool_for_testing(std::make_shared<util::WorkPool>(0));
  }
  std::vector<double> out(kRows * kCols);
  const auto run_step = [&](double* seconds) -> Status {
    FLEXIO_RETURN_IF_ERROR(r.value()->begin_step().status());
    FLEXIO_RETURN_IF_ERROR(r.value()->schedule_read(
        "field", adios::Box{{0, 0}, {kRows, kCols}},
        MutableByteView(std::as_writable_bytes(std::span<double>(out)))));
    const auto t0 = std::chrono::steady_clock::now();
    FLEXIO_RETURN_IF_ERROR(r.value()->perform_reads());
    const auto t1 = std::chrono::steady_clock::now();
    if (seconds != nullptr) {
      *seconds = std::chrono::duration<double>(t1 - t0).count();
    }
    return r.value()->end_step();
  };
  // Warm-up step: pays the open handshake and transfer planning, so every
  // timed iteration is a steady-state 16-piece unpack.
  if (const Status st = run_step(nullptr); !st.is_ok()) {
    state.SkipWithError(st.to_string().c_str());
  } else {
    for (auto _ : state) {
      double seconds = 0.0;
      if (const Status st = run_step(&seconds); !st.is_ok()) {
        state.SkipWithError(st.to_string().c_str());
        break;
      }
      state.SetIterationTime(seconds);
    }
  }
  // Consume through the writers' close so their threads finish cleanly.
  while (run_step(nullptr).is_ok()) {
  }
  for (auto& t : writers) t.join();
  metrics::set_enabled(was);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows * kCols *
                                                    sizeof(double)));
}
BENCHMARK(BM_StreamStepParallelUnpack)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(48);

void BM_EndpointMultiDestinationSend(benchmark::State& state) {
  // Per-link send sharding at the Endpoint layer: N threads blast small
  // frames at N disjoint destinations through ONE shared endpoint. Before
  // the per-link split every send serialized on a single endpoint mutex,
  // so this scaled flat; now threads only meet on the map's shared lock.
  // Drainer threads keep the inproc queues from growing without bound;
  // manual time covers each batch of sends only.
  const int threads = static_cast<int>(state.range(0));
  constexpr std::uint32_t kBatch = 4096;
  constexpr std::size_t kPayload = 256;
  evpath::MessageBus bus;
  auto hub = bus.create_endpoint("hub", evpath::Location{0, 0}).value();
  std::vector<std::shared_ptr<evpath::Endpoint>> sinks;
  std::vector<std::thread> drainers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < threads; ++t) {
    sinks.push_back(
        bus.create_endpoint("sink" + std::to_string(t), evpath::Location{0, 0})
            .value());
    drainers.emplace_back([&, t] {
      evpath::Message msg;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)sinks[static_cast<std::size_t>(t)]->recv(
            &msg, std::chrono::milliseconds(5));
      }
    });
  }
  const std::vector<std::byte> payload(kPayload, std::byte{3});
  for (auto _ : state) {
    std::vector<std::thread> senders;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < threads; ++t) {
      senders.emplace_back([&, t] {
        const std::string dest = "sink" + std::to_string(t);
        for (std::uint32_t i = 0; i < kBatch; ++i) {
          if (!hub->send(dest, ByteView(payload)).is_ok()) return;
        }
      });
    }
    for (std::thread& th : senders) th.join();
    state.SetIterationTime(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
  stop.store(true);
  for (std::thread& th : drainers) th.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          threads * kBatch);
}
BENCHMARK(BM_EndpointMultiDestinationSend)
    ->Arg(1)
    ->Arg(4)
    ->UseManualTime();

// ------------------------------------------------- observability overhead --
// The CI perf-smoke gate compares these two: a disabled counter add must be
// a branch, not a fetch_add (docs/OBSERVABILITY.md cost model).

void BM_MetricsCounterDisabled(benchmark::State& state) {
  const bool was = metrics::enabled();
  metrics::set_enabled(false);
  metrics::Counter& c = metrics::counter("bench.overhead.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
  metrics::set_enabled(was);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsCounterEnabled(benchmark::State& state) {
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  metrics::Counter& c = metrics::counter("bench.overhead.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
  metrics::set_enabled(was);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  const bool was = trace::enabled();
  trace::set_enabled(false);
  for (auto _ : state) {
    trace::Span span("bench.overhead.span");
    benchmark::ClobberMemory();
  }
  trace::set_enabled(was);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_FlightRecorderDisabled(benchmark::State& state) {
  // No recorder running: the hot-path hook must be one relaxed load.
  for (auto _ : state) {
    flight::maybe_sample();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlightRecorderDisabled);

void BM_FlightRecorderIdle(benchmark::State& state) {
  // Cooperative recorder running but with no sample requested: active but
  // not due, so the hook is two relaxed loads and no file I/O.
  flight::Options opts;
  opts.path = "/dev/null";
  opts.background = false;
  if (!flight::start(opts).is_ok()) {
    state.SkipWithError("flight::start failed");
    return;
  }
  for (auto _ : state) {
    flight::maybe_sample();
    benchmark::ClobberMemory();
  }
  (void)flight::stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlightRecorderIdle);

void BM_WatchdogDisabled(benchmark::State& state) {
  // No watchdog running: the cooperative hook must be one relaxed load
  // plus a branch, same budget as a disabled counter.
  for (auto _ : state) {
    telemetry::maybe_poll();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WatchdogDisabled);

void BM_StatsExposeSnapshot(benchmark::State& state) {
  // Cost of rendering one /metrics scrape over a populated registry. This
  // runs on the stats-server thread, never the data path; the gate is a
  // sanity budget, not a hot-path bound.
  metrics::counter("bench.expose.counter").inc();
  metrics::gauge("bench.expose.gauge").add(42);
  metrics::histogram("bench.expose.hist").record(1000);
  for (auto _ : state) {
    std::string text = metrics::expose_text();
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsExposeSnapshot);

}  // namespace

int main(int argc, char** argv) {
  return flexio::bench::run_benchmarks_with_report(argc, argv,
                                                   "micro_transports");
}
