// Placement explorer: run the three Section III policies on a GTS-like
// coupled job and show what each decides.
//
// Demonstrates the full placement pipeline: resource allocation (scale the
// analytics to the simulation's production rate), communication-graph
// construction (inter-program transfer plan + intra-program MPI pattern),
// graph mapping onto the machine tree, and the classification/metrics the
// paper's evaluation compares (placement kind, mapping cost, inter- vs
// intra-node movement volume, NUMA buffer pinning).
#include <cstdio>
#include <vector>

#include "core/redistribution.h"
#include "placement/policies.h"

using namespace flexio;
using namespace flexio::placement;

int main() {
  const sim::MachineDesc machine = sim::smoky();
  constexpr int kSimRanks = 24;

  // Resource allocation (holistic policy): consumption must keep up with a
  // 6.5-second output interval.
  AllocationModel allocation;
  allocation.sim_interval = 6.5;
  allocation.bytes_per_step = kSimRanks * 110e6;
  allocation.p2p_bandwidth = machine.nic_bw;
  allocation.analytics_time = [](int p) {
    return 0.9 * kSimRanks / p + 0.05;  // strong-scaling profile
  };
  const int analytics = allocate_analytics(allocation, /*async=*/false);
  std::printf("resource allocation: %d analytics processes for %d GTS ranks\n",
              analytics, kSimRanks);

  // Inter-program volumes from the actual FlexIO transfer planner: each
  // rank's particle tables go to one analytics rank, process-group style.
  std::vector<wire::BlockInfo> blocks;
  for (int w = 0; w < kSimRanks; ++w) {
    wire::BlockInfo b;
    b.writer_rank = w;
    b.meta = adios::local_array_var("zion", serial::DataType::kDouble,
                                    {200000, 7});
    blocks.push_back(std::move(b));
  }
  wire::ReadRequest request;
  for (int w = 0; w < kSimRanks; ++w) {
    request.pg_requests.push_back(
        wire::PgRequestInfo{w % analytics, w});
  }
  const auto plan = plan_transfers(blocks, request);
  const auto inter = comm_matrix(plan, kSimRanks, analytics);

  PlacementRequest req;
  req.machine = machine;
  req.sim_processes = kSimRanks;
  req.analytics_processes = analytics;
  req.inter = inter;
  req.sim_intra = grid2d_traffic(kSimRanks, 4e6);
  req.analytics_intra = grid2d_traffic(analytics, 1e5);

  std::printf("\n%-16s %-12s %6s %14s %16s %16s\n", "policy", "kind", "nodes",
              "mapping cost", "intra-node MB", "inter-node MB");
  for (Policy policy :
       {Policy::kDataAware, Policy::kHolistic, Policy::kTopologyAware}) {
    req.policy = policy;
    auto result = place(req);
    if (!result.is_ok()) {
      std::printf("%-16s failed: %s\n",
                  std::string(policy_name(policy)).c_str(),
                  result.status().to_string().c_str());
      continue;
    }
    std::printf("%-16s %-12s %6d %14.3g %16.1f %16.1f\n",
                std::string(policy_name(policy)).c_str(),
                std::string(placement_kind_name(result.value().kind)).c_str(),
                result.value().nodes_used, result.value().cost,
                result.value().intra_node_bytes / 1e6,
                result.value().inter_node_bytes / 1e6);
    if (policy == Policy::kTopologyAware) {
      std::printf("  NUMA buffer pinning (rank -> domain):");
      for (std::size_t w = 0; w < 6; ++w) {
        std::printf(" %zu->%d", w, result.value().buffer_numa_domain[w]);
      }
      std::printf(" ... (queues/pools live in the producer's domain)\n");
    }
  }
  return 0;
}
