#include "xml/config.h"

#include "util/strings.h"

namespace flexio::xml {

const MethodConfig* Config::method_for(std::string_view group_name) const {
  for (const auto& m : methods) {
    if (m.group == group_name) return &m;
  }
  return nullptr;
}

const GroupConfig* Config::group(std::string_view name) const {
  for (const auto& g : groups) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

namespace {

Status parse_caching(std::string_view v, CachingLevel* out) {
  if (v == "none") *out = CachingLevel::kNone;
  else if (v == "local") *out = CachingLevel::kLocal;
  else if (v == "all") *out = CachingLevel::kAll;
  else
    return make_error(ErrorCode::kInvalidArgument,
                      "unknown caching level: " + std::string(v));
  return Status::ok();
}

Status parse_bool(std::string_view v, bool* out) {
  if (v == "yes" || v == "true" || v == "1") *out = true;
  else if (v == "no" || v == "false" || v == "0") *out = false;
  else
    return make_error(ErrorCode::kInvalidArgument,
                      "expected boolean, got: " + std::string(v));
  return Status::ok();
}

}  // namespace

Status apply_method_params(std::string_view params, MethodConfig* method) {
  for (std::string_view kv : split(params, ';')) {
    kv = trim(kv);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "method param missing '=': " + std::string(kv));
    }
    const std::string_view key = trim(kv.substr(0, eq));
    const std::string_view val = trim(kv.substr(eq + 1));
    if (key == "caching") {
      FLEXIO_RETURN_IF_ERROR(parse_caching(val, &method->caching));
    } else if (key == "batching") {
      FLEXIO_RETURN_IF_ERROR(parse_bool(val, &method->batching));
    } else if (key == "async") {
      FLEXIO_RETURN_IF_ERROR(parse_bool(val, &method->async_writes));
    } else if (key == "queue_entries") {
      long long n = 0;
      if (!parse_int(val, &n) || n <= 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad queue_entries: " + std::string(val));
      }
      method->queue_entries = static_cast<std::size_t>(n);
    } else if (key == "queue_payload") {
      if (!parse_size(val, &method->queue_payload_bytes)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad queue_payload: " + std::string(val));
      }
    } else if (key == "pool") {
      if (!parse_size(val, &method->pool_bytes)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad pool size: " + std::string(val));
      }
    } else if (key == "rdma_pool") {
      if (!parse_size(val, &method->rdma_pool_bytes)) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad rdma_pool size: " + std::string(val));
      }
    } else if (key == "timeout_ms") {
      if (!parse_double(val, &method->timeout_ms) || method->timeout_ms <= 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad timeout_ms: " + std::string(val));
      }
    } else if (key == "pack_threads") {
      long long n = 0;
      if (!parse_int(val, &n) || n < 1 || n > 256) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad pack_threads (want 1..256): " + std::string(val));
      }
      method->pack_threads = static_cast<int>(n);
    } else if (key == "read_threads") {
      long long n = 0;
      if (!parse_int(val, &n) || n < 1 || n > 256) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad read_threads (want 1..256): " + std::string(val));
      }
      method->read_threads = static_cast<int>(n);
    } else if (key == "max_retries") {
      long long n = 0;
      if (!parse_int(val, &n) || n < 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad max_retries: " + std::string(val));
      }
      method->max_retries = static_cast<int>(n);
    } else if (key == "shared_links") {
      FLEXIO_RETURN_IF_ERROR(parse_bool(val, &method->shared_links));
    } else if (key == "credit_bytes") {
      if (!parse_size(val, &method->credit_bytes) ||
          method->credit_bytes == 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad credit_bytes: " + std::string(val));
      }
    } else if (key == "drr_quantum") {
      if (!parse_size(val, &method->drr_quantum_bytes) ||
          method->drr_quantum_bytes == 0) {
        return make_error(ErrorCode::kInvalidArgument,
                          "bad drr_quantum: " + std::string(val));
      }
    } else if (key == "telemetry") {
      FLEXIO_RETURN_IF_ERROR(parse_bool(val, &method->telemetry));
    } else if (key == "stats_addr") {
      method->stats_addr = std::string(val);
    } else {
      method->extra.emplace(std::string(key), std::string(val));
    }
  }
  return Status::ok();
}

namespace {

StatusOr<Config> config_from_root(const Element& root) {
  if (root.name != "adios-config") {
    return make_error(ErrorCode::kInvalidArgument,
                      "config root must be <adios-config>, got <" + root.name +
                          ">");
  }

  Config cfg;
  for (const Element* g : root.children_named("adios-group")) {
    GroupConfig group;
    group.name = std::string(g->attr("name"));
    if (group.name.empty()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "<adios-group> requires name attribute");
    }
    for (const Element* v : g->children_named("var")) {
      VarConfig var;
      var.name = std::string(v->attr("name"));
      var.type = std::string(v->attr("type"));
      if (var.name.empty() || var.type.empty()) {
        return make_error(ErrorCode::kInvalidArgument,
                          "<var> requires name and type attributes");
      }
      for (std::string_view d : split(v->attr("dimensions"), ',')) {
        d = trim(d);
        if (!d.empty()) var.dimensions.emplace_back(d);
      }
      group.vars.push_back(std::move(var));
    }
    cfg.groups.push_back(std::move(group));
  }

  for (const Element* m : root.children_named("method")) {
    MethodConfig method;
    method.group = std::string(m->attr("group"));
    method.method = std::string(m->attr("method"));
    if (method.group.empty() || method.method.empty()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "<method> requires group and method attributes");
    }
    if (cfg.group(method.group) == nullptr) {
      return make_error(ErrorCode::kNotFound,
                        "<method> references unknown group: " + method.group);
    }
    FLEXIO_RETURN_IF_ERROR(apply_method_params(m->text, &method));
    cfg.methods.push_back(std::move(method));
  }

  if (const Element* buf = root.child("buffer")) {
    long long mb = 0;
    if (!parse_int(buf->attr("size-MB"), &mb) || mb <= 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "<buffer> requires positive size-MB");
    }
    cfg.buffer_mb = static_cast<std::size_t>(mb);
  }
  return cfg;
}

}  // namespace

StatusOr<Config> parse_config(std::string_view text) {
  auto doc = parse(text);
  if (!doc.is_ok()) return doc.status();
  return config_from_root(doc.value().root());
}

StatusOr<Config> parse_config_file(const std::string& path) {
  auto doc = parse_file(path);
  if (!doc.is_ok()) return doc.status();
  return config_from_root(doc.value().root());
}

}  // namespace flexio::xml
