#include "cod/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace flexio::cod {

std::string_view tok_name(Tok kind) {
  switch (kind) {
    case Tok::kNumber: return "number";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "'int'";
    case Tok::kDouble: return "'double'";
    case Tok::kVoid: return "'void'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kEnd: return "end of input";
  }
  return "?";
}

namespace {

Tok keyword_or_ident(std::string_view word) {
  if (word == "int") return Tok::kInt;
  if (word == "double") return Tok::kDouble;
  if (word == "void") return Tok::kVoid;
  if (word == "if") return Tok::kIf;
  if (word == "else") return Tok::kElse;
  if (word == "while") return Tok::kWhile;
  if (word == "for") return Tok::kFor;
  if (word == "return") return Tok::kReturn;
  return Tok::kIdent;
}

}  // namespace

StatusOr<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  auto error = [&line](const std::string& what) {
    return make_error(ErrorCode::kInvalidArgument,
                      str_format("cod line %d: %s", line, what.c_str()));
  };
  auto push = [&](Tok kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < source.size()) {
      if (source[i + 1] == '/') {
        while (i < source.size() && source[i] != '\n') ++i;
        continue;
      }
      if (source[i + 1] == '*') {
        i += 2;
        while (i + 1 < source.size() &&
               !(source[i] == '*' && source[i + 1] == '/')) {
          if (source[i] == '\n') ++line;
          ++i;
        }
        if (i + 1 >= source.size()) return error("unterminated comment");
        i += 2;
        continue;
      }
    }
    // Numbers (ints, decimals, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        ++i;
      }
      if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
        ++i;
        if (i < source.size() && (source[i] == '+' || source[i] == '-')) ++i;
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      const std::string text(source.substr(start, i - start));
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return error("malformed number: " + text);
      }
      Token t;
      t.kind = Tok::kNumber;
      t.text = text;
      t.number = value;
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      const std::string word(source.substr(start, i - start));
      push(keyword_or_ident(word), word);
      continue;
    }
    // Operators & punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('=', '=')) { push(Tok::kEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNe); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ',': push(Tok::kComma); break;
      case ';': push(Tok::kSemicolon); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '<': push(Tok::kLt); break;
      case '>': push(Tok::kGt); break;
      case '!': push(Tok::kBang); break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

}  // namespace flexio::cod
