// Variable metadata: the self-describing unit of the ADIOS data model.
//
// Each timestep a writer process emits a group of variables; every variable
// carries its name, element type, and shape. Global arrays additionally
// carry the global extents and this writer's block within them, which is
// what the file reader and the MxN re-distribution use to route data.
#pragma once

#include <string>

#include "adios/array.h"
#include "serial/buffer.h"
#include "serial/schema.h"
#include "util/status.h"

namespace flexio::adios {

enum class ShapeKind : std::uint8_t {
  kScalar = 0,       // single element
  kLocalArray = 1,   // per-writer block, no global space (process-group I/O)
  kGlobalArray = 2,  // block of a distributed global array
};

struct VarMeta {
  std::string name;
  serial::DataType type = serial::DataType::kDouble;
  ShapeKind shape = ShapeKind::kScalar;
  Dims global_dims;  // kGlobalArray only
  Box block;         // kLocalArray: zero offsets; kGlobalArray: global coords

  /// Payload size this metadata implies (elements x element size).
  std::uint64_t payload_bytes() const {
    return block_elements() * serial::size_of(type);
  }
  std::uint64_t block_elements() const {
    return shape == ShapeKind::kScalar ? 1 : block.elements();
  }

  /// Sanity rules: dims consistent with the shape kind, block inside the
  /// global space, fixed-size element type.
  Status validate() const;

  void encode(serial::BufWriter* w) const;
  static StatusOr<VarMeta> decode(serial::BufReader* r);

  friend bool operator==(const VarMeta&, const VarMeta&) = default;
};

/// Convenience constructors.
VarMeta scalar_var(std::string name, serial::DataType type);
VarMeta local_array_var(std::string name, serial::DataType type, Dims count);
VarMeta global_array_var(std::string name, serial::DataType type,
                         Dims global_dims, Box block);

}  // namespace flexio::adios
