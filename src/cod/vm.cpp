#include <cmath>

#include "cod/program.h"
#include "util/strings.h"

namespace flexio::cod {

namespace {

struct Frame {
  int fn = 0;
  std::size_t pc = 0;
  std::vector<double> locals;
};

Status vm_error(const std::string& what) {
  return make_error(ErrorCode::kInvalidArgument, "cod vm: " + what);
}

}  // namespace

StatusOr<double> run(const CompiledProgram& program, std::string_view function,
                     std::span<const double> args, const Environment& env,
                     const VmLimits& limits) {
  const int entry = program.function_index(function);
  if (entry < 0) {
    return vm_error("no function named " + std::string(function));
  }
  // Cross-check that the bound environment matches the compile-time shape.
  for (std::size_t i = 0; i < program.global_names.size(); ++i) {
    if (program.global_names[i].empty()) continue;
    if (env.global_index(program.global_names[i]) != static_cast<int>(i)) {
      return vm_error("environment mismatch: global " + program.global_names[i]);
    }
  }
  for (std::size_t i = 0; i < program.array_names.size(); ++i) {
    if (program.array_names[i].empty()) continue;
    if (env.array_index(program.array_names[i]) != static_cast<int>(i)) {
      return vm_error("environment mismatch: array " + program.array_names[i]);
    }
  }
  for (std::size_t i = 0; i < program.builtin_names.size(); ++i) {
    if (program.builtin_names[i].empty()) continue;
    if (env.builtin_index(program.builtin_names[i]) != static_cast<int>(i)) {
      return vm_error("environment mismatch: builtin " +
                      program.builtin_names[i]);
    }
  }

  const CompiledFunction& entry_fn =
      program.functions[static_cast<std::size_t>(entry)];
  if (args.size() != static_cast<std::size_t>(entry_fn.num_params)) {
    return vm_error(str_format("%s expects %d args, got %zu",
                               entry_fn.name.c_str(), entry_fn.num_params,
                               args.size()));
  }

  std::vector<double> stack;
  std::vector<Frame> frames;
  frames.push_back(Frame{entry, 0, {}});
  frames.back().locals.assign(
      static_cast<std::size_t>(entry_fn.num_locals), 0.0);
  std::copy(args.begin(), args.end(), frames.back().locals.begin());

  std::uint64_t executed = 0;
  auto pop = [&stack]() {
    const double v = stack.back();
    stack.pop_back();
    return v;
  };

  for (;;) {
    if (++executed > limits.max_instructions) {
      return vm_error("instruction budget exhausted (runaway plug-in?)");
    }
    Frame& frame = frames.back();
    const CompiledFunction& fn =
        program.functions[static_cast<std::size_t>(frame.fn)];
    FLEXIO_CHECK(frame.pc < fn.code.size());
    const Instr instr = fn.code[frame.pc++];
    switch (instr.op) {
      case Op::kConst:
        stack.push_back(instr.imm);
        break;
      case Op::kLoadLocal:
        stack.push_back(frame.locals[static_cast<std::size_t>(instr.a)]);
        break;
      case Op::kStoreLocal:
        frame.locals[static_cast<std::size_t>(instr.a)] = pop();
        break;
      case Op::kLoadGlobal:
        stack.push_back(env.global(instr.a));
        break;
      case Op::kIndexArray: {
        const double idx = pop();
        const auto arr = env.array(instr.a);
        const auto i = static_cast<std::int64_t>(idx);
        if (i < 0 || static_cast<std::size_t>(i) >= arr.size()) {
          return vm_error(str_format("index %lld out of bounds for %s[%zu]",
                                     static_cast<long long>(i),
                                     env.array_name(instr.a).c_str(),
                                     arr.size()));
        }
        stack.push_back(arr[static_cast<std::size_t>(i)]);
        break;
      }
      case Op::kAdd: { const double b = pop(); stack.back() += b; break; }
      case Op::kSub: { const double b = pop(); stack.back() -= b; break; }
      case Op::kMul: { const double b = pop(); stack.back() *= b; break; }
      case Op::kDiv: {
        const double b = pop();
        if (b == 0.0) return vm_error("division by zero");
        stack.back() /= b;
        break;
      }
      case Op::kMod: {
        const double b = pop();
        if (b == 0.0) return vm_error("modulo by zero");
        stack.back() = std::fmod(stack.back(), b);
        break;
      }
      case Op::kNeg: stack.back() = -stack.back(); break;
      case Op::kNot: stack.back() = stack.back() == 0.0 ? 1.0 : 0.0; break;
      case Op::kEq: { const double b = pop(); stack.back() = stack.back() == b; break; }
      case Op::kNe: { const double b = pop(); stack.back() = stack.back() != b; break; }
      case Op::kLt: { const double b = pop(); stack.back() = stack.back() < b; break; }
      case Op::kLe: { const double b = pop(); stack.back() = stack.back() <= b; break; }
      case Op::kGt: { const double b = pop(); stack.back() = stack.back() > b; break; }
      case Op::kGe: { const double b = pop(); stack.back() = stack.back() >= b; break; }
      case Op::kJmp:
        frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::kJmpIfFalse:
        if (pop() == 0.0) frame.pc = static_cast<std::size_t>(instr.a);
        break;
      case Op::kCallFn: {
        if (frames.size() >= limits.max_call_depth) {
          return vm_error("call depth exceeded");
        }
        const auto& callee =
            program.functions[static_cast<std::size_t>(instr.a)];
        Frame next;
        next.fn = instr.a;
        next.locals.assign(static_cast<std::size_t>(callee.num_locals), 0.0);
        for (int i = instr.b - 1; i >= 0; --i) {
          next.locals[static_cast<std::size_t>(i)] = pop();
        }
        frames.push_back(std::move(next));
        break;
      }
      case Op::kBuiltin: {
        const auto nargs = static_cast<std::size_t>(instr.b);
        FLEXIO_CHECK(stack.size() >= nargs);
        const std::span<const double> call_args(stack.data() + stack.size() -
                                                    nargs,
                                                nargs);
        auto result = env.call_builtin(instr.a, call_args);
        if (!result.is_ok()) return result.status();
        stack.resize(stack.size() - nargs);
        stack.push_back(result.value());
        break;
      }
      case Op::kRet:
      case Op::kRetVoid: {
        const double value = instr.op == Op::kRet ? pop() : 0.0;
        frames.pop_back();
        if (frames.empty()) return value;
        stack.push_back(value);
        break;
      }
      case Op::kPop:
        pop();
        break;
    }
    if (stack.size() > limits.max_stack) {
      return vm_error("value stack overflow");
    }
  }
}

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kLoadLocal: return "load";
    case Op::kStoreLocal: return "store";
    case Op::kLoadGlobal: return "global";
    case Op::kIndexArray: return "index";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jz";
    case Op::kCallFn: return "call";
    case Op::kBuiltin: return "builtin";
    case Op::kRet: return "ret";
    case Op::kRetVoid: return "retv";
    case Op::kPop: return "pop";
  }
  return "?";
}

}  // namespace

std::string disassemble(const CompiledProgram& program) {
  std::string out;
  for (const CompiledFunction& fn : program.functions) {
    out += str_format("%s (params=%d, locals=%d):\n", fn.name.c_str(),
                      fn.num_params, fn.num_locals);
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Instr& instr = fn.code[pc];
      switch (instr.op) {
        case Op::kConst:
          out += str_format("  %4zu  %-8s %g\n", pc, op_name(instr.op),
                            instr.imm);
          break;
        case Op::kLoadLocal:
        case Op::kStoreLocal:
        case Op::kJmp:
        case Op::kJmpIfFalse:
          out += str_format("  %4zu  %-8s %d\n", pc, op_name(instr.op),
                            instr.a);
          break;
        case Op::kLoadGlobal:
          out += str_format(
              "  %4zu  %-8s %s\n", pc, op_name(instr.op),
              instr.a < static_cast<int>(program.global_names.size())
                  ? program.global_names[static_cast<std::size_t>(instr.a)]
                        .c_str()
                  : "?");
          break;
        case Op::kIndexArray:
          out += str_format(
              "  %4zu  %-8s %s\n", pc, op_name(instr.op),
              instr.a < static_cast<int>(program.array_names.size())
                  ? program.array_names[static_cast<std::size_t>(instr.a)]
                        .c_str()
                  : "?");
          break;
        case Op::kCallFn:
          out += str_format(
              "  %4zu  %-8s %s/%d\n", pc, op_name(instr.op),
              program.functions[static_cast<std::size_t>(instr.a)].name.c_str(),
              instr.b);
          break;
        case Op::kBuiltin:
          out += str_format(
              "  %4zu  %-8s %s/%d\n", pc, op_name(instr.op),
              instr.a < static_cast<int>(program.builtin_names.size())
                  ? program.builtin_names[static_cast<std::size_t>(instr.a)]
                        .c_str()
                  : "?",
              instr.b);
          break;
        default:
          out += str_format("  %4zu  %-8s\n", pc, op_name(instr.op));
          break;
      }
    }
  }
  return out;
}

}  // namespace flexio::cod
