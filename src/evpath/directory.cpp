#include "evpath/directory.h"

namespace flexio::evpath {

Status DirectoryServer::register_stream(const std::string& stream_name,
                                        const std::string& coordinator_contact) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = streams_.emplace(stream_name, coordinator_contact);
  if (!inserted) {
    return make_error(ErrorCode::kAlreadyExists,
                      "stream already registered: " + stream_name);
  }
  ++stats_.registrations;
  cv_.notify_all();
  return Status::ok();
}

Status DirectoryServer::unregister_stream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (streams_.erase(stream_name) == 0) {
    return make_error(ErrorCode::kNotFound,
                      "stream not registered: " + stream_name);
  }
  return Status::ok();
}

StatusOr<std::string> DirectoryServer::lookup(const std::string& stream_name,
                                              std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    ++stats_.lookup_waits;
    if (!cv_.wait_for(lock, timeout, [&] {
          it = streams_.find(stream_name);
          return it != streams_.end();
        })) {
      return make_error(ErrorCode::kNotFound,
                        "stream never registered: " + stream_name);
    }
  }
  return it->second;
}

DirectoryStats DirectoryServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flexio::evpath
