// Tests for the global metrics registry (src/util/metrics.h): exact
// concurrent counting, torn-free snapshots while writers run (the TSan CI
// job exercises this file), histogram quantiles against a sorted-vector
// oracle, and the deterministic fake-clock hook.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

namespace flexio::metrics {
namespace {

// Every test flips the global enable gate; restore the default (off unless
// FLEXIO_METRICS was set) so ordering between tests does not matter.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override {
    set_clock_for_testing(nullptr);
    set_enabled(false);
  }
};

std::uint64_t fake_now = 0;
std::uint64_t fake_clock() { return fake_now; }

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  Counter& a = counter("test.registry.counter");
  Counter& b = counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = gauge("test.registry.gauge");
  Gauge& g2 = gauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = histogram("test.registry.hist");
  Histogram& h2 = histogram("test.registry.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(MetricsTest, ConcurrentIncrementsSumExactly) {
  Counter& c = counter("test.concurrent.counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GaugeBalancesAcrossThreads) {
  Gauge& g = gauge("test.concurrent.gauge");
  g.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  // Each thread adds then subtracts; cross-thread add/sub must cancel.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          g.add(3);
        } else {
          g.sub(3);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 0);
}

// A reader snapshots while writers are mid-update. The sharded atomics mean
// each observed value is a sum of per-shard loads: never torn, and -- since
// counters are monotone -- never exceeding the final total. Run under TSan
// (CI) this also pins that snapshot_all() has no data races.
TEST_F(MetricsTest, SnapshotDuringUpdateIsTornFreeAndMonotone) {
  Counter& c = counter("test.snapshot.counter");
  c.reset();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 100000;
  constexpr std::uint64_t kFinal = kWriters * kPerThread;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  std::uint64_t prev = 0;
  std::uint64_t observations = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = snapshot_all();
      const auto it = snap.find("test.snapshot.counter");
      ASSERT_NE(it, snap.end());
      ASSERT_EQ(it->second.kind, MetricSnapshot::Kind::kCounter);
      const std::uint64_t v = it->second.counter;
      EXPECT_GE(v, prev) << "counter snapshot went backwards";
      EXPECT_LE(v, kFinal) << "counter snapshot torn past final total";
      prev = v;
      ++observations;
    }
  });
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(observations, 0u);
  EXPECT_EQ(c.value(), kFinal);
}

TEST_F(MetricsTest, HistogramBucketMathRoundTrips) {
  // Every reachable bucket's lower bound must map back to that bucket, and
  // bucket indices must be monotone in the sample value. The array is
  // sized to a power of two, so indices past bucket_for(UINT64_MAX) are
  // unreachable padding.
  const int top = Histogram::bucket_for(~std::uint64_t{0});
  ASSERT_LT(top, Histogram::kBuckets);
  for (int b = 0; b <= top; ++b) {
    EXPECT_EQ(Histogram::bucket_for(Histogram::bucket_lower(b)), b)
        << "bucket " << b;
  }
  int prev = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const int b = Histogram::bucket_for(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

// Oracle test: when every sample is an exact bucket lower bound, the
// histogram loses no information, so its nearest-rank quantile must match
// a sorted-vector nearest-rank oracle exactly.
TEST_F(MetricsTest, HistogramQuantileMatchesSortedVectorOracle) {
  Histogram& h = histogram("test.quantile.hist");
  h.reset();
  std::vector<std::uint64_t> samples;
  // A spread of bucket lower bounds with repeats, recorded out of order.
  for (int b : {0, 1, 2, 3, 5, 9, 17, 33, 64, 120, 3, 9, 9, 64, 0, 17}) {
    samples.push_back(Histogram::bucket_lower(b));
  }
  for (std::uint64_t v : samples) h.record(v);

  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto oracle = [&sorted](double q) -> double {
    const auto n = static_cast<double>(sorted.size());
    const auto rank =
        static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
    return static_cast<double>(sorted[rank - 1]);
  };

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.min, sorted.front());
  EXPECT_EQ(snap.max, sorted.back());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), oracle(q)) << "q=" << q;
  }
  std::uint64_t sum = 0;
  for (std::uint64_t v : sorted) sum += v;
  EXPECT_EQ(snap.sum, sum);
  EXPECT_DOUBLE_EQ(snap.mean(),
                   static_cast<double>(sum) / static_cast<double>(sorted.size()));
}

TEST_F(MetricsTest, QuantileBoundedErrorForArbitrarySamples) {
  // For samples that are not bucket lower bounds, the reported quantile is
  // the lower bound of the sample's bucket: never above the true value and
  // within one sub-bucket width below it.
  Histogram& h = histogram("test.quantile.approx");
  h.reset();
  std::vector<std::uint64_t> samples = {7,   13,  99,  1000, 777, 42,
                                        511, 513, 100, 3,    65,  129};
  for (std::uint64_t v : samples) h.record(v);
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const HistogramSnapshot snap = h.snapshot();
  for (double q : {0.25, 0.5, 0.9, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    const auto truth = static_cast<double>(sorted[rank - 1]);
    const double reported = snap.quantile(q);
    EXPECT_LE(reported, truth) << "q=" << q;
    EXPECT_EQ(reported,
              static_cast<double>(Histogram::bucket_lower(
                  Histogram::bucket_for(sorted[rank - 1]))))
        << "q=" << q;
  }
}

TEST_F(MetricsTest, FakeClockMakesTimersDeterministic) {
  fake_now = 1000;
  set_clock_for_testing(&fake_clock);
  EXPECT_EQ(now_ns(), 1000u);
  Histogram& h = histogram("test.fakeclock.hist");
  h.reset();
  {
    ScopedTimerNs timer(&h);
    fake_now += 64;  // a bucket lower bound: recorded exactly
  }
  {
    ScopedTimerNs timer(&h);
    fake_now += 256;
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 64u);
  EXPECT_EQ(snap.max, 256u);
  EXPECT_EQ(snap.sum, 320u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 64.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 256.0);
  set_clock_for_testing(nullptr);
  // Real steady clock is monotone again.
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_GE(b, a);
}

TEST_F(MetricsTest, DisabledRecordingIsDropped) {
  Counter& c = counter("test.disabled.counter");
  Gauge& g = gauge("test.disabled.gauge");
  Histogram& h = histogram("test.disabled.hist");
  c.reset();
  g.reset();
  h.reset();
  set_enabled(false);
  c.inc();
  g.add(5);
  h.record(123);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  // ScopedTimerNs latches the gate at construction: enabling mid-scope
  // must not record a sample with a garbage start time.
  {
    ScopedTimerNs timer(&h);
    set_enabled(true);
  }
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsTest, ResetAllZeroesEveryMetric) {
  Counter& c = counter("test.resetall.counter");
  Histogram& h = histogram("test.resetall.hist");
  c.add(7);
  h.record(9);
  reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsTest, SnapshotJsonContainsRegisteredMetrics) {
  Counter& c = counter("test.json.counter");
  c.reset();
  c.add(42);
  const std::string json = snapshot_json();
  EXPECT_NE(json.find("\"test.json.counter\": 42"), std::string::npos)
      << json;
}

TEST_F(MetricsTest, FamilyRollsOverToOtherBeyondMaxLabels) {
  // Bounded cardinality: the first max_labels distinct labels get their own
  // registry series, everything past the cap shares `<base>.other` -- a
  // thousand-stream process must not register a thousand counters.
  CounterFamily fam("test.family.stalls", 3);
  fam.with("s0").add(1);
  fam.with("s1").add(2);
  fam.with("s2").add(3);
  EXPECT_EQ(fam.distinct(), 3u);
  // Over the cap: distinct labels collapse into one rollover counter.
  fam.with("s3").add(10);
  fam.with("s4").add(20);
  EXPECT_EQ(fam.distinct(), 3u);
  EXPECT_EQ(&fam.with("s3"), &fam.with("s4"));
  EXPECT_EQ(counter("test.family.stalls.other").value(), 30u);
  // Already-admitted labels keep resolving to their own series.
  fam.with("s1").add(5);
  EXPECT_EQ(counter("test.family.stalls.s1").value(), 7u);
  EXPECT_EQ(&fam.with("s1"), &counter("test.family.stalls.s1"));
  // Re-probing a rolled-over label never steals an admitted slot.
  EXPECT_EQ(&fam.with("s3"), &counter("test.family.stalls.other"));

  // Gauges roll over the same way.
  GaugeFamily gfam("test.family.queued", 1);
  gfam.with("a").add(4);
  gfam.with("b").add(6);
  gfam.with("c").sub(1);
  EXPECT_EQ(gauge("test.family.queued.a").value(), 4);
  EXPECT_EQ(gauge("test.family.queued.other").value(), 5);
}

TEST_F(MetricsTest, FamilyConcurrentRegistrationIsConsistent) {
  // Races on the admission boundary must resolve to exactly max_labels own
  // series plus one rollover; every add lands in exactly one counter.
  CounterFamily fam("test.family.race", 8);
  constexpr int kThreads = 4;
  constexpr int kLabels = 32;
  constexpr int kAddsPerLabel = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fam] {
      for (int i = 0; i < kAddsPerLabel; ++i) {
        for (int l = 0; l < kLabels; ++l) {
          fam.with("l" + std::to_string(l)).inc();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fam.distinct(), 8u);
  // Sum the distinct series (8 own + the rollover): every increment must
  // have landed in exactly one of them.
  std::uint64_t total = counter("test.family.race.other").value();
  int own = 0;
  for (int l = 0; l < kLabels; ++l) {
    Counter& c = counter("test.family.race.l" + std::to_string(l));
    if (&fam.with("l" + std::to_string(l)) == &c) {
      total += c.value();
      ++own;
    }
  }
  EXPECT_EQ(own, 8);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kLabels *
                       kAddsPerLabel);
}

}  // namespace
}  // namespace flexio::metrics
