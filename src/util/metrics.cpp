#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/strings.h"

namespace flexio::metrics {

namespace {

bool env_on(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  return std::string_view(v) == "1" || std::string_view(v) == "true" ||
         std::string_view(v) == "on";
}

std::uint64_t real_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<ClockFn> g_clock{&real_now_ns};

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{env_on("FLEXIO_METRICS")};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return g_clock.load(std::memory_order_relaxed)();
}

void set_clock_for_testing(ClockFn fn) {
  g_clock.store(fn ? fn : &real_now_ns, std::memory_order_relaxed);
}

namespace detail {

int this_thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return shard;
}

}  // namespace detail

// ------------------------------------------------------------- Histogram --

int Histogram::bucket_for(std::uint64_t v) {
  if (v < (std::uint64_t{1} << kSubBits)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((v >> shift) & ((1u << kSubBits) - 1));
  return ((msb - kSubBits + 1) << kSubBits) + sub;
}

std::uint64_t Histogram::bucket_lower(int b) {
  if (b < (1 << kSubBits)) return static_cast<std::uint64_t>(b);
  const int octave = (b >> kSubBits) + kSubBits - 1;
  // Indices past the top 64-bit octave are unreachable from bucket_for
  // (the array is sized to a power of two); saturate instead of shifting
  // past the word.
  if (octave > 63) return ~std::uint64_t{0};
  const int sub = b & ((1 << kSubBits) - 1);
  return (std::uint64_t{1} << octave) |
         (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kBuckets, 0);
  out.min = ~std::uint64_t{0};
  for (const Shard& s : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  for (std::uint64_t c : out.buckets) out.count += c;
  if (out.count == 0) out.min = 0;
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches rank.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      return static_cast<double>(Histogram::bucket_lower(static_cast<int>(b)));
    }
  }
  return static_cast<double>(max);
}

// -------------------------------------------------------------- Registry --

/// Global name->metric maps. Metrics are never destroyed (call sites hold
/// references for the life of the process), so the registry leaks by design
/// to dodge static-destruction order. Not in an anonymous namespace: the
/// metric classes befriend flexio::metrics::Registry to expose their
/// private constructors.
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = counters_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second.reset(new Counter);
    return *it->second;
  }

  Gauge& gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second.reset(new Gauge);
    return *it->second;
  }

  Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second.reset(new Histogram);
    return *it->second;
  }

  std::map<std::string, MetricSnapshot> snapshot_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, MetricSnapshot> out;
    for (const auto& [name, c] : counters_) {
      MetricSnapshot m;
      m.kind = MetricSnapshot::Kind::kCounter;
      m.counter = c->value();
      out.emplace(name, std::move(m));
    }
    for (const auto& [name, g] : gauges_) {
      MetricSnapshot m;
      m.kind = MetricSnapshot::Kind::kGauge;
      m.gauge = g->value();
      out.emplace(name, std::move(m));
    }
    for (const auto& [name, h] : histograms_) {
      MetricSnapshot m;
      m.kind = MetricSnapshot::Kind::kHistogram;
      m.hist = h->snapshot();
      out.emplace(name, std::move(m));
    }
    return out;
  }

  void reset_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

  bool unregister_metric(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Leak the object (release before erase): call sites cache references
    // for the life of the process, and a retired stream's cached gauge
    // pointer must stay writable even though nothing scrapes it anymore.
    if (auto it = counters_.find(name); it != counters_.end()) {
      it->second.release();
      counters_.erase(it);
      return true;
    }
    if (auto it = gauges_.find(name); it != gauges_.end()) {
      it->second.release();
      gauges_.erase(it);
      return true;
    }
    if (auto it = histograms_.find(name); it != histograms_.end()) {
      it->second.release();
      histograms_.erase(it);
      return true;
    }
    return false;
  }

 private:
  Registry() = default;
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

std::map<std::string, MetricSnapshot> snapshot_all() {
  return Registry::instance().snapshot_all();
}

void reset_all() { Registry::instance().reset_all(); }

namespace detail {
bool unregister_metric(const std::string& name) {
  return Registry::instance().unregister_metric(name);
}
}  // namespace detail

std::string snapshot_json() {
  const auto snap = snapshot_all();
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, m] : snap) {
    if (!first) out += ",\n";
    first = false;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += str_format("  \"%s\": %llu", name.c_str(),
                          static_cast<unsigned long long>(m.counter));
        break;
      case MetricSnapshot::Kind::kGauge:
        out += str_format("  \"%s\": %lld", name.c_str(),
                          static_cast<long long>(m.gauge));
        break;
      case MetricSnapshot::Kind::kHistogram:
        out += str_format(
            "  \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
            "\"max\": %llu, \"p50\": %.1f, \"p99\": %.1f}",
            name.c_str(), static_cast<unsigned long long>(m.hist.count),
            static_cast<unsigned long long>(m.hist.sum),
            static_cast<unsigned long long>(m.hist.min),
            static_cast<unsigned long long>(m.hist.max),
            m.hist.quantile(0.5), m.hist.quantile(0.99));
        break;
    }
  }
  out += "\n}\n";
  return out;
}

namespace {

/// Prometheus metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. FlexIO names
/// use dots, which become underscores.
std::string sanitize_prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

}  // namespace

std::string expose_text() {
  const auto snap = snapshot_all();
  std::string out;
  for (const auto& [name, m] : snap) {
    const std::string prom = sanitize_prom_name(name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += str_format("# TYPE %s counter\n%s %llu\n", prom.c_str(),
                          prom.c_str(),
                          static_cast<unsigned long long>(m.counter));
        break;
      case MetricSnapshot::Kind::kGauge:
        out += str_format("# TYPE %s gauge\n%s %lld\n", prom.c_str(),
                          prom.c_str(), static_cast<long long>(m.gauge));
        break;
      case MetricSnapshot::Kind::kHistogram:
        out += str_format(
            "# TYPE %s summary\n"
            "%s{quantile=\"0.5\"} %.1f\n"
            "%s{quantile=\"0.99\"} %.1f\n"
            "%s_sum %llu\n"
            "%s_count %llu\n",
            prom.c_str(), prom.c_str(), m.hist.quantile(0.5), prom.c_str(),
            m.hist.quantile(0.99), prom.c_str(),
            static_cast<unsigned long long>(m.hist.sum), prom.c_str(),
            static_cast<unsigned long long>(m.hist.count));
        break;
    }
  }
  return out;
}

Status dump_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal,
                      "cannot open metrics dump: " + path);
  }
  out << snapshot_json();
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "metrics dump write failed");
}

}  // namespace flexio::metrics
