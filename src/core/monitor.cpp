#include "core/monitor.h"

#include <fstream>

#include "util/strings.h"

namespace flexio {

void PerfMonitor::record_time(const std::string& metric, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  times_[metric].add(seconds);
}

void PerfMonitor::add_count(const std::string& metric, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_[metric] += n;
}

RunningStats PerfMonitor::time_stats(const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = times_.find(metric);
  return it == times_.end() ? RunningStats{} : it->second;
}

std::uint64_t PerfMonitor::count(const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(metric);
  return it == counts_.end() ? 0 : it->second;
}

std::string PerfMonitor::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, stats] : times_) {
    out += str_format("%-32s n=%-6zu total=%.6fs mean=%.6fs max=%.6fs\n",
                      name.c_str(), stats.count(), stats.sum(), stats.mean(),
                      stats.max());
  }
  for (const auto& [name, value] : counts_) {
    out += str_format("%-32s count=%llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
  }
  return out;
}

Status PerfMonitor::dump_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kInternal, "cannot open trace file: " + path);
  }
  out << "metric,kind,count,total,mean,min,max\n";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, stats] : times_) {
    out << str_format("%s,time,%zu,%.9f,%.9f,%.9f,%.9f\n", name.c_str(),
                      stats.count(), stats.sum(), stats.mean(), stats.min(),
                      stats.max());
  }
  for (const auto& [name, value] : counts_) {
    out << str_format("%s,count,%llu,,,,\n", name.c_str(),
                      static_cast<unsigned long long>(value));
  }
  return out ? Status::ok()
             : make_error(ErrorCode::kInternal, "trace file write failed");
}

wire::MonitorReport cluster_phase_report(const evpath::ClusterSnapshot& cluster,
                                         const std::string& program) {
  wire::MonitorReport report;
  const auto hist_sum = [](const evpath::RankStats& rs, const char* name,
                           std::uint64_t* ns, std::uint64_t* count) {
    const auto it = rs.histograms.find(name);
    if (it == rs.histograms.end()) return;
    *ns += it->second.sum;
    if (count != nullptr) *count += it->second.count;
  };
  const auto counter = [](const evpath::RankStats& rs, const char* name) {
    const auto it = rs.counters.find(name);
    return it == rs.counters.end() ? std::uint64_t{0} : it->second;
  };
  for (const evpath::RankStats& rs : cluster) {
    if (!program.empty() && rs.program != program) continue;
    hist_sum(rs, "flexio.step.pack.ns", &report.pack_ns, nullptr);
    hist_sum(rs, "flexio.step.enqueue.ns", &report.enqueue_ns, nullptr);
    hist_sum(rs, "flexio.step.transfer.ns", &report.transfer_ns, nullptr);
    hist_sum(rs, "flexio.step.unpack.ns", &report.unpack_ns, nullptr);
    hist_sum(rs, "flexio.step.total.ns", &report.total_ns,
             &report.phase_steps);
    report.bytes_sent += counter(rs, "flexio.bytes.sent");
    report.handshakes_performed += counter(rs, "flexio.handshake.performed");
    report.handshakes_skipped += counter(rs, "flexio.handshake.skipped");
    report.pack_seconds = static_cast<double>(report.pack_ns) * 1e-9;
    report.send_seconds = static_cast<double>(report.enqueue_ns) * 1e-9;
  }
  return report;
}

}  // namespace flexio
