#include "xml/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace flexio::xml {

std::string_view Element::attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

bool Element::has_attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return true;
  }
  return false;
}

const Element* Element::child(std::string_view tag) const {
  for (const auto& c : children) {
    if (c->name == tag) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view tag) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->name == tag) out.push_back(c.get());
  }
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view with line tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Document> parse() {
    skip_prolog();
    auto root = parse_element();
    if (!root.is_ok()) return root.status();
    skip_misc();
    if (pos_ != text_.size()) {
      return error("trailing content after document root");
    }
    return Document(std::move(root).value());
  }

 private:
  Status error(const std::string& what) {
    return make_error(ErrorCode::kInvalidArgument,
                      str_format("xml line %d: %s", line_, what.c_str()));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    for (std::size_t i = 0; i < token.size(); ++i) advance();
    return true;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  /// Skip comments and whitespace outside elements.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        while (!eof() && !consume("-->")) advance();
        continue;
      }
      break;
    }
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?xml")) {
      while (!eof() && !consume("?>")) advance();
    }
    skip_misc();
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  /// Decode the five predefined entities inside `raw`.
  static std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const std::string_view rest = raw.substr(i);
      if (starts_with(rest, "&lt;")) { out.push_back('<'); i += 3; }
      else if (starts_with(rest, "&gt;")) { out.push_back('>'); i += 3; }
      else if (starts_with(rest, "&amp;")) { out.push_back('&'); i += 4; }
      else if (starts_with(rest, "&quot;")) { out.push_back('"'); i += 5; }
      else if (starts_with(rest, "&apos;")) { out.push_back('\''); i += 5; }
      else out.push_back('&');  // tolerate bare ampersands in config files
    }
    return out;
  }

  StatusOr<std::pair<std::string, std::string>> parse_attribute() {
    const std::string key = parse_name();
    if (key.empty()) return error("expected attribute name");
    skip_ws();
    if (eof() || advance() != '=') return error("expected '=' after attribute");
    skip_ws();
    if (eof()) return error("unterminated attribute");
    const char quote = advance();
    if (quote != '"' && quote != '\'') return error("expected quoted value");
    std::string raw;
    while (!eof() && peek() != quote) raw.push_back(advance());
    if (eof()) return error("unterminated attribute value");
    advance();  // closing quote
    return std::make_pair(key, decode_entities(raw));
  }

  StatusOr<std::unique_ptr<Element>> parse_element() {
    if (!consume("<")) return error("expected '<'");
    auto elem = std::make_unique<Element>();
    elem->name = parse_name();
    if (elem->name.empty()) return error("expected element name");
    for (;;) {
      skip_ws();
      if (consume("/>")) return elem;  // self-closing
      if (consume(">")) break;
      auto attr = parse_attribute();
      if (!attr.is_ok()) return attr.status();
      elem->attributes.push_back(std::move(attr).value());
    }
    // Content: text, comments, child elements, until matching close tag.
    std::string text;
    for (;;) {
      if (eof()) return error("unexpected end inside <" + elem->name + ">");
      if (consume("<!--")) {
        while (!eof() && !consume("-->")) advance();
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        consume("</");
        const std::string close = parse_name();
        skip_ws();
        if (!consume(">")) return error("malformed close tag");
        if (close != elem->name) {
          return error("mismatched close tag </" + close + "> for <" +
                       elem->name + ">");
        }
        elem->text = std::string(trim(decode_entities(text)));
        return elem;
      }
      if (peek() == '<') {
        auto kid = parse_element();
        if (!kid.is_ok()) return kid.status();
        elem->children.push_back(std::move(kid).value());
        continue;
      }
      text.push_back(advance());
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<Document> parse(std::string_view text) {
  return Parser(text).parse();
}

StatusOr<Document> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open xml file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace flexio::xml
