#include "util/watchdog.h"

#include <chrono>
#include <utility>

#include "util/flight_recorder.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace flexio::telemetry {

namespace detail {
std::atomic<bool> g_active{false};
std::atomic<bool> g_due{false};
}  // namespace detail

namespace {

metrics::Counter& health_events_counter() {
  static metrics::Counter& c = metrics::counter("flexio.health.events");
  return c;
}

metrics::Gauge& health_active_gauge() {
  static metrics::Gauge& g = metrics::gauge("flexio.health.active");
  return g;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

constexpr std::string_view kCreditsPrefix = "flexio.stream.credits.";

/// The one running watchdog maybe_poll() dispatches to.
std::mutex g_registered_mutex;
Watchdog* g_registered = nullptr;

}  // namespace

std::string HealthEvent::to_json() const {
  return str_format(
      "{\"schema\":\"flexio-health-v1\",\"t_ns\":%llu,\"rule\":\"%s\","
      "\"subject\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(t_ns), json_escape(rule).c_str(),
      json_escape(subject).c_str(), json_escape(detail).c_str());
}

namespace detail {
void poll_due() {
  if (!g_due.exchange(false, std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_registered_mutex);
  if (g_registered != nullptr) g_registered->poll();
}
}  // namespace detail

void request_poll() {
  detail::g_due.store(true, std::memory_order_relaxed);
}

Watchdog::~Watchdog() { stop(); }

Status Watchdog::start(const WatchdogOptions& options) {
  {
    std::lock_guard<std::mutex> reg(g_registered_mutex);
    if (g_registered != nullptr) {
      return make_error(ErrorCode::kFailedPrecondition,
                        "a watchdog is already running");
    }
    g_registered = this;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  options_ = options;
  if (options_.interval_ns == 0) options_.interval_ns = 1;
  running_ = true;
  stop_requested_ = false;
  last_eval_ns_ = metrics::now_ns();
  full_spins_prev_ = 0;
  exec_max_reported_ = 0;
  streams_.clear();
  dead_reported_.clear();
  health_active_gauge().sub(static_cast<std::int64_t>(active_.size()));
  active_.clear();
  events_.clear();
  // Baseline counters so the first interval sees deltas, not totals.
  const auto snaps = metrics::snapshot_all();
  if (const auto it = snaps.find("shm.queue.full_spins"); it != snaps.end()) {
    full_spins_prev_ = it->second.counter;
  }
  if (const auto it = snaps.find("flexio.pool.exec_ns"); it != snaps.end()) {
    exec_max_reported_ = it->second.hist.max;
  }
  detail::g_active.store(true, std::memory_order_relaxed);
  detail::g_due.store(false, std::memory_order_relaxed);
  if (options_.background) {
    thread_ = std::thread([this] {
      std::unique_lock<std::mutex> bg(mutex_);
      const auto period = std::chrono::nanoseconds(
          std::max<std::uint64_t>(options_.interval_ns, 1'000'000));
      while (!stop_requested_) {
        cv_.wait_for(bg, period);
        if (stop_requested_) break;
        poll_locked(metrics::now_ns());
      }
    });
  }
  return Status::ok();
}

void Watchdog::stop() {
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    running_ = false;
  }
  {
    std::lock_guard<std::mutex> reg(g_registered_mutex);
    if (g_registered == this) g_registered = nullptr;
  }
  detail::g_active.store(false, std::memory_order_relaxed);
  detail::g_due.store(false, std::memory_order_relaxed);
}

void Watchdog::poll() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!running_) return;
  poll_locked(metrics::now_ns());
}

void Watchdog::poll_locked(std::uint64_t now) {
  if (now < last_eval_ns_ + options_.interval_ns) return;
  last_eval_ns_ = now;

  const auto snaps = metrics::snapshot_all();
  const auto lookup = [&snaps](const std::string& name)
      -> const metrics::MetricSnapshot* {
    const auto it = snaps.find(name);
    return it == snaps.end() ? nullptr : &it->second;
  };

  // --- per-stream rules -------------------------------------------------
  std::set<std::string> seen;
  for (const auto& [name, snap] : snaps) {
    if (name.size() <= kCreditsPrefix.size() ||
        name.compare(0, kCreditsPrefix.size(), kCreditsPrefix) != 0) {
      continue;
    }
    const std::string label = name.substr(kCreditsPrefix.size());
    if (label == "other") continue;  // rollover bucket aggregates streams
    seen.insert(label);
    StreamState& st = streams_[label];
    const std::int64_t credits = snap.gauge;
    const auto* stalls = lookup("flexio.stream.stalls." + label);
    const auto* queued = lookup("flexio.stream.queued_bytes." + label);
    const std::uint64_t stall_count = stalls ? stalls->counter : 0;
    const std::int64_t queued_bytes = queued ? queued->gauge : 0;
    if (!st.primed) {
      // First sighting: baseline only, judge from the next interval.
      st.primed = true;
      st.stalls = stall_count;
      st.queued = queued_bytes;
      continue;
    }
    const bool starving = credits == 0 && stall_count > st.stalls;
    const bool stuck =
        credits > 0 && queued_bytes > 0 && queued_bytes == st.queued;
    st.starved = starving ? st.starved + 1 : 0;
    st.stuck = stuck ? st.stuck + 1 : 0;
    if (st.starved >= options_.credit_intervals) {
      emit_locked("credit-starved", label,
                  str_format("credits pinned at 0, %llu stalls over %d "
                             "intervals",
                             static_cast<unsigned long long>(stall_count -
                                                             st.stalls),
                             st.starved),
                  now);
    } else {
      clear_locked("credit-starved", label);
    }
    if (st.stuck >= options_.stall_intervals) {
      emit_locked("stream-no-progress", label,
                  str_format("%lld queued bytes unmoved for %d intervals "
                             "with credits available",
                             static_cast<long long>(queued_bytes), st.stuck),
                  now);
    } else {
      clear_locked("stream-no-progress", label);
    }
    st.stalls = stall_count;
    st.queued = queued_bytes;
  }
  // Streams whose series were retired drop their state and conditions.
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (seen.count(it->first) == 0) {
      clear_locked("credit-starved", it->first);
      clear_locked("stream-no-progress", it->first);
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }

  // --- shm-spin-runaway -------------------------------------------------
  if (const auto* spins = lookup("shm.queue.full_spins")) {
    const std::uint64_t delta = spins->counter - full_spins_prev_;
    if (delta > options_.full_spin_limit) {
      emit_locked("shm-spin-runaway", "shm.queue.full_spins",
                  str_format("%llu full-queue spins in one interval "
                             "(limit %llu)",
                             static_cast<unsigned long long>(delta),
                             static_cast<unsigned long long>(
                                 options_.full_spin_limit)),
                  now);
    } else {
      clear_locked("shm-spin-runaway", "shm.queue.full_spins");
    }
    full_spins_prev_ = spins->counter;
  }

  // --- pool-task-deadline -----------------------------------------------
  if (options_.task_deadline_ns > 0) {
    if (const auto* exec = lookup("flexio.pool.exec_ns")) {
      const std::uint64_t max = exec->hist.max;
      if (max > options_.task_deadline_ns && max > exec_max_reported_) {
        exec_max_reported_ = max;
        emit_locked("pool-task-deadline", "flexio.pool.exec_ns",
                    str_format("task ran %llu ns (deadline %llu ns)",
                               static_cast<unsigned long long>(max),
                               static_cast<unsigned long long>(
                                   options_.task_deadline_ns)),
                    now);
        // A strictly longer task should report again: clear the latch so
        // the next max increase re-fires.
        clear_locked("pool-task-deadline", "flexio.pool.exec_ns");
      }
    }
  }

  // --- rank-dead ---------------------------------------------------------
  if (options_.membership_probe) {
    for (const std::string& member : options_.membership_probe()) {
      if (!dead_reported_.insert(member).second) continue;
      emit_locked("rank-dead", member,
                  "member declared dead by the directory (missed "
                  "heartbeats)",
                  now);
    }
  }
}

void Watchdog::emit_locked(const std::string& rule, const std::string& subject,
                           std::string detail, std::uint64_t now) {
  const std::string key = rule + '\0' + subject;
  if (!active_.insert(key).second) return;  // already latched
  health_active_gauge().add(1);
  health_events_counter().inc();
  HealthEvent ev;
  ev.rule = rule;
  ev.subject = subject;
  ev.detail = std::move(detail);
  ev.t_ns = now;
  FLEXIO_LOG(kWarn) << "watchdog: " << rule << " [" << subject
                    << "]: " << ev.detail;
  flight::record_event(ev.to_json());
  events_.push_back(std::move(ev));
}

void Watchdog::clear_locked(const std::string& rule,
                            const std::string& subject) {
  if (active_.erase(rule + '\0' + subject) > 0) {
    health_active_gauge().sub(1);
  }
}

std::vector<HealthEvent> Watchdog::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Watchdog::events_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const HealthEvent& ev : events_) {
    out += ev.to_json();
    out += "\n";
  }
  return out;
}

std::size_t Watchdog::active_conditions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

}  // namespace flexio::telemetry
