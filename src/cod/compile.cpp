#include <map>

#include "cod/program.h"
#include "util/strings.h"

namespace flexio::cod {

void Environment::add_global(const std::string& name, double value) {
  globals_.emplace_back(name, value);
}

void Environment::add_array(const std::string& name,
                            std::span<const double> values) {
  arrays_.emplace_back(name, values);
}

void Environment::add_builtin(const std::string& name, int arity, Builtin fn) {
  builtins_.emplace_back(name, arity, std::move(fn));
}

int Environment::global_index(std::string_view name) const {
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    if (globals_[i].first == name) return static_cast<int>(i);
  }
  return -1;
}

int Environment::array_index(std::string_view name) const {
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i].first == name) return static_cast<int>(i);
  }
  return -1;
}

int Environment::builtin_index(std::string_view name) const {
  for (std::size_t i = 0; i < builtins_.size(); ++i) {
    if (std::get<0>(builtins_[i]) == name) return static_cast<int>(i);
  }
  return -1;
}

int CompiledProgram::function_index(std::string_view name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Compiles one function's AST into bytecode with scoped locals.
class FunctionCompiler {
 public:
  FunctionCompiler(const ProgramAst& ast, const Environment& env)
      : ast_(ast), env_(env) {}

  StatusOr<CompiledFunction> compile_fn(const FunctionAst& fn) {
    out_ = CompiledFunction{};
    out_.name = fn.name;
    out_.num_params = static_cast<int>(fn.params.size());
    scopes_.clear();
    next_slot_ = 0;
    max_slot_ = 0;
    push_scope();
    for (const std::string& p : fn.params) {
      if (declare(p) < 0) return error(fn.line, "duplicate parameter: " + p);
    }
    FLEXIO_RETURN_IF_ERROR(compile_block(fn.body));
    pop_scope();
    emit(Op::kRetVoid);  // implicit return at end
    out_.num_locals = max_slot_;
    return std::move(out_);
  }

 private:
  Status error(int line, const std::string& what) const {
    return make_error(ErrorCode::kInvalidArgument,
                      str_format("cod line %d: %s", line, what.c_str()));
  }

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() {
    next_slot_ -= static_cast<int>(scopes_.back().size());
    scopes_.pop_back();
  }
  int declare(const std::string& name) {
    auto& scope = scopes_.back();
    if (scope.count(name)) return -1;
    const int slot = next_slot_++;
    max_slot_ = std::max(max_slot_, next_slot_);
    scope[name] = slot;
    return slot;
  }
  int lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return -1;
  }

  int emit(Op op, int a = 0, int b = 0, double imm = 0) {
    out_.code.push_back(Instr{op, a, b, imm});
    return static_cast<int>(out_.code.size() - 1);
  }
  void patch(int at, int target) {
    out_.code[static_cast<std::size_t>(at)].a = target;
  }
  int here() const { return static_cast<int>(out_.code.size()); }

  Status compile_block(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      FLEXIO_RETURN_IF_ERROR(compile_stmt(*stmt));
    }
    return Status::ok();
  }

  Status compile_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kDecl: {
        const int slot = declare(stmt.name);
        if (slot < 0) {
          return error(stmt.line, "redeclaration of " + stmt.name);
        }
        if (stmt.a) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
        } else {
          emit(Op::kConst, 0, 0, 0.0);
        }
        emit(Op::kStoreLocal, slot);
        return Status::ok();
      }
      case Stmt::Kind::kAssign: {
        const int slot = lookup(stmt.name);
        if (slot < 0) {
          return error(stmt.line, "assignment to undeclared " + stmt.name);
        }
        FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
        emit(Op::kStoreLocal, slot);
        return Status::ok();
      }
      case Stmt::Kind::kIf: {
        FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
        const int jfalse = emit(Op::kJmpIfFalse);
        push_scope();
        FLEXIO_RETURN_IF_ERROR(compile_block(stmt.body));
        pop_scope();
        if (stmt.else_body.empty()) {
          patch(jfalse, here());
        } else {
          const int jend = emit(Op::kJmp);
          patch(jfalse, here());
          push_scope();
          FLEXIO_RETURN_IF_ERROR(compile_block(stmt.else_body));
          pop_scope();
          patch(jend, here());
        }
        return Status::ok();
      }
      case Stmt::Kind::kWhile: {
        const int top = here();
        FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
        const int jfalse = emit(Op::kJmpIfFalse);
        push_scope();
        FLEXIO_RETURN_IF_ERROR(compile_block(stmt.body));
        pop_scope();
        emit(Op::kJmp, top);
        patch(jfalse, here());
        return Status::ok();
      }
      case Stmt::Kind::kFor: {
        push_scope();
        if (stmt.init) FLEXIO_RETURN_IF_ERROR(compile_stmt(*stmt.init));
        const int top = here();
        int jfalse = -1;
        if (stmt.a) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
          jfalse = emit(Op::kJmpIfFalse);
        }
        push_scope();
        FLEXIO_RETURN_IF_ERROR(compile_block(stmt.body));
        pop_scope();
        if (stmt.step) FLEXIO_RETURN_IF_ERROR(compile_stmt(*stmt.step));
        emit(Op::kJmp, top);
        if (jfalse >= 0) patch(jfalse, here());
        pop_scope();
        return Status::ok();
      }
      case Stmt::Kind::kReturn:
        if (stmt.a) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
          emit(Op::kRet);
        } else {
          emit(Op::kRetVoid);
        }
        return Status::ok();
      case Stmt::Kind::kExpr:
        FLEXIO_RETURN_IF_ERROR(compile_expr(*stmt.a));
        emit(Op::kPop);
        return Status::ok();
      case Stmt::Kind::kBlock:
        push_scope();
        FLEXIO_RETURN_IF_ERROR(compile_block(stmt.body));
        pop_scope();
        return Status::ok();
    }
    return error(stmt.line, "bad statement kind");
  }

  Status compile_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
        emit(Op::kConst, 0, 0, expr.number);
        return Status::ok();
      case Expr::Kind::kVar: {
        const int slot = lookup(expr.name);
        if (slot >= 0) {
          emit(Op::kLoadLocal, slot);
          return Status::ok();
        }
        const int global = env_.global_index(expr.name);
        if (global >= 0) {
          emit(Op::kLoadGlobal, global);
          return Status::ok();
        }
        return error(expr.line, "unknown variable: " + expr.name);
      }
      case Expr::Kind::kUnary:
        FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[0]));
        emit(expr.op == Tok::kMinus ? Op::kNeg : Op::kNot);
        return Status::ok();
      case Expr::Kind::kBinary: {
        // Short-circuit && and ||.
        if (expr.op == Tok::kAndAnd) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[0]));
          const int jfalse = emit(Op::kJmpIfFalse);
          FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[1]));
          emit(Op::kNot);
          emit(Op::kNot);  // normalize to 0/1
          const int jend = emit(Op::kJmp);
          patch(jfalse, here());
          emit(Op::kConst, 0, 0, 0.0);
          patch(jend, here());
          return Status::ok();
        }
        if (expr.op == Tok::kOrOr) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[0]));
          const int jfalse = emit(Op::kJmpIfFalse);
          emit(Op::kConst, 0, 0, 1.0);
          const int jend = emit(Op::kJmp);
          patch(jfalse, here());
          FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[1]));
          emit(Op::kNot);
          emit(Op::kNot);
          patch(jend, here());
          return Status::ok();
        }
        FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[0]));
        FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[1]));
        switch (expr.op) {
          case Tok::kPlus: emit(Op::kAdd); break;
          case Tok::kMinus: emit(Op::kSub); break;
          case Tok::kStar: emit(Op::kMul); break;
          case Tok::kSlash: emit(Op::kDiv); break;
          case Tok::kPercent: emit(Op::kMod); break;
          case Tok::kEq: emit(Op::kEq); break;
          case Tok::kNe: emit(Op::kNe); break;
          case Tok::kLt: emit(Op::kLt); break;
          case Tok::kLe: emit(Op::kLe); break;
          case Tok::kGt: emit(Op::kGt); break;
          case Tok::kGe: emit(Op::kGe); break;
          default:
            return error(expr.line, "bad binary operator");
        }
        return Status::ok();
      }
      case Expr::Kind::kCall: {
        // User functions shadow builtins.
        const FunctionAst* fn = ast_.find(expr.name);
        if (fn != nullptr) {
          if (fn->params.size() != expr.args.size()) {
            return error(expr.line,
                         str_format("%s expects %zu args, got %zu",
                                    expr.name.c_str(), fn->params.size(),
                                    expr.args.size()));
          }
          for (const ExprPtr& arg : expr.args) {
            FLEXIO_RETURN_IF_ERROR(compile_expr(*arg));
          }
          int idx = 0;
          for (const auto& f : ast_.functions) {
            if (f.name == expr.name) break;
            ++idx;
          }
          emit(Op::kCallFn, idx, static_cast<int>(expr.args.size()));
          return Status::ok();
        }
        const int builtin = env_.builtin_index(expr.name);
        if (builtin < 0) {
          return error(expr.line, "unknown function: " + expr.name);
        }
        const int arity = env_.builtin_arity(builtin);
        if (arity >= 0 && static_cast<std::size_t>(arity) != expr.args.size()) {
          return error(expr.line,
                       str_format("%s expects %d args, got %zu",
                                  expr.name.c_str(), arity,
                                  expr.args.size()));
        }
        for (const ExprPtr& arg : expr.args) {
          FLEXIO_RETURN_IF_ERROR(compile_expr(*arg));
        }
        emit(Op::kBuiltin, builtin, static_cast<int>(expr.args.size()));
        return Status::ok();
      }
      case Expr::Kind::kIndex: {
        const int array = env_.array_index(expr.name);
        if (array < 0) {
          return error(expr.line, "unknown array: " + expr.name);
        }
        FLEXIO_RETURN_IF_ERROR(compile_expr(*expr.args[0]));
        emit(Op::kIndexArray, array);
        return Status::ok();
      }
    }
    return error(expr.line, "bad expression kind");
  }

  const ProgramAst& ast_;
  const Environment& env_;
  CompiledFunction out_;
  std::vector<std::map<std::string, int>> scopes_;
  int next_slot_ = 0;
  int max_slot_ = 0;
};

}  // namespace

StatusOr<CompiledProgram> compile(const ProgramAst& ast,
                                  const Environment& env) {
  CompiledProgram program;
  FunctionCompiler compiler(ast, env);
  for (const FunctionAst& fn : ast.functions) {
    auto compiled = compiler.compile_fn(fn);
    if (!compiled.is_ok()) return compiled.status();
    program.functions.push_back(std::move(compiled).value());
  }
  // Record referenced environment names for run-time cross-checks.
  for (const auto& fn : program.functions) {
    for (const Instr& instr : fn.code) {
      auto remember = [](std::vector<std::string>* names, int idx,
                         const std::string& name) {
        if (idx >= static_cast<int>(names->size())) {
          names->resize(static_cast<std::size_t>(idx) + 1);
        }
        (*names)[static_cast<std::size_t>(idx)] = name;
      };
      if (instr.op == Op::kLoadGlobal) {
        remember(&program.global_names, instr.a, env.global_name(instr.a));
      } else if (instr.op == Op::kIndexArray) {
        remember(&program.array_names, instr.a, env.array_name(instr.a));
      } else if (instr.op == Op::kBuiltin) {
        remember(&program.builtin_names, instr.a, env.builtin_name(instr.a));
      }
    }
  }
  return program;
}

}  // namespace flexio::cod
