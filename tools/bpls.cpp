// bpls: list the contents of a FlexIO BP stream (ADIOS's bpls analog).
//
// Usage: bpls <dir> <stream>
//   dir     directory holding <stream>.bp and <stream>.bp.d/
//   stream  stream name used at write time
#include <cstdio>

#include "adios/describe.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <dir> <stream>\n", argv[0]);
    return 2;
  }
  auto text = flexio::adios::describe(argv[1], argv[2]);
  if (!text.is_ok()) {
    std::fprintf(stderr, "bpls: %s\n", text.status().to_string().c_str());
    return 1;
  }
  std::fputs(text.value().c_str(), stdout);
  return 0;
}
