#include "core/advisor.h"

#include <algorithm>

namespace flexio {

PluginPlacementInputs inputs_from_reports(const wire::MonitorReport& writer,
                                          double var_bytes_per_step,
                                          double reduction_ratio,
                                          double plugin_seconds_per_step,
                                          double movement_bandwidth) {
  PluginPlacementInputs in;
  in.bytes_per_step = var_bytes_per_step;
  in.reduction_ratio = reduction_ratio;
  in.plugin_seconds_per_step = plugin_seconds_per_step;
  in.movement_bandwidth = movement_bandwidth;
  // Headroom estimate: the writer's visible send time per step is what it
  // already tolerates; a simulation whose sends are instant has no slack.
  const double steps = std::max<double>(1.0, static_cast<double>(writer.steps));
  in.writer_headroom_seconds = writer.send_seconds / steps;
  return in;
}

}  // namespace flexio
