// Parallel volume renderer (the S3D visualization code of Section IV.B).
//
// Orthographic emission-absorption ray casting along the Z axis of a 3-D
// scalar field. Each analytics rank renders the Z-slab it received from
// FlexIO into an RGBA image fragment with per-pixel transmittance; the
// fragments composite front-to-back in slab order ("over" operator) into
// the final frame, written as a binary PPM -- the paper's per-species
// images written in PPM format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adios/array.h"
#include "util/status.h"

namespace flexio::apps {

/// One rank's rendering of its slab: RGB premultiplied by alpha, plus the
/// slab's remaining transmittance per pixel.
struct ImageFragment {
  int width = 0, height = 0;
  std::uint64_t z_offset = 0;  // slab position along the ray (composite order)
  std::vector<float> rgb;           // 3 floats per pixel, premultiplied
  std::vector<float> transmittance; // 1 float per pixel
};

struct RenderConfig {
  double value_lo = 0.0;   // transfer-function domain
  double value_hi = 1.0;
  double opacity_scale = 0.15;  // extinction per sample
};

/// Render a slab (dense row-major block of the global field; the X and Y
/// extents of the block become the image plane, Z is the ray direction).
ImageFragment render_slab(const adios::Box& slab,
                          std::span<const double> field,
                          const RenderConfig& config = {});

/// Composite fragments (any order given; sorted internally by z_offset)
/// into an 8-bit RGB image. All fragments must share width/height.
StatusOr<std::vector<std::uint8_t>> composite(
    std::vector<ImageFragment> fragments);

/// Write an 8-bit RGB image as binary PPM (P6).
Status write_ppm(const std::string& path, int width, int height,
                 std::span<const std::uint8_t> rgb);

}  // namespace flexio::apps
