#include "core/runtime.h"

#include "core/stream_reader.h"
#include "core/stream_writer.h"

namespace flexio {

StatusOr<std::unique_ptr<StreamWriter>> Runtime::open_writer(
    const StreamSpec& spec) {
  auto writer = std::unique_ptr<StreamWriter>(new StreamWriter());
  FLEXIO_RETURN_IF_ERROR(writer->open(this, spec));
  return writer;
}

StatusOr<std::unique_ptr<StreamReader>> Runtime::open_reader(
    const StreamSpec& spec) {
  auto reader = std::unique_ptr<StreamReader>(new StreamReader());
  FLEXIO_RETURN_IF_ERROR(reader->open(this, spec));
  return reader;
}

Status Runtime::deliver_heartbeat(ByteView frame) {
  auto hb = wire::decode_heartbeat(frame);
  if (!hb.is_ok()) return hb.status();
  const Status beat = directory_.heartbeat(
      hb.value().stream, hb.value().rank, hb.value().incarnation);
  // Fold a piggybacked telemetry frame even when the beat itself was
  // rejected (a fenced rank's last stats are still real observations);
  // aggregation errors never fail the liveness path.
  if (!hb.value().stats.empty()) {
    (void)directory_.fold_stats(hb.value().program, hb.value().rank,
                                hb.value().stats);
  }
  return beat;
}

void Runtime::set_plugin_compiler(PluginCompiler compiler) {
  std::lock_guard<std::mutex> lock(mutex_);
  plugin_compiler_ = std::move(compiler);
}

PluginCompiler Runtime::plugin_compiler() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plugin_compiler_;
}

}  // namespace flexio
