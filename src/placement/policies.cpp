#include "placement/policies.h"

#include <set>

namespace flexio::placement {

std::string_view policy_name(Policy p) {
  switch (p) {
    case Policy::kDataAware: return "data-aware";
    case Policy::kHolistic: return "holistic";
    case Policy::kTopologyAware: return "topology-aware";
  }
  return "?";
}

std::string_view placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kInline: return "inline";
    case PlacementKind::kHelperCore: return "helper-core";
    case PlacementKind::kStaging: return "staging";
    case PlacementKind::kHybrid: return "hybrid";
  }
  return "?";
}

int allocate_analytics(const AllocationModel& model, bool async_movement) {
  FLEXIO_CHECK(model.analytics_time != nullptr);
  const double movement =
      async_movement ? model.bytes_per_step / model.p2p_bandwidth : 0.0;
  for (int p = model.min_processes; p <= model.max_processes; ++p) {
    if (movement + model.analytics_time(p) <= model.sim_interval) return p;
  }
  return model.max_processes;
}

StatusOr<PlacementResult> place(const PlacementRequest& request) {
  const int writers = request.sim_processes;
  const int readers = request.analytics_processes;
  if (writers <= 0 || readers < 0) {
    return make_error(ErrorCode::kInvalidArgument, "bad process counts");
  }
  if (static_cast<int>(request.inter.size()) != writers) {
    return make_error(ErrorCode::kInvalidArgument,
                      "inter matrix rows != sim processes");
  }

  const bool include_intra = request.policy != Policy::kDataAware;
  const CommGraph graph = build_coupled_graph(
      request.inter, include_intra ? request.sim_intra : std::vector<std::vector<double>>{},
      include_intra ? request.analytics_intra
                    : std::vector<std::vector<double>>{});

  const int cores_per_node = request.machine.cores_per_node();
  const int total = writers + readers;
  const int nodes_used = (total + cores_per_node - 1) / cores_per_node;
  if (nodes_used > request.machine.num_nodes) {
    return make_error(ErrorCode::kResourceExhausted,
                      "machine too small for the coupled run");
  }
  const ArchTree tree =
      request.policy == Policy::kTopologyAware
          ? ArchTree::topology_aware(request.machine, nodes_used)
          : ArchTree::two_level(request.machine, nodes_used);

  auto mapped = map_graph(graph, tree);
  if (!mapped.is_ok()) return mapped.status();
  const std::vector<long>& core_of = mapped.value();

  PlacementResult result;
  result.nodes_used = nodes_used;
  result.cost = mapping_cost(graph, tree, core_of);
  result.sim_core.assign(core_of.begin(), core_of.begin() + writers);
  result.analytics_core.assign(core_of.begin() + writers, core_of.end());

  // Classify: which nodes hold simulation ranks vs analytics ranks?
  std::set<int> sim_nodes, analytics_nodes;
  for (long c : result.sim_core) {
    sim_nodes.insert(request.machine.locate(c).node);
  }
  bool all_shared = true, none_shared = true;
  for (long c : result.analytics_core) {
    const int node = request.machine.locate(c).node;
    analytics_nodes.insert(node);
    if (sim_nodes.count(node)) {
      none_shared = false;
    } else {
      all_shared = false;
    }
  }
  if (readers == 0 || all_shared) {
    result.kind = PlacementKind::kHelperCore;
  } else if (none_shared) {
    result.kind = PlacementKind::kStaging;
  } else {
    result.kind = PlacementKind::kHybrid;
  }

  // Inter-program volume split by locality (the Data Movement Volume
  // metric of Section III.A / IV.A).
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < readers; ++r) {
      const double bytes = static_cast<double>(
          request.inter[static_cast<std::size_t>(w)]
                       [static_cast<std::size_t>(r)]);
      if (bytes <= 0) continue;
      const int wn = request.machine.locate(result.sim_core[static_cast<std::size_t>(w)]).node;
      const int rn = request.machine.locate(
          result.analytics_core[static_cast<std::size_t>(r)]).node;
      if (wn == rn) {
        result.intra_node_bytes += bytes;
      } else {
        result.inter_node_bytes += bytes;
      }
    }
  }

  // NUMA pinning decision (topology-aware policy): FlexIO's queues and
  // buffer pools live in the producing simulation rank's domain.
  if (request.policy == Policy::kTopologyAware) {
    result.buffer_numa_domain.reserve(result.sim_core.size());
    for (long c : result.sim_core) {
      result.buffer_numa_domain.push_back(request.machine.locate(c).socket);
    }
  }
  return result;
}

}  // namespace flexio::placement
