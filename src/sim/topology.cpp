#include "sim/topology.h"

#include <cmath>

namespace flexio::sim {

TorusTopology::TorusTopology(FlowNetwork* net, std::array<int, 3> dims,
                             double nic_bw, double link_bw)
    : dims_(dims) {
  FLEXIO_CHECK(dims[0] >= 1 && dims[1] >= 1 && dims[2] >= 1);
  const int n = num_nodes();
  nic_tx_.reserve(static_cast<std::size_t>(n));
  nic_rx_.reserve(static_cast<std::size_t>(n));
  torus_links_.reserve(static_cast<std::size_t>(n) * 6);
  for (int node = 0; node < n; ++node) {
    nic_tx_.push_back(net->add_link(nic_bw, "nic_tx" + std::to_string(node)));
    nic_rx_.push_back(net->add_link(nic_bw, "nic_rx" + std::to_string(node)));
  }
  for (int node = 0; node < n; ++node) {
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        torus_links_.push_back(net->add_link(
            link_bw, "torus" + std::to_string(node) + "d" +
                         std::to_string(dim) + (dir == 0 ? "+" : "-")));
      }
    }
  }
}

std::array<int, 3> TorusTopology::coords(int node) const {
  return {node / (dims_[1] * dims_[2]), (node / dims_[2]) % dims_[1],
          node % dims_[2]};
}

int TorusTopology::node_at(const std::array<int, 3>& c) const {
  return (c[0] * dims_[1] + c[1]) * dims_[2] + c[2];
}

std::vector<LinkId> TorusTopology::route(int src_node, int dst_node) const {
  std::vector<LinkId> path;
  if (src_node == dst_node) return path;
  path.push_back(nic_tx_[static_cast<std::size_t>(src_node)]);
  std::array<int, 3> at = coords(src_node);
  const std::array<int, 3> goal = coords(dst_node);
  for (int dim = 0; dim < 3; ++dim) {
    while (at[dim] != goal[dim]) {
      const int size = dims_[static_cast<std::size_t>(dim)];
      // Shorter wrap-around direction; ties go +.
      const int forward = (goal[dim] - at[dim] + size) % size;
      const int dir = forward <= size - forward ? 0 : 1;
      path.push_back(torus_link(node_at(at), dim, dir));
      at[dim] = (at[dim] + (dir == 0 ? 1 : size - 1)) % size;
    }
  }
  path.push_back(nic_rx_[static_cast<std::size_t>(dst_node)]);
  return path;
}

int TorusTopology::hop_count(int src_node, int dst_node) const {
  if (src_node == dst_node) return 0;
  return static_cast<int>(route(src_node, dst_node).size()) - 2;
}

FatTreeTopology::FatTreeTopology(FlowNetwork* net, int nodes, int leaf_radix,
                                 double nic_bw, double oversubscription)
    : leaf_radix_(leaf_radix) {
  FLEXIO_CHECK(nodes >= 1 && leaf_radix >= 1);
  FLEXIO_CHECK(oversubscription > 0);
  for (int node = 0; node < nodes; ++node) {
    nic_tx_.push_back(net->add_link(nic_bw, "nic_tx" + std::to_string(node)));
    nic_rx_.push_back(net->add_link(nic_bw, "nic_rx" + std::to_string(node)));
  }
  const int leaves = (nodes + leaf_radix - 1) / leaf_radix;
  const double trunk_bw = nic_bw * leaf_radix / oversubscription;
  for (int leaf = 0; leaf < leaves; ++leaf) {
    leaf_up_.push_back(
        net->add_link(trunk_bw, "leaf_up" + std::to_string(leaf)));
    leaf_down_.push_back(
        net->add_link(trunk_bw, "leaf_down" + std::to_string(leaf)));
  }
}

std::vector<LinkId> FatTreeTopology::route(int src_node, int dst_node) const {
  std::vector<LinkId> path;
  if (src_node == dst_node) return path;
  path.push_back(nic_tx_[static_cast<std::size_t>(src_node)]);
  const int src_leaf = leaf_of(src_node);
  const int dst_leaf = leaf_of(dst_node);
  if (src_leaf != dst_leaf) {
    // Up through the source leaf's trunk, across the core, down the
    // destination leaf's trunk.
    path.push_back(leaf_up_[static_cast<std::size_t>(src_leaf)]);
    path.push_back(leaf_down_[static_cast<std::size_t>(dst_leaf)]);
  }
  path.push_back(nic_rx_[static_cast<std::size_t>(dst_node)]);
  return path;
}

std::unique_ptr<Topology> make_topology(FlowNetwork* net,
                                        const MachineDesc& machine,
                                        int nodes_used) {
  FLEXIO_CHECK(nodes_used >= 1);
  if (machine.sockets_per_node == 2) {
    // Titan-like: smallest near-cubic torus holding nodes_used.
    int x = std::max(1, static_cast<int>(std::cbrt(double(nodes_used))));
    int y = x;
    while (x * y * ((nodes_used + x * y - 1) / (x * y)) < nodes_used) ++y;
    const int z = (nodes_used + x * y - 1) / (x * y);
    return std::make_unique<TorusTopology>(
        net, std::array<int, 3>{x, y, z}, machine.nic_bw,
        machine.nic_bw * 1.6);  // Gemini per-link > per-node injection
  }
  return std::make_unique<FatTreeTopology>(net, nodes_used, 16,
                                           machine.nic_bw,
                                           /*oversubscription=*/2.0);
}

}  // namespace flexio::sim
